"""The Session facade: SQL with subqueries, EXPLAIN, and EXPLAIN ANALYZE.

Shows the downstream-user workflow: open a session on a loaded database,
run SQL (including EXISTS / IN / scalar subqueries, which the planner
decorrelates into semi/anti joins), inspect the optimized plan, and get
per-operator row counts from an *instrumented compiled query* -- counters
are generated into the residual program by the same single pass.

Run: ``python examples/session_analyze.py``
"""

from repro.session import Session
from repro.storage import OptimizationLevel
from repro.tpch.dbgen import generate_database

ORDERS_WITH_LATE_ITEMS = """
    select o_orderpriority, count(*) as order_count
    from orders
    where o_orderdate >= date '1993-07-01'
      and o_orderdate < date '1993-07-01' + interval '3' month
      and exists (select l_orderkey from lineitem
                  where l_orderkey = o_orderkey
                    and l_commitdate < l_receiptdate)
    group by o_orderpriority
    order by o_orderpriority
"""

RICH_IDLE_CUSTOMERS = """
    select count(*) as idle_rich
    from customer
    where c_acctbal > (select avg(c_acctbal) from customer where c_acctbal > 0.0)
      and not exists (select o_orderkey from orders where o_custkey = c_custkey)
"""


def main() -> None:
    db = generate_database(0.005, level=OptimizationLevel.IDX)
    session = Session(db)

    print("=== TPC-H Q4 as SQL (EXISTS decorrelated to a semi join) ===")
    print(session.explain(ORDERS_WITH_LATE_ITEMS))
    print()
    for row in session.query(ORDERS_WITH_LATE_ITEMS):
        print(f"  {row[0]:<18} {row[1]}")

    print("\n=== rich customers with no orders (scalar + NOT EXISTS) ===")
    print(session.explain(RICH_IDLE_CUSTOMERS))
    rows, stats = session.analyze(RICH_IDLE_CUSTOMERS)
    print(f"\nresult: {rows[0][0]} customers")
    print("per-operator row counts (from the instrumented residual program):")
    for label, count in stats.items():
        print(f"  {label:<22} {count:>8}")

    print(f"\nprepared-statement cache: {session.cached_statements} entries")


if __name__ == "__main__":
    main()
