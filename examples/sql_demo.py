"""SQL text to compiled native-style code, end to end (Figure 1's pipeline).

Parses SQL with the front-end, plans it through the cost-based optimizer
(predicate pushdown, projection pruning, greedy join ordering), compiles
the plan with LB2, prints the residual program, and runs it.

Run: ``python examples/sql_demo.py``
"""

from repro.compiler.driver import LB2Compiler
from repro.sql import sql_to_plan
from repro.tpch.dbgen import generate_database

QUERY = """
    select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
    from customer, orders, lineitem, supplier, nation, region
    where c_custkey = o_custkey and l_orderkey = o_orderkey
      and l_suppkey = s_suppkey and c_nationkey = s_nationkey
      and s_nationkey = n_nationkey and n_regionkey = r_regionkey
      and r_name = 'ASIA'
      and o_orderdate >= date '1994-01-01'
      and o_orderdate < date '1994-01-01' + interval '1' year
    group by n_name
    order by revenue desc
"""


def main() -> None:
    db = generate_database(0.005)
    print("SQL:")
    print(QUERY)

    plan = sql_to_plan(QUERY, db)
    print("physical plan (operator tree):")

    def show(node, depth=0):
        label = type(node).__name__
        print("  " * depth + f"- {label}")
        for child in node.children():
            show(child, depth + 1)

    show(plan)

    compiled = LB2Compiler(db.catalog, db).compile(plan)
    print(
        f"\ncompiled in {1000 * (compiled.generation_seconds + compiled.compile_seconds):.1f} ms; "
        f"residual program is {len(compiled.source.splitlines())} lines"
    )
    print("\nresult (TPC-H Q5, local supplier volume):")
    for row in compiled.run(db):
        print(f"  {row[0]:<12} {row[1]:>14.2f}")


if __name__ == "__main__":
    main()
