"""The first Futamura projection, hands on (paper Section 2, Appendix B.1).

``power(x, n)`` is a two-argument function.  Fixing ``n = 4`` and running
it on a *symbolic* x makes every multiplication emit a line of code instead
of computing a number: the residual program is the specialized ``power4``.
The same mechanism -- typed symbolic values with overloaded operators --
is exactly what turns the query interpreter into the LB2 query compiler.

Run: ``python examples/futamura_power.py``
"""

from repro.staging import PyProgram, StagingContext, generate_c, generate_python
from repro.staging import ir
from repro.staging.rep import RepInt


def power(x, n: int):
    """The generic power function -- ordinary code, no staging in sight.

    ``n`` is present-stage (a plain int, consumed by Python's recursion);
    ``x`` may be a plain int *or* a staged RepInt.  That choice of types is
    the binding-time separation the paper talks about.
    """
    if n == 0:
        return 1
    return x * power(x, n - 1)


def main() -> None:
    print("present-stage evaluation: power(3, 4) =", power(3, 4))

    # Specialize: run power on a SYMBOLIC x with n fixed to 4.
    ctx = StagingContext()
    with ctx.function("power4", ["in_"]):
        symbolic_x = RepInt(ir.Sym("in_"), ctx)
        result = ctx.lift(power(symbolic_x, 4))
        ctx.return_(result)

    python_source = generate_python(ctx.program())
    print("\n--- residual Python (the compiled power4) ---")
    print(python_source)
    print("--- the same staged program rendered as C (paper Appendix B.1) ---")
    print(generate_c(ctx.program()))

    compiled = PyProgram(python_source).fn("power4")
    print("compiled power4(3) =", compiled(3))
    assert compiled(3) == 81


if __name__ == "__main__":
    main()
