"""Parallel query execution (paper Section 4.5 / Figure 11).

Compiles TPC-H queries into partitioned partials -- the driving scan takes
``[lo, hi)`` bounds, aggregation goes into a thread-local state that is
merged afterwards -- and shows simulated scaling on 1..16 workers plus a
real fork-based run.

Run: ``python examples/parallel_scaling.py [scale]`` (default 0.005).
"""

import sys

from repro.compiler.parallel import ParallelQuery
from repro.engine import execute_push
from repro.tpch import query_plan
from repro.tpch.dbgen import generate_database

QUERIES = (4, 6, 13, 14, 22)
WORKERS = (1, 2, 4, 8, 16)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    db = generate_database(scale)

    print(f"{'query':>6} " + " ".join(f"{w:>7}w" for w in WORKERS) + "   (simulated makespan, ms)")
    for q in QUERIES:
        plan = query_plan(q, scale=scale)
        pq = ParallelQuery(plan, db, db.catalog)
        rows, timing = pq.run_simulated(partitions=16)
        reference = execute_push(plan, db, db.catalog)

        def rounded(rs):
            # partial sums combine in a different order, so compare floats
            # to a tolerance rather than bit-for-bit
            return sorted(
                tuple(round(v, 4) if isinstance(v, float) else v for v in r)
                for r in rs
            )

        assert rounded(rows) == rounded(reference)
        makespans = [timing.makespan(w) * 1000 for w in WORKERS]
        print(f"    Q{q:<3} " + " ".join(f"{m:>8.2f}" for m in makespans))
        speedups = [makespans[0] / m for m in makespans]
        print(f"  (x)   " + " ".join(f"{s:>8.1f}" for s in speedups))

    print("\nreal fork-based execution (2 processes), Q6:")
    pq = ParallelQuery(query_plan(6, scale=scale), db, db.catalog)
    rows = pq.run_multiprocess(2)
    print("  result:", rows)

    print("\ngenerated partial (first 25 lines):")
    print("\n".join(pq.source.splitlines()[:25]))


if __name__ == "__main__":
    main()
