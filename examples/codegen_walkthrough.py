"""The aggregate-query code generation walkthrough (paper Appendix B.2).

Shows the same group-by-count query compiled three ways:

* with the native-dict hash map (the idiomatic Python lowering);
* with the paper-faithful open-addressing columnar hash map -- the residual
  program contains nothing but flat arrays and index arithmetic, like the
  paper's Figure 14 C code;
* rendered as illustrative C from the same single generation pass.

Run: ``python examples/codegen_walkthrough.py``
"""

from repro.catalog import Catalog, INT, STRING
from repro.catalog.schema import schema
from repro.compiler.driver import LB2Compiler
from repro.compiler.lb2 import Config
from repro.plan import Agg, Scan, col, count
from repro.storage import Database


def main() -> None:
    emp = schema("Emp", ("eid", INT), ("edname", STRING), pk=["eid"])
    db = Database(Catalog())
    db.add_rows(emp, [(1, "CS"), (2, "CS"), (3, "EE"), (4, "ME"), (5, "CS")])

    # select edname, count(*) from Emp group by edname
    plan = Agg(Scan("Emp"), [("edname", col("edname"))], [("cnt", count())])

    native = LB2Compiler(db.catalog, db, Config(hashmap="native")).compile(plan)
    print("=== native-dict lowering (Python) ===")
    print(native.source)
    print("result:", sorted(native.run(db)))

    open_cfg = Config(hashmap="open", open_map_size=16)
    open_map = LB2Compiler(db.catalog, db, open_cfg).compile(plan)
    print("\n=== open-addressing lowering (Python; flat arrays only) ===")
    print(open_map.source)
    print("result:", sorted(open_map.run(db)))

    print("\n=== the same staged program rendered as C (cf. Figure 14) ===")
    print(open_map.c_source())


if __name__ == "__main__":
    main()
