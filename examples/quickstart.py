"""Quickstart: define a schema, load data, run a query on all four engines.

This walks the library's public API end to end:

1. declare tables and load rows into an in-memory :class:`Database`;
2. build a physical plan (the same plan language the TPC-H suite uses);
3. execute it interpreted (Volcano and data-centric push);
4. compile it with the LB2 single-pass compiler and inspect the residual
   program -- the first Futamura projection at work.

Run: ``python examples/quickstart.py``
"""

from repro.catalog import Catalog, INT, STRING
from repro.catalog.schema import schema
from repro.compiler.driver import LB2Compiler
from repro.engine import execute_push, execute_volcano
from repro.plan import Agg, HashJoin, Scan, Select, Sort, col, count
from repro.storage import Database


def main() -> None:
    # 1. Schema + data (the paper's running example: departments/employees).
    dep = schema("Dep", ("dname", STRING), ("rank", INT), pk=["dname"])
    emp = schema(
        "Emp", ("eid", INT), ("edname", STRING),
        pk=["eid"], fks={"edname": ("Dep", "dname")},
    )
    db = Database(Catalog())
    db.add_rows(dep, [("CS", 1), ("EE", 5), ("ME", 20)])
    db.add_rows(emp, [(1, "CS"), (2, "CS"), (3, "EE"), (4, "ME")])

    # 2. The paper's Section 3 query:
    #    select * from Dep, (select edname, count(*) from Emp group by edname) T
    #    where rank < 10 and dname = T.edname
    plan = Sort(
        HashJoin(
            Select(Scan("Dep"), col("rank").lt(10)),
            Agg(Scan("Emp"), [("edname", col("edname"))], [("cnt", count())]),
            ("dname",),
            ("edname",),
        ),
        [("dname", True)],
    )

    # 3. Interpreted execution.
    print("Volcano (pull) :", execute_volcano(plan, db, db.catalog))
    print("Push (callback):", execute_push(plan, db, db.catalog))

    # 4. Compiled execution: specialize the push evaluator to this plan.
    compiled = LB2Compiler(db.catalog, db).compile(plan)
    print("LB2 compiled   :", compiled.run(db))
    print(f"\n--- residual program ({compiled.generation_seconds * 1000:.1f} ms to generate) ---")
    print(compiled.source)


if __name__ == "__main__":
    main()
