"""TPC-H end to end: generate data, run queries on every engine, compare.

Generates a small TPC-H instance with the built-in dbgen, runs a handful of
representative queries on all four engines, verifies they agree, and prints
per-engine runtimes -- a miniature of the Figure 8 experiment.  Then
reloads the data with the full optimization level and shows the effect of
index-aware plans (the Figure 9 configurations).

Run: ``python examples/tpch_demo.py [scale]`` (default scale 0.005).
"""

import sys
import time

from repro.compiler.driver import LB2Compiler
from repro.compiler.template import TemplateCompiler
from repro.engine import execute_push, execute_volcano
from repro.plan.rewrite import optimize_for_level
from repro.storage import OptimizationLevel
from repro.tpch import generate_tables, query_plan
from repro.tpch.dbgen import generate_database

DEMO_QUERIES = (1, 3, 6, 13, 19)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - start) * 1000


def normalize(rows):
    return sorted(
        [tuple(round(v, 4) if isinstance(v, float) else v for v in r) for r in rows],
        key=repr,
    )


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    print(f"generating TPC-H data at scale {scale} (fraction of SF1)...")
    tables = generate_tables(scale)
    db = generate_database(tables=dict(tables))
    for name in db.table_names():
        print(f"  {name:10s} {db.size(name):>8} rows")

    print("\n--- compliant configuration, four engines ---")
    header = f"{'query':>6} {'volcano':>10} {'push':>10} {'template':>10} {'lb2':>10}"
    print(header)
    for q in DEMO_QUERIES:
        plan = query_plan(q, scale=scale)
        ref, t_volcano = timed(lambda: execute_volcano(plan, db, db.catalog))
        push_rows, t_push = timed(lambda: execute_push(plan, db, db.catalog))
        template = TemplateCompiler(db.catalog).compile(plan)
        template_rows, t_template = timed(lambda: template.run(db))
        compiled = LB2Compiler(db.catalog, db).compile(plan)
        lb2_rows, t_lb2 = timed(lambda: compiled.run(db))
        assert normalize(ref) == normalize(push_rows) == normalize(template_rows) == normalize(lb2_rows)
        print(
            f"    Q{q:<3} {t_volcano:>8.1f}ms {t_push:>8.1f}ms "
            f"{t_template:>8.1f}ms {t_lb2:>8.1f}ms   ({len(ref)} rows, all agree)"
        )

    print("\n--- full optimization level: index-aware plans (Figure 9 setup) ---")
    db_full = generate_database(tables=dict(tables), level=OptimizationLevel.IDX_DATE_STR)
    for q in DEMO_QUERIES:
        plan = query_plan(q, scale=scale)
        optimized = optimize_for_level(plan, db_full, db_full.catalog)
        base = LB2Compiler(db_full.catalog, db_full).compile(plan)
        fast = LB2Compiler(db_full.catalog, db_full).compile(optimized)
        rows_a, t_a = timed(lambda: base.run(db_full))
        rows_b, t_b = timed(lambda: fast.run(db_full))
        assert normalize(rows_a) == normalize(rows_b)
        print(f"    Q{q:<3} compliant-plan {t_a:>7.1f}ms   index-plan {t_b:>7.1f}ms")


if __name__ == "__main__":
    main()
