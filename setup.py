"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so PEP 660
editable installs (which require ``bdist_wheel``) fail.  ``python setup.py
develop`` performs the equivalent editable install without needing wheels.
``pip install -e . --no-build-isolation`` works wherever ``wheel`` is present.
"""

from setuptools import setup

setup()
