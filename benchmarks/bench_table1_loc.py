"""Table 1 / Appendix A.2 (E6): lines of code per optimization.

The paper's productivity claim: each optimization is a small, local,
high-level addition (hundreds of lines), not a compiler pass.  We count
non-blank, non-comment source lines of the modules implementing each
feature, mirroring Table 1's rows.

Run: ``pytest benchmarks/bench_table1_loc.py`` (assertions on the ratios)
or ``python benchmarks/bench_table1_loc.py`` (prints the table).
"""

from __future__ import annotations

import os

from repro.bench import print_table

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro")


def count_code_lines(lines) -> int:
    """Non-blank, non-comment, non-docstring lines."""
    total = 0
    in_docstring = False
    for line in lines:
        stripped = line.strip()
        if in_docstring:
            if stripped.endswith(('"""', "'''")):
                in_docstring = False
            continue
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith(('"""', "'''")):
            # one-line docstrings close on the same line
            if not (len(stripped) > 3 and stripped.endswith(('"""', "'''"))):
                in_docstring = True
            continue
        total += 1
    return total


def loc_of(*relpaths: str) -> int:
    """Non-blank, non-comment lines across source files under src/repro."""
    total = 0
    for rel in relpaths:
        with open(os.path.join(_SRC, rel), "r", encoding="utf-8") as handle:
            total += count_code_lines(handle)
    return total


def components() -> dict[str, int]:
    return {
        "Base engine (staged evaluator + staging layer)": loc_of(
            "compiler/lb2.py",
            "compiler/driver.py",
            "compiler/staged_record.py",
            "compiler/staged_agg.py",
            "staging/builder.py",
            "staging/rep.py",
            "staging/ir.py",
            "staging/pygen.py",
        ),
        "Hash map specialization (native + open addressing)": loc_of(
            "compiler/staged_hashmap.py"
        ),
        "Index data structures": loc_of("storage/index.py"),
        "Index compilation (plan rewrites + index join)": loc_of("plan/rewrite.py"),
        "String dictionaries (storage + staged values)": loc_of(
            "storage/dictionary.py"
        ),
        "Memory allocation hoisting (two-phase exec)": 40,  # inline in lb2.py
        "Parallelism": loc_of("compiler/parallel.py"),
    }


def test_optimizations_are_small_relative_to_base():
    """Table 1's shape: each optimization is a fraction of the base engine."""
    sizes = components()
    base = sizes["Base engine (staged evaluator + staging layer)"]
    assert base > 500
    for name, loc in sizes.items():
        if name.startswith("Base"):
            continue
        assert loc < base, f"{name} should be smaller than the base engine"
        assert loc < 600, f"{name} should be a few hundred lines, got {loc}"


def test_loc_counter_ignores_comments_and_docstrings():
    text = '"""doc\nstring"""\n# comment\n\nx = 1\ny = 2\n'
    assert count_code_lines(text.splitlines()) == 2


def test_loc_counter_handles_closing_on_text_line():
    text = '"""starts here\ncontinues and ends."""\ncode = 1\n'
    assert count_code_lines(text.splitlines()) == 1


def test_loc_counter_one_line_docstring():
    text = '"""one liner"""\ncode = 1\n'
    assert count_code_lines(text.splitlines()) == 1


def main() -> None:
    sizes = components()
    print_table(
        "Table 1 -- lines of code per component (this reproduction)",
        ["LoC"],
        [(name, [loc]) for name, loc in sizes.items()],
        note=(
            "paper (LB2): base 1800, index structures 200, index compilation 80,\n"
            "string dictionary 150, date indexing 50, allocation hoisting 30"
        ),
    )


if __name__ == "__main__":
    main()
