"""Figure 8 (E1): TPC-H-compliant runtime, four engines x 22 queries.

Paper shape to reproduce: compiled engines (LB2, and to a lesser degree the
template expander) beat the interpreted engines on every query; the Volcano
iterator engine is the slowest; LB2 is at least as fast as template
expansion everywhere (tighter residual code, specialized structures).

Run as a benchmark suite::

    pytest benchmarks/bench_fig8_compliant.py --benchmark-only

or print the paper-style table directly::

    python benchmarks/bench_fig8_compliant.py
"""

from __future__ import annotations

import pytest

from repro.bench import make_context, print_table, run_engine, time_callable

ENGINES = ("volcano", "push", "template", "lb2")
QUERIES = tuple(range(1, 23))


@pytest.mark.parametrize("query", QUERIES)
@pytest.mark.parametrize("engine", ENGINES)
def test_fig8_engine_runtime(benchmark, ctx, engine, query):
    benchmark.group = f"fig8-Q{query}"
    benchmark.name = engine
    # Warm once so compiled engines are built outside the timed region.
    run_engine(engine, ctx, query)
    benchmark.pedantic(run_engine, args=(engine, ctx, query), rounds=2, iterations=1)


@pytest.mark.parametrize("query", (1, 3, 6, 13, 19))
def test_fig8_shape_lb2_beats_interpreters(ctx, query):
    """The paper's headline: compiled beats interpreted, on every query."""
    from repro.bench import time_callable

    run_engine("lb2", ctx, query)
    run_engine("volcano", ctx, query)
    lb2 = time_callable(lambda: run_engine("lb2", ctx, query))
    volcano = time_callable(lambda: run_engine("volcano", ctx, query))
    assert lb2 < volcano, f"Q{query}: lb2 {lb2:.4f}s !< volcano {volcano:.4f}s"


@pytest.mark.parametrize("query", (1, 3, 6))
def test_fig8_shape_engines_agree(ctx, query):
    results = [run_engine(engine, ctx, query) for engine in ENGINES]
    canon = [
        sorted(
            tuple(round(v, 4) if isinstance(v, float) else v for v in row)
            for row in rows
        )
        for rows in results
    ]
    assert all(c == canon[0] for c in canon)


def collect(ctx) -> dict[str, list]:
    """Median runtimes (ms) per engine across all queries.

    The ``lb2-sql`` row mirrors the paper's "LB2 (HyPer plan)" vs "LB2
    (DBLAB plan)" comparison: the same compiler under a different plan
    source (our cost-based SQL optimizer); None where a query needs
    plan-DSL-only constructs.
    """
    from repro.tpch.sql_queries import SQL_QUERIES

    results: dict[str, list] = {engine: [] for engine in ENGINES}
    results["lb2-sql"] = []
    for query in QUERIES:
        for engine in ENGINES:
            run_engine(engine, ctx, query)  # warm/compile
            seconds = time_callable(lambda e=engine, q=query: run_engine(e, ctx, q))
            results[engine].append(seconds * 1000.0)
        if query in SQL_QUERIES:
            run_engine("lb2-sql", ctx, query)
            seconds = time_callable(lambda q=query: run_engine("lb2-sql", ctx, q))
            results["lb2-sql"].append(seconds * 1000.0)
        else:
            results["lb2-sql"].append(None)
    return results


def check_shape(results: dict[str, list[float]]) -> list[str]:
    """The paper's qualitative claims, evaluated on our measurements."""
    findings = []
    lb2, template = results["lb2"], results["template"]
    volcano, push = results["volcano"], results["push"]
    lb2_vs_volcano = sum(v / l for v, l in zip(volcano, lb2)) / len(lb2)
    lb2_vs_push = sum(p / l for p, l in zip(push, lb2)) / len(lb2)
    lb2_vs_template = sum(t / l for t, l in zip(template, lb2)) / len(lb2)
    findings.append(f"geometric-ish mean speedup of LB2 over Volcano: {lb2_vs_volcano:.1f}x")
    findings.append(f"mean speedup of LB2 over push interpreter: {lb2_vs_push:.1f}x")
    findings.append(f"mean speedup of LB2 over template compiler: {lb2_vs_template:.2f}x")
    wins = sum(1 for l, v in zip(lb2, volcano) if l < v)
    findings.append(f"LB2 faster than Volcano on {wins}/22 queries")
    return findings


def main() -> None:
    ctx = make_context()
    results = collect(ctx)
    rows = [(engine, results[engine]) for engine in ENGINES]
    rows.append(("lb2-sql", results["lb2-sql"]))
    print_table(
        f"Figure 8 -- TPC-H compliant runtime (ms), SF={ctx.scale}",
        [f"Q{q}" for q in QUERIES],
        rows,
        note="\n".join(check_shape(results))
        + "\nlb2-sql = same compiler, plans from the SQL optimizer ('-' = plan-only query)",
    )


if __name__ == "__main__":
    main()
