"""PR-6 optimizer comparison: what classic dataflow passes buy (or don't).

The same residual program is compiled at ``opt_level`` 0 (the paper's
single-pass output, byte-identical to every golden), 1 (copy/constant
propagation, If-simplification, dead code) and 2 (adds CSE and
loop-invariant hoisting), and *execution* is timed per level --
compilation is excluded, as in Figure 13.  The statement-count reduction
per query is the static half of the answer; the runtime delta is the
dynamic half.

Run: ``pytest benchmarks/bench_opt.py --benchmark-only`` or
``python benchmarks/bench_opt.py`` (equivalently ``repro-bench-opt``),
which also writes the ``BENCH_PR6.json`` report.
"""

from __future__ import annotations

import pytest

from repro.bench.opt import LEVELS, main
from repro.compiler.lb2 import Config

QUERIES = tuple(range(1, 23))


@pytest.mark.parametrize("query", QUERIES)
@pytest.mark.parametrize("level", LEVELS)
def test_opt_levels(benchmark, ctx, level, query):
    db = ctx.db()
    compiled = ctx.compiled(query, config=Config(opt_level=level))
    benchmark.group = f"opt-Q{query}"
    benchmark.name = f"O{level}"
    benchmark.pedantic(compiled.run, args=(db,), rounds=3, iterations=1)


def test_opt_levels_agree(ctx):
    """The comparison is only meaningful if every level answers alike."""
    db = ctx.db()
    for query in (1, 6):
        rows = {
            lv: sorted(ctx.compiled(query, config=Config(opt_level=lv)).run(db))
            for lv in LEVELS
        }
        assert rows[0] == rows[1] == rows[2]


if __name__ == "__main__":
    raise SystemExit(main())
