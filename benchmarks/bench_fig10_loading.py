"""Figure 10 (E3): loading-time overhead of index creation.

The paper reports the slowdown of loading with each optimization level
relative to compliant loading (no auxiliary structures).  Here ``loading``
is populating a :class:`Database` from pre-generated tables: the compliant
level just adopts the columns; idx builds key hash indexes; idx-date adds
per-month partitions; idx-date-str adds sorted string dictionaries and
encoded columns.  Shape: a monotone ladder of slowdown factors > 1.

Run: ``pytest benchmarks/bench_fig10_loading.py --benchmark-only`` or
``python benchmarks/bench_fig10_loading.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import make_context, print_table
from repro.storage.database import OptimizationLevel
from repro.tpch.dbgen import generate_database

LEVELS = (
    OptimizationLevel.COMPLIANT,
    OptimizationLevel.IDX,
    OptimizationLevel.IDX_DATE,
    OptimizationLevel.IDX_DATE_STR,
)


_TBL_TEXT: dict[str, str] = {}


def _tbl_text(ctx) -> dict[str, str]:
    """Serialize the generated tables to .tbl text once, so every level's
    load starts from the same on-disk representation (as dbgen would)."""
    if not _TBL_TEXT:
        import io

        from repro.storage.loader import write_tbl

        for name, table in ctx.tables.items():
            buf = io.StringIO()
            write_tbl(table, buf)
            _TBL_TEXT[name] = buf.getvalue()
    return _TBL_TEXT


def load_at(ctx, level: OptimizationLevel):
    """Parse .tbl text and build the level's auxiliary structures."""
    from repro.storage.database import Database
    from repro.storage.loader import parse_tbl_lines
    from repro.tpch.schema import DICTIONARY_COLUMNS, TPCH_TABLES, tpch_catalog

    text = _tbl_text(ctx)
    db = Database(tpch_catalog(), level=level, dictionary_columns=DICTIONARY_COLUMNS)
    for name, schema in TPCH_TABLES.items():
        db.add_table(parse_tbl_lines(schema, text[name].splitlines()))
    return db


@pytest.mark.parametrize("level", LEVELS, ids=[l.name.lower() for l in LEVELS])
def test_fig10_loading(benchmark, ctx, level):
    benchmark.group = "fig10-loading"
    benchmark.name = level.name.lower()
    benchmark.pedantic(load_at, args=(ctx, level), rounds=2, iterations=1)


def collect(ctx):
    """Per level: (total load seconds, auxiliary-structure build seconds).

    ``Database.build_seconds`` isolates index/dictionary construction from
    parsing, so the slowdown ratio is stable even though text parsing
    dominates absolute load time in this Python implementation.
    """
    out = {}
    for level in LEVELS:
        totals, builds = [], []
        for _ in range(3):
            start = time.perf_counter()
            db = load_at(ctx, level)
            totals.append(time.perf_counter() - start)
            builds.append(db.build_seconds)
        out[level] = (sorted(totals)[1], sorted(builds)[1])
    return out


def test_fig10_build_cost_is_monotone(ctx):
    results = collect(ctx)
    builds = [results[level][1] for level in LEVELS]
    assert builds[0] <= builds[1] <= builds[3]
    assert builds[3] > builds[0]


def main() -> None:
    ctx = make_context()
    results = collect(ctx)
    base_total, base_build = results[OptimizationLevel.COMPLIANT]
    parse_cost = base_total - base_build
    rows = []
    for level in LEVELS:
        total, build = results[level]
        rows.append(
            (
                level.name.lower(),
                [
                    total * 1000.0,
                    build * 1000.0,
                    (parse_cost + build) / max(parse_cost + base_build, 1e-9),
                ],
            )
        )
    print_table(
        f"Figure 10 -- loading overhead by optimization level, SF={ctx.scale}",
        ["total load (ms)", "aux build (ms)", "slowdown vs compliant"],
        rows,
        note=(
            "aux build = key indexes / date partitions / string dictionaries;\n"
            "slowdown uses parse cost + build cost, as the paper's loading does"
        ),
    )


if __name__ == "__main__":
    main()
