"""Ablation benches (E9): the design choices DESIGN.md calls out.

* hash map implementation: native dict vs the paper-faithful open
  addressing (Section 4.2's "different low-level implementation choices");
* allocation hoisting on/off (Section 4.4) -- measured on the hot path of
  the prepared closure vs a fresh whole-query call;
* string dictionaries on/off on string-predicate queries (Section 4.3);
* date-index scans vs full scans on date-filtered queries (Section 4.3).

Run: ``pytest benchmarks/bench_ablation.py --benchmark-only`` or
``python benchmarks/bench_ablation.py``.
"""

from __future__ import annotations

import pytest

from repro.bench import make_context, print_table, time_callable
from repro.compiler.driver import LB2Compiler
from repro.compiler.lb2 import Config
from repro.plan.rewrite import rewrite_date_index_scans
from repro.storage.database import OptimizationLevel
from repro.tpch import query_plan

AGG_QUERY = 1     # wide aggregation: hash map choice matters
STRING_QUERY = 19  # brand/container equality predicates: dictionaries matter
DATE_QUERY = 6    # selective date range: date index matters


def _compiled(ctx, query, level=OptimizationLevel.COMPLIANT, config=None, rewrite=False):
    return ctx.compiled(query, level=level, rewrite=rewrite, config=config)


# -- hash map implementations ---------------------------------------------------


@pytest.mark.parametrize("impl", ("native", "open"))
def test_ablation_hashmap(benchmark, ctx, impl):
    benchmark.group = "ablation-hashmap-Q1"
    benchmark.name = impl
    config = Config(hashmap=impl)
    compiled = _compiled(ctx, AGG_QUERY, config=config)
    db = ctx.db()
    compiled.run(db)
    benchmark.pedantic(compiled.run, args=(db,), rounds=2, iterations=1)


def test_hashmap_results_agree(ctx):
    db = ctx.db()
    native = _compiled(ctx, AGG_QUERY, config=Config(hashmap="native")).run(db)
    open_ = _compiled(ctx, AGG_QUERY, config=Config(hashmap="open")).run(db)
    assert sorted(map(repr, native)) == sorted(map(repr, open_))


# -- allocation hoisting ----------------------------------------------------------


@pytest.mark.parametrize("mode", ("hoisted", "inline"))
def test_ablation_hoisting(benchmark, ctx, mode):
    benchmark.group = "ablation-hoisting-Q1"
    benchmark.name = mode
    db = ctx.db()
    plan = ctx.plan(AGG_QUERY)
    compiler = LB2Compiler(db.catalog, db)
    if mode == "hoisted":
        compiled = compiler.compile(plan, split_prepare=True)
        run = compiled.prepare(db)  # allocations done here, once

        def hot() -> list:
            out: list = []
            run(out)
            return out

    else:
        compiled = compiler.compile(plan)

        def hot() -> list:
            return compiled.run(db)

    hot()
    benchmark.pedantic(hot, rounds=2, iterations=1)


# -- string dictionaries -----------------------------------------------------------


@pytest.mark.parametrize("mode", ("plain", "dictionary"))
def test_ablation_dictionaries(benchmark, ctx, mode):
    benchmark.group = f"ablation-dictionaries-Q{STRING_QUERY}"
    benchmark.name = mode
    level = OptimizationLevel.IDX_DATE_STR
    db = ctx.db(level)
    config = Config(use_dictionaries=(mode == "dictionary"))
    compiled = ctx.compiled(STRING_QUERY, level=level, config=config)
    compiled.run(db)
    benchmark.pedantic(compiled.run, args=(db,), rounds=2, iterations=1)


def test_dictionary_results_agree(ctx):
    level = OptimizationLevel.IDX_DATE_STR
    db = ctx.db(level)
    plain = ctx.compiled(STRING_QUERY, level=level, config=Config(use_dictionaries=False)).run(db)
    compressed = ctx.compiled(STRING_QUERY, level=level, config=Config(use_dictionaries=True)).run(db)
    assert sorted(map(repr, plain)) == sorted(map(repr, compressed))


# -- date index -----------------------------------------------------------------------


@pytest.mark.parametrize("mode", ("full-scan", "date-index"))
def test_ablation_date_index(benchmark, ctx, mode):
    benchmark.group = f"ablation-dateindex-Q{DATE_QUERY}"
    benchmark.name = mode
    level = OptimizationLevel.IDX_DATE
    db = ctx.db(level)
    plan = query_plan(DATE_QUERY, scale=ctx.scale)
    if mode == "date-index":
        plan = rewrite_date_index_scans(plan, db, db.catalog)
    compiled = LB2Compiler(db.catalog, db).compile(plan)
    compiled.run(db)
    benchmark.pedantic(compiled.run, args=(db,), rounds=2, iterations=1)


# -- Top-K fusion (Limit over Sort -> bounded heap selection) ------------------------

TOPK_QUERY = 18  # limit 100 over a large sorted aggregate


@pytest.mark.parametrize("mode", ("full-sort", "topk"))
def test_ablation_topk(benchmark, ctx, mode):
    from repro.plan.rewrite import fuse_topk

    benchmark.group = f"ablation-topk-Q{TOPK_QUERY}"
    benchmark.name = mode
    db = ctx.db()
    plan = query_plan(TOPK_QUERY, scale=ctx.scale)
    if mode == "topk":
        plan = fuse_topk(plan)
    compiled = LB2Compiler(db.catalog, db).compile(plan)
    compiled.run(db)
    benchmark.pedantic(compiled.run, args=(db,), rounds=2, iterations=1)


# -- sort materialization layout (Section 4.1 row vs column) ------------------------

SORT_QUERY = 1  # Q1's final sort is tiny; Q10 carries wide rows through Sort


@pytest.mark.parametrize("layout", ("row", "column"))
def test_ablation_sort_layout(benchmark, ctx, layout):
    benchmark.group = "ablation-sortlayout-Q10"
    benchmark.name = layout
    db = ctx.db()
    compiled = ctx.compiled(10, config=Config(sort_layout=layout))
    compiled.run(db)
    benchmark.pedantic(compiled.run, args=(db,), rounds=2, iterations=1)


def test_sort_layout_results_agree(ctx):
    db = ctx.db()
    row = ctx.compiled(10, config=Config(sort_layout="row")).run(db)
    column = ctx.compiled(10, config=Config(sort_layout="column")).run(db)
    assert row == column


# -- GroupJoin vs LeftOuterJoin + Agg (the HyPer specialized-operator gap) --------


@pytest.mark.parametrize("variant", ("outerjoin+agg", "groupjoin"))
def test_ablation_groupjoin(benchmark, ctx, variant):
    from repro.tpch.queries import q13_groupjoin

    benchmark.group = "ablation-groupjoin-Q13"
    benchmark.name = variant
    db = ctx.db()
    plan = (
        q13_groupjoin(ctx.scale) if variant == "groupjoin" else query_plan(13, scale=ctx.scale)
    )
    compiled = LB2Compiler(db.catalog, db).compile(plan)
    compiled.run(db)
    benchmark.pedantic(compiled.run, args=(db,), rounds=2, iterations=1)


def test_groupjoin_results_agree(ctx):
    from repro.tpch.queries import q13_groupjoin

    db = ctx.db()
    standard = LB2Compiler(db.catalog, db).compile(query_plan(13, scale=ctx.scale)).run(db)
    fused = LB2Compiler(db.catalog, db).compile(q13_groupjoin(ctx.scale)).run(db)
    assert sorted(standard) == sorted(fused)


# -- report -----------------------------------------------------------------------------


def main() -> None:
    ctx = make_context()
    db = ctx.db()
    rows = []

    for impl in ("native", "open"):
        compiled = _compiled(ctx, AGG_QUERY, config=Config(hashmap=impl))
        compiled.run(db)
        rows.append((f"Q1 hashmap={impl}", [time_callable(lambda c=compiled: c.run(db)) * 1000]))

    level = OptimizationLevel.IDX_DATE_STR
    dbs = ctx.db(level)
    for mode, use in (("plain", False), ("dict", True)):
        compiled = ctx.compiled(STRING_QUERY, level=level, config=Config(use_dictionaries=use))
        compiled.run(dbs)
        rows.append(
            (f"Q{STRING_QUERY} strings={mode}", [time_callable(lambda c=compiled: c.run(dbs)) * 1000])
        )

    from repro.plan.rewrite import fuse_topk
    from repro.tpch.queries import q13_groupjoin

    for label, plan in (
        ("Q13 outerjoin+agg", query_plan(13, scale=ctx.scale)),
        ("Q13 groupjoin", q13_groupjoin(ctx.scale)),
        ("Q18 full-sort", query_plan(TOPK_QUERY, scale=ctx.scale)),
        ("Q18 topk-fused", fuse_topk(query_plan(TOPK_QUERY, scale=ctx.scale))),
    ):
        compiled = LB2Compiler(db.catalog, db).compile(plan)
        compiled.run(db)
        rows.append((label, [time_callable(lambda c=compiled: c.run(db)) * 1000]))

    for layout in ("row", "column"):
        compiled = ctx.compiled(10, config=Config(sort_layout=layout))
        compiled.run(db)
        rows.append(
            (f"Q10 sort={layout}", [time_callable(lambda c=compiled: c.run(db)) * 1000])
        )

    dbd = ctx.db(OptimizationLevel.IDX_DATE)
    for mode in ("full-scan", "date-index"):
        plan = query_plan(DATE_QUERY, scale=ctx.scale)
        if mode == "date-index":
            plan = rewrite_date_index_scans(plan, dbd, dbd.catalog)
        compiled = LB2Compiler(dbd.catalog, dbd).compile(plan)
        compiled.run(dbd)
        rows.append(
            (f"Q{DATE_QUERY} {mode}", [time_callable(lambda c=compiled: c.run(dbd)) * 1000])
        )

    print_table(
        f"Ablations -- design choices (ms), SF={ctx.scale}",
        ["runtime (ms)"],
        rows,
        note="native dict vs open addressing; dictionaries on string predicates;\n"
        "date-index partition pruning vs full scan",
    )


if __name__ == "__main__":
    main()
