"""Shared benchmark fixtures: one generated TPC-H dataset per process."""

import pytest

from repro.bench import make_context


@pytest.fixture(scope="session")
def ctx():
    return make_context()
