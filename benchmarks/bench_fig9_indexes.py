"""Figure 9 (E2): non-TPC-H-compliant optimizations -- key indexes, date
indexes, string dictionaries -- on LB2 across all 22 queries.

Paper shape: each added level is at worst neutral and wins on the queries
it targets (date-filter queries for date indexes; string-predicate queries
-- Q2/Q3/Q12/Q14/Q17/Q19 -- for dictionaries).

Run: ``pytest benchmarks/bench_fig9_indexes.py --benchmark-only`` or
``python benchmarks/bench_fig9_indexes.py``.
"""

from __future__ import annotations

import pytest

from repro.bench import make_context, print_table, time_callable
from repro.storage.database import OptimizationLevel

QUERIES = tuple(range(1, 23))
LEVELS = (
    ("lb2-compliant", OptimizationLevel.COMPLIANT, False),
    ("lb2-idx", OptimizationLevel.IDX, True),
    ("lb2-idx-date", OptimizationLevel.IDX_DATE, True),
    ("lb2-idx-date-str", OptimizationLevel.IDX_DATE_STR, True),
)


def run_level(ctx, query: int, level: OptimizationLevel, rewrite: bool):
    compiled = ctx.compiled(query, level=level, rewrite=rewrite)
    return compiled.run(ctx.db(level))


@pytest.mark.parametrize("query", QUERIES)
@pytest.mark.parametrize("label,level,rewrite", LEVELS, ids=[l for l, _, _ in LEVELS])
def test_fig9_index_levels(benchmark, ctx, query, label, level, rewrite):
    benchmark.group = f"fig9-Q{query}"
    benchmark.name = label
    run_level(ctx, query, level, rewrite)  # compile + warm
    benchmark.pedantic(
        run_level, args=(ctx, query, level, rewrite), rounds=2, iterations=1
    )


def collect(ctx):
    results = {}
    for label, level, rewrite in LEVELS:
        ctx.db(level)  # force load
        times = []
        for query in QUERIES:
            run_level(ctx, query, level, rewrite)
            seconds = time_callable(
                lambda q=query, lv=level, rw=rewrite: run_level(ctx, q, lv, rw)
            )
            times.append(seconds * 1000.0)
        results[label] = times
    return results


def check_shape(results):
    base = results["lb2-compliant"]
    best = [
        min(results[label][i] for label, _, _ in LEVELS)
        for i in range(len(QUERIES))
    ]
    improved = sum(1 for b, o in zip(base, best) if o < b * 0.95)
    note = [f"queries improved >5% by some index level: {improved}/22"]
    for label, _, _ in LEVELS[1:]:
        ratio = sum(b / max(v, 1e-9) for b, v in zip(base, results[label])) / len(base)
        note.append(f"mean speedup of {label} over compliant: {ratio:.2f}x")
    return note


def main() -> None:
    ctx = make_context()
    results = collect(ctx)
    print_table(
        f"Figure 9 -- LB2 runtime (ms) with index optimizations, SF={ctx.scale}",
        [f"Q{q}" for q in QUERIES],
        [(label, results[label]) for label, _, _ in LEVELS],
        note="\n".join(check_shape(results)),
    )


if __name__ == "__main__":
    main()
