"""Figure 11 (E4): parallel scaling of Q4, Q6, Q13, Q14, Q22 on 1-16 workers.

The partials are the real generated partition code (Section 4.5); the
wall-clock overlap on k workers is *simulated* as the static-scheduling
makespan because this container has a single core (see DESIGN.md,
substitution table).  Paper shape: 4-11x speedup at 16 cores, scan-heavy
queries (Q6) closest to linear, merge-heavy ones (Q13) sublinear.

Run: ``pytest benchmarks/bench_fig11_parallel.py --benchmark-only`` or
``python benchmarks/bench_fig11_parallel.py``.
"""

from __future__ import annotations

import pytest

from repro.bench import make_context, print_table
from repro.compiler.parallel import ParallelQuery

QUERIES = (4, 6, 13, 14, 22)
WORKERS = (1, 2, 4, 8, 16)
PARTITIONS = 16  # fixed partition count; workers pick up blocks


_parallel_cache: dict[int, ParallelQuery] = {}


def parallel_query(ctx, query: int) -> ParallelQuery:
    if query not in _parallel_cache:
        db = ctx.db()
        _parallel_cache[query] = ParallelQuery(
            ctx.plan(query), db, db.catalog
        )
    return _parallel_cache[query]


@pytest.mark.parametrize("query", QUERIES)
def test_fig11_partials(benchmark, ctx, query):
    """Benchmark the full partitioned execution (all partials + merge + tail)."""
    benchmark.group = "fig11-partials"
    benchmark.name = f"Q{query}"
    pq = parallel_query(ctx, query)
    pq.run_simulated(PARTITIONS)  # warm
    benchmark.pedantic(pq.run_simulated, args=(PARTITIONS,), rounds=2, iterations=1)


@pytest.mark.parametrize("query", QUERIES)
def test_fig11_speedup_shape(ctx, query):
    """Simulated scaling must be monotone and meaningful at 16 workers."""
    pq = parallel_query(ctx, query)
    _, timing = pq.run_simulated(PARTITIONS)
    makespans = [timing.makespan(w) for w in WORKERS]
    assert all(a >= b for a, b in zip(makespans, makespans[1:]))
    assert makespans[0] / makespans[-1] > 2.0  # >2x at 16 workers


def collect(ctx):
    rows = []
    for query in QUERIES:
        pq = parallel_query(ctx, query)
        _, timing = pq.run_simulated(PARTITIONS)
        makespans = [timing.makespan(w) * 1000.0 for w in WORKERS]
        rows.append((f"Q{query} (ms)", makespans))
        rows.append(
            (f"Q{query} speedup", [makespans[0] / m for m in makespans])
        )
    return rows


def main() -> None:
    ctx = make_context()
    print_table(
        f"Figure 11 -- simulated parallel scaling (static makespan), SF={ctx.scale}",
        [f"{w} worker{'s' if w > 1 else ''}" for w in WORKERS],
        collect(ctx),
        note=(
            "partials are real generated partition code run sequentially;\n"
            "k-worker wall-clock = max over workers + merge + tail (1-core host)"
        ),
    )


if __name__ == "__main__":
    main()
