"""Figure 13 / Appendix A.1 (E5): code generation and compilation times.

The paper reports, per query and configuration (compliant vs optimized),
the time to generate source and the time the downstream compiler (GCC
there, CPython's ``compile()`` here) takes.  Shape: both are constant in
data size, grow with operator count (Q2/Q5/Q8/Q21 among the largest), and
generation dominates compilation for Python targets.

Run: ``pytest benchmarks/bench_fig13_codegen.py --benchmark-only`` or
``python benchmarks/bench_fig13_codegen.py``.
"""

from __future__ import annotations

import pytest

from repro.bench import make_context, print_table
from repro.compiler.driver import LB2Compiler
from repro.plan.rewrite import optimize_for_level
from repro.storage.database import OptimizationLevel
from repro.tpch import query_plan

QUERIES = tuple(range(1, 23))
CONFIGS = ("compliant", "optimized")


def compile_query(ctx, query: int, config: str):
    if config == "compliant":
        db = ctx.db()
        plan = query_plan(query, scale=ctx.scale)
    else:
        db = ctx.db(OptimizationLevel.IDX_DATE_STR)
        plan = optimize_for_level(
            query_plan(query, scale=ctx.scale), db, db.catalog
        )
    return LB2Compiler(db.catalog, db).compile(plan)


@pytest.mark.parametrize("query", QUERIES)
@pytest.mark.parametrize("config", CONFIGS)
def test_fig13_codegen(benchmark, ctx, config, query):
    benchmark.group = f"fig13-Q{query}"
    benchmark.name = config
    benchmark.pedantic(compile_query, args=(ctx, query, config), rounds=2, iterations=1)


def test_fig13_compile_time_independent_of_data_size(ctx):
    """Compilation must not touch the data: times stay flat across scales."""
    compiled = compile_query(ctx, 1, "compliant")
    assert compiled.generation_seconds < 1.0
    assert compiled.compile_seconds < 1.0


def collect(ctx):
    rows = []
    for config in CONFIGS:
        generation, compilation = [], []
        for query in QUERIES:
            compiled = compile_query(ctx, query, config)
            generation.append(compiled.generation_seconds * 1000.0)
            compilation.append(compiled.compile_seconds * 1000.0)
        rows.append((f"{config} gen", generation))
        rows.append((f"{config} compile", compilation))
    return rows


def main() -> None:
    ctx = make_context()
    print_table(
        "Figure 13 -- code generation + compilation time (ms) per query",
        [f"Q{q}" for q in QUERIES],
        collect(ctx),
        note="generation = staged-evaluator pass; compile = CPython compile()",
    )


if __name__ == "__main__":
    main()
