"""PR-4 backend comparison: scalar vs. batch-vectorized residual programs.

The two lowerings below the data-structure seam produce different residual
code for the same plan: row-at-a-time loops vs. whole-column kernel calls
(NumPy-backed when available).  This benchmark times *execution* of both
over the same TPC-H database -- compilation is excluded, as in Figure 13.

Run: ``pytest benchmarks/bench_backends.py --benchmark-only`` or
``python benchmarks/bench_backends.py`` (equivalently ``repro-bench``),
which also writes the ``BENCH_PR4.json`` report.
"""

from __future__ import annotations

import pytest

from repro.bench.backends import BACKENDS, main
from repro.compiler.driver import LB2Compiler
from repro.compiler.lb2 import Config

QUERIES = tuple(range(1, 23))


@pytest.mark.parametrize("query", QUERIES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_backends(benchmark, ctx, backend, query):
    db = ctx.db()
    compiled = ctx.compiled(query, config=Config(codegen=backend))
    benchmark.group = f"backends-Q{query}"
    benchmark.name = backend
    benchmark.pedantic(compiled.run, args=(db,), rounds=3, iterations=1)


def test_backends_agree(ctx):
    """The comparison is only meaningful if both backends answer alike."""
    db = ctx.db()
    for query in (1, 6):
        rows = {
            b: sorted(ctx.compiled(query, config=Config(codegen=b)).run(db))
            for b in BACKENDS
        }
        assert rows["scalar"] == rows["vector"]


if __name__ == "__main__":
    raise SystemExit(main())
