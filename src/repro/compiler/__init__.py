"""The LB2-style single-pass query compiler (the paper's contribution).

Sub-modules:

* :mod:`repro.compiler.runtime` -- helpers available to generated code as ``rt``.
* :mod:`repro.compiler.staged_record` -- generation-time ``Field``/``Value``/``Record``.
* :mod:`repro.compiler.staged_buffer` -- generation-time row/column buffers.
* :mod:`repro.compiler.staged_hashmap` -- specialized hash maps (native-dict
  and paper-faithful open addressing / bucket variants).
* :mod:`repro.compiler.staged_string` -- dictionary-compressed string values.
* :mod:`repro.compiler.staged_index` -- index access for index joins / date scans.
* :mod:`repro.compiler.lb2` -- the staged data-centric-with-callbacks evaluator.
* :mod:`repro.compiler.driver` -- plan -> source -> callable pipeline.
* :mod:`repro.compiler.template` -- the coarse template-expansion compiler
  (the contrast class of Section 4).
* :mod:`repro.compiler.parallel` -- partitioned parallel compilation (4.5).
"""

__all__ = ["CompiledQuery", "LB2Compiler"]


def __getattr__(name: str):
    # Lazy re-exports avoid importing the full compiler stack when only the
    # runtime module is needed (e.g. from generated code).
    if name in __all__:
        from repro.compiler import driver

        return getattr(driver, name)
    raise AttributeError(name)
