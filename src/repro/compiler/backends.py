"""Code-generation backends: the seam below the data-structure abstractions.

The paper's Section 4 argument is that pushing code generation *below* the
engine's data structures lets one operator pass be specialized many ways.
This module is that seam for the reproduction: operator code in
:mod:`repro.compiler.lb2` asks its builder's ``backend`` for scan sources,
hash maps, aggregate state, sort buffers, and child-edge datapaths -- and
never looks at ``Config.codegen`` itself.  The scalar backend lowers
everything to the row-at-a-time loops the compiler always emitted
(byte-identically, guarded by golden tests); the vector backend in
:mod:`repro.compiler.vec` swaps batch-columnar implementations in for the
shapes it supports and falls back to these scalar structures per operator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.compiler.staged_agg import GlobalAggState, StagedAgg
from repro.compiler.staged_hashmap import (
    NativeAggMap,
    NativeMultiMap,
    OpenAggMap,
    StagedSet,
)
from repro.compiler.staged_source import (
    ColumnSortBuffer,
    DateIndexSource,
    IndexSource,
    RowSortBuffer,
    TableSource,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.compiler.lb2 import StagedOp, StagedPlanBuilder


class ScalarBackend:
    """Row-at-a-time lowering: today's residual programs, byte for byte."""

    name = "scalar"

    def __init__(self, comp: "StagedPlanBuilder") -> None:
        self.comp = comp
        self.ctx = comp.ctx

    # -- whole-plan analysis --------------------------------------------------

    def prepare(self, root) -> None:
        """Inspect the plan before any operator stages code (no-op here)."""

    def stats(self) -> dict:
        """Codegen counters (which operators got which lowering)."""
        return {"backend": self.name}

    # -- operator edges -------------------------------------------------------

    def edge(self, child: "StagedOp", consumer_node) -> Callable:
        """The datapath a consumer pulls from ``child``.

        The scalar backend hands the child's datapath through untouched;
        the vector backend inserts a devectorizing adapter exactly where a
        batch-producing child feeds a row-at-a-time consumer.
        """
        return child.exec()

    # -- staged data-structure factories --------------------------------------

    def scan_source(self, node) -> TableSource:
        return TableSource(self.comp, node.table, node.rename_map)

    def date_scan_source(self, node) -> DateIndexSource:
        return DateIndexSource(self.comp, node)

    def index_source(
        self,
        table: str,
        table_key: str,
        unique: bool,
        rename: dict[str, str],
        comment: str,
        with_table: bool,
    ) -> IndexSource:
        return IndexSource(
            self.comp, table, table_key, unique, rename, comment, with_table
        )

    def multimap(self, label: str) -> NativeMultiMap:
        self.ctx.comment(label)
        return NativeMultiMap(self.ctx)

    def key_set(self, label: str) -> StagedSet:
        self.ctx.comment(label)
        return StagedSet(self.ctx)

    def agg_map(self, node, key_ctypes: Sequence[str], slot_ctypes: Sequence[str]):
        config = self.comp.config
        self.ctx.comment(
            f"aggregation hash map ({config.hashmap}); "
            f"keys: {[n for n, _ in node.keys]}"
        )
        if config.hashmap == "open":
            return OpenAggMap(
                self.ctx, key_ctypes, slot_ctypes, config.open_map_size
            )
        return NativeAggMap(self.ctx, key_ctypes, slot_ctypes)

    def global_agg_state(self, node, staged_aggs: Sequence[StagedAgg]):
        return GlobalAggState(self.ctx, staged_aggs)

    def sort_buffer(self, node, field_names: list[str]):
        if self.comp.config.sort_layout == "column":
            return ColumnSortBuffer(self.ctx, field_names)
        return RowSortBuffer(self.ctx)


def make_backend(comp: "StagedPlanBuilder"):
    """The backend selected by ``Config.codegen``."""
    if comp.config.codegen == "vector":
        from repro.compiler.vec import VectorBackend

        return VectorBackend(comp)
    return ScalarBackend(comp)
