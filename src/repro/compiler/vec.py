"""The batch-vectorized code-generation backend (the second lowering).

Operator code in :mod:`repro.compiler.lb2` is written once against the
backend seam; this module re-lowers the supported shapes -- scans, filters,
projections and aggregations -- to *batched columnar* residual programs.
Instead of one row loop per pipeline, the generated code stages whole
columns (``db.column_vec``), evaluates predicates and expressions with
``rt.v_*`` batch kernels (NumPy when available, pure-Python lists
otherwise), and only falls back to row-at-a-time code at the seams:

* an operator whose shape the vector lowering does not support (joins,
  sorts, compressed-string scans, ...) receives plain scalar rows through a
  devectorizing adapter inserted on the operator edge, and
* everything it allocates comes from the scalar backend unchanged.

Eligibility is decided in one whole-plan pass (:meth:`VectorBackend.prepare`)
before any operator stages code, so each operator's lowering is fixed up
front -- the operator pass itself never branches on the backend.
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional, Sequence

from repro.catalog.types import ColumnType
from repro.plan import physical as phys
from repro.plan.expressions import (
    And,
    Arith,
    Cmp,
    Col,
    Const,
    Expr,
    ExtractYear,
    InList,
    Not,
    Or,
    Param,
)
from repro.staging import ir
from repro.staging.builder import StagingContext
from repro.staging.rep import Rep, RepInt, rep_for_ctype, vec_ctype
from repro.compiler.backends import ScalarBackend
from repro.compiler.runtime import have_numpy
from repro.compiler.staged_agg import StagedAgg, all_slot_ctypes
from repro.compiler.staged_hashmap import Slots
from repro.compiler.staged_record import FieldDesc, StagedRecord, StagedValue
from repro.compiler.staged_source import column_loader


def _is_vec(value: object) -> bool:
    return getattr(value, "is_vector", False)


# ---------------------------------------------------------------------------
# Batch records
# ---------------------------------------------------------------------------


class VecRecord:
    """A generation-time *batch* of records: name -> staged column.

    Implements the same seam as :class:`StagedRecord` -- ``guard`` /
    ``derive`` / ``rows`` plus lazy memoized field access -- but each field
    is a whole column (``RepVec``) rather than one value, so the same
    operator code lowers to mask kernels and column derivations.  Scalar
    staged values may appear as fields too (lifted constants); they
    broadcast, and selection leaves them untouched.
    """

    #: Record callbacks receiving one of these see a whole batch; the
    #: instrument lowering advances its row counter by ``nrows()`` instead
    #: of one.
    is_batch = True

    def __init__(
        self,
        ctx: StagingContext,
        descs: list[FieldDesc],
        loaders: dict[str, Callable[[], StagedValue]],
        nrows_loader: Callable[[], RepInt],
    ) -> None:
        self.ctx = ctx
        self.descs = descs
        self._by_name = {d.name: d for d in descs}
        self._loaders = loaders
        self._cache: dict[str, StagedValue] = {}
        self._nrows_loader = nrows_loader
        self._nrows: Optional[RepInt] = None

    @property
    def field_names(self) -> list[str]:
        return [d.name for d in self.descs]

    def desc(self, name: str) -> FieldDesc:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"batch record has no field {name!r}; fields: {self.field_names}"
            ) from None

    def __getitem__(self, name: str) -> StagedValue:
        if name not in self._cache:
            self.desc(name)
            self._cache[name] = self._loaders[name]()
        return self._cache[name]

    def nrows(self) -> RepInt:
        """The (staged) number of rows in this batch, bound once."""
        if self._nrows is None:
            self._nrows = self._nrows_loader()
        return self._nrows

    # -- the backend seam --------------------------------------------------------

    def guard(self, cond, cb: Callable[["VecRecord"], None]) -> None:
        """Forward the rows where ``cond`` holds: one mask, lazy gathers."""
        if not _is_vec(cond):
            # A predicate that folded to a scalar (e.g. a constant): the
            # whole batch passes or fails together.
            with self.ctx.if_(cond):
                cb(self)
            return
        ctx = self.ctx
        sel = ctx.call("v_mask_index", [cond], result="void*", prefix="sel")
        loaders = {
            d.name: self._filtered_loader(d.name, sel) for d in self.descs
        }

        def nrows_loader() -> RepInt:
            return ctx.call("v_len", [sel], result="long", prefix="v")

        cb(VecRecord(ctx, list(self.descs), loaders, nrows_loader))

    def _filtered_loader(
        self, name: str, sel: Rep
    ) -> Callable[[], StagedValue]:
        def load() -> StagedValue:
            value = self[name]
            if not _is_vec(value):
                return value  # broadcast scalars are selection-invariant
            return value._vcall("v_take", [value, sel], type(value))

        return load

    def derive(
        self,
        descs: list[FieldDesc],
        values: dict[str, StagedValue],
    ) -> "VecRecord":
        """A new batch over already-staged columns (projection output)."""
        rec = VecRecord(self.ctx, descs, {}, self.nrows)
        rec._cache = dict(values)
        return rec

    def rows(self, cb: Callable[[StagedRecord], None]) -> None:
        """Devectorize: one list view per column, then a residual row loop.

        Views are bound lazily but *before* the loop: the first time the
        loop body touches a field, its gather/``v_tolist`` chain is staged
        into a detached block and spliced ahead of the ``for`` -- so only
        the fields the consumer actually reads pay the whole-column
        conversion, and none of it re-runs per row.
        """
        ctx = self.ctx
        n = self.nrows()
        parent = ctx.current_block
        mark = len(parent)
        views: dict[str, Optional[Rep]] = {}

        def bind_view(desc: FieldDesc) -> None:
            nonlocal mark
            prelude: list = []
            with ctx.emit_into(prelude):
                value = self[desc.name]
                if _is_vec(value):
                    views[desc.name] = ctx.call(
                        "v_tolist", [value], result="void*", prefix="rows"
                    )
                else:
                    views[desc.name] = None  # broadcast scalar
            parent[mark:mark] = prelude
            mark += len(prelude)

        with ctx.for_range(0, n, prefix="i") as i:
            loaders: dict[str, Callable[[], StagedValue]] = {}
            for desc in self.descs:
                def load(desc: FieldDesc = desc) -> StagedValue:
                    if desc.name not in views:
                        bind_view(desc)
                    view = views[desc.name]
                    if view is None:
                        return self._cache[desc.name]
                    return column_loader(ctx, view, i, desc)()

                loaders[desc.name] = load
            cb(StagedRecord(ctx, list(self.descs), loaders))


# ---------------------------------------------------------------------------
# Batch scan source
# ---------------------------------------------------------------------------


class VecScanSource:
    """A bound base table delivered as one batch of typed column arrays."""

    def __init__(self, comp, table: str, rename: dict[str, str]) -> None:
        self.comp = comp
        self.ctx = comp.ctx
        ctx = self.ctx
        ctx.comment(f"columnar batch scan of table {table!r}")
        self.size = ctx.call("db_size", [table], result="long", prefix="n")
        schema = comp.catalog.table(table)
        self.descs: list[FieldDesc] = []
        self._col_syms: dict[str, Rep] = {}
        for column in schema.columns:
            name = rename.get(column.name, column.name)
            self._col_syms[name] = ctx.call(
                "db_column_vec",
                [table, column.name],
                result=vec_ctype(column.type.ctype),
                prefix="col",
            )
            self.descs.append(FieldDesc(name, column.type))

    def scan(
        self,
        cb: Callable[[VecRecord], None],
        bounds: Optional[tuple[Rep, Rep]] = None,
    ) -> None:
        from repro.compiler.lb2 import CompileError

        if bounds is not None:
            raise CompileError(
                "the vector backend cannot partition a batch scan; "
                "parallel execution uses scalar codegen"
            )
        loaders = {
            d.name: (lambda v: lambda: v)(self._col_syms[d.name])
            for d in self.descs
        }
        cb(VecRecord(self.ctx, list(self.descs), loaders, lambda: self.size))


# ---------------------------------------------------------------------------
# Vectorized aggregation state
# ---------------------------------------------------------------------------


class _IndexedSlots(Slots):
    """Aggregate slots read out of per-group result arrays (one group row)."""

    def __init__(
        self,
        ctx: StagingContext,
        arrays: Sequence[Rep],
        ctypes: Sequence[str],
        gi: RepInt,
    ) -> None:
        self.ctx = ctx
        self.arrays = list(arrays)
        self.ctypes = list(ctypes)
        self.gi = gi

    def get(self, i: int) -> Rep:
        sym = self.ctx.bind(
            ir.Index(self.arrays[i].expr, self.gi.expr), ctype=self.ctypes[i]
        )
        return rep_for_ctype(self.ctypes[i])(sym, self.ctx)

    def set(self, i: int, value) -> None:  # pragma: no cover - defensive
        raise NotImplementedError("vectorized group slots are read-only")


class VecAggMap:
    """Grouped aggregation over one batch: factorize keys, reduce by kernel.

    Implements the accumulate/foreach protocol of the staged hash maps, but
    ``accumulate`` is called once with a whole batch: it stages one
    ``v_group`` factorization of the key columns plus one ``v_group_*``
    reduction per aggregate slot.  ``foreach`` then loops over the group
    index, which is exactly the scalar emit loop downstream code expects.
    """

    def __init__(
        self,
        ctx: StagingContext,
        node: phys.Agg,
        key_ctypes: Sequence[str],
        slot_ctypes: Sequence[str],
    ) -> None:
        self.ctx = ctx
        self.node = node
        self.key_ctypes = list(key_ctypes)
        self.slot_ctypes = list(slot_ctypes)
        ctx.comment(
            f"vectorized grouped aggregation; keys: {[n for n, _ in node.keys]}"
        )
        self._ngroups: Optional[RepInt] = None
        self._keylists: list[Rep] = []
        self._slot_arrays: list[Rep] = []

    def accumulate(self, rec: VecRecord, stage_keys, staged_aggs) -> None:
        ctx = self.ctx
        keys = stage_keys(rec)
        n = rec.nrows()
        grouped = ctx.call(
            "v_group", [n] + list(keys), result="void*", prefix="grp"
        )
        codes = rep_for_ctype("vec_long")(
            ctx.bind(ir.Index(grouped.expr, ir.Const(0)), ctype="vec_long", prefix="v"),
            ctx,
        )
        self._ngroups = RepInt(
            ctx.bind(ir.Index(grouped.expr, ir.Const(1)), ctype="long", prefix="v"),
            ctx,
        )
        self._keylists = [
            Rep(
                ctx.bind(
                    ir.Index(grouped.expr, ir.Const(2 + j)),
                    ctype="void*",
                    prefix="v",
                ),
                ctx,
                ctype="void*",
            )
            for j in range(len(keys))
        ]
        ng = self._ngroups
        for agg in staged_aggs:
            value = agg.row_value(rec)
            self._slot_arrays.extend(
                _grouped_slot_arrays(ctx, agg, codes, ng, value)
            )

    def foreach(self, on_group) -> None:
        ctx = self.ctx
        assert self._ngroups is not None, "foreach before accumulate"
        with ctx.for_range(0, self._ngroups, prefix="g") as gi:
            keys = [
                rep_for_ctype(kt)(
                    ctx.bind(ir.Index(kl.expr, gi.expr), ctype=kt), ctx
                )
                for kl, kt in zip(self._keylists, self.key_ctypes)
            ]
            slots = _IndexedSlots(ctx, self._slot_arrays, self.slot_ctypes, gi)
            on_group(keys, slots)


def _grouped_slot_arrays(
    ctx: StagingContext,
    agg: StagedAgg,
    codes: Rep,
    ngroups: RepInt,
    value: Optional[StagedValue],
) -> list[Rep]:
    """The per-group result array(s) backing one aggregate's slots."""
    kind = agg.spec.kind

    def reduce(fn: str, *args) -> Rep:
        return ctx.call(fn, [codes, ngroups, *args], result="void*", prefix="v")

    if kind == "count":
        if agg.spec.expr is None:
            return [reduce("v_group_count")]
        return [reduce("v_group_count_nn", value)]
    if kind == "sum":
        return [reduce("v_group_sum", value)]
    if kind == "avg":
        # Matches the scalar layout: a float total plus an all-rows counter.
        return [reduce("v_group_fsum", value), reduce("v_group_count")]
    if kind == "min":
        return [reduce("v_group_min", value)]
    if kind == "max":
        return [reduce("v_group_max", value)]
    raise AssertionError(f"aggregate kind {kind!r} passed vector eligibility")


class _ValueSlots(Slots):
    """Aggregate slots that are already-computed staged values (global agg)."""

    def __init__(self, values: Sequence[Rep]) -> None:
        self.values = list(values)

    def get(self, i: int) -> Rep:
        return self.values[i]

    def set(self, i: int, value) -> None:  # pragma: no cover - defensive
        raise NotImplementedError("vectorized global slots are read-only")


class GlobalAggVec:
    """Global (ungrouped) aggregation over one batch.

    Same ``accumulate`` / ``empty_cond`` / ``result`` protocol as
    :class:`repro.compiler.staged_agg.GlobalAggState`, lowered to one
    whole-column reduction kernel per slot instead of a row loop.
    """

    def __init__(self, ctx: StagingContext, staged_aggs) -> None:
        self.ctx = ctx
        ctx.comment("vectorized global aggregation")
        self._nrows: Optional[RepInt] = None
        self.slots: Optional[_ValueSlots] = None

    def accumulate(self, rec: VecRecord, staged_aggs) -> None:
        ctx = self.ctx
        n = rec.nrows()
        self._nrows = n
        values: list[Rep] = []
        for agg in staged_aggs:
            value = agg.row_value(rec)
            kind = agg.spec.kind
            if kind == "count":
                if agg.spec.expr is None:
                    values.append(n)
                else:
                    values.append(
                        ctx.call("v_count_nn", [value, n], result="long", prefix="v")
                    )
            elif kind == "sum":
                values.append(
                    ctx.call(
                        "v_sum", [value, n], result=agg.value_type.ctype, prefix="v"
                    )
                )
            elif kind == "avg":
                # Float total + all-rows counter, mirroring the scalar slots.
                values.append(
                    ctx.call("v_fsum", [value, n], result="double", prefix="v")
                )
                values.append(n)
            elif kind == "min":
                values.append(
                    ctx.call(
                        "v_min", [value, n], result=agg.value_type.ctype, prefix="v"
                    )
                )
            elif kind == "max":
                values.append(
                    ctx.call(
                        "v_max", [value, n], result=agg.value_type.ctype, prefix="v"
                    )
                )
            else:  # pragma: no cover - guarded by eligibility
                raise AssertionError(f"aggregate kind {kind!r} in vector path")
        self.slots = _ValueSlots(values)

    def empty_cond(self) -> Rep:
        assert self._nrows is not None, "empty_cond before accumulate"
        return self._nrows == 0

    def result(self, agg: StagedAgg, empty) -> Rep:
        """One aggregate's SQL value: its empty value, or the reductions."""
        ctx = self.ctx
        result = ctx.var(agg.empty_value(ctx), prefix="agg")
        with ctx.if_(~empty):
            result.set(agg.finalize(ctx, self.slots))
        return result.get()


# ---------------------------------------------------------------------------
# Eligibility analysis
# ---------------------------------------------------------------------------

_VEC_AGG_KINDS = frozenset({"count", "sum", "avg", "min", "max"})
_CONST_TYPES = (bool, int, float, str)


def _expr_supported(expr: Expr) -> bool:
    """Can ``expr`` stage against batch columns?

    Exactly the expression forms whose staged operators lower to ``v_*``
    kernels.  ``Like`` / ``Case`` / ``Substring`` stage through string
    methods or staged branches, so they (and anything containing them)
    run scalar.
    """
    if isinstance(expr, Col):
        return True
    if isinstance(expr, Const):
        return isinstance(expr.value, _CONST_TYPES)
    if isinstance(expr, Param):
        # A parameter stages to one scalar symbol (bound from the runtime
        # vector at function entry) and broadcasts through the kernels
        # exactly like a lifted constant; bindings are already restricted
        # to the const-able scalar types.
        return True
    if isinstance(expr, (Arith, Cmp)):
        return _expr_supported(expr.lhs) and _expr_supported(expr.rhs)
    if isinstance(expr, (And, Or)):
        return all(_expr_supported(t) for t in expr.terms)
    if isinstance(expr, (Not, ExtractYear)):
        return _expr_supported(expr.term)
    if isinstance(expr, InList):
        return _expr_supported(expr.term) and all(
            isinstance(v, _CONST_TYPES) for v in expr.values
        )
    return False


def _plan_children(node: phys.PhysicalPlan) -> list[phys.PhysicalPlan]:
    out = []
    for attr in ("child", "left", "right"):
        sub = getattr(node, attr, None)
        if isinstance(sub, phys.PhysicalPlan):
            out.append(sub)
    return out


class VectorBackend(ScalarBackend):
    """Batch-vectorized lowering with per-operator scalar fallback."""

    name = "vector"

    def __init__(self, comp) -> None:
        super().__init__(comp)
        self._batch: set[int] = set()  # id(node) -> emits VecRecords
        self._vec_aggs: set[int] = set()  # id(node) -> vectorized Agg
        self._counts = {
            "batch_scans": 0,
            "batch_selects": 0,
            "batch_projects": 0,
            "vector_aggs": 0,
            "scalar_nodes": 0,
            "devectorized_edges": 0,
        }
        self._forced_scalar: Optional[str] = None
        self._pruned_chains: list[dict] = []
        if not have_numpy():
            warnings.warn(
                "NumPy is not installed: the vector backend will run its "
                "batch kernels as pure-Python list loops. Install the "
                "'fast' extra (pip install repro[fast]) for the fast path.",
                RuntimeWarning,
                stacklevel=2,
            )

    # -- whole-plan analysis --------------------------------------------------

    def prepare(self, root: phys.PhysicalPlan) -> None:
        """Decide, per node, which lowering it gets -- before any staging."""
        config = self.comp.config
        if config.budget_checks:
            # Budget ticks are defined per *row* (a per-batch checkpoint
            # could blow the budget by a whole batch before noticing); they
            # force the scalar lowering for the whole plan.  Instrument
            # counters used to as well, but batch records now advance the
            # counters by their row count, so instrumentation vectorizes.
            self._forced_scalar = "budget_checks"
            self._count_scalar(root)
            return
        self._analyze(root, consumer=None)
        self._prune(root, kept_above=False)

    def _count_scalar(self, node: phys.PhysicalPlan) -> None:
        self._counts["scalar_nodes"] += 1
        for sub in _plan_children(node):
            self._count_scalar(sub)

    def _analyze(
        self,
        node: phys.PhysicalPlan,
        consumer: Optional[phys.PhysicalPlan],
    ) -> None:
        for sub in _plan_children(node):
            self._analyze(sub, consumer=node)
        if isinstance(node, phys.Scan) and self._scan_ok(node):
            self._batch.add(id(node))
            self._counts["batch_scans"] += 1
            return
        elif isinstance(node, phys.Select):
            if id(node.child) in self._batch and _expr_supported(node.pred):
                self._batch.add(id(node))
                self._counts["batch_selects"] += 1
                return
        elif isinstance(node, phys.Project):
            if (
                id(node.child) in self._batch
                and not phys.needs_null_guard(node)
                and all(_expr_supported(e) for _, e in node.outputs)
            ):
                self._batch.add(id(node))
                self._counts["batch_projects"] += 1
                return
        elif isinstance(node, phys.Agg):
            if id(node.child) in self._batch and self._agg_ok(node):
                self._vec_aggs.add(id(node))
                self._counts["vector_aggs"] += 1
                return
        self._counts["scalar_nodes"] += 1

    def _scan_ok(self, node: phys.Scan) -> bool:
        # Dictionary-compressed columns stage DicValues, which specialize
        # per-row against the present-stage dictionary; those scans (and
        # everything above them) keep the scalar lowering.
        return not any(f.compressed for f in self.comp.static_fields(node))

    # -- benefit pruning ------------------------------------------------------
    #
    # Candidacy is about *correctness* (every expression has a kernel);
    # whether batching pays is a separate question.  A batch chain that
    # neither filters (a mask shrinks the devectorized residual loop) nor
    # feeds a vector aggregation stages whole columns only to convert them
    # straight back -- pure overhead (a Scan -> Project pair under a join,
    # say), so such chains are stripped back to the scalar lowering.

    _STRIP_COUNTERS = {
        phys.Scan: "batch_scans",
        phys.Select: "batch_selects",
        phys.Project: "batch_projects",
    }

    def _prune(self, node: phys.PhysicalPlan, kept_above: bool) -> None:
        nid = id(node)
        if nid in self._batch and not kept_above:
            # the top of a maximal batch chain: does it earn its keep?
            if not self._chain_has_select(node):
                stripped = self._strip(node)
                self._pruned_chains.append({
                    "root": type(node).__name__,
                    "reason": "no-select-in-chain",
                    "nodes": stripped,
                })
        keeps = nid in self._batch or nid in self._vec_aggs
        for sub in _plan_children(node):
            self._prune(sub, kept_above=keeps)

    def _chain_has_select(self, node: phys.PhysicalPlan) -> bool:
        if id(node) not in self._batch:
            return False
        if isinstance(node, phys.Select):
            return True
        return any(self._chain_has_select(sub) for sub in _plan_children(node))

    def _strip(self, node: phys.PhysicalPlan) -> int:
        """Demote a batch chain to scalar; returns how many nodes it held."""
        nid = id(node)
        if nid not in self._batch:
            return 0
        self._batch.discard(nid)
        self._counts[self._STRIP_COUNTERS[type(node)]] -= 1
        self._counts["scalar_nodes"] += 1
        return 1 + sum(self._strip(sub) for sub in _plan_children(node))

    def _agg_ok(self, node: phys.Agg) -> bool:
        for _, expr in node.keys:
            if not _expr_supported(expr):
                return False
        for _, spec in node.aggs:
            if spec.kind not in _VEC_AGG_KINDS:
                return False
            if spec.expr is not None and not _expr_supported(spec.expr):
                return False
        return True

    def stats(self) -> dict:
        out = {
            "backend": self.name,
            "numpy": have_numpy(),
            **self._counts,
        }
        if self._forced_scalar is not None:
            out["forced_scalar"] = self._forced_scalar
        if self._pruned_chains:
            out["pruned_chains"] = [dict(c) for c in self._pruned_chains]
        return out

    # -- operator edges -------------------------------------------------------

    def edge(self, child, consumer_node) -> Callable:
        dp = child.exec()
        node = getattr(child, "node", None)
        if node is None or id(node) not in self._batch:
            return dp
        if self._consumes_batch(consumer_node):
            return dp
        self._counts["devectorized_edges"] += 1

        def devectorized(cb) -> None:
            dp(lambda rec: rec.rows(cb))

        return devectorized

    def _consumes_batch(self, consumer_node) -> bool:
        return id(consumer_node) in self._batch or id(consumer_node) in self._vec_aggs

    # -- staged data-structure factories --------------------------------------

    def scan_source(self, node):
        if id(node) in self._batch:
            return VecScanSource(self.comp, node.table, node.rename_map)
        return super().scan_source(node)

    def agg_map(self, node, key_ctypes, slot_ctypes):
        if id(node) in self._vec_aggs:
            return VecAggMap(self.ctx, node, key_ctypes, slot_ctypes)
        return super().agg_map(node, key_ctypes, slot_ctypes)

    def global_agg_state(self, node, staged_aggs):
        if id(node) in self._vec_aggs:
            return GlobalAggVec(self.ctx, staged_aggs)
        return super().global_agg_state(node, staged_aggs)
