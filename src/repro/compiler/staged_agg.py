"""Staged aggregate accumulators.

Mirrors :mod:`repro.engine.aggregates` for the compiled path: each
:class:`repro.plan.expressions.AggSpec` maps to one or two hash-map slots
plus generation-time ``init`` / ``update`` / ``finalize`` emitters.  Group
state is created from the first row of the group (the LB2 ``up(init)``
pattern), so no sentinel values appear on the hot path; the SQL empty-input
semantics (count = 0, everything else None) only arise for global
aggregates and are handled by :func:`empty_values`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.catalog.types import ColumnType
from repro.plan.expressions import AggSpec
from repro.staging import ir
from repro.staging.builder import StagingContext
from repro.staging.rep import Rep, RepFloat, RepInt, rep_for_ctype
from repro.compiler.staged_hashmap import Slots
from repro.compiler.staged_record import (
    StagedRecord,
    StagedValue,
    value_output,
    value_payload,
)


class StagedAgg:
    """One aggregate spec bound to its slot range."""

    def __init__(self, spec: AggSpec, value_type: ColumnType, base: int) -> None:
        self.spec = spec
        self.value_type = value_type
        self.base = base  # index of this aggregate's first slot

    # -- static layout ---------------------------------------------------------

    def slot_ctypes(self) -> list[str]:
        kind = self.spec.kind
        if kind == "avg":
            return ["double", "long"]
        if kind == "count":
            return ["long"]
        if kind == "count_distinct":
            return ["void*"]
        return [self.value_type.ctype]

    # -- per-row value ------------------------------------------------------------

    def row_value(self, rec: StagedRecord) -> StagedValue | None:
        """Evaluate the aggregated expression once per row (None for count(*))."""
        if self.spec.expr is None:
            return None
        staged = self.spec.expr.stage(rec)
        if self.spec.kind == "count_distinct":
            return value_payload(staged)
        return value_output(staged)

    # -- emitters -------------------------------------------------------------------

    def init_values(self, ctx: StagingContext, value: StagedValue | None) -> list[Rep]:
        kind = self.spec.kind
        if kind == "count":
            if self.spec.expr is None:
                return [ctx.int_(1)]
            # count(expr): 1 when the (possibly null) value is present.
            present = ctx.call("not_none", [value], result="bool")
            counter = ctx.var(ctx.int_(0), prefix="c")
            with ctx.if_(present):
                counter.set(1)
            return [counter.get()]
        if kind == "avg":
            return [_as_float(ctx, value), ctx.int_(1)]
        if kind == "count_distinct":
            return [ctx.call("set_new1", [value], result="void*")]
        return [value]  # sum / min / max start from the first row's value

    def update(self, ctx: StagingContext, slots: Slots, value: StagedValue | None) -> None:
        kind = self.spec.kind
        base = self.base
        if kind == "count":
            if self.spec.expr is None:
                slots.set(base, slots.get(base) + 1)
            else:
                present = ctx.call("not_none", [value], result="bool")
                with ctx.if_(present):
                    slots.set(base, slots.get(base) + 1)
        elif kind == "sum":
            slots.set(base, slots.get(base) + value)
        elif kind == "avg":
            slots.set(base, slots.get(base) + _as_float(ctx, value))
            slots.set(base + 1, slots.get(base + 1) + 1)
        elif kind == "min":
            current = slots.get(base)
            with ctx.if_(value < current):
                slots.set(base, value)
        elif kind == "max":
            current = slots.get(base)
            with ctx.if_(value > current):
                slots.set(base, value)
        elif kind == "count_distinct":
            ctx.call_stmt("set_add", [slots.get(base), value])

    def finalize(self, ctx: StagingContext, slots: Slots) -> Rep:
        kind = self.spec.kind
        if kind == "avg":
            total = slots.get(self.base)
            count = slots.get(self.base + 1)
            return total / count
        if kind == "count_distinct":
            return ctx.call("set_len", [slots.get(self.base)], result="long")
        return slots.get(self.base)

    def empty_value(self, ctx: StagingContext) -> Rep:
        """The SQL value of this aggregate over zero rows."""
        if self.spec.kind in ("count", "count_distinct"):
            return ctx.int_(0)
        return Rep(ir.Const(None), ctx, ctype="void*")


def build_staged_aggs(
    aggs: Sequence[tuple[str, AggSpec]],
    types: dict[str, ColumnType],
) -> list[StagedAgg]:
    """Lay out aggregate slots contiguously, returning bound emitters."""
    out: list[StagedAgg] = []
    base = 0
    for _, spec in aggs:
        if spec.expr is not None and spec.kind not in ("count", "count_distinct"):
            value_type = spec.expr.result_type(types)
        else:
            value_type = ColumnType.INT
        agg = StagedAgg(spec, value_type, base)
        out.append(agg)
        base += len(agg.slot_ctypes())
    return out


def all_slot_ctypes(staged: Sequence[StagedAgg]) -> list[str]:
    ctypes: list[str] = []
    for agg in staged:
        ctypes.extend(agg.slot_ctypes())
    return ctypes


def _as_float(ctx: StagingContext, value) -> Rep:
    if isinstance(value, RepInt):
        return ctx.call("to_float", [value], result="double")
    if isinstance(value, RepFloat):
        return value
    return value  # dynamic numeric; Python addition handles it


UpdateEmitter = Callable[[Slots], None]


class _VarSlots(Slots):
    """Aggregate slots held in mutable staged locals (global aggregates)."""

    def __init__(self, ctx: StagingContext, ctypes: Sequence[str]) -> None:
        self.ctx = ctx
        none = Rep(ir.Const(None), ctx, ctype="void*")
        self.vars = [ctx.var(none, prefix="gagg") for _ in ctypes]
        self.ctypes = list(ctypes)

    def get(self, i: int) -> Rep:
        return rep_for_ctype(self.ctypes[i])(ir.Sym(self.vars[i].name), self.ctx)

    def set(self, i: int, value: Rep) -> None:
        self.vars[i].set(value)


class GlobalAggState:
    """Global (ungrouped) aggregation state: a row counter plus var slots.

    This is the scalar lowering of the global-aggregate data structure;
    :class:`repro.compiler.vec.GlobalAggVec` implements the same protocol
    (``accumulate`` / ``empty_cond`` / ``result``) with batch kernels.
    """

    def __init__(
        self,
        ctx: StagingContext,
        staged_aggs: Sequence[StagedAgg],
        comment: bool = True,
    ) -> None:
        self.ctx = ctx
        if comment:
            ctx.comment("global aggregate state")
        self.seen = ctx.var(ctx.int_(0), prefix="rows")
        self.slots = _VarSlots(ctx, all_slot_ctypes(staged_aggs))

    def accumulate(self, rec, staged_aggs: Sequence[StagedAgg]) -> None:
        ctx = self.ctx
        values = [agg.row_value(rec) for agg in staged_aggs]
        first = self.seen.get() == 0
        with ctx.if_(first):
            for agg, value in zip(staged_aggs, values):
                for offset, init in enumerate(agg.init_values(ctx, value)):
                    self.slots.set(agg.base + offset, init)
        with ctx.else_():
            for agg, value in zip(staged_aggs, values):
                agg.update(ctx, self.slots, value)
        self.seen.set(self.seen.get() + 1)

    def empty_cond(self) -> Rep:
        """Was the input empty?  Bound once, shared by every finalizer."""
        return self.seen.get() == 0

    def result(self, agg: StagedAgg, empty) -> Rep:
        """One aggregate's SQL value: its empty value, or the finalized slots."""
        ctx = self.ctx
        result = ctx.var(agg.empty_value(ctx), prefix="agg")
        with ctx.if_(~empty):
            result.set(agg.finalize(ctx, self.slots))
        return result.get()

    def raw_items(self) -> list[ir.Expr]:
        """``[seen, slot...]`` expressions for the partial-mode return."""
        return [self.seen.get().expr] + [
            self.slots.get(i).expr for i in range(len(self.slots.ctypes))
        ]
