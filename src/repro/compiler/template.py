"""The pure template-expansion compiler (Section 4's first idea).

Each operator is specialized "as a string with placeholders for parameters".
This removes the interpreter's operator dispatch and expression-tree
walking, but -- exactly as the paper criticizes -- the generated code keeps
*generic and inefficient data structures*: records stay dicts, aggregation
state goes through the generic library helpers (our analogue of DBLAB
leaning on GLib), and no cross-operator representation changes (dictionary
codes, columnar state) are possible.

This engine is the measured contrast class for the LB2 single-pass
compiler in the Figure 8 experiment.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Optional

from repro.catalog.catalog import Catalog
from repro.engine import aggregates as agg_lib
from repro.plan import physical as phys
from repro.staging.pygen import PyProgram
from repro.storage.database import Database


class TemplateError(Exception):
    """Raised when a plan node has no template."""


class _Emitter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 1  # inside ``def query(db, out):``
        self._counter = itertools.count()
        self.env: dict[str, object] = {}

    def fresh(self, prefix: str) -> str:
        return f"{prefix}_{next(self._counter)}"

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def bind(self, prefix: str, value: object) -> str:
        """Expose a present-stage object to the generated module's globals."""
        name = self.fresh(f"_{prefix}")
        self.env[name] = value
        return name


def _keys_code(rec: str, keys) -> str:
    inner = ", ".join(f"{rec}[{k!r}]" for k in keys)
    if len(keys) == 1:
        inner += ","
    return f"({inner})"


def _emit(node: phys.PhysicalPlan, em: _Emitter, catalog: Catalog,
          rec: str, body) -> None:
    """Expand ``node``'s template; ``body(rec)`` expands the consumer."""
    if isinstance(node, phys.Scan):
        em.line(f"for {rec} in db.table({node.table!r}).rows():")
        em.depth += 1
        if node.rename:
            ren = em.bind("ren", node.rename_map)
            em.line(f"{rec} = {{{ren}.get(k, k): v for k, v in {rec}.items()}}")
        body(rec)
        em.depth -= 1

    elif isinstance(node, phys.DateIndexScan):
        tbl = em.fresh("tbl")
        rid = em.fresh("rid")
        em.line(f"{tbl} = db.table({node.table!r})")
        extra = 0
        em.line(
            f"for {rid} in db.date_index({node.table!r}, {node.column!r})"
            f".candidate_list({node.lo!r}, {node.hi!r}):"
        )
        em.depth += 1
        if node.enforce:
            # the generic-library call on the hot path, true to form
            check = em.bind("check", node.bound_check)
            em.line(f"if {check}({tbl}.column({node.column!r})[{rid}]):")
            em.depth += 1
            extra = 1
        em.line(f"{rec} = {tbl}.row({rid})")
        if node.rename:
            ren = em.bind("ren", node.rename_map)
            em.line(f"{rec} = {{{ren}.get(k, k): v for k, v in {rec}.items()}}")
        body(rec)
        em.depth -= 1 + extra

    elif isinstance(node, phys.Select):
        def on_child(child_rec: str) -> None:
            em.line(f"if {node.pred.template(child_rec)}:")
            em.depth += 1
            body(child_rec)
            em.depth -= 1

        _emit(node.child, em, catalog, rec, on_child)

    elif isinstance(node, phys.Project):
        null_guard = phys.needs_null_guard(node)

        def on_child(child_rec: str) -> None:
            out = em.fresh("prj")
            parts = []
            for name, expr in node.outputs:
                code = expr.template(child_rec)
                refs = sorted(expr.columns())
                if null_guard and refs:
                    guard = " or ".join(f"{child_rec}[{r!r}] is None" for r in refs)
                    code = f"(None if ({guard}) else {code})"
                parts.append(f"{name!r}: {code}")
            em.line(f"{out} = {{{', '.join(parts)}}}")
            body(out)

        _emit(node.child, em, catalog, em.fresh("rec"), on_child)

    elif isinstance(node, phys.HashJoin):
        table = em.fresh("jt")
        em.line(f"{table} = {{}}")

        def on_left(lrec: str) -> None:
            key = em.fresh("k")
            em.line(f"{key} = {_keys_code(lrec, node.left_keys)}")
            em.line(f"{table}.setdefault({key}, []).append({lrec})")

        _emit(node.left, em, catalog, em.fresh("rec"), on_left)

        def on_right(rrec: str) -> None:
            key = em.fresh("k")
            lrec = em.fresh("lrec")
            merged = em.fresh("jn")
            em.line(f"{key} = {_keys_code(rrec, node.right_keys)}")
            em.line(f"for {lrec} in {table}.get({key}, ()):")
            em.depth += 1
            em.line(f"{merged} = {{**{lrec}, **{rrec}}}")
            body(merged)
            em.depth -= 1

        _emit(node.right, em, catalog, em.fresh("rec"), on_right)

    elif isinstance(node, phys.LeftOuterJoin):
        table = em.fresh("jt")
        em.line(f"{table} = {{}}")

        def on_right(rrec: str) -> None:
            key = em.fresh("k")
            em.line(f"{key} = {_keys_code(rrec, node.right_keys)}")
            em.line(f"{table}.setdefault({key}, []).append({rrec})")

        _emit(node.right, em, catalog, em.fresh("rec"), on_right)
        nulls = em.bind(
            "nulls", {name: None for name in node.right.field_names(catalog)}
        )

        def on_left(lrec: str) -> None:
            key = em.fresh("k")
            matches = em.fresh("ms")
            rrec = em.fresh("rrec")
            merged = em.fresh("jn")
            em.line(f"{key} = {_keys_code(lrec, node.left_keys)}")
            em.line(f"{matches} = {table}.get({key})")
            em.line(f"if {matches}:")
            em.depth += 1
            em.line(f"for {rrec} in {matches}:")
            em.depth += 1
            em.line(f"{merged} = {{**{lrec}, **{rrec}}}")
            body(merged)
            em.depth -= 2
            em.line("else:")
            em.depth += 1
            em.line(f"{merged} = {{**{lrec}, **{nulls}}}")
            body(merged)
            em.depth -= 1

        _emit(node.left, em, catalog, em.fresh("rec"), on_left)

    elif isinstance(node, (phys.SemiJoin, phys.AntiJoin)):
        keys = em.fresh("ks")
        em.line(f"{keys} = set()")

        def on_right(rrec: str) -> None:
            em.line(f"{keys}.add({_keys_code(rrec, node.right_keys)})")

        _emit(node.right, em, catalog, em.fresh("rec"), on_right)
        negate = "not " if isinstance(node, phys.AntiJoin) else ""

        def on_left(lrec: str) -> None:
            em.line(f"if {negate}({_keys_code(lrec, node.left_keys)} in {keys}):")
            em.depth += 1
            body(lrec)
            em.depth -= 1

        _emit(node.left, em, catalog, em.fresh("rec"), on_left)

    elif isinstance(node, phys.IndexJoin):
        idx = em.fresh("idx")
        tbl = em.fresh("tbl")
        fn = "unique_index" if node.unique else "index"
        em.line(f"{idx} = db.{fn}({node.table!r}, {node.table_key!r})")
        em.line(f"{tbl} = db.table({node.table!r})")
        ren = em.bind("ren", node.rename_map) if node.rename else None

        def on_child(crec: str) -> None:
            merged = em.fresh("jn")
            fetched = em.fresh("frec")
            if node.unique:
                rid = em.fresh("rid")
                em.line(f"{rid} = {idx}.get({crec}[{node.child_key!r}], -1)")
                em.line(f"if {rid} >= 0:")
                em.depth += 1
                rids_block = [rid]
            else:
                rid = em.fresh("rid")
                em.line(f"for {rid} in {idx}.get({crec}[{node.child_key!r}], ()):")
                em.depth += 1
                rids_block = [rid]
            em.line(f"{fetched} = {tbl}.row({rids_block[0]})")
            if ren:
                em.line(f"{fetched} = {{{ren}.get(k, k): v for k, v in {fetched}.items()}}")
            em.line(f"{merged} = {{**{crec}, **{fetched}}}")
            if node.residual is not None:
                em.line(f"if {node.residual.template(merged)}:")
                em.depth += 1
                body(merged)
                em.depth -= 1
            else:
                body(merged)
            em.depth -= 1

        _emit(node.child, em, catalog, em.fresh("rec"), on_child)

    elif isinstance(node, phys.IndexSemiJoin):
        idx = em.fresh("idx")
        tbl = em.fresh("tbl")
        fn = "unique_index" if node.unique else "index"
        em.line(f"{idx} = db.{fn}({node.table!r}, {node.table_key!r})")
        em.line(f"{tbl} = db.table({node.table!r})")
        ren = em.bind("ren", node.rename_map) if node.rename else None

        def on_child(crec: str) -> None:
            hit = em.fresh("hit")
            if node.unique:
                rid = em.fresh("rid")
                em.line(f"{rid} = {idx}.get({crec}[{node.child_key!r}], -1)")
                em.line(f"{hit} = {rid} >= 0")
                rowids_expr = f"(({rid},) if {rid} >= 0 else ())"
            else:
                em.line(f"{hit} = bool({idx}.get({crec}[{node.child_key!r}], ()))")
                rowids_expr = f"{idx}.get({crec}[{node.child_key!r}], ())"
            if node.residual is not None:
                rid2 = em.fresh("rid")
                frec = em.fresh("frec")
                merged = em.fresh("mrec")
                em.line(f"{hit} = False")
                em.line(f"for {rid2} in {rowids_expr}:")
                em.depth += 1
                em.line(f"{frec} = {tbl}.row({rid2})")
                if ren:
                    em.line(f"{frec} = {{{ren}.get(k, k): v for k, v in {frec}.items()}}")
                em.line(f"{merged} = {{**{crec}, **{frec}}}")
                em.line(f"if {node.residual.template(merged)}:")
                em.depth += 1
                em.line(f"{hit} = True")
                em.line("break")
                em.depth -= 2
            keep = f"not {hit}" if node.anti else hit
            em.line(f"if {keep}:")
            em.depth += 1
            body(crec)
            em.depth -= 1

        _emit(node.child, em, catalog, em.fresh("rec"), on_child)

    elif isinstance(node, phys.Agg):
        groups = em.fresh("groups")
        specs = em.bind("specs", node.aggs)
        init = em.bind("init", agg_lib.init_state)
        update = em.bind("update", agg_lib.update_state)
        finalize = em.bind("finalize", agg_lib.finalize_state)
        em.line(f"{groups} = {{}}")

        def on_child(crec: str) -> None:
            key = em.fresh("k")
            state = em.fresh("st")
            key_exprs = ", ".join(e.template(crec) for _, e in node.keys)
            if len(node.keys) == 1:
                key_exprs += ","
            em.line(f"{key} = ({key_exprs})")
            em.line(f"{state} = {groups}.get({key})")
            em.line(f"if {state} is None:")
            em.depth += 1
            em.line(f"{state} = {init}({specs})")
            em.line(f"{groups}[{key}] = {state}")
            em.depth -= 1
            # The generic-library call on the hot path: the hallmark of
            # template expansion (cf. DBLAB + GLib in the paper).
            em.line(f"{update}({state}, {specs}, {crec})")

        _emit(node.child, em, catalog, em.fresh("rec"), on_child)
        if not node.keys:
            em.line(f"if not {groups}:")
            em.depth += 1
            em.line(f"{groups}[()] = {init}({specs})")
            em.depth -= 1
        key = em.fresh("k")
        state = em.fresh("st")
        out = em.fresh("grec")
        em.line(f"for {key}, {state} in {groups}.items():")
        em.depth += 1
        key_fields = ", ".join(
            f"{name!r}: {key}[{i}]" for i, (name, _) in enumerate(node.keys)
        )
        em.line(f"{out} = {{{key_fields}}}")
        vals = em.fresh("vals")
        em.line(f"{vals} = {finalize}({state}, {specs})")
        for i, (name, _) in enumerate(node.aggs):
            em.line(f"{out}[{name!r}] = {vals}[{i}]")
        body(out)
        em.depth -= 1

    elif isinstance(node, phys.GroupJoin):
        groups = em.fresh("gj")
        specs = em.bind("specs", node.aggs)
        init = em.bind("init", agg_lib.init_state)
        update = em.bind("update", agg_lib.update_state)
        finalize = em.bind("finalize", agg_lib.finalize_state)
        em.line(f"{groups} = {{}}")

        def on_right(rrec: str) -> None:
            key = em.fresh("k")
            state = em.fresh("st")
            em.line(f"{key} = {_keys_code(rrec, node.right_keys)}")
            em.line(f"{state} = {groups}.get({key})")
            em.line(f"if {state} is None:")
            em.depth += 1
            em.line(f"{state} = {init}({specs})")
            em.line(f"{groups}[{key}] = {state}")
            em.depth -= 1
            em.line(f"{update}({state}, {specs}, {rrec})")

        _emit(node.right, em, catalog, em.fresh("rec"), on_right)

        def on_left(lrec: str) -> None:
            key = em.fresh("k")
            state = em.fresh("st")
            vals = em.fresh("vals")
            merged = em.fresh("grec")
            em.line(f"{key} = {_keys_code(lrec, node.left_keys)}")
            em.line(f"{state} = {groups}.get({key})")
            em.line(f"if {state} is None:")
            em.depth += 1
            em.line(f"{state} = {init}({specs})")
            em.depth -= 1
            em.line(f"{vals} = {finalize}({state}, {specs})")
            em.line(f"{merged} = dict({lrec})")
            for i, (name, _) in enumerate(node.aggs):
                em.line(f"{merged}[{name!r}] = {vals}[{i}]")
            body(merged)

        _emit(node.left, em, catalog, em.fresh("rec"), on_left)

    elif isinstance(node, phys.Sort):
        rows = em.fresh("rows")
        em.line(f"{rows} = []")

        def on_child(crec: str) -> None:
            em.line(f"{rows}.append({crec})")

        _emit(node.child, em, catalog, em.fresh("rec"), on_child)
        sorter = em.bind("sort", _sort_dict_rows)
        em.line(f"{sorter}({rows}, {tuple(node.keys)!r})")
        if node.limit is not None:
            em.line(f"del {rows}[{node.limit}:]")
        loop_rec = em.fresh("rec")
        em.line(f"for {loop_rec} in {rows}:")
        em.depth += 1
        body(loop_rec)
        em.depth -= 1

    elif isinstance(node, phys.Limit):
        counter = em.fresh("seen")
        em.line(f"{counter} = 0")

        def on_child(crec: str) -> None:
            nonlocal counter
            em.line(f"if {counter} < {node.n}:")
            em.depth += 1
            em.line(f"{counter} += 1")
            body(crec)
            em.depth -= 1

        _emit(node.child, em, catalog, em.fresh("rec"), on_child)

    elif isinstance(node, phys.Distinct):
        seen = em.fresh("seen")
        fields = node.field_names(catalog)
        em.line(f"{seen} = set()")

        def on_child(crec: str) -> None:
            key = em.fresh("k")
            em.line(f"{key} = {_keys_code(crec, fields)}")
            em.line(f"if {key} not in {seen}:")
            em.depth += 1
            em.line(f"{seen}.add({key})")
            body(crec)
            em.depth -= 1

        _emit(node.child, em, catalog, em.fresh("rec"), on_child)

    else:
        raise TemplateError(f"no template for {type(node).__name__}")


def _sort_dict_rows(rows: list[dict], keys: tuple) -> None:
    import functools

    def compare(a: dict, b: dict) -> int:
        for name, asc in keys:
            av, bv = a[name], b[name]
            if av == bv:
                continue
            if av < bv:
                return -1 if asc else 1
            return 1 if asc else -1
        return 0

    rows.sort(key=functools.cmp_to_key(compare))


@dataclass
class TemplateCompiledQuery:
    """A template-expanded query: source + entry point + metrics."""

    plan: phys.PhysicalPlan
    source: str
    program: PyProgram
    field_names: list[str]
    generation_seconds: float
    compile_seconds: float

    def run(self, db: Database) -> list[tuple]:
        out: list[tuple] = []
        self.program.fn("query")(db, out)
        return out


class TemplateCompiler:
    """Compile by expanding per-operator string templates."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def compile(self, plan: phys.PhysicalPlan) -> TemplateCompiledQuery:
        plan.validate(self.catalog)
        t0 = time.perf_counter()
        em = _Emitter()
        names = plan.field_names(self.catalog)

        def sink(rec: str) -> None:
            fields = ", ".join(f"{rec}[{n!r}]" for n in names)
            if len(names) == 1:
                fields += ","
            em.line(f"out.append(({fields}))")

        _emit(plan, em, self.catalog, em.fresh("rec"), sink)
        source = "def query(db, out):\n" + "\n".join(em.lines) + "\n"
        generation_seconds = time.perf_counter() - t0
        t1 = time.perf_counter()
        program = PyProgram(source, globals_=em.env)
        compile_seconds = time.perf_counter() - t1
        return TemplateCompiledQuery(
            plan=plan,
            source=source,
            program=program,
            field_names=names,
            generation_seconds=generation_seconds,
            compile_seconds=compile_seconds,
        )


def execute_template(
    plan: phys.PhysicalPlan, db: Database, catalog: Catalog
) -> list[tuple]:
    """One-shot convenience: template-compile and run a plan."""
    return TemplateCompiler(catalog).compile(plan).run(db)
