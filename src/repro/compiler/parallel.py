"""Partition-parallel query execution (Section 4.5).

The paper's parallel LB2 splits each pipeline's driving scan across
threads, accumulates into thread-local hash maps, merges, and restarts the
post-aggregation pipeline.  This module reproduces that structure:

1. :func:`split_plan` finds the driving scan (following probe sides down
   from the root) and the lowest aggregation above it;
2. the LB2 compiler emits ``partial(db, lo, hi)`` -- the whole pipeline up
   to and including thread-local aggregation over scan rows ``[lo, hi)``;
3. :func:`merge_states` combines the per-partition states (the paper's
   ``hm.merge``);
4. the small post-aggregation tail (sort/limit/top-level aggregates) runs
   on the push engine over the merged groups ("restart a pipeline").

Execution modes:

* ``run_simulated`` -- run partials sequentially, record per-partition
  times, and compute the k-worker makespan (max over workers under static
  scheduling + merge + tail).  This is the measurement mode for Figure 11
  on the single-core container this reproduction targets; the partials are
  the *real* generated code, only the wall-clock overlap is modelled.
* ``run_multiprocess`` -- fork worker processes and execute partials
  concurrently (exercises the same code path with true process
  parallelism when cores are available).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.analysis.verifier import Verifier
from repro.analysis.walker import IRVerificationError
from repro.catalog.catalog import Catalog
from repro.engine import push as push_engine
from repro.engine.aggregates import eval_null_safe
from repro.errors import ReproError, error_code
from repro.plan import physical as phys
from repro.plan.expressions import AggSpec
from repro.resilience.faults import fault_point
from repro.staging import generate_python
from repro.staging.builder import StagingContext
from repro.staging.pygen import PyProgram
from repro.storage.database import Database
from repro.compiler.lb2 import CompileError, Config, StagedPlanBuilder
from repro.compiler.staged_agg import StagedAgg, build_staged_aggs


class ParallelError(ReproError):
    """Raised when a plan shape is not supported by the parallel driver."""

    code = "E_PARALLEL"
    phase = "execute"


class ParallelWorkerError(ParallelError):
    """A parallel worker crashed; names the worker and the fault site.

    Raised by :meth:`ParallelQuery.run_multiprocess` after the failing
    worker's siblings have been cancelled (the pool is terminated, never
    joined on forever).
    """

    code = "E_WORKER"
    phase = "execute"

    def __init__(
        self,
        worker: int,
        site: Optional[str],
        message: str,
        cause_code: str = "E_RUNTIME",
    ) -> None:
        where = f" at fault site {site!r}" if site else ""
        super().__init__(f"parallel worker {worker} failed{where}: {message}")
        self.worker = worker
        self.site = site
        self.cause_code = cause_code


@dataclass
class SplitPlan:
    """The decomposition produced by :func:`split_plan`."""

    tail: list[phys.PhysicalPlan]  # root-to-agg chain, excluding the agg
    agg: phys.Agg
    driving_scan: phys.Scan


def _probe_child(node: phys.PhysicalPlan) -> Optional[phys.PhysicalPlan]:
    """The child whose tuples drive this operator's output pipeline."""
    if isinstance(node, (phys.Select, phys.Project, phys.Sort, phys.Limit,
                         phys.Distinct, phys.Agg, phys.IndexJoin)):
        return node.children()[0]
    if isinstance(node, phys.HashJoin):
        return node.right  # build left, probe right
    if isinstance(node, (phys.SemiJoin, phys.AntiJoin, phys.LeftOuterJoin)):
        return node.left  # build right, stream left
    return None


def split_plan(plan: phys.PhysicalPlan) -> SplitPlan:
    """Locate the driving scan and the lowest Agg above it on the probe path."""
    path: list[phys.PhysicalPlan] = []
    node: phys.PhysicalPlan = plan
    while not isinstance(node, phys.Scan):
        if isinstance(node, phys.DateIndexScan):
            raise ParallelError(
                "parallel driver partitions plain scans; run the compliant plan"
            )
        child = _probe_child(node)
        if child is None:
            raise ParallelError(
                f"cannot find a driving scan below {type(node).__name__}"
            )
        path.append(node)
        node = child
    driving = node
    agg_positions = [i for i, n in enumerate(path) if isinstance(n, phys.Agg)]
    if not agg_positions:
        raise ParallelError("plan has no aggregation to merge across partitions")
    lowest = agg_positions[-1]
    agg = path[lowest]
    tail = path[:lowest]
    for t in tail:
        if len(t.children()) != 1:
            raise ParallelError(
                f"post-aggregation tail must be unary, found {type(t).__name__}"
            )
    assert isinstance(agg, phys.Agg)
    return SplitPlan(tail=tail, agg=agg, driving_scan=driving)


# ---------------------------------------------------------------------------
# State merging (the paper's hm.merge / ParHashMap)
# ---------------------------------------------------------------------------


def _merge_slots(acc: list, new: Sequence, staged: Sequence[StagedAgg]) -> None:
    for agg in staged:
        base = agg.base
        kind = agg.spec.kind
        if kind in ("sum", "count"):
            acc[base] += new[base]
        elif kind == "avg":
            acc[base] += new[base]
            acc[base + 1] += new[base + 1]
        elif kind == "min":
            if new[base] < acc[base]:
                acc[base] = new[base]
        elif kind == "max":
            if new[base] > acc[base]:
                acc[base] = new[base]
        elif kind == "count_distinct":
            acc[base] |= new[base]


def merge_states(
    states: Sequence[dict], staged: Sequence[StagedAgg]
) -> dict:
    """Merge per-partition grouped states key-wise."""
    merged: dict = {}
    for state in states:
        for key, slots in state.items():
            acc = merged.get(key)
            if acc is None:
                merged[key] = list(slots)
            else:
                _merge_slots(acc, slots, staged)
    return merged


def merge_global_states(
    states: Sequence[list], staged: Sequence[StagedAgg]
) -> tuple[int, Optional[list]]:
    """Merge per-partition ``[seen, slot...]`` global states."""
    total_seen = 0
    acc: Optional[list] = None
    for state in states:
        seen = state[0]
        if not seen:
            continue
        slots = list(state[1:])
        if acc is None:
            acc = slots
        else:
            _merge_slots(acc, slots, staged)
        total_seen += seen
    return total_seen, acc


def _finalize_slots(slots: Sequence, staged: Sequence[StagedAgg]) -> list:
    out = []
    for agg in staged:
        kind = agg.spec.kind
        if kind == "avg":
            out.append(slots[agg.base] / slots[agg.base + 1])
        elif kind == "count_distinct":
            out.append(len(slots[agg.base]))
        else:
            out.append(slots[agg.base])
    return out


def _empty_values(staged: Sequence[StagedAgg]) -> list:
    return [0 if a.spec.kind in ("count", "count_distinct") else None for a in staged]


# ---------------------------------------------------------------------------
# The compiled parallel query
# ---------------------------------------------------------------------------


@dataclass
class PartitionTiming:
    """Measured costs of one parallel run."""

    partition_seconds: list[float]
    merge_seconds: float
    tail_seconds: float

    def makespan(self, workers: int) -> float:
        """Simulated wall-clock under static block scheduling on ``workers``.

        This models OpenMP's default static schedule, which is what LB2's
        generated OpenMP code uses.
        """
        if workers <= 0:
            raise ValueError("workers must be positive")
        lanes = [0.0] * workers
        for i, cost in enumerate(self.partition_seconds):
            lanes[i % workers] += cost
        return max(lanes) + self.merge_seconds + self.tail_seconds

    def makespan_dynamic(self, workers: int) -> float:
        """Simulated wall-clock under work-stealing (morsel-style) scheduling.

        Greedy longest-processing-time assignment: each partition goes to
        the least-loaded worker, largest partitions first -- the model for
        HyPer's morsel-driven dispatch that the paper compares against.
        Always <= the static makespan on the same inputs.
        """
        import heapq

        if workers <= 0:
            raise ValueError("workers must be positive")
        lanes = [0.0] * workers
        heapq.heapify(lanes)
        for cost in sorted(self.partition_seconds, reverse=True):
            heapq.heappush(lanes, heapq.heappop(lanes) + cost)
        return max(lanes) + self.merge_seconds + self.tail_seconds


class ParallelQuery:
    """A plan compiled into partitioned partials plus a merge/tail phase."""

    def __init__(
        self,
        plan: phys.PhysicalPlan,
        db: Database,
        catalog: Catalog,
        config: Optional[Config] = None,
        verify: bool = True,
    ) -> None:
        self.plan = plan
        self.db = db
        self.catalog = catalog
        # Dictionary codes are per-load state; parallel partials stay on the
        # compliant representation (Figure 11 measures the compliant config).
        base = config or Config()
        self.config = Config(
            hashmap="native",
            open_map_size=base.open_map_size,
            hoist=base.hoist,
            use_dictionaries=False,
            budget_checks=base.budget_checks,
            budget_check_interval=base.budget_check_interval,
        )
        self.split = split_plan(plan)
        self.staged_aggs = build_staged_aggs(
            self.split.agg.aggs, self.split.agg.child.field_types(catalog)
        )
        self.agg_field_names = self.split.agg.field_names(catalog)
        self.grouped = bool(self.split.agg.keys)
        self.source = self._compile(verify)

    def _compile(self, verify: bool = True) -> str:
        ctx = StagingContext()
        builder = StagedPlanBuilder(self.catalog, self.db, ctx, self.config)
        with ctx.function("partial", ["db", "lo", "hi"]):
            lo = ctx.sym("lo", "long")
            hi = ctx.sym("hi", "long")
            root = builder.build(self.split.agg)
            builder.set_partition(self.split.driving_scan, lo, hi)
            root.exec_partial()  # type: ignore[attr-defined]
        self.functions = ctx.program()
        if verify:
            diagnostics = Verifier().run(self.functions)
            if diagnostics:
                raise IRVerificationError(diagnostics, self.functions)
        source = generate_python(
            self.functions,
            header=f"parallel partial for {type(self.plan).__name__} plan",
        )
        self._program = PyProgram(source)
        self._partial = self._program.fn("partial")
        return source

    # -- pieces ----------------------------------------------------------------

    def partition_ranges(self, partitions: int) -> list[tuple[int, int]]:
        size = self.db.size(self.split.driving_scan.table)
        if partitions <= 0:
            raise ValueError("partitions must be positive")
        chunk = (size + partitions - 1) // max(partitions, 1)
        return [
            (lo, min(lo + chunk, size)) for lo in range(0, size, max(chunk, 1))
        ] or [(0, 0)]

    def run_partial(self, lo: int, hi: int, worker: Optional[int] = None):
        if worker is not None:
            fault_point("worker-run", key=worker)
        return self._partial(self.db, lo, hi)

    def merged_rows(self, states: Sequence) -> list[dict]:
        """Merge partition states and finalize into agg-output rows."""
        key_names = [n for n, _ in self.split.agg.keys]
        agg_names = [n for n, _ in self.split.agg.aggs]
        rows: list[dict] = []
        if self.grouped:
            merged = merge_states(states, self.staged_aggs)
            for key, slots in merged.items():
                row: dict = {}
                if len(key_names) == 1:
                    row[key_names[0]] = key
                else:
                    row.update(zip(key_names, key))
                row.update(zip(agg_names, _finalize_slots(slots, self.staged_aggs)))
                rows.append(row)
        else:
            seen, slots = merge_global_states(states, self.staged_aggs)
            if seen and slots is not None:
                values = _finalize_slots(slots, self.staged_aggs)
            else:
                values = _empty_values(self.staged_aggs)
            rows.append(dict(zip(agg_names, values)))
        return rows

    def run_tail(self, rows: list[dict]) -> list[tuple]:
        """Run the post-aggregation pipeline over merged rows (push engine)."""

        class _Rows(push_engine.Op):
            def exec(self, cb):
                for row in rows:
                    cb(row)

        op: push_engine.Op = _Rows()
        for node in reversed(self.split.tail):
            op = self._wrap_tail(node, op)
        names = self.plan.field_names(self.catalog)
        out: list[tuple] = []
        op.exec(lambda row: out.append(tuple(row[n] for n in names)))
        return out

    def _wrap_tail(self, node: phys.PhysicalPlan, child: push_engine.Op) -> push_engine.Op:
        if isinstance(node, phys.Sort):
            return push_engine.Sort(child, node)
        if isinstance(node, phys.Limit):
            return push_engine.Limit(child, node)
        if isinstance(node, phys.Select):
            return push_engine.Select(child, node)
        if isinstance(node, phys.Project):
            return push_engine.Project(child, node)
        if isinstance(node, phys.Agg):
            return push_engine.Agg(child, node)
        if isinstance(node, phys.Distinct):
            return push_engine.Distinct(child, node.field_names(self.catalog))
        raise ParallelError(f"unsupported tail operator {type(node).__name__}")

    # -- execution modes -----------------------------------------------------------

    def run_simulated(
        self, partitions: int, inject: bool = False
    ) -> tuple[list[tuple], PartitionTiming]:
        """Run all partials sequentially; report per-phase timings.

        The returned :class:`PartitionTiming` computes the k-worker
        makespan -- the simulation substitute for multi-core hardware
        documented in DESIGN.md.  ``inject=True`` routes each partial
        through the ``worker-run`` fault site (keyed by partition index)
        so degradation tests need not fork.
        """
        states = []
        per_partition = []
        for idx, (lo, hi) in enumerate(self.partition_ranges(partitions)):
            start = time.perf_counter()
            states.append(self.run_partial(lo, hi, worker=idx if inject else None))
            per_partition.append(time.perf_counter() - start)
        start = time.perf_counter()
        rows = self.merged_rows(states)
        merge_seconds = time.perf_counter() - start
        start = time.perf_counter()
        result = self.run_tail(rows)
        tail_seconds = time.perf_counter() - start
        return result, PartitionTiming(per_partition, merge_seconds, tail_seconds)

    def run_multiprocess(self, workers: int) -> list[tuple]:
        """Fork ``workers`` processes and run partials concurrently.

        Worker failures are cooperative, not fatal: each worker reports
        success or a serialized failure, and the first failure terminates
        the pool (cancelling the siblings) and raises
        :class:`ParallelWorkerError` naming the worker and -- for injected
        faults -- the fault site.  An armed :class:`FaultInjector` is
        inherited by the forked workers, so ``worker-run`` faults keyed by
        worker index fire inside the target child only.
        """
        import multiprocessing as mp

        global _FORK_STATE
        ranges = self.partition_ranges(workers)
        _FORK_STATE = (self._partial, self.db)
        states: list = [None] * len(ranges)
        try:
            with mp.get_context("fork").Pool(processes=workers) as pool:
                jobs = [(idx, lo, hi) for idx, (lo, hi) in enumerate(ranges)]
                for idx, (ok, payload) in enumerate(pool.imap(_fork_worker, jobs)):
                    if not ok:
                        site, cause, message = payload
                        # Exiting the ``with`` block terminates the pool:
                        # siblings are cancelled, nothing is joined forever.
                        raise ParallelWorkerError(
                            worker=idx, site=site, message=message, cause_code=cause
                        )
                    states[idx] = payload
        finally:
            _FORK_STATE = None
        return self.run_tail(self.merged_rows(states))

    def run_resilient(self, workers: int) -> tuple[list[tuple], "ParallelRunReport"]:
        """Multiprocess execution that degrades to sequential on failure.

        A crashed worker cancels its siblings and the whole query re-runs
        sequentially (fault injection disabled -- the degraded path must
        answer).  Budget violations re-raise: the budget bounds the query,
        so restarting the scan sequentially would double-spend it.
        """
        try:
            rows = self.run_multiprocess(workers)
        except ParallelWorkerError as exc:
            if exc.cause_code == "E_BUDGET":
                raise
            rows, _timing = self.run_simulated(workers, inject=False)
            return rows, ParallelRunReport(
                mode="sequential-fallback",
                workers=workers,
                failed_worker=exc.worker,
                fault_site=exc.site,
                error=str(exc),
            )
        return rows, ParallelRunReport(mode="multiprocess", workers=workers)


@dataclass
class ParallelRunReport:
    """How a resilient parallel run ended up executing."""

    mode: str  # "multiprocess" or "sequential-fallback"
    workers: int
    failed_worker: Optional[int] = None
    fault_site: Optional[str] = None
    error: Optional[str] = None

    @property
    def degraded(self) -> bool:
        return self.mode != "multiprocess"


_FORK_STATE: Optional[tuple[Callable, Database]] = None


def _fork_worker(job: tuple[int, int, int]):
    """Run one partial in a forked child; failures come back serialized.

    Returns ``(True, state)`` on success or ``(False, (site, code, msg))``
    on failure, so the parent can cancel siblings and name the culprit
    instead of unpickling arbitrary exceptions (or hanging).
    """
    assert _FORK_STATE is not None, "worker forked without state"
    partial, db = _FORK_STATE
    idx, lo, hi = job
    try:
        fault_point("worker-run", key=idx)
        return True, partial(db, lo, hi)
    except Exception as exc:  # noqa: BLE001 - serialized for the parent
        site = getattr(exc, "site", None)
        return False, (site, error_code(exc), str(exc) or type(exc).__name__)
