"""Generation-time records and values (Section 4.1) plus string
dictionaries as a value representation (Section 4.3).

A :class:`StagedRecord` is the compiler's ``Record``: a mapping from field
names to staged values that exists *only while generating code*.  No record
object is ever constructed in the residual program -- field access emits (at
most) one column load, memoized per record, so repeated references share the
generated local.

A :class:`DicValue` is the dictionary-compressed string representation: it
carries the staged integer *code* plus the (present-stage) dictionary.
Operations specialize:

* comparisons against string constants fold the dictionary lookup at
  generation time and emit pure integer comparisons;
* ``startswith`` against a constant becomes one code-range check;
* anything else decodes through the dictionary's string table (one list
  subscript) and falls back to ordinary string code -- the paper's fallback
  rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.catalog.types import ColumnType
from repro.staging import ir
from repro.staging.builder import StagingContext
from repro.staging.rep import Rep, RepBool, RepInt, RepStr, rep_for_ctype
from repro.storage.dictionary import StringDictionary


@dataclass(frozen=True)
class FieldDesc:
    """Static description of one record field.

    ``dictionary``/``strings_sym`` are set for dictionary-compressed string
    fields: the present-stage dictionary (for generation-time constant
    folding) and the staged reference to its decoded-string table.
    """

    name: str
    type: ColumnType
    dictionary: Optional[StringDictionary] = None
    strings_sym: Optional[Rep] = None

    @property
    def compressed(self) -> bool:
        return self.dictionary is not None

    @property
    def ctype(self) -> str:
        """The staged value's C type: codes for compressed fields."""
        return "long" if self.compressed else self.type.ctype


class DicValue:
    """A staged dictionary-compressed string: an integer code + its table."""

    def __init__(
        self,
        code: RepInt,
        dictionary: StringDictionary,
        strings_sym: Rep,
        ctx: StagingContext,
    ) -> None:
        self.code = code
        self.dictionary = dictionary
        self.strings_sym = strings_sym
        self.ctx = ctx

    # -- representation changes -------------------------------------------------

    def decode(self) -> RepStr:
        """Emit one subscript into the dictionary's string table."""
        sym = self.ctx.bind(
            ir.Index(self.strings_sym.expr, self.code.expr), ctype="char*"
        )
        return RepStr(sym, self.ctx)

    def payload(self) -> RepInt:
        """The value to hash/sort/materialize: codes are order-preserving."""
        return self.code

    # -- specialized comparisons ---------------------------------------------------

    @staticmethod
    def _const_str(other: object) -> Optional[str]:
        if isinstance(other, str):
            return other
        if isinstance(other, RepStr) and isinstance(other.expr, ir.Const):
            return str(other.expr.value)
        return None

    def _same_dict(self, other: object) -> bool:
        return isinstance(other, DicValue) and other.dictionary is self.dictionary

    def __eq__(self, other: object) -> RepBool:  # type: ignore[override]
        const = self._const_str(other)
        if const is not None:
            code = self.dictionary.code(const)
            if code is None:
                # Constant absent from the data: the predicate is always false.
                return self.ctx.bool_(False)
            return self.code == code
        if self._same_dict(other):
            return self.code == other.code  # type: ignore[union-attr]
        return self.decode() == _as_str(other, self.ctx)

    def __ne__(self, other: object) -> RepBool:  # type: ignore[override]
        return ~self.__eq__(other)

    __hash__ = None  # type: ignore[assignment]

    def _order_cmp(self, other: object, op: str) -> RepBool:
        """Ordered comparison: codes are assigned in sorted order."""
        const = self._const_str(other)
        if const is not None:
            # Compare against the constant's rank even when it is absent.
            if op == "<":
                return self.code < self.dictionary.code_floor(const)
            if op == "<=":
                return self.code < self.dictionary.code_ceil(const)
            if op == ">":
                return self.code >= self.dictionary.code_ceil(const)
            return self.code >= self.dictionary.code_floor(const)  # >=
        if self._same_dict(other):
            other_code = other.code  # type: ignore[union-attr]
            if op == "<":
                return self.code < other_code
            if op == "<=":
                return self.code <= other_code
            if op == ">":
                return self.code > other_code
            return self.code >= other_code
        decoded = self.decode()
        rhs = _as_str(other, self.ctx)
        if op == "<":
            return decoded < rhs
        if op == "<=":
            return decoded <= rhs
        if op == ">":
            return decoded > rhs
        return decoded >= rhs

    def __lt__(self, other: object) -> RepBool:
        return self._order_cmp(other, "<")

    def __le__(self, other: object) -> RepBool:
        return self._order_cmp(other, "<=")

    def __gt__(self, other: object) -> RepBool:
        return self._order_cmp(other, ">")

    def __ge__(self, other: object) -> RepBool:
        return self._order_cmp(other, ">=")

    # -- string operations -----------------------------------------------------------

    def startswith(self, prefix: object) -> RepBool:
        const = self._const_str(prefix)
        if const is not None:
            lo, hi = self.dictionary.prefix_range(const)
            if lo == hi:
                return self.ctx.bool_(False)
            return (self.code >= lo) & (self.code < hi)
        return self.decode().startswith(_as_str(prefix, self.ctx))

    def endswith(self, suffix: object) -> RepBool:
        return self.decode().endswith(_as_str(suffix, self.ctx))

    def contains(self, needle: object) -> RepBool:
        return self.decode().contains(_as_str(needle, self.ctx))

    def substring(self, start: object, stop: object) -> RepStr:
        return self.decode().substring(start, stop)

    def length(self) -> RepInt:
        return self.decode().length()


def _as_str(value: object, ctx: StagingContext) -> RepStr:
    if isinstance(value, DicValue):
        return value.decode()
    if isinstance(value, RepStr):
        return value
    if isinstance(value, str):
        return ctx.str_(value)
    raise TypeError(f"expected a string value, got {type(value).__name__}")


StagedValue = Union[Rep, DicValue]


def value_payload(value: StagedValue) -> Rep:
    """The Rep to embed in tuples/keys: codes for DicValues, self otherwise."""
    if isinstance(value, DicValue):
        return value.payload()
    return value


def value_output(value: StagedValue) -> Rep:
    """The Rep to emit in final results: decoded strings for DicValues."""
    if isinstance(value, DicValue):
        return value.decode()
    return value


def rebuild_value(rep: Rep, desc: FieldDesc, ctx: StagingContext) -> StagedValue:
    """Re-wrap a materialized payload according to its field descriptor."""
    if desc.compressed:
        assert desc.strings_sym is not None and desc.dictionary is not None
        return DicValue(RepInt(rep.expr, ctx), desc.dictionary, desc.strings_sym, ctx)
    return rep


class StagedRecord:
    """The generation-time record: name -> lazily loaded staged value.

    ``loaders`` maps field name to a zero-argument function that emits the
    load and returns the value; results are memoized so a field referenced
    by several expressions is loaded exactly once per record.

    Records are also the *control-flow seam* between operator code and the
    code-generation backend: operators filter through :meth:`guard`, emit
    derived rows through :meth:`derive`, and devectorize through
    :meth:`rows`.  A scalar record lowers these to one branch / one record /
    the identity; a batch record (``repro.compiler.vec.VecRecord``) lowers
    the same calls to mask kernels, column derivations, and a residual loop
    -- without the operator changing a line.
    """

    def __init__(
        self,
        ctx: StagingContext,
        descs: list[FieldDesc],
        loaders: dict[str, Callable[[], StagedValue]],
    ) -> None:
        self.ctx = ctx
        self.descs = descs
        self._by_name = {d.name: d for d in descs}
        self._loaders = loaders
        self._cache: dict[str, StagedValue] = {}

    @property
    def field_names(self) -> list[str]:
        return [d.name for d in self.descs]

    def desc(self, name: str) -> FieldDesc:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"record has no field {name!r}; fields: {self.field_names}"
            ) from None

    def __getitem__(self, name: str) -> StagedValue:
        if name not in self._cache:
            self.desc(name)
            self._cache[name] = self._loaders[name]()
        return self._cache[name]

    def values(self, names: Optional[list[str]] = None) -> list[StagedValue]:
        return [self[n] for n in (names if names is not None else self.field_names)]

    @classmethod
    def from_values(
        cls,
        ctx: StagingContext,
        descs: list[FieldDesc],
        values: dict[str, StagedValue],
    ) -> "StagedRecord":
        """A record whose fields are already-computed staged values."""
        rec = cls(ctx, descs, loaders={n: _raiser(n) for n in values})
        rec._cache = dict(values)
        return rec

    def merged(self, other: "StagedRecord") -> "StagedRecord":
        """Concatenate two records (join output); names must be disjoint."""
        clash = set(self._by_name) & set(other._by_name)
        if clash:
            raise KeyError(f"merged record field clash: {sorted(clash)}")
        rec = StagedRecord(
            self.ctx,
            self.descs + other.descs,
            {**self._loaders, **other._loaders},
        )
        rec._cache = {**self._cache, **other._cache}
        return rec

    # -- the backend seam --------------------------------------------------------

    def guard(self, cond, cb: Callable[["StagedRecord"], None]) -> None:
        """Forward this record downstream only where ``cond`` holds."""
        with self.ctx.if_(cond):
            cb(self)

    def rows(self, cb: Callable[["StagedRecord"], None]) -> None:
        """Deliver this record row-at-a-time (identity for scalar records)."""
        cb(self)

    def derive(
        self,
        descs: list[FieldDesc],
        values: dict[str, StagedValue],
    ) -> "StagedRecord":
        """A new record over already-staged values (projection output)."""
        return StagedRecord.from_values(self.ctx, descs, values)


def _raiser(name: str) -> Callable[[], StagedValue]:
    def load() -> StagedValue:
        raise KeyError(f"field {name!r} has no loader and no cached value")

    return load


# ---------------------------------------------------------------------------
# Materialization helpers (pipeline breakers store payloads, then rebuild)
# ---------------------------------------------------------------------------


def materialize(rec: StagedRecord) -> tuple[list[Rep], list[FieldDesc]]:
    """Force all fields to payload Reps, keeping descriptors for rebuild."""
    payloads: list[Rep] = []
    descs: list[FieldDesc] = []
    for name in rec.field_names:
        value = rec[name]
        payloads.append(value_payload(value))
        descs.append(desc_from_existing(rec.desc(name), value))
    return payloads, descs


def desc_from_existing(desc: FieldDesc, value: StagedValue) -> FieldDesc:
    if isinstance(value, DicValue):
        return FieldDesc(
            desc.name,
            desc.type,
            dictionary=value.dictionary,
            strings_sym=value.strings_sym,
        )
    return FieldDesc(desc.name, desc.type)


def rebuild_record(
    ctx: StagingContext, row: Rep, descs: list[FieldDesc]
) -> StagedRecord:
    """Lazily re-load materialized fields from a row tuple."""
    loaders: dict[str, Callable[[], StagedValue]] = {}
    for i, desc in enumerate(descs):
        loaders[desc.name] = tuple_loader(ctx, row, i, desc)
    return StagedRecord(ctx, list(descs), loaders)


def tuple_loader(
    ctx: StagingContext, row: Rep, i: int, desc: FieldDesc
) -> Callable[[], StagedValue]:
    def load() -> StagedValue:
        sym = ctx.bind(ir.Index(row.expr, ir.Const(i)), ctype=desc.ctype)
        if desc.compressed:
            assert desc.dictionary is not None and desc.strings_sym is not None
            return DicValue(RepInt(sym, ctx), desc.dictionary, desc.strings_sym, ctx)
        return rep_for_ctype(desc.type.ctype)(sym, ctx)

    return load
