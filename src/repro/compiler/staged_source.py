"""Staged storage access: scan sources, index probes, and sort buffers.

These classes are the `StagedColumn` / `StagedBuffer` side of the backend
seam (Section 4.1): they own every residual loop and subscript that touches
stored data, so operator code in :mod:`repro.compiler.lb2` can be written
once against record callbacks and specialized many ways underneath.  The
scalar lowering here emits exactly the row-at-a-time loops the compiler
always produced; the batch lowering lives in :mod:`repro.compiler.vec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.catalog.types import ColumnType
from repro.staging import ir
from repro.staging.builder import StagingContext
from repro.staging.rep import Rep, RepInt, rep_for_ctype
from repro.compiler.staged_record import (
    DicValue,
    FieldDesc,
    StagedRecord,
    StagedValue,
    materialize,
    rebuild_record,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.compiler.lb2 import StagedPlanBuilder


@dataclass
class _ScanState:
    size: Rep
    loaders_at: Callable[[Rep], dict[str, Callable[[], StagedValue]]]
    descs: list[FieldDesc]


def bind_table(
    comp: "StagedPlanBuilder", table: str, rename: dict[str, str]
) -> _ScanState:
    """Bind a table's size, column arrays and dictionary tables (cold path).

    Compressed columns bind the *encoded* integer array plus the decoded
    string table; record loads then produce :class:`DicValue`s.
    """
    ctx = comp.ctx
    ctx.comment(f"columns of table {table!r}")
    size = ctx.call("db_size", [table], result="long", prefix="n")
    schema = comp.catalog.table(table)
    col_syms: dict[str, Rep] = {}
    descs: list[FieldDesc] = []
    for column in schema.columns:
        name = rename.get(column.name, column.name)
        compressed = (
            comp.config.use_dictionaries
            and column.type is ColumnType.STRING
            and comp.db.has_dictionary(table, column.name)
        )
        if compressed:
            col_syms[name] = ctx.call(
                "db_encoded", [table, column.name], result="void*", prefix="enc"
            )
            strings = comp.strings_sym(table, column.name)
            descs.append(
                FieldDesc(
                    name,
                    column.type,
                    dictionary=comp.db.dictionary(table, column.name),
                    strings_sym=strings,
                )
            )
        else:
            col_syms[name] = ctx.call(
                "db_column", [table, column.name], result="void*", prefix="col"
            )
            descs.append(FieldDesc(name, column.type))

    def loaders_at(rowid: Rep) -> dict[str, Callable[[], StagedValue]]:
        loaders: dict[str, Callable[[], StagedValue]] = {}
        for desc in descs:
            loaders[desc.name] = _make_loader(ctx, col_syms[desc.name], rowid, desc)
        return loaders

    return _ScanState(size, loaders_at, descs)


def _make_loader(
    ctx: StagingContext, col: Rep, rowid: Rep, desc: FieldDesc
) -> Callable[[], StagedValue]:
    def load() -> StagedValue:
        sym = ctx.bind(ir.Index(col.expr, rowid.expr), ctype=desc.ctype)
        if desc.compressed:
            assert desc.dictionary is not None and desc.strings_sym is not None
            return DicValue(RepInt(sym, ctx), desc.dictionary, desc.strings_sym, ctx)
        return rep_for_ctype(desc.type.ctype)(sym, ctx)

    return load


def column_loader(
    ctx: StagingContext, column: Rep, pos: Rep, desc: FieldDesc
) -> Callable[[], StagedValue]:
    def load() -> StagedValue:
        sym = ctx.bind(ir.Index(column.expr, pos.expr), ctype=desc.ctype)
        if desc.compressed:
            assert desc.dictionary is not None and desc.strings_sym is not None
            return DicValue(RepInt(sym, ctx), desc.dictionary, desc.strings_sym, ctx)
        return rep_for_ctype(desc.type.ctype)(sym, ctx)

    return load


def emit_scan_tick(comp: "StagedPlanBuilder", i: Optional[RepInt] = None) -> None:
    """Emit a cooperative budget/fault checkpoint into the current loop.

    With a counted induction variable ``i`` the check fires every
    ``budget_check_interval`` rows (one modulo + compare per row, a call
    only on the sampled rows); candidate-list loops without a counter
    check per row.  Nothing at all is emitted unless
    ``Config.budget_checks`` is set, keeping default codegen byte-stable.
    """
    if not comp.config.budget_checks:
        return
    interval = comp.config.budget_check_interval
    ctx = comp.ctx
    if i is None or interval <= 1:
        ctx.call_stmt("scan_tick", [1])
        return
    with ctx.if_((i % interval) == 0):
        ctx.call_stmt("scan_tick", [interval])


def set_stat(ctx: StagingContext, stats: Rep, label: str, counter_name: str) -> None:
    """Store one instrumentation counter into the generated stats dict."""
    ctx.emit(ir.SetIndex(stats.expr, ir.Const(label), ir.Sym(counter_name)))


def set_time(ctx: StagingContext, stats: Rep, label: str, t0: Rep, t1: Rep) -> None:
    """Store one operator's wall-clock interval into the stats dict.

    Times share the dict with row counters under an ``@t:`` key prefix;
    ``CompiledQuery.run`` splits them back apart, so counter consumers
    (``last_stats``) never see timing keys.
    """
    ctx.emit(
        ir.SetIndex(
            stats.expr, ir.Const("@t:" + label), ir.Bin("-", t1.expr, t0.expr)
        )
    )


# ---------------------------------------------------------------------------
# Scan sources
# ---------------------------------------------------------------------------


class TableSource:
    """A bound base table: emits the driving row loop on demand."""

    def __init__(self, comp: "StagedPlanBuilder", table: str, rename: dict[str, str]):
        self.comp = comp
        self.ctx = comp.ctx
        self.state = bind_table(comp, table, rename)

    def record_at(self, rowid: Rep) -> StagedRecord:
        return StagedRecord(
            self.ctx, self.state.descs, self.state.loaders_at(rowid)
        )

    def scan(
        self,
        cb: Callable[[StagedRecord], None],
        bounds: Optional[tuple[Rep, Rep]] = None,
    ) -> None:
        if bounds is not None:
            # Section 4.5: this is the partitioned (driving) scan; the
            # generated partial covers rows [lo, hi).
            lo, hi = bounds
            with self.ctx.for_range(lo, hi, prefix="i") as i:
                emit_scan_tick(self.comp, i)
                cb(self.record_at(i))
        else:
            with self.ctx.for_range(0, self.state.size, prefix="i") as i:
                emit_scan_tick(self.comp, i)
                cb(self.record_at(i))


class DateIndexSource:
    """A date-partition-pruned table: candidate or interior/boundary loops."""

    def __init__(self, comp: "StagedPlanBuilder", node) -> None:
        self.comp = comp
        self.ctx = comp.ctx
        self.enforce = node.enforce
        ctx = self.ctx
        self.state = bind_table(comp, node.table, node.rename_map)
        ctx.comment(
            f"date-index scan of {node.table}.{node.column} "
            f"[{node.lo}, {node.hi}] enforce={node.enforce}"
        )
        if node.enforce:
            runs = ctx.call(
                "db_date_runs",
                [node.table, node.column, node.lo, node.hi],
                result="void*",
                prefix="runs",
            )
            interior = ctx.bind(
                ir.Index(runs.expr, ir.Const(0)), ctype="void*", prefix="inner"
            )
            boundary = ctx.bind(
                ir.Index(runs.expr, ir.Const(1)), ctype="void*", prefix="edge"
            )
            self.rows = Rep(interior, ctx, "void*")
            self.boundary: Optional[Rep] = Rep(boundary, ctx, "void*")
        else:
            self.rows = ctx.call(
                "db_date_candidates",
                [node.table, node.column, node.lo, node.hi],
                result="void*",
                prefix="cand",
            )
            self.boundary = None

    def record_at(self, rowid: Rep) -> StagedRecord:
        return StagedRecord(
            self.ctx, self.state.descs, self.state.loaders_at(rowid)
        )

    def scan(
        self,
        cb: Callable[[StagedRecord], None],
        bound_cond: Callable[[StagedRecord], object],
    ) -> None:
        ctx = self.ctx
        if self.boundary is None:
            with ctx.for_each(self.rows, prefix="r", ctype="long") as rowid:
                emit_scan_tick(self.comp)
                cb(self.record_at(rowid))
            return
        # Interior partitions: the range holds by construction.
        ctx.comment("interior partitions: no date check needed")
        with ctx.for_each(self.rows, prefix="r", ctype="long") as rowid:
            emit_scan_tick(self.comp)
            cb(self.record_at(rowid))
        # Boundary partitions: re-check the exact bounds per row.
        ctx.comment("boundary partitions: exact bound re-check")
        with ctx.for_each(self.boundary, prefix="b", ctype="long") as rowid:
            rec = self.record_at(rowid)
            cond = bound_cond(rec)
            if cond is None:
                cb(rec)
            else:
                rec.guard(cond, cb)


class IndexSource:
    """A bound secondary index (plus, optionally, its base table)."""

    def __init__(
        self,
        comp: "StagedPlanBuilder",
        table: str,
        table_key: str,
        unique: bool,
        rename: dict[str, str],
        comment: str,
        with_table: bool,
    ) -> None:
        self.comp = comp
        self.ctx = comp.ctx
        ctx = self.ctx
        ctx.comment(comment)
        fn = "db_unique_index" if unique else "db_index"
        self.index = ctx.call(fn, [table, table_key], result="void*", prefix="idx")
        self.state = bind_table(comp, table, rename) if with_table else None

    def record_at(self, rowid: Rep) -> StagedRecord:
        assert self.state is not None
        return StagedRecord(
            self.ctx, self.state.descs, self.state.loaders_at(rowid)
        )

    def lookup_unique(self, key: Rep, prefix: Optional[str] = None) -> RepInt:
        if prefix is None:
            return self.ctx.call(
                "index_lookup_unique", [self.index, key], result="long"
            )
        return self.ctx.call(
            "index_lookup_unique", [self.index, key], result="long", prefix=prefix
        )

    def lookup(self, key: Rep, prefix: Optional[str] = None) -> Rep:
        if prefix is None:
            return self.ctx.call("index_lookup", [self.index, key], result="void*")
        return self.ctx.call(
            "index_lookup", [self.index, key], result="void*", prefix=prefix
        )

    def count(self, rows: Rep) -> RepInt:
        return self.ctx.call("list_len", [rows], result="long")

    def each(
        self,
        rows: Rep,
        fn: Callable[[Rep], None],
        break_when: Optional[Callable[[], Rep]] = None,
    ) -> None:
        with self.ctx.for_each(rows, prefix="rid", ctype="long") as rowid:
            fn(rowid)
            if break_when is not None:
                self.ctx.break_if(break_when())


# ---------------------------------------------------------------------------
# Sort buffers (pipeline breakers, Section 4.1's format conversion point)
# ---------------------------------------------------------------------------


class RowSortBuffer:
    """A FlatBuffer of row tuples, sorted in place (or top-K selected)."""

    def __init__(self, ctx: StagingContext) -> None:
        self.ctx = ctx
        ctx.comment("sort buffer (row layout)")
        self.buf = ctx.call("list_new", [], result="void*", prefix="buf")
        self.descs: list[FieldDesc] = []

    def append(self, rec: StagedRecord) -> None:
        payloads, self.descs = materialize(rec)
        row = self.ctx.bind(
            ir.TupleExpr(tuple(v.expr for v in payloads)), ctype="void*"
        )
        self.ctx.call_stmt(
            "list_append", [self.buf, Rep(row, self.ctx, ctype="void*")]
        )

    def drain(
        self,
        spec: tuple[tuple[int, bool], ...],
        limit: Optional[int],
        cb: Callable[[StagedRecord], None],
    ) -> None:
        ctx = self.ctx
        buf = self.buf
        # Dictionary codes are order-preserving, so sorting payloads is
        # exactly sorting the decoded strings.
        if limit is not None:
            # Top-K fusion: bounded heap selection instead of a full sort.
            buf = ctx.call(
                "topk_rows",
                [buf, Rep(ir.Const(spec), ctx), limit],
                result="void*",
                prefix="top",
            )
        else:
            ctx.call_stmt("sort_rows", [buf, Rep(ir.Const(spec), ctx)])
        with ctx.for_each(buf, prefix="row", ctype="void*") as row:
            cb(rebuild_record(ctx, row, self.descs))


class ColumnSortBuffer:
    """One list per field, permuted through an argsort (SoA layout)."""

    def __init__(self, ctx: StagingContext, field_names: list[str]) -> None:
        self.ctx = ctx
        ctx.comment("sort buffer (column layout: one list per field)")
        self.columns = [
            ctx.call("list_new", [], result="void*", prefix="sc")
            for _ in field_names
        ]
        self.descs: list[FieldDesc] = []

    def append(self, rec: StagedRecord) -> None:
        payloads, self.descs = materialize(rec)
        for column, value in zip(self.columns, payloads):
            self.ctx.call_stmt("list_append", [column, value])

    def drain(
        self,
        spec: tuple[tuple[int, bool], ...],
        limit: Optional[int],
        cb: Callable[[StagedRecord], None],
    ) -> None:
        ctx = self.ctx
        cols_tuple = ctx.bind(
            ir.TupleExpr(tuple(c.expr for c in self.columns)), ctype="void*"
        )
        order = ctx.call(
            "argsort_columns",
            [Rep(cols_tuple, ctx, "void*"), Rep(ir.Const(spec), ctx)],
            result="void*",
            prefix="ord",
        )
        if limit is not None:
            order = ctx.call(
                "list_head", [order, limit], result="void*", prefix="ord"
            )
        with ctx.for_each(order, prefix="p", ctype="long") as pos:
            loaders = {
                desc.name: column_loader(ctx, self.columns[i], pos, desc)
                for i, desc in enumerate(self.descs)
            }
            cb(StagedRecord(ctx, list(self.descs), loaders))
