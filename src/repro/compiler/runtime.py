"""Runtime helpers available to generated code under the name ``rt``.

These mirror LB2's tiny C support layer (timing, printing, sorting): code on
the per-tuple hot path is always emitted inline by the generators; only
per-query, cold operations (sorting a result buffer, building a comparison
key) are routed through here.
"""

from __future__ import annotations

import functools
import threading
from time import perf_counter as _perf_counter
from typing import Iterable, Sequence


def sort_rows(rows: list, spec: Sequence[tuple[int, bool]]) -> list:
    """Sort ``rows`` (tuples) in place by a multi-key ordering spec.

    ``spec`` is a sequence of ``(column_index, ascending)`` pairs.  Mixed
    ascending/descending orderings over non-numeric keys cannot be expressed
    with a single ``key=`` function, so a comparator is used; this runs once
    per query, never per tuple of the hot path.
    """
    if all(asc for _, asc in spec):
        rows.sort(key=lambda row: tuple(row[i] for i, _ in spec))
        return rows

    def compare(a: tuple, b: tuple) -> int:
        for idx, asc in spec:
            av, bv = a[idx], b[idx]
            if av == bv:
                continue
            if av < bv:
                return -1 if asc else 1
            return 1 if asc else -1
        return 0

    rows.sort(key=functools.cmp_to_key(compare))
    return rows


def topk_rows(rows: list, spec: Sequence[tuple[int, bool]], n: int) -> list:
    """The ``n`` smallest rows under the multi-key ordering spec.

    Backs the Limit-over-Sort fusion: a bounded heap selection instead of a
    full sort when only the top of the ordering is needed.
    """
    import heapq

    if n <= 0:
        return []
    if all(asc for _, asc in spec):
        return heapq.nsmallest(n, rows, key=lambda row: tuple(row[i] for i, _ in spec))

    def compare(a: tuple, b: tuple) -> int:
        for idx, asc in spec:
            av, bv = a[idx], b[idx]
            if av == bv:
                continue
            if av < bv:
                return -1 if asc else 1
            return 1 if asc else -1
        return 0

    return heapq.nsmallest(n, rows, key=functools.cmp_to_key(compare))


def argsort_columns(columns: Sequence[list], spec: Sequence[tuple[int, bool]]) -> list[int]:
    """Row-id permutation ordering columnar buffers by a multi-key spec.

    ``columns[i]`` is the i-th field's value list; ``spec`` pairs are
    ``(column index, ascending)``.  The columnar counterpart of
    :func:`sort_rows` -- used when the compiler materializes pipeline
    breakers in column layout (Section 4.1 of the paper).
    """
    size = len(columns[0]) if columns else 0
    order = list(range(size))
    if all(asc for _, asc in spec):
        order.sort(key=lambda rid: tuple(columns[i][rid] for i, _ in spec))
        return order

    def compare(a: int, b: int) -> int:
        for i, asc in spec:
            av, bv = columns[i][a], columns[i][b]
            if av == bv:
                continue
            if av < bv:
                return -1 if asc else 1
            return 1 if asc else -1
        return 0

    order.sort(key=functools.cmp_to_key(compare))
    return order


def like(value: str, pattern: str) -> bool:
    """SQL LIKE with ``%`` wildcards (the general fallback path).

    The compiler specializes the common shapes (``abc%``, ``%abc``,
    ``%abc%``, exact) to direct string operations at generation time; this
    helper handles arbitrary multi-``%`` patterns such as ``%a%b%``.
    ``_`` (single char) is supported for completeness.
    """
    import re

    regex = "^" + "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern
    ) + "$"
    return re.match(regex, value) is not None


def like_contains2(value: str, first: str, second: str) -> bool:
    """Match ``%first%second%``: ordered, non-overlapping containment."""
    start = value.find(first)
    if start < 0:
        return False
    return value.find(second, start + len(first)) >= 0


def map_full() -> None:
    """Generated open-addressing maps call this when every slot is taken."""
    raise RuntimeError(
        "open-addressing hash map is full; recompile with a larger "
        "open_map_size (Config.open_map_size)"
    )


def round_half_up(value: float, digits: int) -> float:
    """Decimal-style rounding used when formatting numeric results."""
    scale = 10 ** digits
    if value >= 0:
        return int(value * scale + 0.5) / scale
    return -int(-value * scale + 0.5) / scale


def timed(fn, *args, **kwargs):
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    import time

    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def obs_now() -> float:
    """Monotonic wall-clock read staged into instrumented programs.

    ``Config(instrument=True)`` brackets each operator's datapath with a
    pair of these calls; the residual program stores the difference under
    an ``@t:``-prefixed stats key.  Only emitted when instrumentation is
    on, so uninstrumented codegen stays byte-identical.
    """
    return _perf_counter()


def first_or_none(seq: Iterable):
    """Return the first element of ``seq`` or None when empty."""
    for item in seq:
        return item
    return None


# -- cooperative budget / fault hooks ----------------------------------------
#
# Residual programs compiled with ``Config(budget_checks=True)`` call
# ``rt.scan_tick(n)`` periodically from their scan loops.  The call fans out
# to whatever hooks the resilience layer has installed (a budget guard, a
# mid-scan fault injector); with no hooks installed it is a no-op, and with
# budget checks disabled (the default) it is never even emitted, so the
# residual source is byte-identical to the unguarded build.
#
# The hook stack is *per thread*: a guard armed by one serve-tier request
# must only see ticks from the residual program running on that request's
# worker thread -- a global list would let thread A's deadline abort
# thread B's scan and would double-count everybody's rows into every
# guard.  Thread-local data survives ``fork`` for the forking thread, so
# the parallel layer's forked workers (which fork from the thread that
# armed the hooks) inherit mid-scan fault hooks exactly as before.

_TICK_LOCAL = threading.local()


def _tick_hooks() -> list:
    hooks = getattr(_TICK_LOCAL, "hooks", None)
    if hooks is None:
        hooks = _TICK_LOCAL.hooks = []
    return hooks


def push_tick_hook(hook) -> None:
    """Install a ``hook(n)`` invoked on this thread's every ``scan_tick``."""
    _tick_hooks().append(hook)


def pop_tick_hook(hook) -> None:
    """Remove a previously installed tick hook (last occurrence).

    Compared with ``==``, not ``is``: callers pass bound methods, and each
    ``obj.method`` access builds a fresh bound-method object.
    """
    hooks = _tick_hooks()
    for i in range(len(hooks) - 1, -1, -1):
        if hooks[i] == hook:
            del hooks[i]
            return


def scan_tick(n: int = 1) -> None:
    """Cooperative checkpoint emitted into guarded scan loops.

    ``n`` is the number of rows processed since the previous tick.  Hooks
    may raise (``BudgetExceeded``, ``InjectedFault``) to abort the residual
    program; the exception propagates out of the generated function to the
    caller, exactly like any other runtime failure.
    """
    for hook in list(_tick_hooks()):
        hook(n)


# -- batch (vector) kernels ---------------------------------------------------
#
# Residual programs compiled with ``Config(codegen="vector")`` call these
# ``v_*`` kernels over whole column arrays instead of emitting per-row
# loops.  With NumPy installed (the ``repro[fast]`` extra) operands are
# ``numpy.ndarray``; without it, storage hands out plain Python lists and
# every kernel falls back to list comprehensions -- same results, scalar
# speed.  Either operand of a binary kernel may also be a plain Python
# scalar (a broadcast constant).  All kernels are pure: they allocate fresh
# outputs and never mutate their inputs.

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the no-numpy tests
    _np = None


def have_numpy() -> bool:
    """True when the optional ``repro[fast]`` acceleration is available."""
    return _np is not None


def _is_ndarray(x) -> bool:
    return _np is not None and isinstance(x, _np.ndarray)


def _is_batch(x) -> bool:
    return isinstance(x, list) or _is_ndarray(x)


def _pair(a, b):
    """Align two elementwise operands into equal-length Python lists."""
    if _is_batch(a) and _is_batch(b):
        return a, b
    if _is_batch(a):
        return a, [b] * len(a)
    return [a] * len(b), b


def _ew(a, b, op):
    """Elementwise binary kernel body: NumPy fast path or list fallback."""
    if _is_ndarray(a) or _is_ndarray(b):
        return op(a, b)
    xs, ys = _pair(a, b)
    return [op(x, y) for x, y in zip(xs, ys)]


def v_add(a, b):
    return _ew(a, b, lambda x, y: x + y)


def v_sub(a, b):
    return _ew(a, b, lambda x, y: x - y)


def v_mul(a, b):
    return _ew(a, b, lambda x, y: x * y)


def v_div(a, b):
    return _ew(a, b, lambda x, y: x / y)


def v_floordiv(a, b):
    return _ew(a, b, lambda x, y: x // y)


def v_mod(a, b):
    return _ew(a, b, lambda x, y: x % y)


def v_eq(a, b):
    return _ew(a, b, lambda x, y: x == y)


def v_ne(a, b):
    return _ew(a, b, lambda x, y: x != y)


def v_lt(a, b):
    return _ew(a, b, lambda x, y: x < y)


def v_le(a, b):
    return _ew(a, b, lambda x, y: x <= y)


def v_gt(a, b):
    return _ew(a, b, lambda x, y: x > y)


def v_ge(a, b):
    return _ew(a, b, lambda x, y: x >= y)


def v_and(a, b):
    if _is_ndarray(a) or _is_ndarray(b):
        return a & b
    xs, ys = _pair(a, b)
    return [bool(x and y) for x, y in zip(xs, ys)]


def v_or(a, b):
    if _is_ndarray(a) or _is_ndarray(b):
        return a | b
    xs, ys = _pair(a, b)
    return [bool(x or y) for x, y in zip(xs, ys)]


def v_not(a):
    if _is_ndarray(a):
        return ~a
    return [not x for x in a]


def v_neg(a):
    if _is_ndarray(a):
        return -a
    return [-x for x in a]


# -- selection ----------------------------------------------------------------


def v_mask_index(mask):
    """Row positions where ``mask`` is true (the selection vector)."""
    if _is_ndarray(mask):
        return _np.nonzero(mask)[0]
    return [i for i, m in enumerate(mask) if m]


def v_take(a, idx):
    """Gather ``a`` at positions ``idx``; scalars broadcast through."""
    if not _is_batch(a):
        return a
    if _is_ndarray(a):
        return a[idx]
    return [a[int(i)] for i in idx]


def v_len(x) -> int:
    return len(x)


def v_tolist(a):
    """Materialize a batch as a list of plain Python scalars.

    The vector -> scalar boundary: devectorized loops index this list, and
    downstream scalar code (hashing, sorting, result normalization) must
    see Python ints/floats/strs, never NumPy scalars.
    """
    if _is_ndarray(a):
        return a.tolist()
    return a


# -- grouping -----------------------------------------------------------------


def _as_lists(n: int, keys):
    out = []
    for k in keys:
        if _is_ndarray(k):
            out.append(k.tolist())
        elif isinstance(k, list):
            out.append(k)
        else:
            out.append([k] * n)
    return out


def _factorize_object(column):
    """Dense integer codes for an object-dtype column via one hash pass."""
    mapping: dict = {}
    codes = _np.empty(len(column), dtype=_np.int64)
    for i, value in enumerate(column.tolist()):
        gid = mapping.get(value)
        if gid is None:
            gid = len(mapping)
            mapping[value] = gid
        codes[i] = gid
    return codes, len(mapping)


def v_group(n, *keys):
    """Factorize rows by key columns.

    Returns a flat tuple ``(codes, ngroups, keylist0, keylist1, ...)``:
    ``codes[i]`` is the dense group id of row ``i`` and ``keylist_j[g]`` the
    j-th key value of group ``g`` (plain Python scalars).
    """
    if _np is not None and keys and all(_is_ndarray(k) for k in keys):
        # Factorize each key, then combine per-row code tuples into one
        # dense id by mixed-radix packing.  Object (string) columns avoid
        # sort-based ``np.unique`` -- comparison-sorting Python objects
        # costs more than one hashing pass.
        combined = None
        for k in keys:
            if k.dtype == object:
                codes, nuniq = _factorize_object(k)
            else:
                uniq, codes = _np.unique(k, return_inverse=True)
                nuniq = len(uniq)
            combined = (
                codes if combined is None else combined * nuniq + codes
            )
        groups, first_idx, final = _np.unique(
            combined, return_index=True, return_inverse=True
        )
        keylists = [k[first_idx].tolist() for k in keys]
        return (final.astype(_np.int64), len(groups), *keylists)
    cols = _as_lists(n, keys)
    mapping: dict = {}
    codes = [0] * n
    keylists: list[list] = [[] for _ in keys]
    for i in range(n):
        kt = tuple(c[i] for c in cols)
        gid = mapping.get(kt)
        if gid is None:
            gid = len(mapping)
            mapping[kt] = gid
            for kl, v in zip(keylists, kt):
                kl.append(v)
        codes[i] = gid
    return (codes, len(mapping), *keylists)


def _broadcast_values(codes, values):
    if _is_batch(values):
        return values
    return [values] * len(codes)


def _plain_pair(codes, values):
    """Force a (codes, values) pair into plain Python lists (slow path)."""
    if _is_ndarray(codes):
        codes = codes.tolist()
    if _is_ndarray(values):
        values = values.tolist()
    return codes, values


def v_group_sum(codes, ngroups, values):
    """Per-group sum; integer inputs keep integer results."""
    values = _broadcast_values(codes, values)
    if _is_ndarray(codes) and _is_ndarray(values) and values.dtype != object:
        out = _np.bincount(codes, weights=values, minlength=ngroups)
        if values.dtype.kind in "iub":
            return [int(x) for x in out]
        return out.tolist()
    codes, values = _plain_pair(codes, values)
    out = [0] * ngroups
    for c, v in zip(codes, values):
        out[c] += v
    return out


def v_group_fsum(codes, ngroups, values):
    """Per-group float sum (the double slot of ``avg``)."""
    values = _broadcast_values(codes, values)
    if _is_ndarray(codes) and _is_ndarray(values) and values.dtype != object:
        return _np.bincount(codes, weights=values, minlength=ngroups).tolist()
    codes, values = _plain_pair(codes, values)
    out = [0.0] * ngroups
    for c, v in zip(codes, values):
        out[c] += v
    return out


def v_group_count(codes, ngroups):
    if _is_ndarray(codes):
        return [int(x) for x in _np.bincount(codes, minlength=ngroups)]
    out = [0] * ngroups
    for c in codes:
        out[c] += 1
    return out


def v_group_count_nn(codes, ngroups, values):
    """Per-group count of non-None values (``count(expr)``)."""
    values = _broadcast_values(codes, values)
    if _is_ndarray(values) and values.dtype != object:
        return v_group_count(codes, ngroups)  # typed arrays hold no Nones
    codes, values = _plain_pair(codes, values)
    out = [0] * ngroups
    for c, v in zip(codes, values):
        if v is not None:
            out[c] += 1
    return out


def _group_extreme(codes, ngroups, values, op, np_ufunc):
    values = _broadcast_values(codes, values)
    if (
        _is_ndarray(codes)
        and _is_ndarray(values)
        and values.dtype != object
        and np_ufunc is not None
    ):
        _, first_idx = _np.unique(codes, return_index=True)
        out = values[first_idx].copy()
        np_ufunc.at(out, codes, values)
        return out.tolist()
    codes, values = _plain_pair(codes, values)
    out: list = [None] * ngroups
    for c, v in zip(codes, values):
        cur = out[c]
        out[c] = v if cur is None else op(cur, v)
    return out


def v_group_min(codes, ngroups, values):
    return _group_extreme(
        codes, ngroups, values, min, None if _np is None else _np.minimum
    )


def v_group_max(codes, ngroups, values):
    return _group_extreme(
        codes, ngroups, values, max, None if _np is None else _np.maximum
    )


# -- global (ungrouped) reductions -------------------------------------------
#
# Each takes the row count ``n`` explicitly because ``values`` may be a
# broadcast scalar.  All are empty-safe: the residual program computes them
# unconditionally and gates the *use* of the result on ``n != 0``.


def v_sum(values, n):
    if not _is_batch(values):
        return values * n
    if _is_ndarray(values):
        total = values.sum()
        return int(total) if values.dtype.kind in "iub" else float(total)
    return sum(values)


def v_fsum(values, n):
    if not _is_batch(values):
        return float(values) * n
    if _is_ndarray(values):
        return float(values.sum())
    return float(sum(values))


def v_count_nn(values, n):
    if not _is_batch(values):
        return n if values is not None else 0
    if _is_ndarray(values) and values.dtype != object:
        return len(values)
    return sum(1 for v in values if v is not None)


def v_min(values, n):
    if not _is_batch(values):
        return values if n else None
    if len(values) == 0:
        return None
    if _is_ndarray(values) and values.dtype != object:
        out = values.min()
        return int(out) if values.dtype.kind in "iub" else float(out)
    return min(values)


def v_max(values, n):
    if not _is_batch(values):
        return values if n else None
    if len(values) == 0:
        return None
    if _is_ndarray(values) and values.dtype != object:
        out = values.max()
        return int(out) if values.dtype.kind in "iub" else float(out)
    return max(values)


# -- kernel invocation observer -----------------------------------------------
#
# EXPLAIN ANALYZE on a vector program wants to know which kernels fired and
# over what batch sizes.  Rather than staging counters into the residual
# source (which would break the byte-identity contract between observed and
# unobserved runs), every ``v_*`` kernel is wrapped once at import time; the
# wrapper reports ``(name, batch_len)`` to an installable observer.  With no
# observer installed the overhead is one ``is None`` check per kernel call --
# and kernels run once per *batch*, not per row, so it never touches the hot
# path.  Nested kernels (``v_group_count_nn`` delegates to ``v_group_count``
# on the typed-array path) report both invocations.

_KERNEL_OBSERVER = None


def set_kernel_observer(observer):
    """Install ``observer(name, batch_len)``; returns the previous one."""
    global _KERNEL_OBSERVER
    previous = _KERNEL_OBSERVER
    _KERNEL_OBSERVER = observer
    return previous


def _observed(name, fn):
    @functools.wraps(fn)
    def wrapper(*args):
        result = fn(*args)
        if _KERNEL_OBSERVER is not None:
            batch_len = 0
            for arg in args:
                if _is_batch(arg):
                    batch_len = len(arg)
                    break
            _KERNEL_OBSERVER(name, batch_len)
        return result

    return wrapper


for _name in list(globals()):
    if _name.startswith("v_"):
        globals()[_name] = _observed(_name, globals()[_name])
del _name
