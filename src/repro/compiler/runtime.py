"""Runtime helpers available to generated code under the name ``rt``.

These mirror LB2's tiny C support layer (timing, printing, sorting): code on
the per-tuple hot path is always emitted inline by the generators; only
per-query, cold operations (sorting a result buffer, building a comparison
key) are routed through here.
"""

from __future__ import annotations

import functools
from typing import Iterable, Sequence


def sort_rows(rows: list, spec: Sequence[tuple[int, bool]]) -> list:
    """Sort ``rows`` (tuples) in place by a multi-key ordering spec.

    ``spec`` is a sequence of ``(column_index, ascending)`` pairs.  Mixed
    ascending/descending orderings over non-numeric keys cannot be expressed
    with a single ``key=`` function, so a comparator is used; this runs once
    per query, never per tuple of the hot path.
    """
    if all(asc for _, asc in spec):
        rows.sort(key=lambda row: tuple(row[i] for i, _ in spec))
        return rows

    def compare(a: tuple, b: tuple) -> int:
        for idx, asc in spec:
            av, bv = a[idx], b[idx]
            if av == bv:
                continue
            if av < bv:
                return -1 if asc else 1
            return 1 if asc else -1
        return 0

    rows.sort(key=functools.cmp_to_key(compare))
    return rows


def topk_rows(rows: list, spec: Sequence[tuple[int, bool]], n: int) -> list:
    """The ``n`` smallest rows under the multi-key ordering spec.

    Backs the Limit-over-Sort fusion: a bounded heap selection instead of a
    full sort when only the top of the ordering is needed.
    """
    import heapq

    if n <= 0:
        return []
    if all(asc for _, asc in spec):
        return heapq.nsmallest(n, rows, key=lambda row: tuple(row[i] for i, _ in spec))

    def compare(a: tuple, b: tuple) -> int:
        for idx, asc in spec:
            av, bv = a[idx], b[idx]
            if av == bv:
                continue
            if av < bv:
                return -1 if asc else 1
            return 1 if asc else -1
        return 0

    return heapq.nsmallest(n, rows, key=functools.cmp_to_key(compare))


def argsort_columns(columns: Sequence[list], spec: Sequence[tuple[int, bool]]) -> list[int]:
    """Row-id permutation ordering columnar buffers by a multi-key spec.

    ``columns[i]`` is the i-th field's value list; ``spec`` pairs are
    ``(column index, ascending)``.  The columnar counterpart of
    :func:`sort_rows` -- used when the compiler materializes pipeline
    breakers in column layout (Section 4.1 of the paper).
    """
    size = len(columns[0]) if columns else 0
    order = list(range(size))
    if all(asc for _, asc in spec):
        order.sort(key=lambda rid: tuple(columns[i][rid] for i, _ in spec))
        return order

    def compare(a: int, b: int) -> int:
        for i, asc in spec:
            av, bv = columns[i][a], columns[i][b]
            if av == bv:
                continue
            if av < bv:
                return -1 if asc else 1
            return 1 if asc else -1
        return 0

    order.sort(key=functools.cmp_to_key(compare))
    return order


def like(value: str, pattern: str) -> bool:
    """SQL LIKE with ``%`` wildcards (the general fallback path).

    The compiler specializes the common shapes (``abc%``, ``%abc``,
    ``%abc%``, exact) to direct string operations at generation time; this
    helper handles arbitrary multi-``%`` patterns such as ``%a%b%``.
    ``_`` (single char) is supported for completeness.
    """
    import re

    regex = "^" + "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern
    ) + "$"
    return re.match(regex, value) is not None


def like_contains2(value: str, first: str, second: str) -> bool:
    """Match ``%first%second%``: ordered, non-overlapping containment."""
    start = value.find(first)
    if start < 0:
        return False
    return value.find(second, start + len(first)) >= 0


def map_full() -> None:
    """Generated open-addressing maps call this when every slot is taken."""
    raise RuntimeError(
        "open-addressing hash map is full; recompile with a larger "
        "open_map_size (Config.open_map_size)"
    )


def round_half_up(value: float, digits: int) -> float:
    """Decimal-style rounding used when formatting numeric results."""
    scale = 10 ** digits
    if value >= 0:
        return int(value * scale + 0.5) / scale
    return -int(-value * scale + 0.5) / scale


def timed(fn, *args, **kwargs):
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    import time

    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def first_or_none(seq: Iterable):
    """Return the first element of ``seq`` or None when empty."""
    for item in seq:
        return item
    return None


# -- cooperative budget / fault hooks ----------------------------------------
#
# Residual programs compiled with ``Config(budget_checks=True)`` call
# ``rt.scan_tick(n)`` periodically from their scan loops.  The call fans out
# to whatever hooks the resilience layer has installed (a budget guard, a
# mid-scan fault injector); with no hooks installed it is a no-op, and with
# budget checks disabled (the default) it is never even emitted, so the
# residual source is byte-identical to the unguarded build.

_TICK_HOOKS: list = []


def push_tick_hook(hook) -> None:
    """Install a ``hook(n)`` callable invoked on every ``scan_tick``."""
    _TICK_HOOKS.append(hook)


def pop_tick_hook(hook) -> None:
    """Remove a previously installed tick hook (last occurrence).

    Compared with ``==``, not ``is``: callers pass bound methods, and each
    ``obj.method`` access builds a fresh bound-method object.
    """
    for i in range(len(_TICK_HOOKS) - 1, -1, -1):
        if _TICK_HOOKS[i] == hook:
            del _TICK_HOOKS[i]
            return


def scan_tick(n: int = 1) -> None:
    """Cooperative checkpoint emitted into guarded scan loops.

    ``n`` is the number of rows processed since the previous tick.  Hooks
    may raise (``BudgetExceeded``, ``InjectedFault``) to abort the residual
    program; the exception propagates out of the generated function to the
    caller, exactly like any other runtime failure.
    """
    for hook in list(_TICK_HOOKS):
        hook(n)
