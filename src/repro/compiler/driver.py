"""The compilation driver: physical plan -> residual program -> callable.

``LB2Compiler.compile`` performs the whole first Futamura projection in one
call: it runs the staged evaluator over the plan (one pass, emitting IR),
renders Python source, and compiles it with the host ``compile()``.  The
returned :class:`CompiledQuery` carries the source (both Python and the
illustrative C rendering) plus timing of the generation and compilation
steps, which the Figure 13 experiment reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.analysis.verifier import Verifier
from repro.analysis.walker import IRVerificationError, iter_stmts
from repro.catalog.catalog import Catalog
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.plan import physical as phys
from repro.plan.params import ParamSlot, check_bindings, collect_params
from repro.staging import generate_c, generate_python
from repro.staging.builder import StagingContext
from repro.staging.pygen import PyProgram
from repro.storage.database import Database
from repro.compiler.lb2 import CompileError, Config, StagedPlanBuilder
from repro.compiler.staged_record import value_output
from repro.resilience.faults import fault_point
from repro.staging import ir


@dataclass
class CompiledQuery:
    """A compiled query: sources, entry points, and compile-time metrics."""

    plan: phys.PhysicalPlan
    source: str
    program: PyProgram
    field_names: list[str]
    generation_seconds: float
    compile_seconds: float
    hoisted: bool = False
    instrumented: bool = False
    codegen_stats: dict = field(default_factory=dict, repr=False)
    last_stats: Optional[dict] = field(default=None, repr=False)
    last_times: Optional[dict] = field(default=None, repr=False)
    last_kernels: Optional[dict] = field(default=None, repr=False)
    functions: list[ir.Function] = field(default_factory=list, repr=False)
    param_signature: tuple[ParamSlot, ...] = ()
    _prepared: Optional[Callable] = field(default=None, repr=False)
    _c_source: str = field(default="", repr=False)

    def run(self, db: Database, params=None) -> list[tuple]:
        """Execute the compiled query against ``db``; returns result rows.

        For a parameterized plan, ``params`` supplies the bindings (a
        sequence for positional ``?`` statements, a mapping for ``:name``
        statements); they are validated against :attr:`param_signature`
        and passed to the residual program as its runtime parameter
        vector -- the compiled code is shared across bindings.  Arity or
        type mismatches raise the typed ``E_PARAM`` error.

        In instrument mode, each run refreshes three per-operator views:
        :attr:`last_stats` (label -> rows emitted), :attr:`last_times`
        (label -> inclusive wall-clock seconds), and :attr:`last_kernels`
        (kernel name -> ``{"calls", "rows"}``; empty under scalar codegen).
        """
        out: list[tuple] = []
        if self.param_signature or params:
            vector = list(check_bindings(self.param_signature, params))
            if self.instrumented:
                return self._run_instrumented(db, out, (vector,))
            self.program.fn("query")(db, out, vector)
            return out
        if self.hoisted:
            # Figure 7-b2: allocation ran in prepare(); time only the closure.
            run = self.program.fn("prepare")(db)
            run(out)
        elif self.instrumented:
            self._run_instrumented(db, out, ())
        else:
            self.program.fn("query")(db, out)
        return out

    def _run_instrumented(
        self, db: Database, out: list, extra_args: tuple
    ) -> list[tuple]:
        # Counters and @t:-prefixed timings share the staged stats dict;
        # split them back apart so counter consumers never see times.
        raw: dict = {}
        kernels: dict = {}

        def observe(name: str, nrows: int) -> None:
            entry = kernels.setdefault(name, {"calls": 0, "rows": 0})
            entry["calls"] += 1
            entry["rows"] += nrows

        from repro.compiler import runtime

        previous = runtime.set_kernel_observer(observe)
        try:
            self.program.fn("query")(db, out, *extra_args, raw)
        finally:
            runtime.set_kernel_observer(previous)
        self.last_stats = {
            k: v for k, v in raw.items() if not k.startswith("@t:")
        }
        self.last_times = {
            k[3:]: v for k, v in raw.items() if k.startswith("@t:")
        }
        self.last_kernels = kernels
        return out

    def prepare(self, db: Database) -> Callable[[list], None]:
        """Hoisted mode: allocate now, return the hot-path closure."""
        if not self.hoisted:
            raise ValueError("query was not compiled in hoisted mode")
        return self.program.fn("prepare")(db)

    def c_source(self) -> str:
        """The illustrative C rendering of the same staged program."""
        return self._c_source


class LB2Compiler:
    """Compiles physical plans by specializing the staged evaluator."""

    def __init__(
        self,
        catalog: Catalog,
        db: Database,
        config: Optional[Config] = None,
    ) -> None:
        self.catalog = catalog
        self.db = db
        self.config = config or Config()

    def compile(
        self,
        plan: phys.PhysicalPlan,
        name: str = "query",
        split_prepare: bool = False,
        verify: bool = True,
    ) -> CompiledQuery:
        """Specialize the evaluator to ``plan``; returns a runnable query.

        ``split_prepare=True`` emits the Figure 7 two-function form:
        ``prepare(db)`` performs allocations and returns a ``run(out)``
        closure containing only the hot path.

        ``verify=True`` (the default) runs the IR verifier over the staged
        program between generation and host compilation, raising
        :class:`repro.analysis.IRVerificationError` -- with structured
        diagnostics and a source excerpt -- instead of letting a codegen
        bug surface as an arbitrary runtime failure.
        """
        plan.validate(self.catalog)
        param_slots = collect_params(plan)
        if split_prepare and self.config.instrument:
            raise CompileError(
                "instrument mode is not supported with split_prepare: the "
                "stats dict is a run-time parameter, but the hoisted "
                "prepare/run split closes over run-time state at prepare "
                "time; compile with either instrument or split_prepare"
            )
        if split_prepare and param_slots:
            raise CompileError(
                "parameterized plans are not supported with split_prepare: "
                "prepare() stages build-side work at hoist time, but a "
                "parameter is a per-execution value; the session cache "
                "already gives parameterized statements compile-once "
                "economics without the prepare/run split"
            )
        with span("codegen") as sp:
            fault_point("codegen")
            t0 = time.perf_counter()
            ctx = StagingContext()
            builder = StagedPlanBuilder(self.catalog, self.db, ctx, self.config)
            root = builder.build(plan)
            field_names = plan.field_names(self.catalog)

            def output_cb(rec) -> None:
                # rows() devectorizes batch records at the sink; it is the
                # identity on scalar records.
                def per_row(r) -> None:
                    values = [value_output(r[n]).expr for n in field_names]
                    ctx.call_stmt("out_append", [_tuple_rep(ctx, values)])

                rec.rows(per_row)

            if split_prepare:
                with ctx.function("prepare", ["db"]):
                    datapath = root.exec()
                    with ctx.nested_function("run", ["out"]):
                        datapath(output_cb)
                    ctx.emit(ir.Return(ir.Sym("run")))
            else:
                params = ["db", "out"]
                if param_slots:
                    params.append("params")
                if self.config.instrument:
                    params.append("stats")
                with ctx.function("query", params):
                    if self.config.instrument:
                        builder.stats_sym = ctx.sym("stats", "void*")
                    # Bind each parameter slot once at the top of the
                    # function: the residual program closes over the
                    # runtime vector, it never bakes bindings in.
                    for slot in param_slots:
                        sym = ctx.bind(
                            ir.Index(ir.Sym("params"), ir.Const(slot.index)),
                            ctype=slot.ctype.ctype,
                            prefix="param",
                        )
                        ctx.register_param(
                            slot.index, ctx.sym(sym.name, slot.ctype.ctype)
                        )
                    datapath = root.exec()
                    datapath(output_cb)

            functions = ctx.program()
            header = f"residual program for plan rooted at {type(plan).__name__}"
            opt_stats = None
            if self.config.opt_level:
                # The optimizer sits between generation and rendering; at the
                # default opt_level=0 this branch never runs and the residual
                # source is byte-identical to the unoptimized pipeline.
                from repro.analysis.opt import optimize

                with span("optimize") as osp:
                    result = optimize(
                        functions, level=self.config.opt_level, validate=True
                    )
                    functions = result.functions
                    opt_stats = result.stats
                    if osp:
                        osp.meta["level"] = self.config.opt_level
                        osp.meta["stmts_removed"] = opt_stats.stmts_removed
                        osp.meta["hoisted"] = opt_stats.hoisted
            source = generate_python(functions, header=header)
            generation_seconds = time.perf_counter() - t0
            if sp:
                sp.meta["backend"] = builder.backend.name
                sp.meta["residual_bytes"] = len(source)
                sp.meta["ir_stmts"] = sum(
                    1 for fn in functions for _ in iter_stmts(fn.body)
                )

        if verify:
            with span("verify"):
                fault_point("verify")
                diagnostics = Verifier().run(functions)
                if diagnostics:
                    raise IRVerificationError(diagnostics, functions)

        with span("host-compile"):
            fault_point("host-compile")
            t1 = time.perf_counter()
            program = PyProgram(source)
            compile_seconds = time.perf_counter() - t1

        REGISTRY.counter("compile.count")
        REGISTRY.observe("compile.generation_seconds", generation_seconds)
        REGISTRY.observe("compile.host_seconds", compile_seconds)
        if opt_stats is not None:
            REGISTRY.counter("opt.stmts_removed", opt_stats.stmts_removed)
            REGISTRY.counter("opt.exprs_cse", opt_stats.exprs_cse)
            REGISTRY.counter("opt.hoisted", opt_stats.hoisted)
            REGISTRY.counter(
                "opt.copies_propagated", opt_stats.copies_propagated
            )
            REGISTRY.counter("opt.consts_folded", opt_stats.consts_folded)
            REGISTRY.counter(
                "opt.branches_simplified", opt_stats.branches_simplified
            )

        compiled = CompiledQuery(
            plan=plan,
            source=source,
            program=program,
            field_names=field_names,
            generation_seconds=generation_seconds,
            compile_seconds=compile_seconds,
            hoisted=split_prepare,
            instrumented=self.config.instrument,
            codegen_stats=builder.backend.stats(),
            functions=functions,
            param_signature=param_slots,
        )
        if opt_stats is not None:
            compiled.codegen_stats["opt"] = opt_stats.to_dict()
        compiled._c_source = generate_c(functions, header=header)
        return compiled


def _tuple_rep(ctx: StagingContext, exprs) -> object:
    from repro.staging.rep import Rep

    sym = ctx.bind(ir.TupleExpr(tuple(exprs)), ctype="void*")
    return Rep(sym, ctx, ctype="void*")


def execute_compiled(
    plan: phys.PhysicalPlan,
    db: Database,
    catalog: Catalog,
    config: Optional[Config] = None,
) -> list[tuple]:
    """One-shot convenience: compile and run a plan."""
    return LB2Compiler(catalog, db, config).compile(plan).run(db)
