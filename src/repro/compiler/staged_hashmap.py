"""Generation-time hash map abstractions (Section 4.2).

These classes are the compiler's ``HashMap`` / ``HashMultiMap``: they exist
only while generating code and dissolve completely into the residual
program.  Two aggregate-map implementations are provided, selectable per
compilation (the paper: "adding a new hash map variant requires a
high-level implementation ... using normal object-oriented techniques"):

* :class:`NativeAggMap` -- lowers to a Python dict keyed by the group key;
  the idiomatic choice for the Python target (Python's dict is a C hash
  table, the moral equivalent of LB2 leaning on specialized C structures).
* :class:`OpenAggMap` -- the paper-faithful open-addressing layout of
  Figure 14: columnar key/aggregate arrays, an occupancy array, a ``used``
  insertion log, linear probing with a peeled fast path.  This demonstrates
  data-structure specialization producing only flat array operations.

Joins use :class:`NativeMultiMap` (key -> list of materialized row tuples)
and semi/anti joins use :class:`StagedSet`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.staging import ir
from repro.staging.builder import StagingContext
from repro.staging.rep import Rep, RepBool, RepInt, rep_for_ctype
from repro.compiler.staged_record import rebuild_record


class Slots:
    """Read/write access to one group's aggregate slots during an update."""

    def get(self, i: int) -> Rep:
        raise NotImplementedError

    def set(self, i: int, value: Rep) -> None:
        raise NotImplementedError


class _ListSlots(Slots):
    """Slots stored in a Python list (native map state)."""

    def __init__(self, ctx: StagingContext, state: Rep, ctypes: Sequence[str]):
        self.ctx = ctx
        self.state = state
        self.ctypes = ctypes

    def get(self, i: int) -> Rep:
        sym = self.ctx.bind(ir.Index(self.state.expr, ir.Const(i)), ctype=self.ctypes[i])
        return rep_for_ctype(self.ctypes[i])(sym, self.ctx)

    def set(self, i: int, value: Rep) -> None:
        self.ctx.emit(ir.SetIndex(self.state.expr, ir.Const(i), value.expr))


class _ColumnSlots(Slots):
    """Slots stored in columnar arrays at a probe position (open map)."""

    def __init__(self, ctx: StagingContext, arrays: Sequence[Rep], pos: Rep,
                 ctypes: Sequence[str]):
        self.ctx = ctx
        self.arrays = arrays
        self.pos = pos
        self.ctypes = ctypes

    def get(self, i: int) -> Rep:
        sym = self.ctx.bind(
            ir.Index(self.arrays[i].expr, self.pos.expr), ctype=self.ctypes[i]
        )
        return rep_for_ctype(self.ctypes[i])(sym, self.ctx)

    def set(self, i: int, value: Rep) -> None:
        self.ctx.emit(ir.SetIndex(self.arrays[i].expr, self.pos.expr, value.expr))


def hash_keys(ctx: StagingContext, keys: Sequence[Rep]) -> RepInt:
    """Combine key hashes; strings hash via the host hash, doubles truncate
    to their integer part (equality is still checked on the stored key, so
    any deterministic projection is a valid hash), and integers are their
    own hash (matching the generated-C ``hash_string`` + mix)."""
    combined: RepInt | None = None
    for key in keys:
        if key.ctype == "char*":
            piece = key.hash()  # type: ignore[attr-defined]
        elif key.ctype == "double":
            piece = ctx.call("to_int", [key], result="long")
        else:
            piece = RepInt(key.expr, ctx)
        if combined is None:
            combined = piece
        else:
            combined = combined * 1000003 + piece
    assert combined is not None
    return combined


def _keys_tuple(ctx: StagingContext, keys: Sequence[Rep]) -> Rep:
    """A single scalar key, or a staged tuple for composite keys."""
    if len(keys) == 1:
        return keys[0]
    sym = ctx.bind(ir.TupleExpr(tuple(k.expr for k in keys)), ctype="void*")
    return Rep(sym, ctx, ctype="void*")


InsertFn = Callable[[], list[Rep]]
UpdateFn = Callable[[Slots], None]
ForeachFn = Callable[[list[Rep], Slots], None]


class _AggAccumulate:
    """Shared per-record accumulate protocol for scalar aggregation maps.

    The operator hands over the record plus *how* to stage its keys and
    aggregates; the map decides what residual code one row's worth of
    accumulation becomes.  A batch map (``repro.compiler.vec.VecAggMap``)
    implements the same method over whole columns at once.
    """

    def accumulate(self, rec, stage_keys, staged_aggs) -> None:
        keys = stage_keys(rec)
        values = [agg.row_value(rec) for agg in staged_aggs]

        def on_insert() -> list[Rep]:
            init: list[Rep] = []
            for agg, value in zip(staged_aggs, values):
                init.extend(agg.init_values(self.ctx, value))
            return init

        def on_update(slots: Slots) -> None:
            for agg, value in zip(staged_aggs, values):
                agg.update(self.ctx, slots, value)

        self.update(keys, on_insert, on_update)


class NativeAggMap(_AggAccumulate):
    """Aggregation map lowering to a Python dict of slot lists."""

    def __init__(
        self,
        ctx: StagingContext,
        key_ctypes: Sequence[str],
        slot_ctypes: Sequence[str],
    ) -> None:
        self.ctx = ctx
        self.key_ctypes = list(key_ctypes)
        self.slot_ctypes = list(slot_ctypes)
        self.hm = ctx.call("dict_new", [], result="void*", prefix="hm")

    def update(self, keys: Sequence[Rep], on_insert: InsertFn, on_update: UpdateFn) -> None:
        ctx = self.ctx
        key = _keys_tuple(ctx, keys)
        state = ctx.call("dict_get", [self.hm, key, None], result="void*", prefix="st")
        missing = ctx.call("is_none", [state], result="bool")
        with ctx.if_(missing):
            init = on_insert()
            ctx.emit(
                ir.SetIndex(
                    self.hm.expr, key.expr, ir.ListExpr(tuple(v.expr for v in init))
                )
            )
        with ctx.else_():
            on_update(_ListSlots(ctx, state, self.slot_ctypes))

    def foreach(self, body: ForeachFn) -> None:
        ctx = self.ctx
        items = ctx.call("dict_items", [self.hm], result="void*", prefix="it")
        with ctx.for_each(items, prefix="kv", ctype="void*") as kv:
            key = ctx.bind(ir.Index(kv.expr, ir.Const(0)), ctype="void*")
            state = ctx.bind(ir.Index(kv.expr, ir.Const(1)), ctype="void*")
            key_rep = Rep(key, ctx, ctype="void*")
            if len(self.key_ctypes) == 1:
                keys = [rep_for_ctype(self.key_ctypes[0])(key, ctx)]
            else:
                keys = []
                for i, ctype in enumerate(self.key_ctypes):
                    sym = ctx.bind(ir.Index(key_rep.expr, ir.Const(i)), ctype=ctype)
                    keys.append(rep_for_ctype(ctype)(sym, ctx))
            body(keys, _ListSlots(ctx, Rep(state, ctx, ctype="void*"), self.slot_ctypes))

    def is_empty(self) -> RepBool:
        size = self.ctx.call("dict_len", [self.hm], result="long")
        return size == 0

    def lookup(self, keys: Sequence[Rep]) -> tuple[Rep, "RepBool"]:
        """Probe for a group's state: ``(state, present)`` (GroupJoin probe)."""
        ctx = self.ctx
        key = _keys_tuple(ctx, keys)
        state = ctx.call("dict_get", [self.hm, key, None], result="void*", prefix="gst")
        present = ctx.call("not_none", [state], result="bool")
        return state, present  # type: ignore[return-value]

    def slots_of(self, state: Rep) -> Slots:
        return _ListSlots(self.ctx, state, self.slot_ctypes)


class OpenAggMap(_AggAccumulate):
    """The Figure 14 layout: columnar arrays + open addressing.

    The probe loop peels its first iteration into a fast path (hit or empty
    at the home slot) exactly as the paper's generated code does; collisions
    fall into the general probing loop.
    """

    def __init__(
        self,
        ctx: StagingContext,
        key_ctypes: Sequence[str],
        slot_ctypes: Sequence[str],
        size: int = 1 << 16,
    ) -> None:
        if size & (size - 1):
            raise ValueError(f"open map size must be a power of two, got {size}")
        self.ctx = ctx
        self.key_ctypes = list(key_ctypes)
        self.slot_ctypes = list(slot_ctypes)
        self.size = size
        zero_of = {"long": 0, "double": 0.0, "bool": False}
        self.key_arrays = [
            ctx.call("alloc", [size, _zero_for(ct)], result="void*", prefix="keys")
            for ct in self.key_ctypes
        ]
        self.slot_arrays = [
            ctx.call(
                "alloc",
                [size, zero_of.get(ct, None)],
                result="void*",
                prefix="agg",
            )
            for ct in self.slot_ctypes
        ]
        self.occupied = ctx.call("alloc", [size, 0], result="void*", prefix="occ")
        self.used = ctx.call("list_new", [], result="void*", prefix="used")

    def _keys_match(self, pos: Rep, keys: Sequence[Rep]) -> RepBool:
        ctx = self.ctx
        result: RepBool | None = None
        for array, key in zip(self.key_arrays, keys):
            stored = ctx.bind(ir.Index(array.expr, pos.expr), ctype=key.ctype)
            equal = rep_for_ctype(key.ctype)(stored, ctx) == key
            result = equal if result is None else (result & equal)
        assert result is not None
        return result

    def _insert_at(self, pos: Rep, keys: Sequence[Rep], on_insert: InsertFn) -> None:
        ctx = self.ctx
        ctx.emit(ir.SetIndex(self.occupied.expr, pos.expr, ir.Const(1)))
        for array, key in zip(self.key_arrays, keys):
            ctx.emit(ir.SetIndex(array.expr, pos.expr, key.expr))
        for array, value in zip(self.slot_arrays, on_insert()):
            ctx.emit(ir.SetIndex(array.expr, pos.expr, value.expr))
        ctx.call_stmt("list_append", [self.used, pos])
        count = ctx.call("list_len", [self.used], result="long")
        with ctx.if_(count == self.size):
            ctx.call_stmt("map_full", [])

    def update(self, keys: Sequence[Rep], on_insert: InsertFn, on_update: UpdateFn) -> None:
        ctx = self.ctx
        home = ctx.bind(
            ir.Bin("%", hash_keys(ctx, keys).expr, ir.Const(self.size)), ctype="long"
        )
        home_rep = RepInt(home, ctx)
        occupied = ctx.bind(ir.Index(self.occupied.expr, home), ctype="long")
        occupied_rep = RepInt(occupied, ctx)
        # Fast path: home slot hit (the paper's peeled first iteration).
        hit = (occupied_rep == 1) & self._keys_match(home_rep, keys)
        with ctx.if_(hit):
            on_update(_ColumnSlots(ctx, self.slot_arrays, home_rep, self.slot_ctypes))
        with ctx.else_():
            with ctx.if_(occupied_rep == 0):
                self._insert_at(home_rep, keys, on_insert)
            with ctx.else_():
                # Slow path: linear probing from the next slot.
                pos = ctx.var(
                    RepInt(
                        ctx.bind(
                            ir.Bin("%", ir.Bin("+", home, ir.Const(1)), ir.Const(self.size)),
                            ctype="long",
                        ),
                        ctx,
                    ),
                    prefix="probe",
                )
                with ctx.loop():
                    cur = pos.get()
                    occ = RepInt(
                        ctx.bind(ir.Index(self.occupied.expr, cur.expr), ctype="long"),
                        ctx,
                    )
                    with ctx.if_(occ == 0):
                        self._insert_at(cur, keys, on_insert)
                        ctx.break_()
                    with ctx.else_():
                        with ctx.if_(self._keys_match(cur, keys)):
                            on_update(
                                _ColumnSlots(
                                    ctx, self.slot_arrays, cur, self.slot_ctypes
                                )
                            )
                            ctx.break_()
                        with ctx.else_():
                            pos.set((cur + 1) % self.size)

    def foreach(self, body: ForeachFn) -> None:
        ctx = self.ctx
        count = ctx.call("list_len", [self.used], result="long")
        with ctx.for_range(0, count, prefix="ui") as i:
            pos_sym = ctx.bind(ir.Index(self.used.expr, i.expr), ctype="long")
            pos = RepInt(pos_sym, ctx)
            keys = []
            for array, ctype in zip(self.key_arrays, self.key_ctypes):
                sym = ctx.bind(ir.Index(array.expr, pos.expr), ctype=ctype)
                keys.append(rep_for_ctype(ctype)(sym, ctx))
            body(keys, _ColumnSlots(ctx, self.slot_arrays, pos, self.slot_ctypes))

    def is_empty(self) -> RepBool:
        count = self.ctx.call("list_len", [self.used], result="long")
        return count == 0


class NativeMultiMap:
    """Join build side: key -> list of materialized row tuples."""

    def __init__(self, ctx: StagingContext) -> None:
        self.ctx = ctx
        self.hm = ctx.call("dict_new", [], result="void*", prefix="jm")

    def insert(self, keys: Sequence[Rep], values: Sequence[Rep]) -> None:
        ctx = self.ctx
        key = _keys_tuple(ctx, keys)
        row = ctx.bind(ir.TupleExpr(tuple(v.expr for v in values)), ctype="void*")
        bucket = ctx.call("dict_get", [self.hm, key, None], result="void*", prefix="bkt")
        missing = ctx.call("is_none", [bucket], result="bool")
        with ctx.if_(missing):
            ctx.emit(
                ir.SetIndex(self.hm.expr, key.expr, ir.ListExpr((row,)))
            )
        with ctx.else_():
            ctx.call_stmt("list_append", [bucket, Rep(row, ctx, ctype="void*")])

    def lookup(self, keys: Sequence[Rep]) -> Rep:
        """The bucket (possibly empty tuple) for a probe key."""
        key = _keys_tuple(self.ctx, keys)
        return self.ctx.call("dict_get", [self.hm, key, ()], result="void*", prefix="ms")

    def lookup_or_none(self, keys: Sequence[Rep]) -> Rep:
        """The bucket or None (outer joins need the distinction)."""
        key = _keys_tuple(self.ctx, keys)
        return self.ctx.call("dict_get", [self.hm, key, None], result="void*", prefix="ms")

    def each_match(self, keys: Sequence[Rep], descs, fn) -> None:
        """Probe and run ``fn`` on each matching build-side record."""
        bucket = self.lookup(keys)
        with self.ctx.for_each(bucket, prefix="m", ctype="void*") as row:
            fn(rebuild_record(self.ctx, row, descs))

    def each_match_or_missing(self, keys: Sequence[Rep], descs, fn, on_missing) -> None:
        """Probe with an explicit no-match branch (outer join shape)."""
        bucket = self.lookup_or_none(keys)
        missing = self.ctx.call("is_none", [bucket], result="bool")
        with self.ctx.if_(missing):
            on_missing()
        with self.ctx.else_():
            with self.ctx.for_each(bucket, prefix="m", ctype="void*") as row:
                fn(rebuild_record(self.ctx, row, descs))


class StagedSet:
    """Semi/anti-join key set, and DISTINCT state."""

    def __init__(self, ctx: StagingContext) -> None:
        self.ctx = ctx
        self.set_ = ctx.call("set_new", [], result="void*", prefix="ks")

    def add(self, keys: Sequence[Rep]) -> None:
        key = _keys_tuple(self.ctx, keys)
        self.ctx.call_stmt("set_add", [self.set_, key])

    def contains(self, keys: Sequence[Rep]) -> RepBool:
        key = _keys_tuple(self.ctx, keys)
        return self.ctx.call("set_contains", [self.set_, key], result="bool")  # type: ignore[return-value]

    def add_if_absent(self, keys: Sequence[Rep]) -> RepBool:
        """True when the key was new (DISTINCT forwarding condition)."""
        ctx = self.ctx
        key = _keys_tuple(ctx, keys)
        before = ctx.call("set_len", [self.set_], result="long")
        ctx.call_stmt("set_add", [self.set_, key])
        after = ctx.call("set_len", [self.set_], result="long")
        return after > before  # type: ignore[return-value]


def _zero_for(ctype: str):
    if ctype == "double":
        return 0.0
    if ctype == "char*":
        return ""
    if ctype == "bool":
        return False
    return 0
