"""The LB2 staged evaluator: data-centric with callbacks, over staged records.

This module is the push interpreter of :mod:`repro.engine.push`, re-typed.
Every operator exposes ``exec() -> datapath`` where ``datapath(cb)`` runs
the operator symbolically, calling ``cb`` on each *staged* record.  Running
the tree therefore emits the residual program -- the first Futamura
projection performed programmatically, in one pass (Sections 2-4).

The two-phase ``exec`` protocol is the paper's code-motion device (Section
4.4, Figure 7): calling ``exec()`` emits data-structure allocations and
cold-path binds *now* (when hoisting is on) and returns a closure that emits
the hot path wherever the caller stands.  With hoisting off, allocations are
deferred into the data path -- the ablation of experiment E9.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Callable, Optional, Sequence

from repro.errors import ReproError
from repro.catalog.catalog import Catalog
from repro.catalog.types import ColumnType
from repro.plan import physical as phys
from repro.plan.expressions import Col
from repro.staging import ir
from repro.staging.builder import StagingContext
from repro.staging.rep import Rep, RepInt, RepStr, rep_for_ctype
from repro.storage.database import Database
from repro.compiler.staged_agg import StagedAgg, all_slot_ctypes, build_staged_aggs
from repro.compiler.staged_hashmap import (
    NativeAggMap,
    NativeMultiMap,
    OpenAggMap,
    StagedSet,
)
from repro.compiler.staged_record import (
    DicValue,
    FieldDesc,
    StagedRecord,
    StagedValue,
    value_output,
    value_payload,
)


class CompileError(ReproError):
    """Raised when a plan cannot be compiled."""

    code = "E_COMPILE"
    phase = "codegen"


@dataclass(frozen=True)
class Config:
    """Compilation knobs (the paper's per-optimization flags).

    * ``hashmap`` -- ``"native"`` (Python dict) or ``"open"`` (the paper's
      open-addressing columnar layout) for aggregation maps.
    * ``open_map_size`` -- slot count for open maps (power of two).
    * ``hoist`` -- allocate data structures ahead of the hot path (4.4).
    * ``use_dictionaries`` -- read dictionary-compressed columns when the
      database provides them (4.3).
    * ``budget_checks`` -- emit a periodic ``rt.scan_tick`` checkpoint into
      scan loops so the resilience layer can enforce wall-clock/row budgets
      and inject mid-scan faults.  Off by default: with the flag off the
      residual source is byte-identical to an unguarded build.
    * ``budget_check_interval`` -- rows between checkpoints in counted scan
      loops (candidate-list scans check per row).
    """

    hashmap: str = "native"
    open_map_size: int = 1 << 16
    hoist: bool = True
    use_dictionaries: bool = True
    instrument: bool = False
    sort_layout: str = "row"  # "row" (tuple buffer) or "column" (SoA + argsort)
    budget_checks: bool = False
    budget_check_interval: int = 1024

    def __post_init__(self) -> None:
        if self.hashmap not in ("native", "open"):
            raise CompileError(f"unknown hashmap implementation {self.hashmap!r}")
        if self.sort_layout not in ("row", "column"):
            raise CompileError(f"unknown sort layout {self.sort_layout!r}")
        if self.budget_check_interval <= 0:
            raise CompileError("budget_check_interval must be positive")


@dataclass(frozen=True)
class StaticField:
    """Generation-time field info: name, SQL type, compressed or not."""

    name: str
    type: ColumnType
    compressed: bool = False

    @property
    def ctype(self) -> str:
        return "long" if self.compressed else self.type.ctype


RecCallback = Callable[[StagedRecord], None]
Datapath = Callable[[RecCallback], None]


class StagedOp:
    """Base staged operator."""

    def __init__(self, comp: "StagedPlanBuilder") -> None:
        self.comp = comp
        self.ctx = comp.ctx

    def exec(self) -> Datapath:
        raise NotImplementedError

    # -- the alloc/datapath split ------------------------------------------------

    def _two_phase(self, allocate: Callable[[], object],
                   emit: Callable[[object, RecCallback], None]) -> Datapath:
        """Wire an allocation phase and a hot-path phase per the config."""
        if self.comp.config.hoist:
            state = allocate()

            def datapath(cb: RecCallback) -> None:
                emit(state, cb)

            return datapath

        holder: dict[str, object] = {}

        def datapath_lazy(cb: RecCallback) -> None:
            if "state" not in holder:
                holder["state"] = allocate()
            emit(holder["state"], cb)

        return datapath_lazy


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------


@dataclass
class _ScanState:
    size: Rep
    loaders_at: Callable[[Rep], dict[str, Callable[[], StagedValue]]]
    descs: list[FieldDesc]


class StagedScan(StagedOp):
    def __init__(self, comp: "StagedPlanBuilder", node: phys.Scan) -> None:
        super().__init__(comp)
        self.node = node

    def _allocate(self) -> _ScanState:
        return _bind_table(self.comp, self.node.table, self.node.rename_map)

    def exec(self) -> Datapath:
        def emit(state: _ScanState, cb: RecCallback) -> None:
            bounds = self.comp.partition_bounds_for(self.node)
            if bounds is not None:
                # Section 4.5: this is the partitioned (driving) scan; the
                # generated partial covers rows [lo, hi).
                lo, hi = bounds
                with self.ctx.for_range(lo, hi, prefix="i") as i:
                    _emit_scan_tick(self.comp, i)
                    cb(StagedRecord(self.ctx, state.descs, state.loaders_at(i)))
            else:
                with self.ctx.for_range(0, state.size, prefix="i") as i:
                    _emit_scan_tick(self.comp, i)
                    cb(StagedRecord(self.ctx, state.descs, state.loaders_at(i)))

        return self._two_phase(self._allocate, emit)  # type: ignore[arg-type]


class StagedDateIndexScan(StagedOp):
    """Date-partition-pruned scan (Section 4.3).

    Plain mode emits one loop over candidate row ids.  In ``enforce`` mode
    the residual program gets *two* loops: interior partitions run the
    downstream pipeline with **no** date comparison at all (they satisfy
    the range by construction), and only boundary partitions re-check --
    the pipeline code is specialized twice, one generation pass, no
    rewrite rules.
    """

    def __init__(self, comp: "StagedPlanBuilder", node: phys.DateIndexScan) -> None:
        super().__init__(comp)
        self.node = node

    def _allocate(self):
        node = self.node
        state = _bind_table(self.comp, node.table, node.rename_map)
        self.ctx.comment(
            f"date-index scan of {node.table}.{node.column} "
            f"[{node.lo}, {node.hi}] enforce={node.enforce}"
        )
        if node.enforce:
            runs = self.ctx.call(
                "db_date_runs",
                [node.table, node.column, node.lo, node.hi],
                result="void*",
                prefix="runs",
            )
            interior = self.ctx.bind(
                ir.Index(runs.expr, ir.Const(0)), ctype="void*", prefix="inner"
            )
            boundary = self.ctx.bind(
                ir.Index(runs.expr, ir.Const(1)), ctype="void*", prefix="edge"
            )
            return state, Rep(interior, self.ctx, "void*"), Rep(boundary, self.ctx, "void*")
        rows = self.ctx.call(
            "db_date_candidates",
            [node.table, node.column, node.lo, node.hi],
            result="void*",
            prefix="cand",
        )
        return state, rows, None

    def _bound_cond(self, rec: StagedRecord):
        node = self.node
        value = rec[node.column if not node.rename_map else node.rename_map.get(node.column, node.column)]
        cond = None
        if node.lo is not None:
            piece = (value > node.lo) if node.lo_strict else (value >= node.lo)
            cond = piece
        if node.hi is not None:
            piece = (value < node.hi) if node.hi_strict else (value <= node.hi)
            cond = piece if cond is None else (cond & piece)
        return cond

    def exec(self) -> Datapath:
        def emit(state_rows, cb: RecCallback) -> None:
            state, rows, boundary = state_rows
            if boundary is None:
                with self.ctx.for_each(rows, prefix="r", ctype="long") as rowid:
                    _emit_scan_tick(self.comp)
                    cb(StagedRecord(self.ctx, state.descs, state.loaders_at(rowid)))
                return
            # Interior partitions: the range holds by construction.
            self.ctx.comment("interior partitions: no date check needed")
            with self.ctx.for_each(rows, prefix="r", ctype="long") as rowid:
                _emit_scan_tick(self.comp)
                cb(StagedRecord(self.ctx, state.descs, state.loaders_at(rowid)))
            # Boundary partitions: re-check the exact bounds per row.
            self.ctx.comment("boundary partitions: exact bound re-check")
            with self.ctx.for_each(boundary, prefix="b", ctype="long") as rowid:
                rec = StagedRecord(self.ctx, state.descs, state.loaders_at(rowid))
                cond = self._bound_cond(rec)
                if cond is None:
                    cb(rec)
                else:
                    with self.ctx.if_(cond):
                        cb(rec)

        return self._two_phase(self._allocate, emit)  # type: ignore[arg-type]


def _bind_table(
    comp: "StagedPlanBuilder", table: str, rename: dict[str, str]
) -> _ScanState:
    """Bind a table's size, column arrays and dictionary tables (cold path).

    Compressed columns bind the *encoded* integer array plus the decoded
    string table; record loads then produce :class:`DicValue`s.
    """
    ctx = comp.ctx
    ctx.comment(f"columns of table {table!r}")
    size = ctx.call("db_size", [table], result="long", prefix="n")
    schema = comp.catalog.table(table)
    col_syms: dict[str, Rep] = {}
    descs: list[FieldDesc] = []
    for column in schema.columns:
        name = rename.get(column.name, column.name)
        compressed = (
            comp.config.use_dictionaries
            and column.type is ColumnType.STRING
            and comp.db.has_dictionary(table, column.name)
        )
        if compressed:
            col_syms[name] = ctx.call(
                "db_encoded", [table, column.name], result="void*", prefix="enc"
            )
            strings = comp.strings_sym(table, column.name)
            descs.append(
                FieldDesc(
                    name,
                    column.type,
                    dictionary=comp.db.dictionary(table, column.name),
                    strings_sym=strings,
                )
            )
        else:
            col_syms[name] = ctx.call(
                "db_column", [table, column.name], result="void*", prefix="col"
            )
            descs.append(FieldDesc(name, column.type))

    def loaders_at(rowid: Rep) -> dict[str, Callable[[], StagedValue]]:
        loaders: dict[str, Callable[[], StagedValue]] = {}
        for desc in descs:
            loaders[desc.name] = _make_loader(ctx, col_syms[desc.name], rowid, desc)
        return loaders

    return _ScanState(size, loaders_at, descs)


def _make_loader(
    ctx: StagingContext, col: Rep, rowid: Rep, desc: FieldDesc
) -> Callable[[], StagedValue]:
    def load() -> StagedValue:
        sym = ctx.bind(ir.Index(col.expr, rowid.expr), ctype=desc.ctype)
        if desc.compressed:
            assert desc.dictionary is not None and desc.strings_sym is not None
            return DicValue(RepInt(sym, ctx), desc.dictionary, desc.strings_sym, ctx)
        return rep_for_ctype(desc.type.ctype)(sym, ctx)

    return load


def _emit_scan_tick(comp: "StagedPlanBuilder", i: Optional[RepInt] = None) -> None:
    """Emit a cooperative budget/fault checkpoint into the current loop.

    With a counted induction variable ``i`` the check fires every
    ``budget_check_interval`` rows (one modulo + compare per row, a call
    only on the sampled rows); candidate-list loops without a counter
    check per row.  Nothing at all is emitted unless
    ``Config.budget_checks`` is set, keeping default codegen byte-stable.
    """
    if not comp.config.budget_checks:
        return
    interval = comp.config.budget_check_interval
    ctx = comp.ctx
    if i is None or interval <= 1:
        ctx.call_stmt("scan_tick", [1])
        return
    with ctx.if_((i % interval) == 0):
        ctx.call_stmt("scan_tick", [interval])


# ---------------------------------------------------------------------------
# Stateless operators
# ---------------------------------------------------------------------------


class StagedSelect(StagedOp):
    def __init__(self, comp, node: phys.Select, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child

    def exec(self) -> Datapath:
        child_dp = self.child.exec()

        def datapath(cb: RecCallback) -> None:
            def on_rec(rec: StagedRecord) -> None:
                cond = self.node.pred.stage(rec)
                with self.ctx.if_(cond):
                    cb(rec)

            child_dp(on_rec)

        return datapath


class StagedProject(StagedOp):
    def __init__(self, comp, node: phys.Project, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child

    def exec(self) -> Datapath:
        child_dp = self.child.exec()
        null_guard = phys.needs_null_guard(self.node)
        types = self.node.field_types(self.comp.catalog)

        def datapath(cb: RecCallback) -> None:
            def on_rec(rec: StagedRecord) -> None:
                values: dict[str, StagedValue] = {}
                descs: list[FieldDesc] = []
                for name, expr in self.node.outputs:
                    if null_guard and expr.columns():
                        # SQL NULL propagation for the one place a None can
                        # feed arithmetic: projections over global aggregates.
                        present = None
                        for ref in sorted(expr.columns()):
                            check = self.ctx.call("not_none", [rec[ref]], result="bool")
                            present = check if present is None else (present & check)
                        none_rep = Rep(ir.Const(None), self.ctx, ctype="void*")
                        slot = self.ctx.var(none_rep, prefix="proj")
                        with self.ctx.if_(present):
                            slot.set(value_output(expr.stage(rec)))
                        value: StagedValue = rep_for_ctype(types[name].ctype)(
                            ir.Sym(slot.name), self.ctx
                        )
                    else:
                        value = expr.stage(rec)
                    values[name] = value
                    descs.append(_desc_for_value(name, value, rec, expr))
                cb(StagedRecord.from_values(self.ctx, descs, values))

            child_dp(on_rec)

        return datapath


def _desc_for_value(name: str, value: StagedValue, rec: StagedRecord, expr) -> FieldDesc:
    if isinstance(value, DicValue):
        return FieldDesc(
            name,
            ColumnType.STRING,
            dictionary=value.dictionary,
            strings_sym=value.strings_sym,
        )
    type_map = {
        "long": ColumnType.INT,
        "double": ColumnType.FLOAT,
        "bool": ColumnType.BOOL,
        "char*": ColumnType.STRING,
    }
    return FieldDesc(name, type_map.get(value.ctype, ColumnType.INT))


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


def _join_key(value: StagedValue) -> Rep:
    """Join keys compare across tables: decode compressed values so the key
    domain is the raw column domain (different dictionaries stay safe)."""
    return value_output(value)


def _materialize(rec: StagedRecord) -> tuple[list[Rep], list[FieldDesc]]:
    """Force all fields to payload Reps, keeping descriptors for rebuild."""
    payloads: list[Rep] = []
    descs: list[FieldDesc] = []
    for name in rec.field_names:
        value = rec[name]
        payloads.append(value_payload(value))
        descs.append(_desc_from_existing(rec.desc(name), value))
    return payloads, descs


def _desc_from_existing(desc: FieldDesc, value: StagedValue) -> FieldDesc:
    if isinstance(value, DicValue):
        return FieldDesc(
            desc.name,
            desc.type,
            dictionary=value.dictionary,
            strings_sym=value.strings_sym,
        )
    return FieldDesc(desc.name, desc.type)


def _rebuild_record(
    ctx: StagingContext, row: Rep, descs: Sequence[FieldDesc]
) -> StagedRecord:
    """Lazily re-load materialized fields from a row tuple."""
    loaders: dict[str, Callable[[], StagedValue]] = {}
    for i, desc in enumerate(descs):
        loaders[desc.name] = _tuple_loader(ctx, row, i, desc)
    return StagedRecord(ctx, list(descs), loaders)


def _tuple_loader(
    ctx: StagingContext, row: Rep, i: int, desc: FieldDesc
) -> Callable[[], StagedValue]:
    def load() -> StagedValue:
        sym = ctx.bind(ir.Index(row.expr, ir.Const(i)), ctype=desc.ctype)
        if desc.compressed:
            assert desc.dictionary is not None and desc.strings_sym is not None
            return DicValue(RepInt(sym, ctx), desc.dictionary, desc.strings_sym, ctx)
        return rep_for_ctype(desc.type.ctype)(sym, ctx)

    return load


class StagedHashJoin(StagedOp):
    def __init__(self, comp, node: phys.HashJoin, left: StagedOp, right: StagedOp):
        super().__init__(comp)
        self.node = node
        self.left = left
        self.right = right

    def exec(self) -> Datapath:
        left_dp = self.left.exec()
        right_dp = self.right.exec()

        def allocate() -> NativeMultiMap:
            self.ctx.comment("hash join build table")
            return NativeMultiMap(self.ctx)

        def emit(mm: NativeMultiMap, cb: RecCallback) -> None:
            build_descs: list[FieldDesc] = []

            def build(rec: StagedRecord) -> None:
                nonlocal build_descs
                keys = [_join_key(rec[k]) for k in self.node.left_keys]
                payloads, build_descs = _materialize(rec)
                mm.insert(keys, payloads)

            left_dp(build)

            def probe(rec: StagedRecord) -> None:
                keys = [_join_key(rec[k]) for k in self.node.right_keys]
                bucket = mm.lookup(keys)
                with self.ctx.for_each(bucket, prefix="m", ctype="void*") as row:
                    left_rec = _rebuild_record(self.ctx, row, build_descs)
                    cb(left_rec.merged(rec))

            right_dp(probe)

        return self._two_phase(allocate, emit)  # type: ignore[arg-type]


class StagedLeftOuterJoin(StagedOp):
    def __init__(self, comp, node: phys.LeftOuterJoin, left: StagedOp, right: StagedOp):
        super().__init__(comp)
        self.node = node
        self.left = left
        self.right = right

    def exec(self) -> Datapath:
        left_dp = self.left.exec()
        right_dp = self.right.exec()
        right_fields = self.node.right.fields(self.comp.catalog)

        def allocate() -> NativeMultiMap:
            self.ctx.comment("left outer join build table (right side)")
            return NativeMultiMap(self.ctx)

        def emit(mm: NativeMultiMap, cb: RecCallback) -> None:
            build_descs: list[FieldDesc] = []

            def build(rec: StagedRecord) -> None:
                nonlocal build_descs
                keys = [_join_key(rec[k]) for k in self.node.right_keys]
                # Decode compressed values at build time so the match and
                # no-match branches below produce identically-typed fields.
                payloads: list[Rep] = []
                build_descs = []
                for name in rec.field_names:
                    value = value_output(rec[name])
                    payloads.append(value)
                    build_descs.append(FieldDesc(name, rec.desc(name).type))
                mm.insert(keys, payloads)

            right_dp(build)

            def probe(rec: StagedRecord) -> None:
                keys = [_join_key(rec[k]) for k in self.node.left_keys]
                bucket = mm.lookup_or_none(keys)
                missing = self.ctx.call("is_none", [bucket], result="bool")
                with self.ctx.if_(missing):
                    null_values = {
                        name: Rep(ir.Const(None), self.ctx, ctype="void*")
                        for name, _ in right_fields
                    }
                    null_descs = [FieldDesc(n, t) for n, t in right_fields]
                    null_rec = StagedRecord.from_values(
                        self.ctx, null_descs, null_values
                    )
                    cb(rec.merged(null_rec))
                with self.ctx.else_():
                    with self.ctx.for_each(bucket, prefix="m", ctype="void*") as row:
                        right_rec = _rebuild_record(self.ctx, row, build_descs)
                        cb(rec.merged(right_rec))

            left_dp(probe)

        return self._two_phase(allocate, emit)  # type: ignore[arg-type]


class StagedKeySetJoin(StagedOp):
    """Semi (EXISTS) and anti (NOT EXISTS) joins over a staged key set."""

    def __init__(self, comp, node, left: StagedOp, right: StagedOp, keep: bool):
        super().__init__(comp)
        self.node = node
        self.left = left
        self.right = right
        self.keep = keep

    def exec(self) -> Datapath:
        left_dp = self.left.exec()
        right_dp = self.right.exec()

        def allocate() -> StagedSet:
            kind = "semi" if self.keep else "anti"
            self.ctx.comment(f"{kind} join key set")
            return StagedSet(self.ctx)

        def emit(keyset: StagedSet, cb: RecCallback) -> None:
            def build(rec: StagedRecord) -> None:
                keyset.add([_join_key(rec[k]) for k in self.node.right_keys])

            right_dp(build)

            def probe(rec: StagedRecord) -> None:
                hit = keyset.contains([_join_key(rec[k]) for k in self.node.left_keys])
                cond = hit if self.keep else ~hit
                with self.ctx.if_(cond):
                    cb(rec)

            left_dp(probe)

        return self._two_phase(allocate, emit)  # type: ignore[arg-type]


class StagedIndexJoin(StagedOp):
    def __init__(self, comp, node: phys.IndexJoin, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child

    def _allocate(self):
        node = self.node
        ctx = self.ctx
        ctx.comment(
            f"index join against {node.table}.{node.table_key} "
            f"({'unique' if node.unique else 'multi'})"
        )
        fn = "db_unique_index" if node.unique else "db_index"
        index = ctx.call(fn, [node.table, node.table_key], result="void*", prefix="idx")
        table_state = _bind_table(self.comp, node.table, node.rename_map)
        return index, table_state

    def exec(self) -> Datapath:
        child_dp = self.child.exec()

        def emit(state, cb: RecCallback) -> None:
            index, table_state = state
            node = self.node
            ctx = self.ctx

            def merge_and_emit(rec: StagedRecord, rowid: Rep) -> None:
                table_rec = StagedRecord(
                    ctx, table_state.descs, table_state.loaders_at(rowid)
                )
                merged = rec.merged(table_rec)
                if node.residual is not None:
                    with ctx.if_(node.residual.stage(merged)):
                        cb(merged)
                else:
                    cb(merged)

            def probe(rec: StagedRecord) -> None:
                key = _join_key(rec[node.child_key])
                if node.unique:
                    rowid = ctx.call(
                        "index_lookup_unique", [index, key], result="long", prefix="rid"
                    )
                    with ctx.if_(rowid >= 0):
                        merge_and_emit(rec, rowid)
                else:
                    rows = ctx.call(
                        "index_lookup", [index, key], result="void*", prefix="rids"
                    )
                    with ctx.for_each(rows, prefix="rid", ctype="long") as rowid:
                        merge_and_emit(rec, rowid)

            child_dp(probe)

        return self._two_phase(self._allocate, emit)  # type: ignore[arg-type]


class StagedIndexSemiJoin(StagedOp):
    """Semi/anti join via index existence (``IndexEntryView.exists``)."""

    def __init__(self, comp, node: phys.IndexSemiJoin, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child

    def _allocate(self):
        node = self.node
        ctx = self.ctx
        kind = "anti" if node.anti else "semi"
        ctx.comment(
            f"index {kind} join against {node.table}.{node.table_key}"
        )
        fn = "db_unique_index" if node.unique else "db_index"
        index = ctx.call(fn, [node.table, node.table_key], result="void*", prefix="idx")
        table_state = (
            _bind_table(self.comp, node.table, node.rename_map)
            if node.residual is not None
            else None
        )
        return index, table_state

    def exec(self) -> Datapath:
        child_dp = self.child.exec()

        def emit(state, cb: RecCallback) -> None:
            index, table_state = state
            node = self.node
            ctx = self.ctx

            def probe(rec: StagedRecord) -> None:
                key = _join_key(rec[node.child_key])
                if node.residual is None:
                    if node.unique:
                        rowid = ctx.call(
                            "index_lookup_unique", [index, key], result="long"
                        )
                        hit = rowid >= 0
                    else:
                        rows = ctx.call("index_lookup", [index, key], result="void*")
                        count = ctx.call("list_len", [rows], result="long")
                        hit = count > 0
                else:
                    found = ctx.var(ctx.bool_(False), prefix="found")

                    def check(rowid: Rep) -> None:
                        table_rec = StagedRecord(
                            ctx, table_state.descs, table_state.loaders_at(rowid)
                        )
                        merged = rec.merged(table_rec)
                        with ctx.if_(node.residual.stage(merged)):
                            found.set(True)

                    if node.unique:
                        rowid = ctx.call(
                            "index_lookup_unique", [index, key], result="long"
                        )
                        with ctx.if_(rowid >= 0):
                            check(rowid)
                    else:
                        rows = ctx.call("index_lookup", [index, key], result="void*")
                        with ctx.for_each(rows, prefix="rid", ctype="long") as rowid:
                            check(rowid)
                            ctx.break_if(found.get())
                    hit = found.get()
                cond = ~hit if node.anti else hit
                with ctx.if_(cond):
                    cb(rec)

            child_dp(probe)

        return self._two_phase(self._allocate, emit)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


class StagedAggOp(StagedOp):
    def __init__(self, comp, node: phys.Agg, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child
        self.child_types = node.child.field_types(comp.catalog)
        self.staged_aggs = build_staged_aggs(node.aggs, self.child_types)
        self.out_fields = node.fields(comp.catalog)

    def exec(self) -> Datapath:
        if not self.node.keys:
            return self._exec_global()
        return self._exec_grouped()

    # -- grouped ---------------------------------------------------------------

    def _key_ctypes(self) -> list[str]:
        ctypes = []
        statics = self.comp.static_fields(self.node.child)
        static_map = {f.name: f for f in statics}
        for _, expr in self.node.keys:
            if isinstance(expr, Col) and static_map.get(expr.name, None) and static_map[expr.name].compressed:
                ctypes.append("long")  # dictionary code
            else:
                ctypes.append(expr.result_type(self.child_types).ctype)
        return ctypes

    def _exec_grouped(self) -> Datapath:
        child_dp = self.child.exec()
        key_ctypes = self._key_ctypes()
        slot_ctypes = all_slot_ctypes(self.staged_aggs)

        def allocate():
            self.ctx.comment(
                f"aggregation hash map ({self.comp.config.hashmap}); "
                f"keys: {[n for n, _ in self.node.keys]}"
            )
            if self.comp.config.hashmap == "open":
                return OpenAggMap(
                    self.ctx, key_ctypes, slot_ctypes, self.comp.config.open_map_size
                )
            return NativeAggMap(self.ctx, key_ctypes, slot_ctypes)

        def emit(hm, cb: RecCallback) -> None:
            key_descs: list[Optional[FieldDesc]] = [None] * len(self.node.keys)
            self._emit_grouped_accumulate(child_dp, hm, key_descs)

            def on_group(keys: list[Rep], slots) -> None:
                values: dict[str, StagedValue] = {}
                descs: list[FieldDesc] = []
                for key, desc in zip(keys, key_descs):
                    assert desc is not None
                    if desc.compressed:
                        assert desc.dictionary is not None
                        assert desc.strings_sym is not None
                        values[desc.name] = DicValue(
                            RepInt(key.expr, self.ctx),
                            desc.dictionary,
                            desc.strings_sym,
                            self.ctx,
                        )
                    else:
                        values[desc.name] = key
                    descs.append(desc)
                for (name, _), agg in zip(self.node.aggs, self.staged_aggs):
                    values[name] = agg.finalize(self.ctx, slots)
                    descs.append(FieldDesc(name, dict(self.out_fields)[name]))
                cb(StagedRecord.from_values(self.ctx, descs, values))

            hm.foreach(on_group)

        return self._two_phase(allocate, emit)  # type: ignore[arg-type]

    # -- partial mode (Section 4.5 thread-local state) ---------------------------

    def exec_partial(self) -> None:
        """Emit a *partial* aggregation: accumulate, then return raw state.

        The generated function ends with ``return`` of the thread-local hash
        map (grouped) or ``[seen, slot...]`` (global); the parallel driver
        merges these across partitions (the ``hm.merge`` step of the paper's
        parallel ``Agg``).
        """
        child_dp = self.child.exec()
        if not self.node.keys:
            seen = self.ctx.var(self.ctx.int_(0), prefix="rows")
            slots = _VarSlots(self.ctx, all_slot_ctypes(self.staged_aggs))
            self._emit_global_accumulate(child_dp, seen, slots)
            items = [seen.get().expr] + [
                slots.get(i).expr for i in range(len(slots.ctypes))
            ]
            self.ctx.emit(ir.Return(ir.ListExpr(tuple(items))))
            return
        if self.comp.config.hashmap != "native":
            raise CompileError(
                "parallel partial aggregation requires the native hash map"
            )
        key_ctypes = self._key_ctypes()
        slot_ctypes = all_slot_ctypes(self.staged_aggs)
        hm = NativeAggMap(self.ctx, key_ctypes, slot_ctypes)
        self._emit_grouped_accumulate(child_dp, hm, [None] * len(self.node.keys))
        self.ctx.emit(ir.Return(hm.hm.expr))

    def _emit_grouped_accumulate(self, child_dp, hm, key_descs) -> None:
        def accumulate(rec: StagedRecord) -> None:
            keys: list[Rep] = []
            for i, (name, expr) in enumerate(self.node.keys):
                value = expr.stage(rec)
                keys.append(value_payload(value))
                if isinstance(value, DicValue):
                    key_descs[i] = FieldDesc(
                        name,
                        ColumnType.STRING,
                        dictionary=value.dictionary,
                        strings_sym=value.strings_sym,
                    )
                else:
                    key_descs[i] = FieldDesc(
                        name, self.node.keys[i][1].result_type(self.child_types)
                    )
            values = [agg.row_value(rec) for agg in self.staged_aggs]

            def on_insert() -> list[Rep]:
                init: list[Rep] = []
                for agg, value in zip(self.staged_aggs, values):
                    init.extend(agg.init_values(self.ctx, value))
                return init

            def on_update(slots) -> None:
                for agg, value in zip(self.staged_aggs, values):
                    agg.update(self.ctx, slots, value)

            hm.update(keys, on_insert, on_update)

        child_dp(accumulate)

    def _emit_global_accumulate(self, child_dp, seen, slots) -> None:
        def accumulate(rec: StagedRecord) -> None:
            values = [agg.row_value(rec) for agg in self.staged_aggs]
            first = seen.get() == 0
            with self.ctx.if_(first):
                for agg, value in zip(self.staged_aggs, values):
                    for offset, init in enumerate(agg.init_values(self.ctx, value)):
                        slots.set(agg.base + offset, init)
            with self.ctx.else_():
                for agg, value in zip(self.staged_aggs, values):
                    agg.update(self.ctx, slots, value)
            seen.set(seen.get() + 1)

        child_dp(accumulate)

    # -- global (no grouping keys) -------------------------------------------------

    def _exec_global(self) -> Datapath:
        child_dp = self.child.exec()

        def allocate():
            self.ctx.comment("global aggregate state")
            seen = self.ctx.var(self.ctx.int_(0), prefix="rows")
            slots = _VarSlots(self.ctx, all_slot_ctypes(self.staged_aggs))
            return seen, slots

        def emit(state, cb: RecCallback) -> None:
            seen, slots = state
            self._emit_global_accumulate(child_dp, seen, slots)

            values: dict[str, StagedValue] = {}
            descs: list[FieldDesc] = []
            empty = seen.get() == 0
            for (name, _), agg in zip(self.node.aggs, self.staged_aggs):
                result = self.ctx.var(agg.empty_value(self.ctx), prefix="agg")
                with self.ctx.if_(~empty):
                    result.set(agg.finalize(self.ctx, slots))
                values[name] = result.get()
                descs.append(FieldDesc(name, dict(self.out_fields)[name]))
            cb(StagedRecord.from_values(self.ctx, descs, values))

        return self._two_phase(allocate, emit)  # type: ignore[arg-type]


class _VarSlots:
    """Aggregate slots held in mutable staged locals (global aggregates)."""

    def __init__(self, ctx: StagingContext, ctypes: Sequence[str]) -> None:
        self.ctx = ctx
        none = Rep(ir.Const(None), ctx, ctype="void*")
        self.vars = [ctx.var(none, prefix="gagg") for _ in ctypes]
        self.ctypes = list(ctypes)

    def get(self, i: int) -> Rep:
        return rep_for_ctype(self.ctypes[i])(ir.Sym(self.vars[i].name), self.ctx)

    def set(self, i: int, value: Rep) -> None:
        self.vars[i].set(value)


class StagedGroupJoin(StagedOp):
    """HyPer's GroupJoin, staged: aggregate the right side per join key,
    then stream left rows with finalized (or empty-group) values appended.
    One row out per left row; no intermediate join product materializes."""

    def __init__(self, comp, node: phys.GroupJoin, left: StagedOp, right: StagedOp):
        super().__init__(comp)
        self.node = node
        self.left = left
        self.right = right
        right_types = node.right.field_types(comp.catalog)
        self.staged_aggs = build_staged_aggs(node.aggs, right_types)
        self.out_types = dict(node.fields(comp.catalog))

    def exec(self) -> Datapath:
        left_dp = self.left.exec()
        right_dp = self.right.exec()
        node = self.node
        right_types = node.right.field_types(self.comp.catalog)
        key_ctypes = [right_types[k].ctype for k in node.right_keys]
        slot_ctypes = all_slot_ctypes(self.staged_aggs)

        def allocate() -> NativeAggMap:
            self.ctx.comment(
                f"group join state (aggregate right side by {list(node.right_keys)})"
            )
            return NativeAggMap(self.ctx, key_ctypes, slot_ctypes)

        def emit(hm: NativeAggMap, cb: RecCallback) -> None:
            ctx = self.ctx

            def build(rec: StagedRecord) -> None:
                keys = [_join_key(rec[k]) for k in node.right_keys]
                values = [agg.row_value(rec) for agg in self.staged_aggs]

                def on_insert() -> list[Rep]:
                    init: list[Rep] = []
                    for agg, value in zip(self.staged_aggs, values):
                        init.extend(agg.init_values(ctx, value))
                    return init

                def on_update(slots) -> None:
                    for agg, value in zip(self.staged_aggs, values):
                        agg.update(ctx, slots, value)

                hm.update(keys, on_insert, on_update)

            right_dp(build)

            def probe(rec: StagedRecord) -> None:
                keys = [_join_key(rec[k]) for k in node.left_keys]
                state, present = hm.lookup(keys)
                values: dict[str, StagedValue] = {}
                descs: list[FieldDesc] = []
                for (name, _), agg in zip(node.aggs, self.staged_aggs):
                    slot = ctx.var(agg.empty_value(ctx), prefix="gj")
                    with ctx.if_(present):
                        slot.set(agg.finalize(ctx, hm.slots_of(state)))
                    values[name] = rep_for_ctype(self.out_types[name].ctype)(
                        ir.Sym(slot.name), ctx
                    )
                    descs.append(FieldDesc(name, self.out_types[name]))
                agg_rec = StagedRecord.from_values(ctx, descs, values)
                cb(rec.merged(agg_rec))

            left_dp(probe)

        return self._two_phase(allocate, emit)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Materializing tail operators
# ---------------------------------------------------------------------------


class StagedSort(StagedOp):
    """Sort pipeline breaker; materializes in row OR column layout.

    Section 4.1: "A pipeline breaker materializes the intermediate Records
    inside a buffer ... at which point a format conversion may occur."
    ``Config.sort_layout`` picks the buffer shape -- a row buffer of tuples
    sorted in place, or one list per field permuted through an argsort --
    with zero change to any operator code (the abstraction dissolves).
    """

    def __init__(self, comp, node: phys.Sort, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child
        self.field_names = node.child.field_names(comp.catalog)

    def _spec(self) -> tuple[tuple[int, bool], ...]:
        index_of = {name: i for i, name in enumerate(self.field_names)}
        return tuple((index_of[name], asc) for name, asc in self.node.keys)

    def exec(self) -> Datapath:
        if self.comp.config.sort_layout == "column":
            return self._exec_columnar()
        return self._exec_row()

    # -- row layout: a FlatBuffer of tuples --------------------------------------

    def _exec_row(self) -> Datapath:
        child_dp = self.child.exec()

        def allocate() -> Rep:
            self.ctx.comment("sort buffer (row layout)")
            return self.ctx.call("list_new", [], result="void*", prefix="buf")

        def emit(buf: Rep, cb: RecCallback) -> None:
            descs_holder: list[FieldDesc] = []

            def collect(rec: StagedRecord) -> None:
                nonlocal descs_holder
                payloads, descs_holder = _materialize(rec)
                row = self.ctx.bind(
                    ir.TupleExpr(tuple(v.expr for v in payloads)), ctype="void*"
                )
                self.ctx.call_stmt("list_append", [buf, Rep(row, self.ctx, ctype="void*")])

            child_dp(collect)
            # Dictionary codes are order-preserving, so sorting payloads is
            # exactly sorting the decoded strings.
            if self.node.limit is not None:
                # Top-K fusion: bounded heap selection instead of a full sort.
                buf = self.ctx.call(
                    "topk_rows",
                    [buf, Rep(ir.Const(self._spec()), self.ctx), self.node.limit],
                    result="void*",
                    prefix="top",
                )
            else:
                self.ctx.call_stmt(
                    "sort_rows", [buf, Rep(ir.Const(self._spec()), self.ctx)]
                )
            with self.ctx.for_each(buf, prefix="row", ctype="void*") as row:
                cb(_rebuild_record(self.ctx, row, descs_holder))

        return self._two_phase(allocate, emit)  # type: ignore[arg-type]

    # -- column layout: one list per field + argsort permutation ---------------------

    def _exec_columnar(self) -> Datapath:
        child_dp = self.child.exec()
        ctx = self.ctx

        def allocate() -> list[Rep]:
            ctx.comment("sort buffer (column layout: one list per field)")
            return [
                ctx.call("list_new", [], result="void*", prefix="sc")
                for _ in self.field_names
            ]

        def emit(columns: list[Rep], cb: RecCallback) -> None:
            descs_holder: list[FieldDesc] = []

            def collect(rec: StagedRecord) -> None:
                nonlocal descs_holder
                payloads, descs_holder = _materialize(rec)
                for column, value in zip(columns, payloads):
                    ctx.call_stmt("list_append", [column, value])

            child_dp(collect)
            cols_tuple = ctx.bind(
                ir.TupleExpr(tuple(c.expr for c in columns)), ctype="void*"
            )
            order = ctx.call(
                "argsort_columns",
                [Rep(cols_tuple, ctx, "void*"), Rep(ir.Const(self._spec()), ctx)],
                result="void*",
                prefix="ord",
            )
            if self.node.limit is not None:
                order = ctx.call(
                    "list_head", [order, self.node.limit], result="void*", prefix="ord"
                )
            with ctx.for_each(order, prefix="p", ctype="long") as pos:
                loaders = {
                    desc.name: _column_loader(ctx, columns[i], pos, desc)
                    for i, desc in enumerate(descs_holder)
                }
                cb(StagedRecord(ctx, list(descs_holder), loaders))

        return self._two_phase(allocate, emit)  # type: ignore[arg-type]


def _column_loader(
    ctx: StagingContext, column: Rep, pos: Rep, desc: FieldDesc
) -> Callable[[], StagedValue]:
    def load() -> StagedValue:
        sym = ctx.bind(ir.Index(column.expr, pos.expr), ctype=desc.ctype)
        if desc.compressed:
            assert desc.dictionary is not None and desc.strings_sym is not None
            return DicValue(RepInt(sym, ctx), desc.dictionary, desc.strings_sym, ctx)
        return rep_for_ctype(desc.type.ctype)(sym, ctx)

    return load


class StagedLimit(StagedOp):
    def __init__(self, comp, node: phys.Limit, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child

    def exec(self) -> Datapath:
        child_dp = self.child.exec()

        def datapath(cb: RecCallback) -> None:
            counter = self.ctx.var(self.ctx.int_(0), prefix="lim")

            def on_rec(rec: StagedRecord) -> None:
                with self.ctx.if_(counter.get() < self.node.n):
                    counter.set(counter.get() + 1)
                    cb(rec)

            child_dp(on_rec)

        return datapath


class StagedDistinct(StagedOp):
    def __init__(self, comp, node: phys.Distinct, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child

    def exec(self) -> Datapath:
        child_dp = self.child.exec()

        def allocate() -> StagedSet:
            self.ctx.comment("distinct key set")
            return StagedSet(self.ctx)

        def emit(seen: StagedSet, cb: RecCallback) -> None:
            def on_rec(rec: StagedRecord) -> None:
                payloads = [value_payload(rec[n]) for n in rec.field_names]
                fresh = seen.add_if_absent(payloads)
                with self.ctx.if_(fresh):
                    cb(rec)

            child_dp(on_rec)

        return self._two_phase(allocate, emit)  # type: ignore[arg-type]


class InstrumentedOp(StagedOp):
    """Wraps any staged operator with a generated row counter.

    With ``Config(instrument=True)`` the residual program counts every
    record each operator emits and stores the totals into the ``stats``
    dict parameter -- the compiled analogue of EXPLAIN ANALYZE, produced by
    the same single generation pass (instrumentation is just one more
    generation-time abstraction).
    """

    def __init__(self, comp: "StagedPlanBuilder", inner: StagedOp, label: str) -> None:
        super().__init__(comp)
        self.inner = inner
        self.label = label

    def exec(self) -> Datapath:
        inner_dp = self.inner.exec()
        counter = self.ctx.var(self.ctx.int_(0), prefix="cnt")

        def datapath(cb: RecCallback) -> None:
            def counting_cb(rec: StagedRecord) -> None:
                counter.set(counter.get() + 1)
                cb(rec)

            inner_dp(counting_cb)
            stats = self.comp.stats_sym
            assert stats is not None
            self.ctx.emit(
                ir.SetIndex(stats.expr, ir.Const(self.label), ir.Sym(counter.name))
            )

        return datapath


# ---------------------------------------------------------------------------
# Plan -> staged operators
# ---------------------------------------------------------------------------


class StagedPlanBuilder:
    """Builds the staged operator tree and tracks shared cold-path binds."""

    def __init__(
        self,
        catalog: Catalog,
        db: Database,
        ctx: StagingContext,
        config: Config,
    ) -> None:
        self.catalog = catalog
        self.db = db
        self.ctx = ctx
        self.config = config
        self._strings_syms: dict[tuple[str, str], Rep] = {}
        self._partition_target: Optional[phys.Scan] = None
        self._partition_bounds: Optional[tuple[Rep, Rep]] = None
        self.stats_sym: Optional[Rep] = None  # set by the driver in instrument mode
        self._op_counter = 0

    def _maybe_instrument(self, op: StagedOp, node: phys.PhysicalPlan) -> StagedOp:
        if not self.config.instrument:
            return op
        self._op_counter += 1
        label = f"{type(node).__name__}#{self._op_counter}"
        return InstrumentedOp(self, op, label)

    def set_partition(self, target: phys.Scan, lo: Rep, hi: Rep) -> None:
        """Mark ``target`` as the partitioned driving scan (Section 4.5)."""
        self._partition_target = target
        self._partition_bounds = (lo, hi)

    def partition_bounds_for(self, node: phys.Scan) -> Optional[tuple[Rep, Rep]]:
        if self._partition_target is not None and node is self._partition_target:
            return self._partition_bounds
        return None

    def strings_sym(self, table: str, column: str) -> Rep:
        """Bind (once) the decoded-string table of a dictionary."""
        key = (table, column)
        if key not in self._strings_syms:
            self._strings_syms[key] = self.ctx.call(
                "db_dict_strings", [table, column], result="void*", prefix="dic"
            )
        return self._strings_syms[key]

    # -- static (pre-datapath) field info --------------------------------------

    def static_fields(self, node: phys.PhysicalPlan) -> list[StaticField]:
        if isinstance(node, (phys.Scan, phys.DateIndexScan)):
            schema = self.catalog.table(node.table)
            rename = node.rename_map
            out = []
            for column in schema.columns:
                compressed = (
                    self.config.use_dictionaries
                    and column.type is ColumnType.STRING
                    and self.db.has_dictionary(node.table, column.name)
                )
                out.append(
                    StaticField(rename.get(column.name, column.name), column.type, compressed)
                )
            return out
        if isinstance(
            node, (phys.Select, phys.Sort, phys.Limit, phys.Distinct, phys.IndexSemiJoin)
        ):
            return self.static_fields(node.child)
        if isinstance(node, phys.Project):
            child = {f.name: f for f in self.static_fields(node.child)}
            types = node.child.field_types(self.catalog)
            out = []
            for name, expr in node.outputs:
                if isinstance(expr, Col) and child[expr.name].compressed:
                    out.append(StaticField(name, ColumnType.STRING, True))
                else:
                    out.append(StaticField(name, expr.result_type(types)))
            return out
        if isinstance(node, phys.HashJoin):
            return self.static_fields(node.left) + self.static_fields(node.right)
        if isinstance(node, phys.LeftOuterJoin):
            right = [
                StaticField(f.name, f.type, False)
                for f in self.static_fields(node.right)
            ]
            return self.static_fields(node.left) + right
        if isinstance(node, (phys.SemiJoin, phys.AntiJoin)):
            return self.static_fields(node.left)
        if isinstance(node, phys.IndexJoin):
            schema = self.catalog.table(node.table)
            rename = node.rename_map
            table_fields = [
                StaticField(
                    rename.get(c.name, c.name),
                    c.type,
                    self.config.use_dictionaries
                    and c.type is ColumnType.STRING
                    and self.db.has_dictionary(node.table, c.name),
                )
                for c in schema.columns
            ]
            return self.static_fields(node.child) + table_fields
        if isinstance(node, phys.GroupJoin):
            right_types = node.right.field_types(self.catalog)
            out = list(self.static_fields(node.left))
            for name, spec in node.aggs:
                out.append(StaticField(name, spec.result_type(right_types)))
            return out
        if isinstance(node, phys.Agg):
            types = node.child.field_types(self.catalog)
            child = {f.name: f for f in self.static_fields(node.child)}
            out = []
            for name, expr in node.keys:
                if isinstance(expr, Col) and child[expr.name].compressed:
                    out.append(StaticField(name, ColumnType.STRING, True))
                else:
                    out.append(StaticField(name, expr.result_type(types)))
            for name, spec in node.aggs:
                out.append(StaticField(name, spec.result_type(types)))
            return out
        raise CompileError(f"static_fields: unhandled node {type(node).__name__}")

    # -- construction --------------------------------------------------------------

    def build(self, node: phys.PhysicalPlan) -> StagedOp:
        return self._maybe_instrument(self._build_raw(node), node)

    def _build_raw(self, node: phys.PhysicalPlan) -> StagedOp:
        if isinstance(node, phys.Scan):
            return StagedScan(self, node)
        if isinstance(node, phys.DateIndexScan):
            return StagedDateIndexScan(self, node)
        if isinstance(node, phys.Select):
            return StagedSelect(self, node, self.build(node.child))
        if isinstance(node, phys.Project):
            return StagedProject(self, node, self.build(node.child))
        if isinstance(node, phys.HashJoin):
            return StagedHashJoin(self, node, self.build(node.left), self.build(node.right))
        if isinstance(node, phys.LeftOuterJoin):
            return StagedLeftOuterJoin(
                self, node, self.build(node.left), self.build(node.right)
            )
        if isinstance(node, phys.SemiJoin):
            return StagedKeySetJoin(
                self, node, self.build(node.left), self.build(node.right), keep=True
            )
        if isinstance(node, phys.AntiJoin):
            return StagedKeySetJoin(
                self, node, self.build(node.left), self.build(node.right), keep=False
            )
        if isinstance(node, phys.IndexJoin):
            return StagedIndexJoin(self, node, self.build(node.child))
        if isinstance(node, phys.IndexSemiJoin):
            return StagedIndexSemiJoin(self, node, self.build(node.child))
        if isinstance(node, phys.GroupJoin):
            return StagedGroupJoin(
                self, node, self.build(node.left), self.build(node.right)
            )
        if isinstance(node, phys.Agg):
            return StagedAggOp(self, node, self.build(node.child))
        if isinstance(node, phys.Sort):
            return StagedSort(self, node, self.build(node.child))
        if isinstance(node, phys.Limit):
            return StagedLimit(self, node, self.build(node.child))
        if isinstance(node, phys.Distinct):
            return StagedDistinct(self, node, self.build(node.child))
        raise CompileError(f"no staged implementation for {type(node).__name__}")
