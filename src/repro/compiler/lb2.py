"""The LB2 staged evaluator: data-centric with callbacks, over staged records.

This module is the push interpreter of :mod:`repro.engine.push`, re-typed.
Every operator exposes ``exec() -> datapath`` where ``datapath(cb)`` runs
the operator symbolically, calling ``cb`` on each *staged* record.  Running
the tree therefore emits the residual program -- the first Futamura
projection performed programmatically, in one pass (Sections 2-4).

The two-phase ``exec`` protocol is the paper's code-motion device (Section
4.4, Figure 7): calling ``exec()`` emits data-structure allocations and
cold-path binds *now* (when hoisting is on) and returns a closure that emits
the hot path wherever the caller stands.  With hoisting off, allocations are
deferred into the data path -- the ablation of experiment E9.

Operator code here never emits residual loops or subscripts directly: it
talks to staged data structures (scan sources, hash maps, aggregate state,
sort buffers -- :mod:`repro.compiler.staged_source` and friends) and to
records (:class:`repro.compiler.staged_record.StagedRecord`'s ``guard`` /
``derive`` / ``rows`` seam).  Those structures come from the builder's
*backend* (:mod:`repro.compiler.backends`), selected by ``Config.codegen``:
the scalar backend reproduces row-at-a-time loops byte-identically, the
vector backend lowers eligible pipelines to batch-columnar kernels.  No
operator branches on the backend; specialization happens entirely below
this seam (the paper's Section 4 claim, made testable).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Callable, Optional, Sequence

from repro.errors import ReproError
from repro.catalog.catalog import Catalog
from repro.catalog.types import ColumnType
from repro.plan import physical as phys
from repro.plan.expressions import Col
from repro.staging import ir
from repro.staging.builder import StagingContext
from repro.staging.rep import Rep, RepInt, rep_for_ctype
from repro.storage.database import Database
from repro.compiler.backends import make_backend
from repro.compiler.staged_agg import (
    GlobalAggState,
    StagedAgg,
    all_slot_ctypes,
    build_staged_aggs,
)
from repro.compiler.staged_hashmap import NativeAggMap
from repro.compiler.staged_record import (
    DicValue,
    FieldDesc,
    StagedRecord,
    StagedValue,
    materialize,
    value_output,
    value_payload,
)
from repro.compiler.staged_source import set_stat, set_time


class CompileError(ReproError):
    """Raised when a plan cannot be compiled."""

    code = "E_COMPILE"
    phase = "codegen"


@dataclass(frozen=True)
class Config:
    """Compilation knobs (the paper's per-optimization flags).

    * ``hashmap`` -- ``"native"`` (Python dict) or ``"open"`` (the paper's
      open-addressing columnar layout) for aggregation maps.
    * ``open_map_size`` -- slot count for open maps (power of two).
    * ``hoist`` -- allocate data structures ahead of the hot path (4.4).
    * ``use_dictionaries`` -- read dictionary-compressed columns when the
      database provides them (4.3).
    * ``budget_checks`` -- emit a periodic ``rt.scan_tick`` checkpoint into
      scan loops so the resilience layer can enforce wall-clock/row budgets
      and inject mid-scan faults.  Off by default: with the flag off the
      residual source is byte-identical to an unguarded build.
    * ``budget_check_interval`` -- rows between checkpoints in counted scan
      loops (candidate-list scans check per row).
    * ``codegen`` -- the lowering below the data-structure seam:
      ``"scalar"`` (row-at-a-time loops, the historical output, byte-stable)
      or ``"vector"`` (batch-columnar kernels for eligible scan/filter/
      project/aggregate pipelines, per-operator scalar fallback elsewhere).
    * ``opt_level`` -- the translation-validated IR optimizer
      (:mod:`repro.analysis.opt`) applied to the residual program after
      generation.  ``0`` (default) keeps the paper's single-pass property:
      no transform runs and the residual source is byte-identical to every
      existing golden.  ``1`` enables copy/constant propagation,
      If-simplification and dead-code elimination; ``2`` adds
      common-subexpression elimination and loop-invariant hoisting.
    """

    hashmap: str = "native"
    open_map_size: int = 1 << 16
    hoist: bool = True
    use_dictionaries: bool = True
    instrument: bool = False
    sort_layout: str = "row"  # "row" (tuple buffer) or "column" (SoA + argsort)
    budget_checks: bool = False
    budget_check_interval: int = 1024
    codegen: str = "scalar"  # "scalar" or "vector"
    opt_level: int = 0  # 0 = off (byte-identical), 1 = basic, 2 = full

    def __post_init__(self) -> None:
        if self.opt_level not in (0, 1, 2):
            raise CompileError(f"opt_level must be 0, 1 or 2, got {self.opt_level!r}")
        if self.hashmap not in ("native", "open"):
            raise CompileError(f"unknown hashmap implementation {self.hashmap!r}")
        if self.sort_layout not in ("row", "column"):
            raise CompileError(f"unknown sort layout {self.sort_layout!r}")
        if self.budget_check_interval <= 0:
            raise CompileError("budget_check_interval must be positive")
        if self.codegen not in ("scalar", "vector"):
            raise CompileError(f"unknown codegen backend {self.codegen!r}")


@dataclass(frozen=True)
class StaticField:
    """Generation-time field info: name, SQL type, compressed or not."""

    name: str
    type: ColumnType
    compressed: bool = False

    @property
    def ctype(self) -> str:
        return "long" if self.compressed else self.type.ctype


RecCallback = Callable[[StagedRecord], None]
Datapath = Callable[[RecCallback], None]


class StagedOp:
    """Base staged operator."""

    def __init__(self, comp: "StagedPlanBuilder") -> None:
        self.comp = comp
        self.ctx = comp.ctx

    def exec(self) -> Datapath:
        raise NotImplementedError

    # -- the alloc/datapath split ------------------------------------------------

    def _two_phase(self, allocate: Callable[[], object],
                   emit: Callable[[object, RecCallback], None]) -> Datapath:
        """Wire an allocation phase and a hot-path phase per the config."""
        if self.comp.config.hoist:
            state = allocate()

            def datapath(cb: RecCallback) -> None:
                emit(state, cb)

            return datapath

        holder: dict[str, object] = {}

        def datapath_lazy(cb: RecCallback) -> None:
            if "state" not in holder:
                holder["state"] = allocate()
            emit(holder["state"], cb)

        return datapath_lazy


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------


class StagedScan(StagedOp):
    def __init__(self, comp: "StagedPlanBuilder", node: phys.Scan) -> None:
        super().__init__(comp)
        self.node = node

    def exec(self) -> Datapath:
        def allocate():
            return self.comp.backend.scan_source(self.node)

        def emit(source, cb: RecCallback) -> None:
            source.scan(cb, self.comp.partition_bounds_for(self.node))

        return self._two_phase(allocate, emit)


class StagedDateIndexScan(StagedOp):
    """Date-partition-pruned scan (Section 4.3).

    Plain mode emits one loop over candidate row ids.  In ``enforce`` mode
    the residual program gets *two* loops: interior partitions run the
    downstream pipeline with **no** date comparison at all (they satisfy
    the range by construction), and only boundary partitions re-check --
    the pipeline code is specialized twice, one generation pass, no
    rewrite rules.
    """

    def __init__(self, comp: "StagedPlanBuilder", node: phys.DateIndexScan) -> None:
        super().__init__(comp)
        self.node = node

    def _bound_cond(self, rec: StagedRecord):
        node = self.node
        value = rec[node.column if not node.rename_map else node.rename_map.get(node.column, node.column)]
        cond = None
        if node.lo is not None:
            piece = (value > node.lo) if node.lo_strict else (value >= node.lo)
            cond = piece
        if node.hi is not None:
            piece = (value < node.hi) if node.hi_strict else (value <= node.hi)
            cond = piece if cond is None else (cond & piece)
        return cond

    def exec(self) -> Datapath:
        def allocate():
            return self.comp.backend.date_scan_source(self.node)

        def emit(source, cb: RecCallback) -> None:
            source.scan(cb, self._bound_cond)

        return self._two_phase(allocate, emit)


# ---------------------------------------------------------------------------
# Stateless operators
# ---------------------------------------------------------------------------


class StagedSelect(StagedOp):
    def __init__(self, comp, node: phys.Select, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child

    def exec(self) -> Datapath:
        child_dp = self.comp.backend.edge(self.child, self.node)

        def datapath(cb: RecCallback) -> None:
            def on_rec(rec: StagedRecord) -> None:
                rec.guard(self.node.pred.stage(rec), cb)

            child_dp(on_rec)

        return datapath


class StagedProject(StagedOp):
    def __init__(self, comp, node: phys.Project, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child

    def exec(self) -> Datapath:
        child_dp = self.comp.backend.edge(self.child, self.node)
        null_guard = phys.needs_null_guard(self.node)
        types = self.node.field_types(self.comp.catalog)

        def datapath(cb: RecCallback) -> None:
            def on_rec(rec: StagedRecord) -> None:
                values: dict[str, StagedValue] = {}
                descs: list[FieldDesc] = []
                for name, expr in self.node.outputs:
                    if null_guard and expr.columns():
                        # SQL NULL propagation for the one place a None can
                        # feed arithmetic: projections over global aggregates.
                        present = None
                        for ref in sorted(expr.columns()):
                            check = self.ctx.call("not_none", [rec[ref]], result="bool")
                            present = check if present is None else (present & check)
                        none_rep = Rep(ir.Const(None), self.ctx, ctype="void*")
                        slot = self.ctx.var(none_rep, prefix="proj")
                        with self.ctx.if_(present):
                            slot.set(value_output(expr.stage(rec)))
                        value: StagedValue = rep_for_ctype(types[name].ctype)(
                            ir.Sym(slot.name), self.ctx
                        )
                    else:
                        value = expr.stage(rec)
                    values[name] = value
                    descs.append(_desc_for_value(name, value, rec, expr))
                cb(rec.derive(descs, values))

            child_dp(on_rec)

        return datapath


def _desc_for_value(name: str, value: StagedValue, rec: StagedRecord, expr) -> FieldDesc:
    if isinstance(value, DicValue):
        return FieldDesc(
            name,
            ColumnType.STRING,
            dictionary=value.dictionary,
            strings_sym=value.strings_sym,
        )
    type_map = {
        "long": ColumnType.INT,
        "double": ColumnType.FLOAT,
        "bool": ColumnType.BOOL,
        "char*": ColumnType.STRING,
        "vec_long": ColumnType.INT,
        "vec_double": ColumnType.FLOAT,
        "vec_bool": ColumnType.BOOL,
        "vec_str": ColumnType.STRING,
    }
    return FieldDesc(name, type_map.get(value.ctype, ColumnType.INT))


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


def _join_key(value: StagedValue) -> Rep:
    """Join keys compare across tables: decode compressed values so the key
    domain is the raw column domain (different dictionaries stay safe)."""
    return value_output(value)


class StagedHashJoin(StagedOp):
    def __init__(self, comp, node: phys.HashJoin, left: StagedOp, right: StagedOp):
        super().__init__(comp)
        self.node = node
        self.left = left
        self.right = right

    def exec(self) -> Datapath:
        left_dp = self.comp.backend.edge(self.left, self.node)
        right_dp = self.comp.backend.edge(self.right, self.node)

        def allocate():
            return self.comp.backend.multimap("hash join build table")

        def emit(mm, cb: RecCallback) -> None:
            build_descs: list[FieldDesc] = []

            def build(rec: StagedRecord) -> None:
                nonlocal build_descs
                keys = [_join_key(rec[k]) for k in self.node.left_keys]
                payloads, build_descs = materialize(rec)
                mm.insert(keys, payloads)

            left_dp(build)

            def probe(rec: StagedRecord) -> None:
                keys = [_join_key(rec[k]) for k in self.node.right_keys]
                mm.each_match(
                    keys, build_descs, lambda left_rec: cb(left_rec.merged(rec))
                )

            right_dp(probe)

        return self._two_phase(allocate, emit)


class StagedLeftOuterJoin(StagedOp):
    def __init__(self, comp, node: phys.LeftOuterJoin, left: StagedOp, right: StagedOp):
        super().__init__(comp)
        self.node = node
        self.left = left
        self.right = right

    def exec(self) -> Datapath:
        left_dp = self.comp.backend.edge(self.left, self.node)
        right_dp = self.comp.backend.edge(self.right, self.node)
        right_fields = self.node.right.fields(self.comp.catalog)

        def allocate():
            return self.comp.backend.multimap(
                "left outer join build table (right side)"
            )

        def emit(mm, cb: RecCallback) -> None:
            build_descs: list[FieldDesc] = []

            def build(rec: StagedRecord) -> None:
                nonlocal build_descs
                keys = [_join_key(rec[k]) for k in self.node.right_keys]
                # Decode compressed values at build time so the match and
                # no-match branches below produce identically-typed fields.
                payloads: list[Rep] = []
                build_descs = []
                for name in rec.field_names:
                    value = value_output(rec[name])
                    payloads.append(value)
                    build_descs.append(FieldDesc(name, rec.desc(name).type))
                mm.insert(keys, payloads)

            right_dp(build)

            def probe(rec: StagedRecord) -> None:
                keys = [_join_key(rec[k]) for k in self.node.left_keys]

                def on_missing() -> None:
                    null_values = {
                        name: Rep(ir.Const(None), self.ctx, ctype="void*")
                        for name, _ in right_fields
                    }
                    null_descs = [FieldDesc(n, t) for n, t in right_fields]
                    null_rec = StagedRecord.from_values(
                        self.ctx, null_descs, null_values
                    )
                    cb(rec.merged(null_rec))

                mm.each_match_or_missing(
                    keys,
                    build_descs,
                    lambda right_rec: cb(rec.merged(right_rec)),
                    on_missing,
                )

            left_dp(probe)

        return self._two_phase(allocate, emit)


class StagedKeySetJoin(StagedOp):
    """Semi (EXISTS) and anti (NOT EXISTS) joins over a staged key set."""

    def __init__(self, comp, node, left: StagedOp, right: StagedOp, keep: bool):
        super().__init__(comp)
        self.node = node
        self.left = left
        self.right = right
        self.keep = keep

    def exec(self) -> Datapath:
        left_dp = self.comp.backend.edge(self.left, self.node)
        right_dp = self.comp.backend.edge(self.right, self.node)

        def allocate():
            kind = "semi" if self.keep else "anti"
            return self.comp.backend.key_set(f"{kind} join key set")

        def emit(keyset, cb: RecCallback) -> None:
            def build(rec: StagedRecord) -> None:
                keyset.add([_join_key(rec[k]) for k in self.node.right_keys])

            right_dp(build)

            def probe(rec: StagedRecord) -> None:
                hit = keyset.contains([_join_key(rec[k]) for k in self.node.left_keys])
                rec.guard(hit if self.keep else ~hit, cb)

            left_dp(probe)

        return self._two_phase(allocate, emit)


class StagedIndexJoin(StagedOp):
    def __init__(self, comp, node: phys.IndexJoin, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child

    def _allocate(self):
        node = self.node
        comment = (
            f"index join against {node.table}.{node.table_key} "
            f"({'unique' if node.unique else 'multi'})"
        )
        return self.comp.backend.index_source(
            node.table, node.table_key, node.unique, node.rename_map,
            comment, with_table=True,
        )

    def exec(self) -> Datapath:
        child_dp = self.comp.backend.edge(self.child, self.node)

        def emit(source, cb: RecCallback) -> None:
            node = self.node

            def merge_and_emit(rec: StagedRecord, rowid: Rep) -> None:
                merged = rec.merged(source.record_at(rowid))
                if node.residual is not None:
                    merged.guard(node.residual.stage(merged), cb)
                else:
                    cb(merged)

            def probe(rec: StagedRecord) -> None:
                key = _join_key(rec[node.child_key])
                if node.unique:
                    rowid = source.lookup_unique(key, prefix="rid")
                    rec.guard(rowid >= 0, lambda r: merge_and_emit(r, rowid))
                else:
                    rows = source.lookup(key, prefix="rids")
                    source.each(rows, lambda rowid: merge_and_emit(rec, rowid))

            child_dp(probe)

        return self._two_phase(self._allocate, emit)


class StagedIndexSemiJoin(StagedOp):
    """Semi/anti join via index existence (``IndexEntryView.exists``)."""

    def __init__(self, comp, node: phys.IndexSemiJoin, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child

    def _allocate(self):
        node = self.node
        kind = "anti" if node.anti else "semi"
        comment = f"index {kind} join against {node.table}.{node.table_key}"
        return self.comp.backend.index_source(
            node.table, node.table_key, node.unique, node.rename_map,
            comment, with_table=node.residual is not None,
        )

    def exec(self) -> Datapath:
        child_dp = self.comp.backend.edge(self.child, self.node)

        def emit(source, cb: RecCallback) -> None:
            node = self.node
            ctx = self.ctx

            def probe(rec: StagedRecord) -> None:
                key = _join_key(rec[node.child_key])
                if node.residual is None:
                    if node.unique:
                        rowid = source.lookup_unique(key)
                        hit = rowid >= 0
                    else:
                        rows = source.lookup(key)
                        hit = source.count(rows) > 0
                else:
                    found = ctx.var(ctx.bool_(False), prefix="found")

                    def check(rowid: Rep) -> None:
                        merged = rec.merged(source.record_at(rowid))
                        with ctx.if_(node.residual.stage(merged)):
                            found.set(True)

                    if node.unique:
                        rowid = source.lookup_unique(key)
                        with ctx.if_(rowid >= 0):
                            check(rowid)
                    else:
                        rows = source.lookup(key)
                        source.each(rows, check, break_when=found.get)
                    hit = found.get()
                rec.guard(~hit if node.anti else hit, cb)

            child_dp(probe)

        return self._two_phase(self._allocate, emit)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


class StagedAggOp(StagedOp):
    def __init__(self, comp, node: phys.Agg, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child
        self.child_types = node.child.field_types(comp.catalog)
        self.staged_aggs = build_staged_aggs(node.aggs, self.child_types)
        self.out_fields = node.fields(comp.catalog)

    def exec(self) -> Datapath:
        if not self.node.keys:
            return self._exec_global()
        return self._exec_grouped()

    # -- grouped ---------------------------------------------------------------

    def _key_ctypes(self) -> list[str]:
        ctypes = []
        statics = self.comp.static_fields(self.node.child)
        static_map = {f.name: f for f in statics}
        for _, expr in self.node.keys:
            if isinstance(expr, Col) and static_map.get(expr.name, None) and static_map[expr.name].compressed:
                ctypes.append("long")  # dictionary code
            else:
                ctypes.append(expr.result_type(self.child_types).ctype)
        return ctypes

    def _exec_grouped(self) -> Datapath:
        child_dp = self.comp.backend.edge(self.child, self.node)
        key_ctypes = self._key_ctypes()
        slot_ctypes = all_slot_ctypes(self.staged_aggs)

        def allocate():
            return self.comp.backend.agg_map(self.node, key_ctypes, slot_ctypes)

        def emit(hm, cb: RecCallback) -> None:
            key_descs: list[Optional[FieldDesc]] = [None] * len(self.node.keys)
            self._emit_grouped_accumulate(child_dp, hm, key_descs)

            def on_group(keys: list[Rep], slots) -> None:
                values: dict[str, StagedValue] = {}
                descs: list[FieldDesc] = []
                for key, desc in zip(keys, key_descs):
                    assert desc is not None
                    if desc.compressed:
                        assert desc.dictionary is not None
                        assert desc.strings_sym is not None
                        values[desc.name] = DicValue(
                            RepInt(key.expr, self.ctx),
                            desc.dictionary,
                            desc.strings_sym,
                            self.ctx,
                        )
                    else:
                        values[desc.name] = key
                    descs.append(desc)
                for (name, _), agg in zip(self.node.aggs, self.staged_aggs):
                    values[name] = agg.finalize(self.ctx, slots)
                    descs.append(FieldDesc(name, dict(self.out_fields)[name]))
                cb(StagedRecord.from_values(self.ctx, descs, values))

            hm.foreach(on_group)

        return self._two_phase(allocate, emit)

    # -- partial mode (Section 4.5 thread-local state) ---------------------------

    def exec_partial(self) -> None:
        """Emit a *partial* aggregation: accumulate, then return raw state.

        The generated function ends with ``return`` of the thread-local hash
        map (grouped) or ``[seen, slot...]`` (global); the parallel driver
        merges these across partitions (the ``hm.merge`` step of the paper's
        parallel ``Agg``).
        """
        child_dp = self.comp.backend.edge(self.child, self.node)
        if not self.node.keys:
            state = GlobalAggState(self.ctx, self.staged_aggs, comment=False)
            child_dp(lambda rec: state.accumulate(rec, self.staged_aggs))
            self.ctx.emit(ir.Return(ir.ListExpr(tuple(state.raw_items()))))
            return
        if self.comp.config.hashmap != "native":
            raise CompileError(
                "parallel partial aggregation requires the native hash map"
            )
        key_ctypes = self._key_ctypes()
        slot_ctypes = all_slot_ctypes(self.staged_aggs)
        hm = NativeAggMap(self.ctx, key_ctypes, slot_ctypes)
        self._emit_grouped_accumulate(child_dp, hm, [None] * len(self.node.keys))
        self.ctx.emit(ir.Return(hm.hm.expr))

    def _stage_keys(self, key_descs) -> Callable[[StagedRecord], list[Rep]]:
        """How the map stages this Agg's group keys (and learns their descs)."""

        def stage_keys(rec: StagedRecord) -> list[Rep]:
            keys: list[Rep] = []
            for i, (name, expr) in enumerate(self.node.keys):
                value = expr.stage(rec)
                keys.append(value_payload(value))
                if isinstance(value, DicValue):
                    key_descs[i] = FieldDesc(
                        name,
                        ColumnType.STRING,
                        dictionary=value.dictionary,
                        strings_sym=value.strings_sym,
                    )
                else:
                    key_descs[i] = FieldDesc(
                        name, self.node.keys[i][1].result_type(self.child_types)
                    )
            return keys

        return stage_keys

    def _emit_grouped_accumulate(self, child_dp, hm, key_descs) -> None:
        stage_keys = self._stage_keys(key_descs)

        def accumulate(rec: StagedRecord) -> None:
            hm.accumulate(rec, stage_keys, self.staged_aggs)

        child_dp(accumulate)

    # -- global (no grouping keys) -------------------------------------------------

    def _exec_global(self) -> Datapath:
        child_dp = self.comp.backend.edge(self.child, self.node)

        def allocate():
            return self.comp.backend.global_agg_state(self.node, self.staged_aggs)

        def emit(state, cb: RecCallback) -> None:
            child_dp(lambda rec: state.accumulate(rec, self.staged_aggs))

            values: dict[str, StagedValue] = {}
            descs: list[FieldDesc] = []
            empty = state.empty_cond()
            for (name, _), agg in zip(self.node.aggs, self.staged_aggs):
                values[name] = state.result(agg, empty)
                descs.append(FieldDesc(name, dict(self.out_fields)[name]))
            cb(StagedRecord.from_values(self.ctx, descs, values))

        return self._two_phase(allocate, emit)


class StagedGroupJoin(StagedOp):
    """HyPer's GroupJoin, staged: aggregate the right side per join key,
    then stream left rows with finalized (or empty-group) values appended.
    One row out per left row; no intermediate join product materializes."""

    def __init__(self, comp, node: phys.GroupJoin, left: StagedOp, right: StagedOp):
        super().__init__(comp)
        self.node = node
        self.left = left
        self.right = right
        right_types = node.right.field_types(comp.catalog)
        self.staged_aggs = build_staged_aggs(node.aggs, right_types)
        self.out_types = dict(node.fields(comp.catalog))

    def exec(self) -> Datapath:
        left_dp = self.comp.backend.edge(self.left, self.node)
        right_dp = self.comp.backend.edge(self.right, self.node)
        node = self.node
        right_types = node.right.field_types(self.comp.catalog)
        key_ctypes = [right_types[k].ctype for k in node.right_keys]
        slot_ctypes = all_slot_ctypes(self.staged_aggs)

        def allocate() -> NativeAggMap:
            self.ctx.comment(
                f"group join state (aggregate right side by {list(node.right_keys)})"
            )
            return NativeAggMap(self.ctx, key_ctypes, slot_ctypes)

        def emit(hm: NativeAggMap, cb: RecCallback) -> None:
            ctx = self.ctx

            def stage_keys(rec: StagedRecord) -> list[Rep]:
                return [_join_key(rec[k]) for k in node.right_keys]

            def build(rec: StagedRecord) -> None:
                hm.accumulate(rec, stage_keys, self.staged_aggs)

            right_dp(build)

            def probe(rec: StagedRecord) -> None:
                keys = [_join_key(rec[k]) for k in node.left_keys]
                state, present = hm.lookup(keys)
                values: dict[str, StagedValue] = {}
                descs: list[FieldDesc] = []
                for (name, _), agg in zip(node.aggs, self.staged_aggs):
                    slot = ctx.var(agg.empty_value(ctx), prefix="gj")
                    with ctx.if_(present):
                        slot.set(agg.finalize(ctx, hm.slots_of(state)))
                    values[name] = rep_for_ctype(self.out_types[name].ctype)(
                        ir.Sym(slot.name), ctx
                    )
                    descs.append(FieldDesc(name, self.out_types[name]))
                agg_rec = StagedRecord.from_values(ctx, descs, values)
                cb(rec.merged(agg_rec))

            left_dp(probe)

        return self._two_phase(allocate, emit)


# ---------------------------------------------------------------------------
# Materializing tail operators
# ---------------------------------------------------------------------------


class StagedSort(StagedOp):
    """Sort pipeline breaker; materializes in row OR column layout.

    Section 4.1: "A pipeline breaker materializes the intermediate Records
    inside a buffer ... at which point a format conversion may occur."
    ``Config.sort_layout`` picks the buffer shape -- a row buffer of tuples
    sorted in place, or one list per field permuted through an argsort --
    with zero change to any operator code (the abstraction dissolves).
    """

    def __init__(self, comp, node: phys.Sort, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child
        self.field_names = node.child.field_names(comp.catalog)

    def _spec(self) -> tuple[tuple[int, bool], ...]:
        index_of = {name: i for i, name in enumerate(self.field_names)}
        return tuple((index_of[name], asc) for name, asc in self.node.keys)

    def exec(self) -> Datapath:
        child_dp = self.comp.backend.edge(self.child, self.node)

        def allocate():
            return self.comp.backend.sort_buffer(self.node, self.field_names)

        def emit(buffer, cb: RecCallback) -> None:
            child_dp(buffer.append)
            buffer.drain(self._spec(), self.node.limit, cb)

        return self._two_phase(allocate, emit)


class StagedLimit(StagedOp):
    def __init__(self, comp, node: phys.Limit, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child

    def exec(self) -> Datapath:
        child_dp = self.comp.backend.edge(self.child, self.node)

        def datapath(cb: RecCallback) -> None:
            counter = self.ctx.var(self.ctx.int_(0), prefix="lim")

            def on_rec(rec: StagedRecord) -> None:
                def bump(r: StagedRecord) -> None:
                    counter.set(counter.get() + 1)
                    cb(r)

                rec.guard(counter.get() < self.node.n, bump)

            child_dp(on_rec)

        return datapath


class StagedDistinct(StagedOp):
    def __init__(self, comp, node: phys.Distinct, child: StagedOp) -> None:
        super().__init__(comp)
        self.node = node
        self.child = child

    def exec(self) -> Datapath:
        child_dp = self.comp.backend.edge(self.child, self.node)

        def allocate():
            return self.comp.backend.key_set("distinct key set")

        def emit(seen, cb: RecCallback) -> None:
            def on_rec(rec: StagedRecord) -> None:
                payloads = [value_payload(rec[n]) for n in rec.field_names]
                rec.guard(seen.add_if_absent(payloads), cb)

            child_dp(on_rec)

        return self._two_phase(allocate, emit)


class InstrumentedOp(StagedOp):
    """Wraps any staged operator with a generated row counter and timer.

    With ``Config(instrument=True)`` the residual program counts every
    record each operator emits, brackets the operator's datapath with a
    pair of ``obs_now`` clock reads, and stores totals and intervals into
    the ``stats`` dict parameter -- the compiled analogue of EXPLAIN
    ANALYZE, produced by the same single generation pass (instrumentation
    is just one more generation-time abstraction).  Datapath invocations
    chain at the top level of the generated function, so both the timer
    binds and the stats writes land at statement depth zero, never inside
    the per-row loops; intervals are *inclusive* (a parent's bracket spans
    its children's), matching classic EXPLAIN ANALYZE semantics.

    Record callbacks may deliver scalar records or whole batches (the
    vector lowering); batch records advance the counter by their row count
    in one staged statement, so instrumentation no longer forces the plan
    back to scalar codegen.
    """

    def __init__(self, comp: "StagedPlanBuilder", inner: StagedOp, label: str) -> None:
        super().__init__(comp)
        self.inner = inner
        self.label = label

    @property
    def node(self) -> phys.PhysicalPlan:
        # the vector backend's edge analysis keys eligibility decisions on
        # plan nodes; the wrapper must be transparent to it
        return self.inner.node

    def exec(self) -> Datapath:
        inner_dp = self.inner.exec()
        counter = self.ctx.var(self.ctx.int_(0), prefix="cnt")

        def datapath(cb: RecCallback) -> None:
            t0 = self.ctx.call("obs_now", [], result="double", prefix="t")

            def counting_cb(rec: StagedRecord) -> None:
                if getattr(rec, "is_batch", False):
                    counter.set(counter.get() + rec.nrows())
                else:
                    counter.set(counter.get() + 1)
                cb(rec)

            inner_dp(counting_cb)
            stats = self.comp.stats_sym
            assert stats is not None
            set_stat(self.ctx, stats, self.label, counter.name)
            t1 = self.ctx.call("obs_now", [], result="double", prefix="t")
            set_time(self.ctx, stats, self.label, t0, t1)

        return datapath


# ---------------------------------------------------------------------------
# Plan -> staged operators
# ---------------------------------------------------------------------------


class StagedPlanBuilder:
    """Builds the staged operator tree and tracks shared cold-path binds."""

    def __init__(
        self,
        catalog: Catalog,
        db: Database,
        ctx: StagingContext,
        config: Config,
    ) -> None:
        self.catalog = catalog
        self.db = db
        self.ctx = ctx
        self.config = config
        self._strings_syms: dict[tuple[str, str], Rep] = {}
        self._partition_target: Optional[phys.Scan] = None
        self._partition_bounds: Optional[tuple[Rep, Rep]] = None
        self.stats_sym: Optional[Rep] = None  # set by the driver in instrument mode
        self._op_counter = 0
        self.backend = make_backend(self)
        self._prepared = False

    def _maybe_instrument(self, op: StagedOp, node: phys.PhysicalPlan) -> StagedOp:
        if not self.config.instrument:
            return op
        self._op_counter += 1
        label = f"{type(node).__name__}#{self._op_counter}"
        return InstrumentedOp(self, op, label)

    def set_partition(self, target: phys.Scan, lo: Rep, hi: Rep) -> None:
        """Mark ``target`` as the partitioned driving scan (Section 4.5)."""
        self._partition_target = target
        self._partition_bounds = (lo, hi)

    def partition_bounds_for(self, node: phys.Scan) -> Optional[tuple[Rep, Rep]]:
        if self._partition_target is not None and node is self._partition_target:
            return self._partition_bounds
        return None

    def strings_sym(self, table: str, column: str) -> Rep:
        """Bind (once) the decoded-string table of a dictionary."""
        key = (table, column)
        if key not in self._strings_syms:
            self._strings_syms[key] = self.ctx.call(
                "db_dict_strings", [table, column], result="void*", prefix="dic"
            )
        return self._strings_syms[key]

    # -- static (pre-datapath) field info --------------------------------------

    def static_fields(self, node: phys.PhysicalPlan) -> list[StaticField]:
        if isinstance(node, (phys.Scan, phys.DateIndexScan)):
            schema = self.catalog.table(node.table)
            rename = node.rename_map
            out = []
            for column in schema.columns:
                compressed = (
                    self.config.use_dictionaries
                    and column.type is ColumnType.STRING
                    and self.db.has_dictionary(node.table, column.name)
                )
                out.append(
                    StaticField(rename.get(column.name, column.name), column.type, compressed)
                )
            return out
        if isinstance(
            node, (phys.Select, phys.Sort, phys.Limit, phys.Distinct, phys.IndexSemiJoin)
        ):
            return self.static_fields(node.child)
        if isinstance(node, phys.Project):
            child = {f.name: f for f in self.static_fields(node.child)}
            types = node.child.field_types(self.catalog)
            out = []
            for name, expr in node.outputs:
                if isinstance(expr, Col) and child[expr.name].compressed:
                    out.append(StaticField(name, ColumnType.STRING, True))
                else:
                    out.append(StaticField(name, expr.result_type(types)))
            return out
        if isinstance(node, phys.HashJoin):
            return self.static_fields(node.left) + self.static_fields(node.right)
        if isinstance(node, phys.LeftOuterJoin):
            right = [
                StaticField(f.name, f.type, False)
                for f in self.static_fields(node.right)
            ]
            return self.static_fields(node.left) + right
        if isinstance(node, (phys.SemiJoin, phys.AntiJoin)):
            return self.static_fields(node.left)
        if isinstance(node, phys.IndexJoin):
            schema = self.catalog.table(node.table)
            rename = node.rename_map
            table_fields = [
                StaticField(
                    rename.get(c.name, c.name),
                    c.type,
                    self.config.use_dictionaries
                    and c.type is ColumnType.STRING
                    and self.db.has_dictionary(node.table, c.name),
                )
                for c in schema.columns
            ]
            return self.static_fields(node.child) + table_fields
        if isinstance(node, phys.GroupJoin):
            right_types = node.right.field_types(self.catalog)
            out = list(self.static_fields(node.left))
            for name, spec in node.aggs:
                out.append(StaticField(name, spec.result_type(right_types)))
            return out
        if isinstance(node, phys.Agg):
            types = node.child.field_types(self.catalog)
            child = {f.name: f for f in self.static_fields(node.child)}
            out = []
            for name, expr in node.keys:
                if isinstance(expr, Col) and child[expr.name].compressed:
                    out.append(StaticField(name, ColumnType.STRING, True))
                else:
                    out.append(StaticField(name, expr.result_type(types)))
            for name, spec in node.aggs:
                out.append(StaticField(name, spec.result_type(types)))
            return out
        raise CompileError(f"static_fields: unhandled node {type(node).__name__}")

    # -- construction --------------------------------------------------------------

    def build(self, node: phys.PhysicalPlan) -> StagedOp:
        if not self._prepared:
            # First build() call sees the plan root: let the backend run its
            # whole-plan analysis (the vector backend's eligibility pass).
            self._prepared = True
            self.backend.prepare(node)
        return self._maybe_instrument(self._build_raw(node), node)

    def _build_raw(self, node: phys.PhysicalPlan) -> StagedOp:
        if isinstance(node, phys.Scan):
            return StagedScan(self, node)
        if isinstance(node, phys.DateIndexScan):
            return StagedDateIndexScan(self, node)
        if isinstance(node, phys.Select):
            return StagedSelect(self, node, self.build(node.child))
        if isinstance(node, phys.Project):
            return StagedProject(self, node, self.build(node.child))
        if isinstance(node, phys.HashJoin):
            return StagedHashJoin(self, node, self.build(node.left), self.build(node.right))
        if isinstance(node, phys.LeftOuterJoin):
            return StagedLeftOuterJoin(
                self, node, self.build(node.left), self.build(node.right)
            )
        if isinstance(node, phys.SemiJoin):
            return StagedKeySetJoin(
                self, node, self.build(node.left), self.build(node.right), keep=True
            )
        if isinstance(node, phys.AntiJoin):
            return StagedKeySetJoin(
                self, node, self.build(node.left), self.build(node.right), keep=False
            )
        if isinstance(node, phys.IndexJoin):
            return StagedIndexJoin(self, node, self.build(node.child))
        if isinstance(node, phys.IndexSemiJoin):
            return StagedIndexSemiJoin(self, node, self.build(node.child))
        if isinstance(node, phys.GroupJoin):
            return StagedGroupJoin(
                self, node, self.build(node.left), self.build(node.right)
            )
        if isinstance(node, phys.Agg):
            return StagedAggOp(self, node, self.build(node.child))
        if isinstance(node, phys.Sort):
            return StagedSort(self, node, self.build(node.child))
        if isinstance(node, phys.Limit):
            return StagedLimit(self, node, self.build(node.child))
        if isinstance(node, phys.Distinct):
            return StagedDistinct(self, node, self.build(node.child))
        raise CompileError(f"no staged implementation for {type(node).__name__}")
