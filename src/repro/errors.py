"""The structured error taxonomy shared by every layer.

One :class:`ReproError` hierarchy replaces the former scatter of unrelated
exception bases (``PlanError``, ``CompileError``, ``ParallelError``,
``PushError``, ``VolcanoError``...).  The old names remain as subclasses in
their home modules, so existing ``except`` clauses keep working; what is
new is that every public error now carries

* ``code``  -- a stable machine-readable identifier (``E_*``),
* ``phase`` -- the compilation/execution phase that failed
  (``plan``, ``codegen``, ``verify``, ``host-compile``, ``execute``...),
* ``engine_trail`` -- the engines attempted before this error surfaced,
  filled in by the resilience layer's fallback chain.

This module is a deliberate leaf: it imports nothing from the rest of the
package so that any layer (catalog, plan, staging, engines, compiler) can
depend on it without cycles.
"""

from __future__ import annotations

from typing import Optional, Sequence

#: Phases an error can be attributed to, in pipeline order.  ``admit`` is
#: the serving tier's front door: a request can be rejected (queue full,
#: rate limit, open circuit breaker) before any compilation phase runs.
PHASES = (
    "admit",
    "catalog",
    "plan",
    "codegen",
    "optimize",
    "verify",
    "host-compile",
    "execute",
)

#: Phases that belong to the *compile path* -- the circuit breaker in the
#: serve tier counts consecutive failures in these phases per plan shape.
COMPILE_PHASES = frozenset({"codegen", "optimize", "verify", "host-compile"})

#: ``code -> class`` registry, populated by ``__init_subclass__``.
ERROR_CODES: dict[str, type] = {}


class ReproError(Exception):
    """Base of every error the system raises on purpose.

    Subclasses set ``code`` and ``phase`` as class attributes; the
    resilience layer attaches ``engine_trail`` to instances as it walks
    the fallback chain.
    """

    code: str = "E_REPRO"
    phase: str = "execute"
    engine_trail: tuple[str, ...] = ()
    request_id: Optional[str] = None

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # First class to claim a code owns it; compatibility subclasses
        # (e.g. a module-local alias) inherit without re-registering.
        ERROR_CODES.setdefault(cls.code, cls)

    def with_trail(self, trail: Sequence[str]) -> "ReproError":
        """Attach the attempted-engine trail; returns ``self`` for re-raise."""
        self.engine_trail = tuple(trail)
        return self

    def with_request(self, request_id: Optional[str]) -> "ReproError":
        """Attach the originating request's correlation id; returns ``self``.

        The serve tier stamps every error it ships with the request id it
        minted (or echoed) at admission, so a wire error joins the event
        log and the trace exactly like a successful reply does.
        """
        self.request_id = request_id
        return self

    def describe(self) -> str:
        """One-line structured rendering: code, phase, trail, message."""
        trail = "->".join(self.engine_trail) if self.engine_trail else "-"
        return f"[{self.code} phase={self.phase} trail={trail}] {self}"


class BudgetExceeded(ReproError):
    """A query ran past its wall-clock, row, or allocation budget.

    Carries the partial execution statistics gathered up to the point the
    guard fired, so callers can report how far the query got.
    """

    code = "E_BUDGET"
    phase = "execute"

    def __init__(self, message: str, stats: Optional[dict] = None) -> None:
        super().__init__(message)
        self.stats: dict = dict(stats or {})


class InjectedFault(ReproError):
    """A deterministic failure raised by the fault-injection harness.

    ``site`` names where the fault fired (one of
    :data:`repro.resilience.faults.FAULT_SITES`); tests use it to assert
    that every degradation path is exercised.
    """

    code = "E_FAULT"
    phase = "execute"

    _SITE_PHASES = {
        "codegen": "codegen",
        "verify": "verify",
        "host-compile": "host-compile",
        "worker-run": "execute",
        "mid-scan": "execute",
    }

    def __init__(self, site: str, detail: str = "") -> None:
        super().__init__(
            f"injected fault at site {site!r}" + (f": {detail}" if detail else "")
        )
        self.site = site
        self.detail = detail
        # phase is per-instance here: the same class models faults at
        # several pipeline stages.
        self.phase = self._SITE_PHASES.get(site, "execute")


class ServiceOverloadError(ReproError):
    """Admission control shed a request: the service queue is full.

    Raised (or returned, serialized) before any work is done on the
    request; clients should back off and retry.  Carries the queue depth
    observed at rejection time for operator dashboards.
    """

    code = "E_ADMIT"
    phase = "admit"

    def __init__(self, message: str, depth: Optional[int] = None) -> None:
        super().__init__(message)
        self.depth = depth


class RateLimitError(ReproError):
    """A token-bucket rate limiter (global or per-tenant) rejected the
    request.  ``tenant`` is None for the service-wide bucket."""

    code = "E_RATELIMIT"
    phase = "admit"

    def __init__(self, message: str, tenant: Optional[str] = None) -> None:
        super().__init__(message)
        self.tenant = tenant


class CircuitOpenError(ReproError):
    """The compile-path circuit breaker is open for this plan shape and
    the request pinned an engine that requires compilation.

    Requests that do *not* pin an engine never see this error: the serve
    tier falls through to the interpreted engines while the breaker is
    open.  ``shape`` identifies the plan-shape the breaker tripped on.
    """

    code = "E_BREAKER"
    phase = "admit"

    def __init__(self, message: str, shape: Optional[str] = None) -> None:
        super().__init__(message)
        self.shape = shape


class DeadlineExceeded(BudgetExceeded):
    """A request ran past its per-request deadline.

    A subclass of :class:`BudgetExceeded` because deadlines are enforced
    the same cooperative way (the deadline is mapped onto
    ``Budget.wall_clock_seconds``, so staged ``scan_tick`` checkpoints
    abort mid-scan); the distinct code lets clients tell "you asked for
    too little time" from "the operator capped this tenant".
    """

    code = "E_DEADLINE"
    phase = "execute"


class ServiceProtocolError(ReproError):
    """A wire request the service front end could not parse (malformed
    JSON, unknown op, missing statement)."""

    code = "E_PROTOCOL"
    phase = "admit"


class ParamError(ReproError):
    """A statement parameter was malformed, misplaced, or mis-bound.

    Covers both halves of the prepared-statement contract: statement-time
    problems (a placeholder in a position that cannot be parameterized,
    ``?`` mixed with ``:name``, a parameter whose type cannot be inferred)
    and bind-time problems (wrong arity, a missing named parameter, a value
    of the wrong Python type).  ``phase`` is per-instance -- statement-time
    errors belong to ``plan``, bind-time errors to ``execute`` -- mirroring
    how :class:`InjectedFault` models faults at several stages.
    """

    code = "E_PARAM"
    phase = "plan"

    def __init__(self, message: str, phase: str = "plan") -> None:
        super().__init__(message)
        if phase in PHASES:
            self.phase = phase


def error_code(exc: BaseException) -> str:
    """The taxonomy code of any exception (``E_RUNTIME`` for foreign ones)."""
    if isinstance(exc, ReproError):
        return exc.code
    return "E_RUNTIME"


def error_phase(exc: BaseException) -> str:
    """The pipeline phase of any exception (``execute`` for foreign ones)."""
    if isinstance(exc, ReproError):
        return exc.phase
    return "execute"


# -- wire format --------------------------------------------------------------
#
# The serve tier ships errors to clients as JSON; these two functions are
# the round-trip.  ``error_to_dict`` works on *any* exception (foreign ones
# become E_RUNTIME, exactly like ``error_code``); ``error_from_dict``
# reconstructs a taxonomy member of the owning class for the code, so a
# client can ``except DeadlineExceeded`` on an error that crossed a socket.


def error_to_dict(exc: BaseException) -> dict:
    """JSON-ready rendering of any exception: code, phase, message, trail,
    and the request correlation id when one was attached."""
    doc = {
        "code": error_code(exc),
        "phase": error_phase(exc),
        "type": type(exc).__name__,
        "message": str(exc) or type(exc).__name__,
        "engine_trail": list(getattr(exc, "engine_trail", ()) or ()),
    }
    request_id = getattr(exc, "request_id", None)
    if request_id is not None:
        doc["request_id"] = request_id
    return doc


def error_from_dict(doc: dict) -> ReproError:
    """Rebuild a :class:`ReproError` from its wire form.

    The instance is of the class that owns ``doc["code"]`` (``ReproError``
    itself for unknown or foreign codes).  Construction bypasses subclass
    ``__init__`` -- wire payloads don't carry constructor arguments like a
    fault site or partial stats -- but code, phase, message and trail all
    survive the round trip.
    """
    cls = ERROR_CODES.get(doc.get("code", ""), ReproError)
    exc = cls.__new__(cls)
    Exception.__init__(exc, doc.get("message", ""))
    code = doc.get("code")
    if isinstance(code, str) and code:
        exc.code = code  # preserves E_RUNTIME and other class-less codes
    phase = doc.get("phase")
    if phase in PHASES:
        exc.phase = phase
    exc.engine_trail = tuple(doc.get("engine_trail", ()) or ())
    request_id = doc.get("request_id")
    if isinstance(request_id, str):
        exc.request_id = request_id
    return exc
