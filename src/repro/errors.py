"""The structured error taxonomy shared by every layer.

One :class:`ReproError` hierarchy replaces the former scatter of unrelated
exception bases (``PlanError``, ``CompileError``, ``ParallelError``,
``PushError``, ``VolcanoError``...).  The old names remain as subclasses in
their home modules, so existing ``except`` clauses keep working; what is
new is that every public error now carries

* ``code``  -- a stable machine-readable identifier (``E_*``),
* ``phase`` -- the compilation/execution phase that failed
  (``plan``, ``codegen``, ``verify``, ``host-compile``, ``execute``...),
* ``engine_trail`` -- the engines attempted before this error surfaced,
  filled in by the resilience layer's fallback chain.

This module is a deliberate leaf: it imports nothing from the rest of the
package so that any layer (catalog, plan, staging, engines, compiler) can
depend on it without cycles.
"""

from __future__ import annotations

from typing import Optional, Sequence

#: Phases an error can be attributed to, in pipeline order.
PHASES = (
    "catalog",
    "plan",
    "codegen",
    "optimize",
    "verify",
    "host-compile",
    "execute",
)

#: ``code -> class`` registry, populated by ``__init_subclass__``.
ERROR_CODES: dict[str, type] = {}


class ReproError(Exception):
    """Base of every error the system raises on purpose.

    Subclasses set ``code`` and ``phase`` as class attributes; the
    resilience layer attaches ``engine_trail`` to instances as it walks
    the fallback chain.
    """

    code: str = "E_REPRO"
    phase: str = "execute"
    engine_trail: tuple[str, ...] = ()

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # First class to claim a code owns it; compatibility subclasses
        # (e.g. a module-local alias) inherit without re-registering.
        ERROR_CODES.setdefault(cls.code, cls)

    def with_trail(self, trail: Sequence[str]) -> "ReproError":
        """Attach the attempted-engine trail; returns ``self`` for re-raise."""
        self.engine_trail = tuple(trail)
        return self

    def describe(self) -> str:
        """One-line structured rendering: code, phase, trail, message."""
        trail = "->".join(self.engine_trail) if self.engine_trail else "-"
        return f"[{self.code} phase={self.phase} trail={trail}] {self}"


class BudgetExceeded(ReproError):
    """A query ran past its wall-clock, row, or allocation budget.

    Carries the partial execution statistics gathered up to the point the
    guard fired, so callers can report how far the query got.
    """

    code = "E_BUDGET"
    phase = "execute"

    def __init__(self, message: str, stats: Optional[dict] = None) -> None:
        super().__init__(message)
        self.stats: dict = dict(stats or {})


class InjectedFault(ReproError):
    """A deterministic failure raised by the fault-injection harness.

    ``site`` names where the fault fired (one of
    :data:`repro.resilience.faults.FAULT_SITES`); tests use it to assert
    that every degradation path is exercised.
    """

    code = "E_FAULT"
    phase = "execute"

    _SITE_PHASES = {
        "codegen": "codegen",
        "verify": "verify",
        "host-compile": "host-compile",
        "worker-run": "execute",
        "mid-scan": "execute",
    }

    def __init__(self, site: str, detail: str = "") -> None:
        super().__init__(
            f"injected fault at site {site!r}" + (f": {detail}" if detail else "")
        )
        self.site = site
        self.detail = detail
        # phase is per-instance here: the same class models faults at
        # several pipeline stages.
        self.phase = self._SITE_PHASES.get(site, "execute")


def error_code(exc: BaseException) -> str:
    """The taxonomy code of any exception (``E_RUNTIME`` for foreign ones)."""
    if isinstance(exc, ReproError):
        return exc.code
    return "E_RUNTIME"


def error_phase(exc: BaseException) -> str:
    """The pipeline phase of any exception (``execute`` for foreign ones)."""
    if isinstance(exc, ReproError):
        return exc.phase
    return "execute"
