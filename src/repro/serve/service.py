"""The query service: concurrent SQL over one thread-safe Session.

:class:`QueryService` is the long-lived object a front end (TCP server,
bench harness, test) submits :class:`ServiceRequest`\\ s to.  Each request
flows through, in order:

1. **admission** on the caller's thread -- global token bucket, tenant
   token bucket + concurrency quota, bounded in-flight gate; every
   rejection is an immediate typed error (``E_RATELIMIT`` / ``E_ADMIT``),
   never an unbounded queue;
2. **execution** on a worker thread -- the request's deadline becomes
   ``Budget.wall_clock_seconds`` (plus the tenant's ``max_rows``), so the
   staged ``scan_tick`` checkpoints abort a runaway scan cooperatively
   mid-flight; the compile-path circuit breaker decides whether the
   compiled engines may be attempted for this plan shape; the
   :class:`~repro.resilience.executor.ResilientExecutor` walks whatever
   chain remains;
3. **response** -- rows or a typed error, plus the engine that answered,
   the degradation trail, and timing.  A request never surfaces a raw
   exception and never outlives its deadline by more than one checkpoint
   interval plus a small grace.

Compile-once/execute-many economics survive deadlines: the executor is
built with ``cache_guarded_compiles=True``, so budget-checked builds are
cached in the session (single-flight: N concurrent misses on one shape
compile once).
"""

from __future__ import annotations

import re
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import (
    COMPILE_PHASES,
    BudgetExceeded,
    CircuitOpenError,
    DeadlineExceeded,
    ReproError,
    error_to_dict,
)
from repro.obs import events
from repro.obs.metrics import REGISTRY
from repro.obs.sampler import RequestProfile, TailSampler, parse_traceparent
from repro.obs.slo import SLOConfig, SLOMonitor
from repro.obs.telemetry import TELEMETRY, shape_digest
from repro.obs.trace import Trace, span
from repro.resilience.budget import Budget
from repro.resilience.executor import ENGINE_CHAIN, FULL_CHAIN, ResilientExecutor
from repro.serve.admission import AdmissionGate, TenantQuota, TenantRegistry, TokenBucket
from repro.serve.breaker import OPEN, PROBE, CircuitBreaker
from repro.session import Session

#: Engines that go through the compiler (and therefore the breaker).
COMPILED_ENGINES = frozenset({"compiled", "vector"})

#: Interpreted engines the service degrades to while a breaker is open.
INTERPRETED_CHAIN = ("push", "volcano")

#: Characters allowed in a metric-label segment.  Tenant names arrive off
#: the wire; anything outside this set is mapped to ``_`` before the name
#: is interpolated into a registry key.
_LABEL_SAFE = re.compile(r"[^A-Za-z0-9_.-]")
_LABEL_MAX_CHARS = 48


def mint_request_id() -> str:
    """A fresh correlation id for a request that did not bring one."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`QueryService` instance."""

    workers: int = 4
    max_queue_depth: int = 16  # waiting requests beyond the workers
    default_deadline_seconds: float = 10.0
    deadline_grace_seconds: float = 0.5  # client-side wait past deadline
    rate_limit: Optional[float] = None  # service-wide requests/second
    rate_burst: int = 32
    breaker_threshold: int = 3
    breaker_cooldown_seconds: float = 1.0
    engines: Tuple[str, ...] = ENGINE_CHAIN
    tenants: Optional[Dict[str, TenantQuota]] = None
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    query_scale: float = 1.0  # scale passed to TPC-H plan builders
    trace_requests: bool = False
    # Per-request workload telemetry: compiled engines build with the
    # staged per-operator timers (``Config(instrument=True)``, cached
    # under its own key) and successful executions feed the process-wide
    # :data:`repro.obs.telemetry.TELEMETRY` store.  Off by default: the
    # uninstrumented residual programs stay byte-identical to the goldens.
    telemetry: bool = False
    # Tail-based profile sampling: when on, every request runs traced and
    # the finished profile (spans, operator timings, engine trail) is
    # offered to a bounded :class:`~repro.obs.sampler.TailSampler`, which
    # keeps the slowest decile plus every error/breaker/degraded request
    # and attaches kept request ids as latency-histogram exemplars.  Off
    # by default, same "off means off" contract as telemetry.
    sampling: bool = False
    sampler_capacity: int = 512
    sampler_slow_quantile: float = 0.9
    sampler_warmup: int = 32
    # SLO burn-rate monitoring: a config arms per-service/tenant/shape
    # sliding windows; None (the default) disables the monitor entirely.
    slo: Optional[SLOConfig] = None
    # Cardinality caps for wire-controlled metric label families: at most
    # this many distinct tenant / plan-shape labels get their own
    # ``serve.tenant.*`` / ``serve.shape.*`` names; the overflow shares
    # the ``other`` bucket.
    max_tenant_labels: int = 64
    max_shape_labels: int = 256

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be non-negative")
        unknown = [e for e in self.engines if e not in FULL_CHAIN]
        if unknown:
            raise ValueError(f"unknown engines {unknown}; pick from {FULL_CHAIN}")


@dataclass
class ServiceRequest:
    """One query: SQL text or a TPC-H plan number, plus client context."""

    sql: Optional[str] = None
    tpch: Optional[int] = None
    tenant: str = "default"
    deadline_seconds: Optional[float] = None
    engine: Optional[str] = None  # pin one engine (testing/diagnostics)
    id: Optional[object] = None
    # Bindings for a parameterized statement: a list for positional ``?``
    # placeholders, a dict for ``:name`` placeholders.  Only valid with
    # ``sql``; arity/type violations come back as typed ``E_PARAM``.
    params: Optional[object] = None
    # The correlation id every reply, log line, event and error carries.
    # Clients may supply their own (echoed verbatim); the service mints
    # one at admission otherwise.
    request_id: Optional[str] = None
    # W3C-style distributed trace context ("00-<trace>-<span>-<flags>");
    # malformed values are ignored, never rejected.  The parsed trace id
    # lands in the worker's request context, the trace meta, the event
    # log and the stored profile.
    traceparent: Optional[str] = None
    # Stamped by submit(): when this request entered admission, on the
    # monotonic clock (queueing attribution for the profile).
    submitted_at: Optional[float] = None

    def shape(self) -> str:
        """The plan-shape key the breaker and compiled cache share.

        For SQL this is the statement's *shape* -- canonical spelling
        with eligible literals lifted to placeholders (:func:`repro.sql.
        shape.statement_shape`) -- so literal variants of one statement
        share breaker state, telemetry digests and the session's
        shape-keyed compile.
        """
        if self.sql is not None:
            from repro.sql.shape import statement_shape

            return "sql:" + statement_shape(self.sql).text
        return f"tpch:{self.tpch}"


@dataclass
class ServiceResponse:
    """Rows or a typed error; never a raw exception."""

    id: Optional[object] = None
    ok: bool = False
    rows: Optional[list] = None
    error: Optional[dict] = None  # repro.errors.error_to_dict form
    engine: Optional[str] = None
    engine_trail: Tuple[str, ...] = ()
    degraded: bool = False
    breaker: Optional[str] = None  # breaker decision for this shape
    tenant: str = "default"
    elapsed_seconds: float = 0.0
    trace: Optional[dict] = None
    request_id: Optional[str] = None
    shape: Optional[str] = None  # the plan-shape key (not serialized)
    trace_id: Optional[str] = None  # propagated traceparent trace id
    # Profile material the tail sampler consumes; none of it is
    # serialized to the wire (the client already paid for the rows).
    queued_seconds: float = 0.0
    exec_seconds: float = 0.0
    operator_times: Optional[dict] = None
    operator_rows: Optional[dict] = None
    kernels: Optional[dict] = None
    sampled_trace: Optional[dict] = None  # trace kept for sampling only

    @property
    def code(self) -> Optional[str]:
        return self.error.get("code") if self.error else None

    def to_dict(self) -> dict:
        doc = {
            "id": self.id,
            "ok": self.ok,
            "request_id": self.request_id,
            "tenant": self.tenant,
            "elapsed_ms": round(self.elapsed_seconds * 1e3, 3),
        }
        if self.ok:
            doc["rows"] = [list(r) for r in self.rows or []]
            doc["engine"] = self.engine
            doc["degraded"] = self.degraded
            doc["engine_trail"] = list(self.engine_trail)
        else:
            doc["error"] = self.error
        if self.breaker is not None:
            doc["breaker"] = self.breaker
        if self.trace is not None:
            doc["trace"] = self.trace
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        return doc


class QueryService:
    """Admission-controlled concurrent query execution over a Session."""

    def __init__(self, session: Session, config: Optional[ServiceConfig] = None) -> None:
        self.session = session
        self.config = config or ServiceConfig()
        cfg = self.config
        self._gate = AdmissionGate(cfg.workers + cfg.max_queue_depth)
        self._bucket = (
            TokenBucket(cfg.rate_limit, cfg.rate_burst) if cfg.rate_limit else None
        )
        self._tenants = TenantRegistry(cfg.tenants, cfg.default_quota)
        self.breaker = CircuitBreaker(
            cfg.breaker_threshold, cfg.breaker_cooldown_seconds
        )
        self._pool = ThreadPoolExecutor(
            max_workers=cfg.workers, thread_name_prefix="repro-serve"
        )
        self.sampler: Optional[TailSampler] = (
            TailSampler(
                capacity=cfg.sampler_capacity,
                slow_quantile=cfg.sampler_slow_quantile,
                warmup=cfg.sampler_warmup,
            )
            if cfg.sampling
            else None
        )
        self.slo: Optional[SLOMonitor] = (
            SLOMonitor(cfg.slo) if cfg.slo is not None else None
        )
        self._closed = False
        self._close_lock = threading.Lock()
        # Metric-label interning: tenant names and plan shapes arrive off
        # the wire, so without a cap a hostile client could mint unbounded
        # registry names.  First-come families keep their own label; the
        # rest share ``other``.
        self._label_lock = threading.Lock()
        self._tenant_labels: set = set()
        self._shape_labels: set = set()

    # -- lifecycle ----------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the front door -----------------------------------------------------

    def submit(self, request: ServiceRequest) -> ServiceResponse:
        """Admit, execute, respond.  Blocks the calling thread until the
        response is ready or the deadline (plus grace) has passed."""
        started = time.monotonic()
        request.submitted_at = started
        if request.request_id is None:
            request.request_id = mint_request_id()
        REGISTRY.counter("serve.requests")
        REGISTRY.counter(f"serve.tenant.{self._tenant_label(request.tenant)}.requests")
        try:
            self._validate(request)
            deadline = started + self._deadline_for(request)
            self._admit(request)  # raises typed rejections; no gate held
        except ReproError as exc:
            return self._reject(request, exc, started)
        events.emit(
            "admit",
            request_id=request.request_id,
            tenant=request.tenant,
            shape=request.shape(),
        )
        # Admitted: the gate slot is held until the worker finishes (or the
        # client gives up waiting -- the slot follows the *work*, which is
        # what protects the pool, not the waiting client).
        tenant_state = self._tenants.state(request.tenant)
        try:
            future = self._pool.submit(self._run, request, tenant_state, deadline)
        except RuntimeError as exc:  # pool already shut down
            self._gate.leave()
            tenant_state.release()
            return self._reject(
                request, ReproError(f"service unavailable: {exc}"), started
            )
        future.add_done_callback(
            lambda _f: (self._gate.leave(), tenant_state.release())
        )
        grace = self.config.deadline_grace_seconds
        timeout = max(0.0, deadline - time.monotonic()) + grace
        try:
            response = future.result(timeout=timeout)
        except FutureTimeout:
            # The worker overran its cooperative checkpoints; answer the
            # client now with a fresh response object (the worker still owns
            # its own), and let the worker die at its next tick.
            REGISTRY.counter("serve.deadline.overrun")
            exc = DeadlineExceeded(
                f"deadline exceeded: no result within "
                f"{self._deadline_for(request):.3f}s (+{grace:.3f}s grace)"
            )
            return self._reject(request, exc, started)
        except BaseException as exc:  # pragma: no cover - defensive
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            return self._reject(request, exc, started)
        response.elapsed_seconds = time.monotonic() - started
        self._account(response)
        return response

    def submit_dict(self, doc: dict) -> dict:
        """Dict-in/dict-out convenience for wire front ends."""
        request = ServiceRequest(
            sql=doc.get("sql"),
            tpch=doc.get("tpch"),
            tenant=str(doc.get("tenant", "default")),
            deadline_seconds=doc.get("deadline_seconds"),
            engine=doc.get("engine"),
            id=doc.get("id"),
            params=doc.get("params"),
            request_id=(
                doc["request_id"] if isinstance(doc.get("request_id"), str) else None
            ),
            traceparent=(
                doc["traceparent"] if isinstance(doc.get("traceparent"), str) else None
            ),
        )
        return self.submit(request).to_dict()

    # -- admission ----------------------------------------------------------

    def _validate(self, request: ServiceRequest) -> None:
        if self._closed:
            raise ReproError("service is shut down")
        if (request.sql is None) == (request.tpch is None):
            from repro.errors import ServiceProtocolError

            raise ServiceProtocolError(
                "request must carry exactly one of 'sql' or 'tpch'"
            )
        if request.engine is not None and request.engine not in FULL_CHAIN:
            from repro.errors import ServiceProtocolError

            raise ServiceProtocolError(
                f"unknown engine {request.engine!r}; pick from {FULL_CHAIN}"
            )
        if request.params is not None:
            from repro.errors import ServiceProtocolError

            if request.sql is None:
                raise ServiceProtocolError(
                    "'params' is only valid with 'sql' (TPC-H plan requests "
                    "take no bindings)"
                )
            if not isinstance(request.params, (list, tuple, dict)):
                raise ServiceProtocolError(
                    "'params' must be a list (positional '?') or an object "
                    f"(named ':name'), got {type(request.params).__name__}"
                )

    def _deadline_for(self, request: ServiceRequest) -> float:
        quota = self._tenants.state(request.tenant).quota
        deadline = request.deadline_seconds
        if deadline is None or deadline <= 0:
            deadline = self.config.default_deadline_seconds
        if quota.max_deadline_seconds is not None:
            deadline = min(deadline, quota.max_deadline_seconds)
        return deadline

    def _admit(self, request: ServiceRequest) -> None:
        """Global bucket -> tenant limits -> gate; all shed, none queue."""
        from repro.errors import RateLimitError

        if self._bucket is not None and not self._bucket.try_acquire():
            REGISTRY.counter("serve.rejected.ratelimit")
            raise RateLimitError(
                f"service over its global rate limit "
                f"({self.config.rate_limit}/s)"
            )
        tenant_state = self._tenants.state(request.tenant)
        tenant_state.admit()
        try:
            self._gate.enter()
        except BaseException:
            tenant_state.release()
            raise
        REGISTRY.counter("serve.admitted")

    # -- execution (worker thread) ------------------------------------------

    def _run(
        self, request: ServiceRequest, tenant_state, deadline: float
    ) -> ServiceResponse:
        started = time.monotonic()
        rid = request.request_id
        shape = request.shape()
        response = ServiceResponse(
            id=request.id, tenant=request.tenant, request_id=rid, shape=shape
        )
        if request.submitted_at is not None:
            response.queued_seconds = max(0.0, started - request.submitted_at)
        parsed = parse_traceparent(request.traceparent)
        trace_id = parsed[0] if parsed else None
        response.trace_id = trace_id
        # Tail sampling needs the span tree of *every* request (keep/drop
        # is decided at request end), so sampling turns tracing on even
        # when replies do not carry traces.
        trace = None
        if self.config.trace_requests or self.sampler is not None:
            meta = {"shape": shape, "request_id": rid}
            if trace_id is not None:
                meta["trace_id"] = trace_id
                meta["parent_id"] = parsed[1]
            trace = Trace("request", **meta)
            trace.__enter__()
        try:
            # Bind the ambient request context so deep layers (the
            # session's single-flight compile, the executor's fallback
            # walk) can stamp events with this id without threading it
            # through every signature.
            with events.request_context(
                rid, shape=shape, tenant=request.tenant, trace_id=trace_id
            ):
                with span("serve.request", tenant=request.tenant):
                    self._run_inner(request, tenant_state, deadline, response)
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._fill_error(response, exc, rid)
        finally:
            if trace is not None:
                trace.__exit__(None, None, None)
                if self.config.trace_requests:
                    response.trace = trace.to_dict()
                else:
                    response.sampled_trace = trace.to_dict()
        response.exec_seconds = time.monotonic() - started
        response.elapsed_seconds = time.monotonic() - started
        return response

    def _run_inner(
        self,
        request: ServiceRequest,
        tenant_state,
        deadline: float,
        response: ServiceResponse,
    ) -> None:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            REGISTRY.counter("serve.deadline.expired_in_queue")
            raise DeadlineExceeded(
                "deadline expired while queued (before execution began)"
            )
        quota = tenant_state.quota
        budget = Budget(
            wall_clock_seconds=remaining, max_rows=quota.max_rows
        )
        shape = request.shape()
        decision = self.breaker.decide(shape)
        response.breaker = decision
        engines = self._engines_for(request, decision)
        executor = ResilientExecutor(
            self.session,
            budget=budget,
            engines=engines,
            cache_guarded_compiles=True,
            instrument=self.config.telemetry,
            request_id=request.request_id,
        )
        compiled_attempted = False
        try:
            if request.sql is not None:
                result = executor.query(request.sql, request.params)
            else:
                result = executor.execute_plan(
                    self._tpch_plan(request.tpch), cache_key=f"tpch:{request.tpch}"
                )
        except BaseException as exc:
            compiled_attempted = self._feed_breaker_from_error(shape, exc)
            if decision == PROBE and not compiled_attempted:
                self.breaker.abort_probe(shape)
            raise self._map_budget_error(exc, quota, request)
        compiled_attempted = self._feed_breaker_from_report(shape, result.report)
        if decision == PROBE and not compiled_attempted:
            self.breaker.abort_probe(shape)
        response.ok = True
        response.rows = list(result.rows)
        response.engine = result.report.engine
        response.engine_trail = result.report.engine_trail
        response.degraded = result.report.degraded or decision == OPEN
        report = result.report
        response.operator_times = report.operator_times
        response.operator_rows = report.operator_rows
        response.kernels = report.kernels
        TELEMETRY.record_execution(
            shape,
            report.engine or "unknown",
            len(response.rows),
            report.attempts[-1].seconds if report.attempts else 0.0,
            operator_times=report.operator_times,
            operator_rows=report.operator_rows,
            kernels=report.kernels,
        )

    def _engines_for(self, request: ServiceRequest, decision: str) -> Sequence[str]:
        if request.engine is not None:
            if request.engine in COMPILED_ENGINES and decision == OPEN:
                REGISTRY.counter("serve.rejected.breaker")
                raise CircuitOpenError(
                    f"circuit breaker open for shape {request.shape()!r} "
                    f"and request pins engine {request.engine!r}",
                    shape=request.shape(),
                )
            return (request.engine,)
        if decision == OPEN:
            REGISTRY.counter("serve.breaker.bypassed")
            interpreted = tuple(
                e for e in self.config.engines if e not in COMPILED_ENGINES
            )
            return interpreted or INTERPRETED_CHAIN
        return self.config.engines

    def _tpch_plan(self, number: int):
        from repro.errors import ServiceProtocolError
        from repro.tpch.queries import QUERIES, query_plan

        if number not in QUERIES:
            raise ServiceProtocolError(f"unknown TPC-H query number {number!r}")
        return query_plan(number, scale=self.config.query_scale)

    # -- breaker feedback ---------------------------------------------------

    def _feed_breaker_from_report(self, shape: str, report) -> bool:
        """Inspect the attempt trail; True when a compiled engine ran."""
        attempted = False
        for attempt in report.attempts:
            if attempt.engine not in COMPILED_ENGINES:
                continue
            attempted = True
            if attempt.ok:
                self.breaker.on_success(shape)
            elif attempt.phase in COMPILE_PHASES:
                self.breaker.on_compile_failure(shape)
        return attempted

    def _feed_breaker_from_error(self, shape: str, exc: BaseException) -> bool:
        report = getattr(exc, "execution_report", None)
        if report is None:
            return False
        return self._feed_breaker_from_report(shape, report)

    # -- error shaping ------------------------------------------------------

    def _map_budget_error(
        self, exc: BaseException, quota: TenantQuota, request: ServiceRequest
    ) -> BaseException:
        """Wall-clock budget trips were deadline-driven here; rename them."""
        if isinstance(exc, DeadlineExceeded) or not isinstance(exc, BudgetExceeded):
            return exc
        stats = exc.stats
        rows_tripped = (
            quota.max_rows is not None
            and stats.get("rows_seen", 0) > quota.max_rows
        )
        if rows_tripped:
            REGISTRY.counter(
                f"serve.tenant.{self._tenant_label(request.tenant)}.budget_trips"
            )
            return exc  # an operator-set row quota: stays E_BUDGET
        mapped = DeadlineExceeded(str(exc), stats=stats)
        mapped.engine_trail = exc.engine_trail
        return mapped

    def _fill_error(
        self,
        response: ServiceResponse,
        exc: BaseException,
        request_id: Optional[str] = None,
    ) -> None:
        response.ok = False
        rid = request_id or response.request_id
        if isinstance(exc, ReproError) and exc.request_id is None:
            exc.with_request(rid)
        response.error = error_to_dict(exc)
        report = getattr(exc, "execution_report", None)
        if report is not None:
            response.engine_trail = report.engine_trail

    def _reject(
        self, request: ServiceRequest, exc: BaseException, started: float
    ) -> ServiceResponse:
        response = ServiceResponse(
            id=request.id,
            tenant=request.tenant,
            request_id=request.request_id,
            shape=(
                request.shape()
                if (request.sql is not None or request.tpch is not None)
                else None
            ),
        )
        self._fill_error(response, exc, request.request_id)
        response.elapsed_seconds = time.monotonic() - started
        self._account(response)
        return response

    # -- metric labels (wire-controlled, so capped) --------------------------

    def _tenant_label(self, tenant: str) -> str:
        """Registry-safe tenant label: sanitized, truncated, interned.

        The first ``max_tenant_labels`` distinct labels get their own
        ``serve.tenant.*`` family; later ones share ``other`` so a
        hostile client cannot grow the registry without bound.
        """
        label = _LABEL_SAFE.sub("_", str(tenant))[:_LABEL_MAX_CHARS] or "_"
        with self._label_lock:
            if label in self._tenant_labels:
                return label
            if len(self._tenant_labels) < self.config.max_tenant_labels:
                self._tenant_labels.add(label)
                return label
        return "other"

    def _shape_label(self, shape: str) -> str:
        """Registry-safe plan-shape label: the telemetry digest, capped.

        The 8-hex digest also appears in every telemetry snapshot entry,
        so per-shape latency histograms join per-shape operator profiles.
        """
        label = shape_digest(shape)
        with self._label_lock:
            if label in self._shape_labels:
                return label
            if len(self._shape_labels) < self.config.max_shape_labels:
                self._shape_labels.add(label)
                return label
        return "other"

    def _account(self, response: ServiceResponse) -> None:
        tenant_label = self._tenant_label(response.tenant)
        shape_label = (
            self._shape_label(response.shape)
            if response.shape is not None
            else None
        )
        # Tail sampling decides *before* the histogram observations so a
        # kept request's id can ride into the matching latency bucket as
        # an exemplar -- the link from a p99 bucket to its deep profile.
        exemplar: Optional[str] = None
        if self.sampler is not None:
            kept = self.sampler.offer(self._profile_of(response))
            if kept:
                exemplar = response.request_id
        REGISTRY.observe(
            "serve.latency_seconds", response.elapsed_seconds, exemplar=exemplar
        )
        REGISTRY.observe(
            f"serve.tenant.{tenant_label}.latency_seconds",
            response.elapsed_seconds,
            exemplar=exemplar,
        )
        if shape_label is not None:
            REGISTRY.observe(
                f"serve.shape.{shape_label}.latency_seconds",
                response.elapsed_seconds,
                exemplar=exemplar,
            )
        if self.slo is not None:
            self.slo.record(
                response.elapsed_seconds,
                ok=response.ok,
                tenant=tenant_label,
                shape=shape_label,
                request_id=response.request_id,
            )
        elapsed_ms = round(response.elapsed_seconds * 1e3, 3)
        if response.ok:
            REGISTRY.counter("serve.completed")
            if response.degraded:
                REGISTRY.counter("serve.degraded")
            events.emit(
                "complete",
                request_id=response.request_id,
                shape=response.shape,
                tenant=response.tenant,
                engine=response.engine,
                degraded=response.degraded,
                rows=len(response.rows or ()),
                elapsed_ms=elapsed_ms,
            )
        else:
            REGISTRY.counter("serve.failed")
            REGISTRY.counter(f"serve.errors.{response.code}")
            error = response.error or {}
            if response.code in ("E_BUDGET", "E_DEADLINE"):
                events.emit(
                    "budget_trip",
                    request_id=response.request_id,
                    shape=response.shape,
                    tenant=response.tenant,
                    code=response.code,
                    phase=error.get("phase"),
                )
            events.emit(
                "reject",
                request_id=response.request_id,
                shape=response.shape,
                tenant=response.tenant,
                code=response.code,
                phase=error.get("phase"),
                elapsed_ms=elapsed_ms,
            )

    def _profile_of(self, response: ServiceResponse) -> RequestProfile:
        """The tail sampler's view of one finished request."""
        return RequestProfile(
            request_id=response.request_id or "unknown",
            shape=response.shape,
            tenant=response.tenant,
            latency_seconds=response.elapsed_seconds,
            outcome="ok" if response.ok else (response.code or "E_RUNTIME"),
            engine=response.engine,
            engine_trail=tuple(response.engine_trail),
            degraded=response.degraded,
            breaker=response.breaker,
            queued_seconds=response.queued_seconds,
            exec_seconds=response.exec_seconds,
            trace=(
                response.sampled_trace
                if response.sampled_trace is not None
                else response.trace
            ),
            trace_id=response.trace_id,
            operator_times=response.operator_times,
            operator_rows=response.operator_rows,
            kernels=response.kernels,
        )

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        """Operator view: queue, breakers, tenants, ``serve.*`` counters."""
        doc = {
            "queue_depth": self._gate.depth,
            "queue_limit": self._gate.limit,
            "workers": self.config.workers,
            "breakers": self.breaker.snapshot(),
            "tenants": self._tenants.snapshot(),
            "cache": self.session.cache_info(),
            "counters": REGISTRY.counters_with_prefix("serve."),
        }
        if self.sampler is not None:
            doc["sampler"] = self.sampler.stats()
        if self.slo is not None:
            doc["slo"] = self.slo.snapshot()
        return doc
