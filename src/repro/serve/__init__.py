"""The serving tier: concurrent SQL over a thread-safe Session.

Public surface:

* :class:`QueryService` / :class:`ServiceConfig` -- the admission-controlled
  executor (:mod:`repro.serve.service`);
* :class:`ServiceRequest` / :class:`ServiceResponse` -- the request model;
* :class:`QueryServer` / :class:`ServiceClient` -- the line-oriented JSON
  TCP front end and its blocking client;
* :class:`TenantQuota` -- per-tenant limits (rate, concurrency, row budget);
* :class:`CircuitBreaker` -- the compile-path breaker (exported for tests
  and dashboards; the service owns one internally).

The typed rejections (``E_ADMIT``, ``E_RATELIMIT``, ``E_BREAKER``,
``E_DEADLINE``, ``E_PROTOCOL``) live in :mod:`repro.errors` with the rest
of the taxonomy.
"""

from repro.serve.admission import AdmissionGate, TenantQuota, TokenBucket
from repro.serve.breaker import CircuitBreaker
from repro.serve.client import ServiceClient, raise_for_error
from repro.serve.server import QueryServer, wait_for_port
from repro.serve.service import (
    QueryService,
    ServiceConfig,
    ServiceRequest,
    ServiceResponse,
    mint_request_id,
)
from repro.serve.workload import mixed_workload, request_for

__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "QueryServer",
    "QueryService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceRequest",
    "ServiceResponse",
    "TenantQuota",
    "TokenBucket",
    "mint_request_id",
    "mixed_workload",
    "raise_for_error",
    "request_for",
    "wait_for_port",
]
