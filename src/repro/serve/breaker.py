"""A circuit breaker around the compile path, keyed by plan shape.

The fallback chain already turns one compile failure into a degraded
answer; what it cannot do is *remember*.  A plan shape whose codegen is
broken (or whose compile site a fault injector keeps failing) would pay
the full compile attempt on every request before degrading.  The breaker
adds the memory: after ``threshold`` consecutive compile-path failures
for one shape it **opens**, and the serve tier routes that shape straight
to the interpreted engines -- no compile attempt, no wasted latency.
After ``cooldown_seconds`` it lets exactly one probe request try the
compiler again (**half-open**); success closes the breaker, failure
re-opens it with a fresh cooldown.

"Compile-path failure" means an error in a compile phase
(:data:`repro.errors.COMPILE_PHASES`: codegen, optimize, verify,
host-compile) during the compiled/vector attempt -- a query that compiles
fine but trips its row budget must not poison the breaker.

State is per-shape under one lock; ``decide`` is the only method the hot
path calls and it does one dict lookup.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.obs.metrics import REGISTRY

#: ``decide`` outcomes.
CLOSED = "closed"
OPEN = "open"
PROBE = "probe"


class _Entry:
    __slots__ = ("state", "consecutive", "opened_at", "probing")

    def __init__(self) -> None:
        self.state = CLOSED
        self.consecutive = 0
        self.opened_at = 0.0
        self.probing = False


class CircuitBreaker:
    """Per-plan-shape compile-path breaker with half-open probes."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown_seconds: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if cooldown_seconds <= 0:
            raise ValueError("cooldown_seconds must be positive")
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._entries: Dict[str, _Entry] = {}
        self._lock = threading.Lock()

    def _entry(self, shape: str) -> _Entry:
        entry = self._entries.get(shape)
        if entry is None:
            entry = self._entries[shape] = _Entry()
        return entry

    # -- the hot path -------------------------------------------------------

    def decide(self, shape: str) -> str:
        """May this request attempt the compile path for ``shape``?

        Returns :data:`CLOSED` (yes), :data:`OPEN` (no -- go interpreted),
        or :data:`PROBE` (yes, and this request is *the* half-open probe:
        the caller must report back via :meth:`on_success` /
        :meth:`on_compile_failure`, or :meth:`abort_probe` if it never
        reached the compiler).
        """
        with self._lock:
            entry = self._entries.get(shape)
            if entry is None or entry.state == CLOSED:
                return CLOSED
            if entry.probing:
                return OPEN  # someone else holds the probe slot
            if self._clock() - entry.opened_at >= self.cooldown_seconds:
                entry.probing = True
                REGISTRY.counter("serve.breaker.half_open")
                return PROBE
            return OPEN

    # -- outcome reporting --------------------------------------------------

    def on_success(self, shape: str) -> None:
        """A compiled/vector attempt succeeded: close and reset."""
        with self._lock:
            entry = self._entries.get(shape)
            if entry is None:
                return
            if entry.state == OPEN:
                REGISTRY.counter("serve.breaker.closed")
            entry.state = CLOSED
            entry.consecutive = 0
            entry.probing = False

    def on_compile_failure(self, shape: str) -> bool:
        """A compile-path failure for ``shape``; True if the breaker is
        now open (newly or still)."""
        with self._lock:
            entry = self._entry(shape)
            entry.consecutive += 1
            if entry.probing:
                # Failed probe: straight back to open, fresh cooldown.
                entry.probing = False
                entry.state = OPEN
                entry.opened_at = self._clock()
                REGISTRY.counter("serve.breaker.reopened")
                return True
            if entry.state == CLOSED and entry.consecutive >= self.threshold:
                entry.state = OPEN
                entry.opened_at = self._clock()
                REGISTRY.counter("serve.breaker.opened")
            return entry.state == OPEN

    def abort_probe(self, shape: str) -> None:
        """The probe request died before reaching the compiler (deadline,
        budget...); hand the probe slot back without changing state."""
        with self._lock:
            entry = self._entries.get(shape)
            if entry is not None and entry.probing:
                entry.probing = False

    # -- introspection ------------------------------------------------------

    def state(self, shape: str) -> str:
        with self._lock:
            entry = self._entries.get(shape)
            return entry.state if entry is not None else CLOSED

    def snapshot(self) -> dict:
        with self._lock:
            return {
                shape: {
                    "state": e.state,
                    "consecutive_failures": e.consecutive,
                    "probing": e.probing,
                }
                for shape, e in self._entries.items()
            }
