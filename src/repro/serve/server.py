"""A line-oriented TCP front end over :class:`QueryService`.

The wire protocol is newline-delimited JSON (one request object per line,
one response object per line, UTF-8).  Query requests carry ``sql`` or
``tpch`` plus optional ``tenant`` / ``deadline_seconds`` / ``engine`` /
``id``; three admin ops ride the same framing::

    {"op": "ping"}                  -> {"ok": true, "pong": true}
    {"op": "stats"}                 -> {"ok": true, "stats": {...}}
    {"op": "metrics"}               -> {"ok": true, "metrics": {"snapshot":
                                       {...}, "exposition": "..."}} -- the
                                       registry as JSON plus the
                                       Prometheus-style text rendering
    {"op": "shutdown"}              -> {"ok": true, "bye": true} and the
                                       server stops accepting connections

Query requests may carry a ``request_id``; the service echoes it on the
reply (and stamps it on errors) or mints one when absent, so a client can
join its replies against the server's event log and traces.

Every connection gets its own handler thread (``ThreadingTCPServer``);
actual query concurrency is bounded by the service's admission gate and
worker pool, not by the socket layer.  Malformed lines produce a typed
``E_PROTOCOL`` error response; nothing a client sends can surface a raw
traceback over the wire.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Optional, Tuple

from repro.errors import ServiceProtocolError, error_to_dict
from repro.obs.metrics import REGISTRY
from repro.serve.service import QueryService


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "QueryServer" = self.server.owner  # type: ignore[attr-defined]
        REGISTRY.counter("serve.connections")
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                reply = server.handle_line(line.decode("utf-8", "replace"))
            except _ShutdownRequested:
                self._send({"ok": True, "bye": True})
                server.begin_shutdown()
                return
            self._send(reply)

    def _send(self, doc: dict) -> None:
        try:
            self.wfile.write(json.dumps(doc).encode("utf-8") + b"\n")
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass


class _ShutdownRequested(Exception):
    pass


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class QueryServer:
    """Owns the listening socket and the service it fronts.

    ``port=0`` binds an ephemeral port (tests, CI); the bound address is
    available as :attr:`address` after construction.  ``start`` runs the
    accept loop on a daemon thread; ``close`` stops it and (by default)
    shuts the service's worker pool down with it.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        own_service: bool = True,
    ) -> None:
        self.service = service
        self.own_service = own_service
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._shutdown_started = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._tcp.server_address[:2]
        return host, port

    def start(self) -> "QueryServer":
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept",
            daemon=True,
        )
        self._thread.start()
        return self

    def begin_shutdown(self) -> None:
        """Asynchronous close (used by the in-band shutdown op): stop the
        accept loop from a fresh thread so the handler can still flush."""
        if self._shutdown_started.is_set():
            return
        threading.Thread(target=self.close, name="repro-serve-stop", daemon=True).start()

    def close(self) -> None:
        if self._shutdown_started.is_set():
            return
        self._shutdown_started.set()
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self.own_service:
            self.service.close()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request dispatch ---------------------------------------------------

    def handle_line(self, line: str) -> dict:
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            REGISTRY.counter("serve.errors.E_PROTOCOL")
            return {
                "ok": False,
                "error": error_to_dict(
                    ServiceProtocolError(f"malformed JSON request: {exc}")
                ),
            }
        if not isinstance(doc, dict):
            REGISTRY.counter("serve.errors.E_PROTOCOL")
            return {
                "ok": False,
                "error": error_to_dict(
                    ServiceProtocolError("request must be a JSON object")
                ),
            }
        op = doc.get("op")
        if op == "ping":
            return {"ok": True, "pong": True, "id": doc.get("id")}
        if op == "stats":
            return {"ok": True, "stats": self.service.stats(), "id": doc.get("id")}
        if op == "metrics":
            from repro.obs.export import render_prometheus

            snapshot = REGISTRY.snapshot()
            return {
                "ok": True,
                "id": doc.get("id"),
                "metrics": {
                    "snapshot": snapshot,
                    "exposition": render_prometheus(snapshot),
                },
            }
        if op == "shutdown":
            raise _ShutdownRequested()
        if op is not None:
            REGISTRY.counter("serve.errors.E_PROTOCOL")
            exc = ServiceProtocolError(f"unknown op {op!r}")
            rid = doc.get("request_id")
            if isinstance(rid, str):
                exc.with_request(rid)
            return {
                "ok": False,
                "id": doc.get("id"),
                "error": error_to_dict(exc),
            }
        return self.service.submit_dict(doc)


def wait_for_port(host: str, port: int, timeout: float = 5.0) -> bool:
    """Poll until a TCP connect succeeds (service startup helper)."""
    import time

    end = time.monotonic() + timeout
    while time.monotonic() < end:
        try:
            with socket.create_connection((host, port), timeout=0.2):
                return True
        except OSError:
            time.sleep(0.02)
    return False
