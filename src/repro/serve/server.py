"""A line-oriented TCP front end over :class:`QueryService`.

The wire protocol is newline-delimited JSON (one request object per line,
one response object per line, UTF-8).  Query requests carry ``sql`` or
``tpch`` plus optional ``tenant`` / ``deadline_seconds`` / ``engine`` /
``id`` / ``params`` (bindings for a parameterized statement: a list for
positional ``?``, an object for ``:name``); prepared-statement and admin
ops ride the same framing::

    {"op": "prepare", "sql": "..."} -> {"ok": true, "statement": "...",
                                       "signature": [{"slot": "?0",
                                       "type": "float"}, ...]} -- compile
                                       once; later executions of any
                                       literal variant (from any tenant)
                                       hit the cached shape
    {"op": "execute", "sql": "...",
     "params": [...]}               -> a normal query response; identical
                                       to a plain query submit with
                                       ``params``
    {"op": "ping"}                  -> {"ok": true, "pong": true}
    {"op": "stats"}                 -> {"ok": true, "stats": {...}}
    {"op": "metrics"}               -> {"ok": true, "metrics": {"snapshot":
                                       {...}, "exposition": "..."}} -- the
                                       registry as JSON plus the
                                       Prometheus-style text rendering
    {"op": "profiles"}              -> {"ok": true, "profiles": {...}} --
                                       the tail sampler's repro-profiles/v1
                                       snapshot (typed error when sampling
                                       is off)
    {"op": "shutdown"}              -> {"ok": true, "bye": true} and the
                                       server stops accepting connections

Query requests may carry a ``request_id``; the service echoes it on the
reply (and stamps it on errors) or mints one when absent, so a client can
join its replies against the server's event log and traces.

Every connection gets its own handler thread (``ThreadingTCPServer``);
actual query concurrency is bounded by the service's admission gate and
worker pool, not by the socket layer.  Malformed lines produce a typed
``E_PROTOCOL`` error response; nothing a client sends can surface a raw
traceback over the wire.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Optional, Tuple

from repro.errors import ServiceProtocolError, error_to_dict
from repro.obs.metrics import REGISTRY
from repro.serve.service import QueryService


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "QueryServer" = self.server.owner  # type: ignore[attr-defined]
        REGISTRY.counter("serve.connections")
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                reply = server.handle_line(line.decode("utf-8", "replace"))
            except _ShutdownRequested:
                self._send({"ok": True, "bye": True})
                server.begin_shutdown()
                return
            self._send(reply)

    def _send(self, doc: dict) -> None:
        try:
            self.wfile.write(json.dumps(doc).encode("utf-8") + b"\n")
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass


class _ShutdownRequested(Exception):
    pass


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class QueryServer:
    """Owns the listening socket and the service it fronts.

    ``port=0`` binds an ephemeral port (tests, CI); the bound address is
    available as :attr:`address` after construction.  ``start`` runs the
    accept loop on a daemon thread; ``close`` stops it and (by default)
    shuts the service's worker pool down with it.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        own_service: bool = True,
    ) -> None:
        self.service = service
        self.own_service = own_service
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._shutdown_started = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._tcp.server_address[:2]
        return host, port

    def start(self) -> "QueryServer":
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept",
            daemon=True,
        )
        self._thread.start()
        return self

    def begin_shutdown(self) -> None:
        """Asynchronous close (used by the in-band shutdown op): stop the
        accept loop from a fresh thread so the handler can still flush."""
        if self._shutdown_started.is_set():
            return
        threading.Thread(target=self.close, name="repro-serve-stop", daemon=True).start()

    def close(self) -> None:
        if self._shutdown_started.is_set():
            return
        self._shutdown_started.set()
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self.own_service:
            self.service.close()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request dispatch ---------------------------------------------------

    def handle_line(self, line: str) -> dict:
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            REGISTRY.counter("serve.errors.E_PROTOCOL")
            return {
                "ok": False,
                "error": error_to_dict(
                    ServiceProtocolError(f"malformed JSON request: {exc}")
                ),
            }
        if not isinstance(doc, dict):
            REGISTRY.counter("serve.errors.E_PROTOCOL")
            return {
                "ok": False,
                "error": error_to_dict(
                    ServiceProtocolError("request must be a JSON object")
                ),
            }
        op = doc.get("op")
        if op == "ping":
            return {"ok": True, "pong": True, "id": doc.get("id")}
        if op == "stats":
            return {"ok": True, "stats": self.service.stats(), "id": doc.get("id")}
        if op == "metrics":
            from repro.obs.export import render_prometheus

            snapshot = REGISTRY.snapshot()
            return {
                "ok": True,
                "id": doc.get("id"),
                "metrics": {
                    "snapshot": snapshot,
                    "exposition": render_prometheus(snapshot),
                },
            }
        if op == "profiles":
            sampler = self.service.sampler
            if sampler is None:
                REGISTRY.counter("serve.errors.E_PROTOCOL")
                return {
                    "ok": False,
                    "id": doc.get("id"),
                    "error": error_to_dict(
                        ServiceProtocolError(
                            "tail sampling is not enabled on this service"
                        )
                    ),
                }
            return {
                "ok": True,
                "id": doc.get("id"),
                "profiles": sampler.snapshot(),
            }
        if op == "prepare":
            return self._handle_prepare(doc)
        if op == "execute":
            # Execution of a (possibly prepared) parameterized statement:
            # identical to a plain query submit -- the session's
            # shape-keyed cache is what makes the prior ``prepare`` pay
            # off -- but spelled as an op so clients can express the
            # prepare/execute pairing explicitly.
            query = {k: v for k, v in doc.items() if k != "op"}
            return self.service.submit_dict(query)
        if op == "shutdown":
            raise _ShutdownRequested()
        if op is not None:
            REGISTRY.counter("serve.errors.E_PROTOCOL")
            exc = ServiceProtocolError(f"unknown op {op!r}")
            rid = doc.get("request_id")
            if isinstance(rid, str):
                exc.with_request(rid)
            return {
                "ok": False,
                "id": doc.get("id"),
                "error": error_to_dict(exc),
            }
        return self.service.submit_dict(doc)

    def _handle_prepare(self, doc: dict) -> dict:
        """Compile a parameterized statement once, ahead of executions.

        Replies with the canonical statement text and the typed parameter
        signature.  The compiled shape lives in the session cache under
        the statement's shape key -- which has no tenant component -- so
        one prepare serves every tenant's subsequent ``execute``.  All
        failures (lex/parse/plan/param errors) come back as typed error
        documents, never tracebacks.
        """
        sql = doc.get("sql")
        rid = doc.get("request_id")

        def fail(exc: BaseException) -> dict:
            if hasattr(exc, "with_request") and isinstance(rid, str):
                exc.with_request(rid)
            code = error_to_dict(exc).get("code") or "E_INTERNAL"
            REGISTRY.counter(f"serve.errors.{code}")
            return {"ok": False, "id": doc.get("id"), "error": error_to_dict(exc)}

        if not isinstance(sql, str):
            return fail(ServiceProtocolError("'prepare' requires a 'sql' string"))
        from repro.obs import events
        from repro.serve.service import ServiceRequest, mint_request_id

        # Bind the ambient request context so the compile event and the
        # telemetry sample land on the same shape key later executions
        # record under ("sql:<shape text>", not the raw cache key).
        shape = ServiceRequest(sql=sql).shape()
        request_id = rid if isinstance(rid, str) else mint_request_id()
        tenant = str(doc.get("tenant", "default"))
        try:
            with events.request_context(request_id, shape=shape, tenant=tenant):
                statement = self.service.session.prepare_statement(sql)
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            return fail(exc)
        REGISTRY.counter("serve.prepared")
        return {
            "ok": True,
            "id": doc.get("id"),
            "statement": statement.text,
            "signature": [
                {"slot": slot.describe(), "type": slot.ctype.value}
                for slot in statement.signature
            ],
        }


def wait_for_port(host: str, port: int, timeout: float = 5.0) -> bool:
    """Poll until a TCP connect succeeds (service startup helper)."""
    import time

    end = time.monotonic() + timeout
    while time.monotonic() < end:
        try:
            with socket.create_connection((host, port), timeout=0.2):
                return True
        except OSError:
            time.sleep(0.02)
    return False
