"""A minimal blocking client for the line-oriented JSON protocol.

One socket, one request in flight at a time (a lock serializes callers);
for concurrent load, open one :class:`ServiceClient` per client thread --
that is what the bench harness and the CI smoke do, and it mirrors how a
connection pool would use the service.

Every query request leaves the client with a W3C-style ``traceparent``
(minted here unless the caller supplies one), so the server-side trace,
event-log lines and any tail-sampled profile all carry a trace id the
client knows -- the reply echoes it as ``trace_id``.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Optional

from repro.errors import ReproError, error_from_dict
from repro.obs.sampler import make_traceparent


class ServiceClient:
    """Blocking JSONL client; context-manager closes the socket."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._lock = threading.Lock()

    # -- plumbing -----------------------------------------------------------

    def request(self, doc: dict) -> dict:
        """Send one JSON object, read one JSON reply.

        Query documents (``sql``/``tpch``) gain a fresh ``traceparent``
        when the caller did not set one; the original ``doc`` is not
        mutated.
        """
        if ("sql" in doc or "tpch" in doc) and "traceparent" not in doc:
            doc = {**doc, "traceparent": make_traceparent()}
        payload = json.dumps(doc).encode("utf-8") + b"\n"
        with self._lock:
            self._sock.sendall(payload)
            line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- conveniences -------------------------------------------------------

    def sql(
        self,
        sql: str,
        tenant: str = "default",
        deadline_seconds: Optional[float] = None,
        params=None,
        **extra,
    ) -> dict:
        doc = {"sql": sql, "tenant": tenant, **extra}
        if params is not None:
            doc["params"] = params
        if deadline_seconds is not None:
            doc["deadline_seconds"] = deadline_seconds
        return self.request(doc)

    def tpch(
        self,
        number: int,
        tenant: str = "default",
        deadline_seconds: Optional[float] = None,
        **extra,
    ) -> dict:
        doc = {"tpch": number, "tenant": tenant, **extra}
        if deadline_seconds is not None:
            doc["deadline_seconds"] = deadline_seconds
        return self.request(doc)

    def prepare(self, sql: str, **extra) -> dict:
        """Compile a parameterized statement once; returns the canonical
        text and typed signature.  Later :meth:`execute` calls (from any
        connection or tenant) hit the cached shape."""
        return self.request({"op": "prepare", "sql": sql, **extra})

    def execute(
        self,
        sql: str,
        params=None,
        tenant: str = "default",
        deadline_seconds: Optional[float] = None,
        **extra,
    ) -> dict:
        """Execute a parameterized statement with ``params`` bound (a list
        for positional ``?``, a dict for ``:name`` placeholders)."""
        doc = {"op": "execute", "sql": sql, "tenant": tenant, **extra}
        if params is not None:
            doc["params"] = params
        if deadline_seconds is not None:
            doc["deadline_seconds"] = deadline_seconds
        return self.request(doc)

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def metrics(self) -> dict:
        """The server's metrics: ``{"snapshot": {...}, "exposition": str}``."""
        return self.request({"op": "metrics"})["metrics"]

    def profiles(self) -> dict:
        """The tail sampler's ``repro-profiles/v1`` snapshot (raises the
        typed protocol error when sampling is off on the server)."""
        return raise_for_error(self.request({"op": "profiles"}))["profiles"]

    def shutdown(self) -> bool:
        return bool(self.request({"op": "shutdown"}).get("bye"))


def raise_for_error(reply: dict) -> dict:
    """Turn an error reply back into its taxonomy exception; pass-through
    for successful replies (client-side ``except DeadlineExceeded:``)."""
    if reply.get("ok"):
        return reply
    err = reply.get("error") or {}
    exc = error_from_dict(err)
    if not isinstance(exc, ReproError):  # pragma: no cover - defensive
        exc = ReproError(err.get("message", "unknown service error"))
    raise exc
