"""The mixed 22-query TPC-H workload the serve tier is measured against.

Fifteen queries travel as SQL text (the full front-end path: lexer,
parser, decorrelation, cost-based join ordering); the seven plan-only
queries travel as ``tpch: N`` requests and are built from the hand-written
plans server-side -- together they cover every TPC-H shape, which is the
point: a serving tier that only survives the easy queries isn't one.

Used by the bench harness (``repro-bench-serve``), the CI smoke
(``repro-serve --smoke``) and the concurrency tests.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.serve.service import ServiceRequest
from repro.sql.shape import statement_shape
from repro.tpch.sql_queries import SQL_QUERIES

ALL_QUERIES = tuple(range(1, 23))


def request_for(
    number: int,
    tenant: str = "default",
    deadline_seconds: Optional[float] = None,
    client_id: Optional[object] = None,
    request_id: Optional[str] = None,
) -> ServiceRequest:
    """The service request for TPC-H query ``number`` (SQL when it can be).

    ``client_id`` is the protocol-level reply-matching id; ``request_id``
    is the end-to-end correlation id the service echoes on replies, event
    log lines and traces (minted server-side when omitted).
    """
    if number in SQL_QUERIES:
        return ServiceRequest(
            sql=SQL_QUERIES[number],
            tenant=tenant,
            deadline_seconds=deadline_seconds,
            id=client_id,
            request_id=request_id,
        )
    return ServiceRequest(
        tpch=number,
        tenant=tenant,
        deadline_seconds=deadline_seconds,
        id=client_id,
        request_id=request_id,
    )


def mixed_workload(
    rounds: int = 1,
    tenant: str = "default",
    deadline_seconds: Optional[float] = None,
) -> List[ServiceRequest]:
    """``rounds`` passes over all 22 queries, in query order per round.

    Every request carries a tenant-unique ``request_id`` so workload
    replies can be joined against the server's event log.
    """
    out: List[ServiceRequest] = []
    for r in range(rounds):
        for q in ALL_QUERIES:
            out.append(
                request_for(
                    q,
                    tenant=tenant,
                    deadline_seconds=deadline_seconds,
                    client_id=f"r{r}-q{q}",
                    request_id=f"{tenant}-r{r}-q{q}",
                )
            )
    return out


def _vary_value(value: object, round_index: int) -> object:
    """A literal's value for round ``round_index`` (round 0 = original).

    Numeric literals drift a little per round so the statement *text*
    changes while the statement *shape* does not; strings stay fixed
    (perturbed names would still be valid SQL but would mostly select
    nothing, which makes for an unrepresentative workload).
    """
    if isinstance(value, bool) or isinstance(value, str):
        return value
    if isinstance(value, float):
        return round(value * (1.0 + 0.01 * round_index), 6)
    if isinstance(value, int):
        return value + round_index
    return value


def _render_literal(value: object) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def _substitute(shape_text: str, values: Sequence[object]) -> str:
    """The shape text with its placeholders filled back in as literals."""
    out: List[str] = []
    it = iter(values)
    for part in shape_text.split(" "):
        out.append(_render_literal(next(it)) if part == "?" else part)
    return " ".join(out)


def varied_request_for(
    number: int,
    round_index: int,
    tenant: str = "default",
    deadline_seconds: Optional[float] = None,
    client_id: Optional[object] = None,
    request_id: Optional[str] = None,
    explicit: bool = False,
) -> ServiceRequest:
    """TPC-H query ``number`` with round-varied literals, same shape.

    Every round produces different statement *text* but the same
    statement *shape*, so a shape-keyed cache compiles once and a
    text-keyed cache compiles every round -- the delta
    ``repro-bench-serve --params`` measures.  With ``explicit=True`` the
    request carries the placeholder text plus a ``params`` vector (the
    wire-protocol binding path) instead of baked-in literals.
    """
    base = request_for(
        number,
        tenant=tenant,
        deadline_seconds=deadline_seconds,
        client_id=client_id,
        request_id=request_id,
    )
    if base.sql is None:
        return base  # plan-only queries carry no literals to vary
    shape = statement_shape(base.sql)
    if not shape.param_count:
        return base
    varied = tuple(_vary_value(v, round_index) for v in shape.values)
    if explicit:
        base.sql = shape.text
        base.params = list(varied)
    else:
        base.sql = _substitute(shape.text, varied)
    return base


def parameterized_workload(
    rounds: int = 1,
    tenant: str = "default",
    deadline_seconds: Optional[float] = None,
    explicit: bool = False,
    first_round: int = 0,
) -> List[ServiceRequest]:
    """The mixed workload with literal-varying parameterized variants.

    ``rounds`` passes over all 22 queries; each round perturbs the
    liftable literals of the 15 SQL queries (the 7 plan-only queries ride
    along unchanged).  All rounds of one query share one statement shape,
    so with the shape-keyed session cache the whole workload compiles
    each SQL query exactly once.  ``first_round`` offsets the variation
    index: concurrent clients given disjoint ranges send disjoint literal
    values (the many-tenants-distinct-literals scenario) while still
    sharing every statement shape.
    """
    out: List[ServiceRequest] = []
    for r in range(first_round, first_round + rounds):
        for q in ALL_QUERIES:
            out.append(
                varied_request_for(
                    q,
                    r,
                    tenant=tenant,
                    deadline_seconds=deadline_seconds,
                    client_id=f"r{r}-q{q}",
                    request_id=f"{tenant}-r{r}-q{q}",
                    explicit=explicit,
                )
            )
    return out


def wire_workload(rounds: int = 1, tenant: str = "default") -> Iterator[dict]:
    """The same workload as raw wire dicts (for :class:`ServiceClient`)."""
    for req in mixed_workload(rounds, tenant=tenant):
        doc: dict = {
            "tenant": req.tenant,
            "id": req.id,
            "request_id": req.request_id,
        }
        if req.sql is not None:
            doc["sql"] = req.sql
        else:
            doc["tpch"] = req.tpch
        if req.deadline_seconds is not None:
            doc["deadline_seconds"] = req.deadline_seconds
        yield doc
