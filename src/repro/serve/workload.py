"""The mixed 22-query TPC-H workload the serve tier is measured against.

Fifteen queries travel as SQL text (the full front-end path: lexer,
parser, decorrelation, cost-based join ordering); the seven plan-only
queries travel as ``tpch: N`` requests and are built from the hand-written
plans server-side -- together they cover every TPC-H shape, which is the
point: a serving tier that only survives the easy queries isn't one.

Used by the bench harness (``repro-bench-serve``), the CI smoke
(``repro-serve --smoke``) and the concurrency tests.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.serve.service import ServiceRequest
from repro.tpch.sql_queries import SQL_QUERIES

ALL_QUERIES = tuple(range(1, 23))


def request_for(
    number: int,
    tenant: str = "default",
    deadline_seconds: Optional[float] = None,
    client_id: Optional[object] = None,
    request_id: Optional[str] = None,
) -> ServiceRequest:
    """The service request for TPC-H query ``number`` (SQL when it can be).

    ``client_id`` is the protocol-level reply-matching id; ``request_id``
    is the end-to-end correlation id the service echoes on replies, event
    log lines and traces (minted server-side when omitted).
    """
    if number in SQL_QUERIES:
        return ServiceRequest(
            sql=SQL_QUERIES[number],
            tenant=tenant,
            deadline_seconds=deadline_seconds,
            id=client_id,
            request_id=request_id,
        )
    return ServiceRequest(
        tpch=number,
        tenant=tenant,
        deadline_seconds=deadline_seconds,
        id=client_id,
        request_id=request_id,
    )


def mixed_workload(
    rounds: int = 1,
    tenant: str = "default",
    deadline_seconds: Optional[float] = None,
) -> List[ServiceRequest]:
    """``rounds`` passes over all 22 queries, in query order per round.

    Every request carries a tenant-unique ``request_id`` so workload
    replies can be joined against the server's event log.
    """
    out: List[ServiceRequest] = []
    for r in range(rounds):
        for q in ALL_QUERIES:
            out.append(
                request_for(
                    q,
                    tenant=tenant,
                    deadline_seconds=deadline_seconds,
                    client_id=f"r{r}-q{q}",
                    request_id=f"{tenant}-r{r}-q{q}",
                )
            )
    return out


def wire_workload(rounds: int = 1, tenant: str = "default") -> Iterator[dict]:
    """The same workload as raw wire dicts (for :class:`ServiceClient`)."""
    for req in mixed_workload(rounds, tenant=tenant):
        doc: dict = {
            "tenant": req.tenant,
            "id": req.id,
            "request_id": req.request_id,
        }
        if req.sql is not None:
            doc["sql"] = req.sql
        else:
            doc["tpch"] = req.tpch
        if req.deadline_seconds is not None:
            doc["deadline_seconds"] = req.deadline_seconds
        yield doc
