"""Admission control: bounded concurrency, token buckets, tenant quotas.

Three small mechanisms stand between a socket and the compiler:

* :class:`AdmissionGate` -- a bounded count of requests in flight
  (executing + queued).  When full, new arrivals are *shed* immediately
  with :class:`~repro.errors.ServiceOverloadError` rather than queued
  without bound; a loaded service stays loaded-but-honest instead of
  accumulating an invisible backlog that blows every deadline.
* :class:`TokenBucket` -- the classic refill-at-rate/spend-per-request
  limiter, used both service-wide and per tenant.
* :class:`TenantQuota` / :class:`TenantState` -- the declarative per-tenant
  limits (request rate, concurrent requests, per-request row budget) and
  their armed runtime form.  Row budgets map straight onto
  :class:`repro.resilience.budget.Budget`, so a tenant cap is enforced by
  the same staged ``scan_tick`` checkpoints as a deadline.

Everything here is lock-per-object and allocation-free on the admit path;
these run on the caller's thread before a request ever reaches the pool.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import RateLimitError, ServiceOverloadError
from repro.obs.metrics import REGISTRY


class TokenBucket:
    """``rate`` tokens/second, holding at most ``burst``; starts full.

    ``try_acquire`` never blocks: admission control sheds instead of
    queueing, so the caller gets an immediate typed rejection.
    """

    def __init__(self, rate: float, burst: int, clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self, n: float = 1.0) -> bool:
        """Spend ``n`` tokens if available; False means rate-limited."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            now = self._clock()
            return min(self.burst, self._tokens + (now - self._last) * self.rate)


class AdmissionGate:
    """At most ``limit`` requests in flight; excess arrivals are shed.

    ``enter`` raises :class:`ServiceOverloadError` when the gate is full;
    ``leave`` must run exactly once per successful ``enter`` (use
    try/finally).  Depth is exported on every transition as the
    ``serve.inflight`` gauge (with its static ``serve.inflight.limit``
    companion), so backpressure is *observable* in the metrics scrape,
    not just inferable from ``E_ADMIT`` rejection counters; the historic
    ``serve.queue.depth`` name is kept as an alias for existing
    dashboards.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("limit must be at least 1")
        self.limit = limit
        self._depth = 0
        self._lock = threading.Lock()
        REGISTRY.gauge("serve.inflight.limit", limit)
        self._export_depth()

    def _export_depth(self) -> None:
        REGISTRY.gauge("serve.inflight", self._depth)
        REGISTRY.gauge("serve.queue.depth", self._depth)

    def enter(self) -> None:
        with self._lock:
            if self._depth >= self.limit:
                REGISTRY.counter("serve.rejected.overload")
                raise ServiceOverloadError(
                    f"service at capacity: {self._depth}/{self.limit} "
                    "requests in flight",
                    depth=self._depth,
                )
            self._depth += 1
            self._export_depth()

    def leave(self) -> None:
        with self._lock:
            assert self._depth > 0, "leave() without matching enter()"
            self._depth -= 1
            self._export_depth()

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth


@dataclass(frozen=True)
class TenantQuota:
    """Declarative per-tenant limits; ``None`` disables a dimension.

    * ``rate`` / ``burst`` -- the tenant's own token bucket (requests/s).
    * ``max_concurrent`` -- simultaneous in-flight requests.
    * ``max_rows`` -- per-request scanned-row budget, enforced
      cooperatively by the staged checkpoints (maps onto
      ``Budget.max_rows``).
    * ``max_deadline_seconds`` -- cap on the deadline a request may ask
      for; longer requests are silently clamped.
    """

    rate: Optional[float] = None
    burst: int = 8
    max_concurrent: Optional[int] = None
    max_rows: Optional[int] = None
    max_deadline_seconds: Optional[float] = None


class TenantState:
    """One tenant's armed limits: bucket + in-flight count."""

    def __init__(self, name: str, quota: TenantQuota) -> None:
        self.name = name
        self.quota = quota
        self.bucket = (
            TokenBucket(quota.rate, quota.burst) if quota.rate else None
        )
        self._active = 0
        self._lock = threading.Lock()

    def admit(self) -> None:
        """Charge this request against the tenant; raises typed rejections."""
        if self.bucket is not None and not self.bucket.try_acquire():
            REGISTRY.counter("serve.rejected.ratelimit")
            REGISTRY.counter(f"serve.tenant.{self.name}.ratelimited")
            raise RateLimitError(
                f"tenant {self.name!r} over its rate limit "
                f"({self.quota.rate}/s, burst {self.quota.burst})",
                tenant=self.name,
            )
        with self._lock:
            if (
                self.quota.max_concurrent is not None
                and self._active >= self.quota.max_concurrent
            ):
                REGISTRY.counter("serve.rejected.overload")
                REGISTRY.counter(f"serve.tenant.{self.name}.overloaded")
                raise ServiceOverloadError(
                    f"tenant {self.name!r} at its concurrency limit "
                    f"({self.quota.max_concurrent})",
                    depth=self._active,
                )
            self._active += 1
        REGISTRY.counter(f"serve.tenant.{self.name}.admitted")

    def release(self) -> None:
        with self._lock:
            assert self._active > 0, "release() without matching admit()"
            self._active -= 1

    @property
    def active(self) -> int:
        with self._lock:
            return self._active


class TenantRegistry:
    """Lazily materialized per-tenant state, with a default quota."""

    def __init__(
        self,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        default: Optional[TenantQuota] = None,
    ) -> None:
        self._quotas = dict(quotas or {})
        self._default = default or TenantQuota()
        self._states: Dict[str, TenantState] = {}
        self._lock = threading.Lock()

    def state(self, tenant: str) -> TenantState:
        with self._lock:
            st = self._states.get(tenant)
            if st is None:
                quota = self._quotas.get(tenant, self._default)
                st = self._states[tenant] = TenantState(tenant, quota)
            return st

    def snapshot(self) -> dict:
        with self._lock:
            return {
                name: {"active": st.active, "quota": st.quota.__dict__}
                for name, st in self._states.items()
            }
