"""``repro-serve``: run the query service, or smoke-test it end to end.

Serve mode (the default) generates a TPC-H database and listens until
interrupted::

    repro-serve --port 7433 --scale 0.01 --workers 8

Smoke mode is the CI job: it starts the full stack (database, session,
service, TCP server) in one process, drives the mixed 22-query workload
over real sockets from concurrent clients -- optionally with fault
injection at the codegen and host-compile sites -- and asserts the
serving-tier invariants:

* every reply is rows or a *typed* error (an ``E_*`` taxonomy code;
  ``E_RUNTIME`` would mean a raw exception leaked);
* under compile faults, affected requests degrade to the interpreters
  (answers stay correct) instead of failing;
* the compile-path circuit breaker opens under sustained compile failure
  and closes again after a successful half-open probe;
* the server shuts down cleanly via the in-band ``shutdown`` op.

Exit code 0 on success, 1 with a diagnostic on any violation.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import List, Optional, Sequence

from repro.obs.metrics import REGISTRY
from repro.serve.admission import TenantQuota
from repro.serve.client import ServiceClient
from repro.serve.server import QueryServer
from repro.serve.service import QueryService, ServiceConfig
from repro.serve.workload import wire_workload
from repro.session import Session
from repro.storage import OptimizationLevel
from repro.tpch.dbgen import generate_database, generate_tables


def build_service(args: argparse.Namespace) -> QueryService:
    db = generate_database(
        tables=dict(generate_tables(args.scale)),
        level=OptimizationLevel.COMPLIANT,
    )
    session = Session(db, max_cache_size=args.cache_size)
    config = ServiceConfig(
        workers=args.workers,
        max_queue_depth=args.queue_depth,
        default_deadline_seconds=args.deadline,
        rate_limit=args.rate,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_seconds=args.breaker_cooldown,
        default_quota=TenantQuota(max_rows=args.max_rows),
        query_scale=args.scale,
        trace_requests=args.trace,
    )
    return QueryService(session, config)


def cmd_serve(args: argparse.Namespace) -> int:
    service = build_service(args)
    server = QueryServer(service, host=args.host, port=args.port).start()
    host, port = server.address
    print(f"repro-serve listening on {host}:{port} "
          f"(scale={args.scale}, workers={args.workers})", file=sys.stderr)
    try:
        while not server._shutdown_started.wait(timeout=0.5):
            pass
    except KeyboardInterrupt:
        print("interrupt: shutting down", file=sys.stderr)
    finally:
        server.close()
    return 0


# -- smoke mode ---------------------------------------------------------------


class _SmokeFailure(Exception):
    pass


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise _SmokeFailure(message)


def _drive_clients(
    host: str, port: int, clients: int, rounds: int, replies: List[dict]
) -> None:
    """``clients`` threads, each its own socket, each the full workload."""
    lock = threading.Lock()
    errors: List[BaseException] = []

    def one_client(idx: int) -> None:
        try:
            with ServiceClient(host, port) as client:
                for doc in wire_workload(rounds, tenant=f"smoke-{idx}"):
                    reply = client.request(doc)
                    with lock:
                        replies.append(reply)
        except BaseException as exc:  # noqa: BLE001 - reported below
            with lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=one_client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300.0)
    _check(not any(t.is_alive() for t in threads), "client thread hung")
    _check(not errors, f"client transport errors: {errors[:3]}")


def _assert_all_typed(replies: Sequence[dict]) -> dict:
    """Every reply is rows or a typed error; returns outcome counts."""
    outcomes: dict = {"ok": 0, "degraded": 0}
    for reply in replies:
        if reply.get("ok"):
            outcomes["ok"] += 1
            if reply.get("degraded"):
                outcomes["degraded"] += 1
            continue
        err = reply.get("error") or {}
        code = err.get("code", "")
        _check(
            isinstance(code, str) and code.startswith("E_"),
            f"untyped error leaked: {reply}",
        )
        _check(
            code != "E_RUNTIME",
            f"raw exception crossed the service boundary: {reply}",
        )
        outcomes[code] = outcomes.get(code, 0) + 1
    return outcomes


def cmd_smoke(args: argparse.Namespace) -> int:
    from repro.resilience.faults import FaultInjector, FaultSpec

    t0 = time.monotonic()
    service = build_service(args)
    server = QueryServer(service, host=args.host, port=args.port).start()
    host, port = server.address
    print(f"smoke: service on {host}:{port} scale={args.scale}", file=sys.stderr)
    try:
        # Phase 1: clean concurrent workload over real sockets.
        replies: List[dict] = []
        _drive_clients(host, port, args.clients, args.rounds, replies)
        expected = args.clients * args.rounds * 22
        _check(len(replies) == expected, f"lost replies: {len(replies)}/{expected}")
        outcomes = _assert_all_typed(replies)
        _check(outcomes["ok"] == expected, f"clean run had failures: {outcomes}")
        print(f"smoke: baseline {outcomes}", file=sys.stderr)

        if args.faults:
            shape_probe(host, port, service, args)
            # Sustained mixed workload with compile faults firing.  The
            # compiled-query cache is cleared first: cached shapes never
            # recompile, and a fault site nothing visits proves nothing.
            service.session.clear_cache()
            every = 3
            with FaultInjector(
                FaultSpec("codegen", at=frozenset(range(0, 4096, every)), times=None),
                FaultSpec(
                    "host-compile", at=frozenset(range(1, 4096, every)), times=None
                ),
            ):
                faulted: List[dict] = []
                _drive_clients(host, port, args.clients, args.rounds, faulted)
            outcomes = _assert_all_typed(faulted)
            _check(
                outcomes["ok"] == len(faulted),
                f"faulted run surfaced failures instead of degrading: {outcomes}",
            )
            _check(
                outcomes["degraded"] > 0,
                "fault injection fired but nothing degraded",
            )
            print(f"smoke: faulted {outcomes}", file=sys.stderr)

        # Clean shutdown through the wire.
        with ServiceClient(host, port) as client:
            _check(client.ping(), "ping failed")
            _check(client.shutdown(), "shutdown op not acknowledged")
        deadline = time.monotonic() + 10.0
        while not server._shutdown_started.is_set():
            _check(time.monotonic() < deadline, "server did not begin shutdown")
            time.sleep(0.05)
        server.close()  # idempotent; waits for the accept thread
        print(
            f"smoke: ok in {time.monotonic() - t0:.1f}s "
            f"(faults={'on' if args.faults else 'off'})",
            file=sys.stderr,
        )
        return 0
    except _SmokeFailure as exc:
        print(f"smoke FAILED: {exc}", file=sys.stderr)
        return 1
    finally:
        server.close()


def shape_probe(
    host: str, port: int, service: QueryService, args: argparse.Namespace
) -> None:
    """Open the breaker on one shape under sustained compile faults, then
    watch it recover through a half-open probe."""
    from repro.resilience.faults import FaultInjector, FaultSpec
    from repro.tpch.sql_queries import SQL_QUERIES

    sql = SQL_QUERIES[6]
    shape = "sql:" + " ".join(sql.split())
    service.session.clear_cache()  # force every request through the compiler
    opened_before = REGISTRY.get_counter("serve.breaker.opened")
    with FaultInjector(FaultSpec("codegen", at=None, times=None)):
        with ServiceClient(host, port) as client:
            for _ in range(args.breaker_threshold + 2):
                reply = client.sql(sql, tenant="breaker-smoke")
                _check(reply.get("ok", False), f"degradation failed: {reply}")
    _check(
        service.breaker.state(shape) == "open",
        f"breaker did not open (state={service.breaker.state(shape)})",
    )
    _check(
        REGISTRY.get_counter("serve.breaker.opened") > opened_before,
        "serve.breaker.opened did not advance",
    )
    time.sleep(args.breaker_cooldown * 1.1)  # let the cooldown lapse
    with ServiceClient(host, port) as client:
        reply = client.sql(sql, tenant="breaker-smoke")
        _check(reply.get("ok", False), f"probe request failed: {reply}")
    _check(
        service.breaker.state(shape) == "closed",
        f"breaker did not recover (state={service.breaker.state(shape)})",
    )
    print("smoke: breaker opened and recovered", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument("--scale", type=float, default=0.005)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument("--deadline", type=float, default=10.0,
                        help="default per-request deadline (seconds)")
    parser.add_argument("--rate", type=float, default=None,
                        help="global rate limit (requests/second)")
    parser.add_argument("--max-rows", type=int, default=None,
                        help="default per-request scanned-row budget")
    parser.add_argument("--cache-size", type=int, default=256)
    parser.add_argument("--breaker-threshold", type=int, default=3)
    parser.add_argument("--breaker-cooldown", type=float, default=0.3)
    parser.add_argument("--trace", action="store_true",
                        help="attach a per-request trace to every response")
    parser.add_argument("--smoke", action="store_true",
                        help="run the self-contained CI smoke and exit")
    parser.add_argument("--faults", action="store_true",
                        help="smoke: also run with compile-site fault injection")
    parser.add_argument("--clients", type=int, default=4,
                        help="smoke: concurrent client connections")
    parser.add_argument("--rounds", type=int, default=2,
                        help="smoke: workload rounds per client")
    args = parser.parse_args(argv)
    if args.smoke:
        return cmd_smoke(args)
    return cmd_serve(args)


if __name__ == "__main__":
    sys.exit(main())
