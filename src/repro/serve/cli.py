"""``repro-serve``: run the query service, or smoke-test it end to end.

Serve mode (the default) generates a TPC-H database and listens until
interrupted::

    repro-serve --port 7433 --scale 0.01 --workers 8

Smoke mode is the CI job: it starts the full stack (database, session,
service, TCP server) in one process, drives the mixed 22-query workload
over real sockets from concurrent clients -- optionally with fault
injection at the codegen and host-compile sites -- and asserts the
serving-tier invariants:

* every reply is rows or a *typed* error (an ``E_*`` taxonomy code;
  ``E_RUNTIME`` would mean a raw exception leaked);
* under compile faults, affected requests degrade to the interpreters
  (answers stay correct) instead of failing;
* literal-varying statements share one shape-keyed compile (a cache
  hit-rate floor over the ``session.cache.shape_*`` counters), wire
  ``prepare``/``execute`` reuses one compiled shape across tenants, and
  hostile bindings fail as typed ``E_PARAM`` errors;
* the compile-path circuit breaker opens under sustained compile failure
  and closes again after a successful half-open probe;
* every reply echoes the client-sent ``request_id`` (errors included),
  the structured JSONL event log is schema-valid and joins on those ids
  (one ``admit``, exactly one terminal ``complete``/``reject`` each);
* the ``metrics`` wire op serves a schema-valid Prometheus exposition
  with live per-tenant latency quantiles;
* the workload-telemetry snapshot is schema-valid and carries
  per-operator timings for every executed plan shape;
* the tail sampler kept a *complete* profile (trace spans, operator
  timings, engine trail) for every errored / breaker-affected request
  and for the slowest decile, every exemplar request id attached to a
  latency histogram resolves to a stored profile, client-minted
  ``traceparent`` ids come back as the reply's ``trace_id``, and the
  SLO monitor exports live burn-rate gauges;
* the server shuts down cleanly via the in-band ``shutdown`` op.

Exit code 0 on success, 1 with a diagnostic on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from typing import List, Optional, Sequence

from repro.obs import events as obs_events
from repro.obs.events import EventLog, read_events, validate_log
from repro.obs.export import validate_exposition
from repro.obs.metrics import REGISTRY, percentile
from repro.obs.sampler import make_traceparent, validate_profiles
from repro.obs.slo import SLOConfig
from repro.obs.telemetry import TELEMETRY, validate_snapshot
from repro.serve.admission import TenantQuota
from repro.serve.client import ServiceClient
from repro.serve.server import QueryServer
from repro.serve.service import QueryService, ServiceConfig
from repro.serve.workload import wire_workload
from repro.session import Session
from repro.storage import OptimizationLevel
from repro.tpch.dbgen import generate_database, generate_tables


def build_service(args: argparse.Namespace) -> QueryService:
    db = generate_database(
        tables=dict(generate_tables(args.scale)),
        level=OptimizationLevel.COMPLIANT,
    )
    session = Session(db, max_cache_size=args.cache_size)
    slo_config = None
    if args.slo_latency is not None or args.smoke:
        # The smoke arms the monitor with a generous threshold: gauges
        # and windows must be live, but a healthy run should not fire.
        slo_config = SLOConfig(
            latency_threshold_seconds=(
                args.slo_latency if args.slo_latency is not None else 30.0
            ),
            objective=args.slo_objective,
        )
    config = ServiceConfig(
        workers=args.workers,
        max_queue_depth=args.queue_depth,
        default_deadline_seconds=args.deadline,
        rate_limit=args.rate,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_seconds=args.breaker_cooldown,
        default_quota=TenantQuota(max_rows=args.max_rows),
        query_scale=args.scale,
        trace_requests=args.trace,
        telemetry=args.telemetry is not None or args.smoke,
        sampling=args.sampling or args.profiles is not None or args.smoke,
        sampler_capacity=args.sampler_capacity,
        slo=slo_config,
    )
    return QueryService(session, config)


def _setup_observability(args: argparse.Namespace) -> tuple:
    """Install the event log / telemetry store the flags (or smoke) ask
    for; returns ``(event_log, events_path, telemetry_path,
    profiles_path)``."""
    events_path, telemetry_path = args.events, args.telemetry
    profiles_path = args.profiles
    if args.smoke:
        workdir = tempfile.mkdtemp(prefix="repro-smoke-")
        events_path = events_path or os.path.join(workdir, "events.jsonl")
        telemetry_path = telemetry_path or os.path.join(workdir, "telemetry.json")
        profiles_path = profiles_path or os.path.join(workdir, "profiles.json")
    log = None
    if events_path is not None:
        log = EventLog(events_path)
        obs_events.install(log)
    if telemetry_path is not None:
        TELEMETRY.enable(telemetry_path)
    return log, events_path, telemetry_path, profiles_path


def cmd_serve(args: argparse.Namespace) -> int:
    log, events_path, telemetry_path, profiles_path = _setup_observability(args)
    service = build_service(args)
    server = QueryServer(service, host=args.host, port=args.port).start()
    host, port = server.address
    print(f"repro-serve listening on {host}:{port} "
          f"(scale={args.scale}, workers={args.workers})", file=sys.stderr)
    if events_path:
        print(f"repro-serve event log: {events_path}", file=sys.stderr)
    try:
        while not server._shutdown_started.wait(timeout=0.5):
            pass
    except KeyboardInterrupt:
        print("interrupt: shutting down", file=sys.stderr)
    finally:
        server.close()
        if telemetry_path is not None:
            TELEMETRY.save()
            print(f"repro-serve telemetry snapshot: {telemetry_path}",
                  file=sys.stderr)
        if profiles_path is not None and service.sampler is not None:
            service.sampler.save(profiles_path)
            print(f"repro-serve sampled profiles: {profiles_path}",
                  file=sys.stderr)
        if log is not None:
            obs_events.install(None)
            log.close()
    return 0


# -- smoke mode ---------------------------------------------------------------


class _SmokeFailure(Exception):
    pass


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise _SmokeFailure(message)


def _drive_clients(
    host: str, port: int, clients: int, rounds: int, replies: List[dict]
) -> None:
    """``clients`` threads, each its own socket, each the full workload."""
    lock = threading.Lock()
    errors: List[BaseException] = []

    def one_client(idx: int) -> None:
        try:
            with ServiceClient(host, port) as client:
                for doc in wire_workload(rounds, tenant=f"smoke-{idx}"):
                    reply = client.request(doc)
                    _check(
                        reply.get("request_id") == doc["request_id"],
                        f"request_id did not round-trip: sent "
                        f"{doc['request_id']!r}, got {reply.get('request_id')!r}",
                    )
                    with lock:
                        replies.append(reply)
        except BaseException as exc:  # noqa: BLE001 - reported below
            with lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=one_client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300.0)
    _check(not any(t.is_alive() for t in threads), "client thread hung")
    _check(not errors, f"client transport errors: {errors[:3]}")


def _assert_all_typed(replies: Sequence[dict]) -> dict:
    """Every reply is rows or a typed error; returns outcome counts."""
    outcomes: dict = {"ok": 0, "degraded": 0}
    for reply in replies:
        if reply.get("ok"):
            outcomes["ok"] += 1
            if reply.get("degraded"):
                outcomes["degraded"] += 1
            continue
        err = reply.get("error") or {}
        code = err.get("code", "")
        _check(
            isinstance(code, str) and code.startswith("E_"),
            f"untyped error leaked: {reply}",
        )
        _check(
            code != "E_RUNTIME",
            f"raw exception crossed the service boundary: {reply}",
        )
        outcomes[code] = outcomes.get(code, 0) + 1
    return outcomes


def _assert_metrics_scrape(host: str, port: int, tenants: Sequence[str]) -> None:
    """The ``metrics`` op serves valid exposition with live per-tenant
    latency quantiles from the bucketed histograms."""
    with ServiceClient(host, port) as client:
        metrics = client.metrics()
    problems = validate_exposition(metrics["exposition"])
    _check(not problems, f"malformed exposition: {problems[:3]}")
    histograms = metrics["snapshot"].get("histograms", {})
    _check(
        "serve.latency_seconds" in histograms,
        f"no service latency histogram in scrape: {sorted(histograms)[:5]}",
    )
    for tenant in tenants:
        name = f"serve.tenant.{tenant}.latency_seconds"
        h = histograms.get(name)
        _check(h is not None, f"no per-tenant histogram {name!r}")
        _check(h["count"] > 0, f"{name}: empty histogram")
        for q in ("p50", "p95", "p99"):
            _check(
                isinstance(h["quantiles"].get(q), (int, float)),
                f"{name}: missing live quantile {q}",
            )
    print(
        f"smoke: metrics scrape ok ({len(histograms)} histograms)",
        file=sys.stderr,
    )


def _assert_event_log(events_path: str, replies: Sequence[dict]) -> None:
    """The event log is schema-valid and joins on every reply's id: one
    ``admit`` and exactly one terminal ``complete``/``reject`` per
    submission (the smoke reuses ids across its phases, so the counts
    scale with how often each id was sent)."""
    problems = validate_log(events_path)
    _check(not problems, f"invalid event log: {problems[:3]}")
    by_rid: dict = {}
    for doc in read_events(events_path):
        by_rid.setdefault(doc.get("request_id"), []).append(doc["event"])
    submissions: dict = {}
    for reply in replies:
        rid = reply.get("request_id")
        submissions[rid] = submissions.get(rid, 0) + 1
    for rid, n in submissions.items():
        kinds = by_rid.get(rid)
        _check(kinds is not None, f"no events for request {rid!r}")
        admits = kinds.count("admit")
        _check(
            admits == n,
            f"request {rid!r}: {admits} admit events for {n} submissions",
        )
        terminal = sum(1 for k in kinds if k in ("complete", "reject"))
        _check(
            terminal == n,
            f"request {rid!r}: {terminal} terminal events for {n} "
            f"submissions: {kinds}",
        )
    print(
        f"smoke: event log ok ({sum(len(v) for v in by_rid.values())} events, "
        f"{len(by_rid)} requests)",
        file=sys.stderr,
    )


def _assert_telemetry(telemetry_path: str) -> None:
    """The telemetry snapshot is schema-valid and every executed shape
    carries per-operator timings (the service runs instrumented builds)."""
    TELEMETRY.save()
    with open(telemetry_path, encoding="utf-8") as fh:
        doc = json.load(fh)
    problems = validate_snapshot(doc)
    _check(not problems, f"invalid telemetry snapshot: {problems[:3]}")
    shapes = doc["shapes"]
    _check(len(shapes) >= 22, f"expected >= 22 shapes, got {len(shapes)}")
    for shape, entry in shapes.items():
        _check(
            entry["executions"]["count"] > 0,
            f"shape {shape!r}: recorded but never executed",
        )
        _check(
            bool(entry["operators"]),
            f"shape {shape!r}: no per-operator timings",
        )
        for label, op in entry["operators"].items():
            _check(
                op["total_seconds"] >= 0.0 and op["count"] >= 0,
                f"shape {shape!r} operator {label!r}: bad timing {op}",
            )
    print(f"smoke: telemetry ok ({len(shapes)} shapes)", file=sys.stderr)


def _assert_sampling(
    host: str,
    port: int,
    service: QueryService,
    all_replies: Sequence[dict],
    error_replies: Sequence[dict],
    breaker_replies: Sequence[dict],
    profiles_path: Optional[str],
) -> None:
    """Tail-sampling invariants.

    The sampler must have kept a complete profile for *every* errored or
    breaker-affected request (those keeps are deterministic, never
    quantile-dependent) and for the bulk of the run's slowest decile;
    every exemplar request id attached to a ``serve.*`` latency
    histogram must resolve to a stored profile; and the armed SLO
    monitor must be exporting live burn-rate gauges without firing on a
    healthy run.
    """
    _check(service.sampler is not None, "smoke expects tail sampling enabled")
    with ServiceClient(host, port) as client:
        snap = client.profiles()
        metrics = client.metrics()
    problems = validate_profiles(snap)
    _check(not problems, f"invalid profiles snapshot: {problems[:3]}")
    profiles = {p["request_id"]: p for p in snap["profiles"]}

    # Deterministic keeps: errors and breaker-phase requests.
    for reply in list(error_replies) + list(breaker_replies):
        rid = reply.get("request_id")
        prof = profiles.get(rid)
        _check(prof is not None, f"no sampled profile for request {rid!r}")
        if not reply.get("ok"):
            _check(
                str(prof.get("outcome", "")).startswith("E_"),
                f"profile for failed request {rid!r} reports "
                f"outcome {prof.get('outcome')!r}",
            )
    # Breaker-phase profiles are *complete*: trace spans for attribution.
    for reply in breaker_replies:
        prof = profiles[reply["request_id"]]
        _check(
            bool((prof.get("trace") or {}).get("children")),
            f"breaker profile {reply['request_id']!r} has no trace spans",
        )

    # Slow-decile coverage over the whole run, by the service's own
    # elapsed_ms.  The threshold adapts to the live stream, so a few
    # misses right at the moving cut line are tolerated -- but the bulk
    # of the final top decile must be stored.
    timed = sorted(
        (r["elapsed_ms"], r.get("request_id"))
        for r in all_replies
        if r.get("ok") and isinstance(r.get("elapsed_ms"), (int, float))
    )
    _check(len(timed) >= 20, f"too few timed replies to check: {len(timed)}")
    cut = percentile([t for t, _ in timed], 0.9)
    top = [rid for t, rid in timed if t >= cut]
    covered = sum(1 for rid in top if rid in profiles)
    _check(
        covered >= 0.7 * len(top),
        f"slow decile under-sampled: {covered}/{len(top)} profiles stored "
        f"(cut={cut:.1f}ms, sampler threshold="
        f"{snap['threshold_seconds'] * 1e3:.1f}ms)",
    )
    stats = service.sampler.stats()
    _check(
        stats["kept"] * 10 >= stats["offered"],
        f"sampler kept less than a decile of traffic: {stats}",
    )

    # Exemplars: every request id attached to a latency bucket must
    # resolve to a stored profile (no dangling diagnostics pointers).
    exemplar_ids: List[str] = []
    for name, h in metrics["snapshot"].get("histograms", {}).items():
        if not name.startswith("serve."):
            continue
        for bucket_exemplars in (h.get("exemplars") or {}).values():
            exemplar_ids.extend(e["id"] for e in bucket_exemplars)
    _check(bool(exemplar_ids), "no exemplars attached to any serve.* histogram")
    dangling = [rid for rid in exemplar_ids if rid not in profiles]
    _check(
        not dangling,
        f"exemplar ids with no stored profile: {dangling[:3]}",
    )

    # SLO monitor: armed, counting, gauges exported, and its alert
    # bookkeeping consistent.  The smoke's deliberate failures (hostile
    # bindings, the bad-SQL probe) can legitimately push the short-window
    # burn over threshold, so we do not demand "no alert" -- we demand
    # that the latched state, the burn level, and the slo.alerts counter
    # all tell the same story.
    gauges = metrics["snapshot"].get("gauges", {})
    _check("slo.burn.service" in gauges, "slo.burn.service gauge missing")
    _check(
        "serve.inflight" in gauges and "serve.inflight.limit" in gauges,
        "serve.inflight gauges missing from the scrape",
    )
    service_stats = service.stats()
    slo = service_stats.get("slo") or {}
    svc_window = slo.get("service") or {}
    _check(
        svc_window.get("good", 0) + svc_window.get("bad", 0) > 0,
        f"SLO monitor recorded nothing: {slo}",
    )
    alerts = REGISTRY.get_counter("slo.alerts")
    if svc_window.get("alerting", False):
        _check(alerts > 0, "SLO alert latched without a slo.alerts increment")
        _check(
            svc_window.get("burn_short", 0.0)
            >= service.slo.config.burn_threshold,
            f"SLO alert latched below the burn threshold: {svc_window}",
        )

    if profiles_path is not None:
        service.sampler.save(profiles_path)
    print(
        f"smoke: sampling ok ({len(profiles)} profiles, "
        f"{len(exemplar_ids)} exemplars, slow-decile {covered}/{len(top)}, "
        f"threshold={snap['threshold_seconds'] * 1e3:.1f}ms)",
        file=sys.stderr,
    )


def _param_phase(
    host: str, port: int, service: QueryService, args: argparse.Namespace
) -> tuple:
    """Parameterized serving invariants; returns ``(joinable_replies,
    hostile_replies)`` -- the hostile ones fail before admission, so
    they never reach the event log, but the tail sampler must still
    hold a profile for each.

    Drives the literal-varying workload (same shapes, different literal
    text every round) and asserts the shape-keyed cache absorbed it: at
    most one compile per statement shape, a hit-rate floor of
    ``(rounds - 1) / rounds``, tracked by the ``session.cache.shape_*``
    counters.  Then exercises the wire ``prepare``/``execute`` ops across
    two tenants (one compiled shape serves both) and checks that hostile
    bindings come back as typed ``E_PARAM`` errors, never tracebacks.
    """
    from repro.serve.workload import parameterized_workload

    session = service.session
    rounds = max(3, args.rounds)
    before = session.cache_info()
    replies: List[dict] = []
    with ServiceClient(host, port) as client:
        for req in parameterized_workload(rounds, tenant="smoke-params"):
            doc: dict = {
                "tenant": req.tenant,
                "id": req.id,
                "request_id": req.request_id,
            }
            if req.sql is not None:
                doc["sql"] = req.sql
                if req.params is not None:
                    doc["params"] = req.params
            else:
                doc["tpch"] = req.tpch
            reply = client.request(doc)
            _check(
                reply.get("ok", False), f"parameterized request failed: {reply}"
            )
            replies.append(reply)
    after = session.cache_info()
    misses = after["shape_misses"] - before["shape_misses"]
    hits = after["shape_hits"] - before["shape_hits"]
    _check(
        misses <= 14,
        f"literal variants fragmented the shape cache: {misses} shape compiles",
    )
    _check(hits + misses > 0, "no requests went through the shape-keyed cache")
    hit_rate = hits / (hits + misses)
    floor = (rounds - 1) / rounds  # cold cache: one compile per shape
    _check(
        hit_rate >= floor,
        f"shape cache hit rate {hit_rate:.2f} below floor {floor:.2f} "
        f"(shape_hits={hits}, shape_misses={misses})",
    )
    _check(
        REGISTRY.get_counter("session.cache.shape_hits") > 0,
        "session.cache.shape_hits counter never advanced",
    )

    # Wire-level prepare/execute: one prepare, three executions from two
    # tenants, at most one (instrumented) shape compile among them.
    sql_p = "select count(*) from lineitem where l_quantity > ? and l_discount < ?"
    with ServiceClient(host, port) as client:
        prep = client.prepare(sql_p)
        _check(prep.get("ok", False), f"prepare failed: {prep}")
        _check(
            [s["type"] for s in prep.get("signature", [])] == ["float", "float"],
            f"prepare returned a wrong signature: {prep.get('signature')}",
        )
        mid = session.cache_info()
        bindings = (("smoke-pa", 10.0), ("smoke-pb", 20.0), ("smoke-pa", 30.0))
        for i, (tenant, qty) in enumerate(bindings):
            reply = client.execute(
                sql_p,
                [qty, 0.07],
                tenant=tenant,
                request_id=f"smoke-exec-{i}",
            )
            _check(reply.get("ok", False), f"execute failed: {reply}")
            replies.append(reply)
    after = session.cache_info()
    _check(
        after["shape_misses"] - mid["shape_misses"] <= 1,
        "executions across tenants recompiled the prepared shape",
    )
    _check(
        after["shape_hits"] - mid["shape_hits"] >= 2,
        "cross-tenant executions did not share the compiled shape",
    )

    # Hostile bindings: every failure is a typed E_PARAM document.
    hostile = [
        ("wrong arity", {"op": "execute", "sql": sql_p, "params": [10.0]}),
        ("wrong type", {"op": "execute", "sql": sql_p, "params": [10.0, "x"]}),
        (
            "param as table name",
            {"sql": "select count(*) from ? where l_quantity > 1.0",
             "params": ["lineitem"]},
        ),
        (
            "mixed styles",
            {"sql": "select count(*) from lineitem where l_quantity > ? "
                    "and l_discount < :d",
             "params": [10.0]},
        ),
    ]
    hostile_replies: List[dict] = []
    with ServiceClient(host, port) as client:
        for label, doc in hostile:
            reply = client.request(doc)
            code = (reply.get("error") or {}).get("code")
            _check(
                not reply.get("ok") and code == "E_PARAM",
                f"hostile binding ({label}) did not fail typed: {reply}",
            )
            hostile_replies.append(reply)
        reply = client.request({"sql": sql_p, "params": "10.0,0.07"})
        _check(
            (reply.get("error") or {}).get("code") == "E_PROTOCOL",
            f"non-structured params were not rejected at the protocol: {reply}",
        )
        hostile_replies.append(reply)
    print(
        f"smoke: parameterized ok (shape_hits={hits}, shape_misses={misses}, "
        f"hit_rate={hit_rate:.2f})",
        file=sys.stderr,
    )
    return replies, hostile_replies


def cmd_smoke(args: argparse.Namespace) -> int:
    from repro.resilience.faults import FaultInjector, FaultSpec

    t0 = time.monotonic()
    log, events_path, telemetry_path, profiles_path = _setup_observability(args)
    service = build_service(args)
    server = QueryServer(service, host=args.host, port=args.port).start()
    host, port = server.address
    print(f"smoke: service on {host}:{port} scale={args.scale}", file=sys.stderr)
    try:
        # Phase 1: clean concurrent workload over real sockets.
        replies: List[dict] = []
        _drive_clients(host, port, args.clients, args.rounds, replies)
        expected = args.clients * args.rounds * 22
        _check(len(replies) == expected, f"lost replies: {len(replies)}/{expected}")
        outcomes = _assert_all_typed(replies)
        _check(outcomes["ok"] == expected, f"clean run had failures: {outcomes}")
        print(f"smoke: baseline {outcomes}", file=sys.stderr)
        all_replies = list(replies)

        # A failing request must still echo its id on the error payload.
        with ServiceClient(host, port) as client:
            bad = client.request(
                {"sql": "SELECT FROM", "request_id": "smoke-bad-request"}
            )
        _check(not bad.get("ok"), f"malformed SQL unexpectedly succeeded: {bad}")
        _check(
            bad.get("request_id") == "smoke-bad-request"
            and (bad.get("error") or {}).get("request_id") == "smoke-bad-request",
            f"error reply lost its request_id: {bad}",
        )
        all_replies.append(bad)
        error_replies: List[dict] = [bad]

        # A client-minted traceparent must come back as the reply's
        # trace_id (and land on the trace / event log / profile).
        tp = make_traceparent()
        with ServiceClient(host, port) as client:
            traced = client.request(
                {"tpch": 6, "traceparent": tp, "request_id": "smoke-traceparent"}
            )
        _check(traced.get("ok", False), f"traceparent request failed: {traced}")
        _check(
            traced.get("trace_id") == tp.split("-")[1],
            f"traceparent {tp!r} did not round-trip as trace_id: "
            f"{traced.get('trace_id')!r}",
        )
        all_replies.append(traced)

        # Phase 2: parameterized serving -- literal-varying workload,
        # wire prepare/execute, hostile bindings.
        param_replies, hostile_replies = _param_phase(host, port, service, args)
        all_replies.extend(param_replies)
        error_replies.extend(hostile_replies)

        breaker_replies: List[dict] = []
        if args.faults:
            breaker_replies = shape_probe(host, port, service, args)
            all_replies.extend(breaker_replies)
            # Sustained mixed workload with compile faults firing.  The
            # compiled-query cache is cleared first: cached shapes never
            # recompile, and a fault site nothing visits proves nothing.
            service.session.clear_cache()
            every = 3
            with FaultInjector(
                FaultSpec("codegen", at=frozenset(range(0, 4096, every)), times=None),
                FaultSpec(
                    "host-compile", at=frozenset(range(1, 4096, every)), times=None
                ),
            ):
                faulted: List[dict] = []
                _drive_clients(host, port, args.clients, args.rounds, faulted)
            outcomes = _assert_all_typed(faulted)
            _check(
                outcomes["ok"] == len(faulted),
                f"faulted run surfaced failures instead of degrading: {outcomes}",
            )
            _check(
                outcomes["degraded"] > 0,
                "fault injection fired but nothing degraded",
            )
            print(f"smoke: faulted {outcomes}", file=sys.stderr)
            all_replies.extend(faulted)

        # Observability invariants: live scrape, joinable event log,
        # per-shape telemetry.
        _assert_metrics_scrape(
            host, port, [f"smoke-{i}" for i in range(args.clients)]
        )
        if log is not None:
            _assert_event_log(events_path, all_replies)
        if telemetry_path is not None:
            _assert_telemetry(telemetry_path)
        _assert_sampling(
            host,
            port,
            service,
            all_replies,
            error_replies,
            breaker_replies,
            profiles_path,
        )

        # Clean shutdown through the wire.
        with ServiceClient(host, port) as client:
            _check(client.ping(), "ping failed")
            _check(client.shutdown(), "shutdown op not acknowledged")
        deadline = time.monotonic() + 10.0
        while not server._shutdown_started.is_set():
            _check(time.monotonic() < deadline, "server did not begin shutdown")
            time.sleep(0.05)
        server.close()  # idempotent; waits for the accept thread
        print(
            f"smoke: ok in {time.monotonic() - t0:.1f}s "
            f"(faults={'on' if args.faults else 'off'})",
            file=sys.stderr,
        )
        return 0
    except _SmokeFailure as exc:
        print(f"smoke FAILED: {exc}", file=sys.stderr)
        return 1
    finally:
        server.close()
        obs_events.install(None)
        if log is not None:
            log.close()
        TELEMETRY.disable()


def shape_probe(
    host: str, port: int, service: QueryService, args: argparse.Namespace
) -> List[dict]:
    """Open the breaker on one shape under sustained compile faults, then
    watch it recover through a half-open probe; returns the replies so
    the sampler assertions can demand a profile for each."""
    from repro.resilience.faults import FaultInjector, FaultSpec
    from repro.serve.service import ServiceRequest
    from repro.tpch.sql_queries import SQL_QUERIES

    sql = SQL_QUERIES[6]
    # The breaker keys on the request's shape -- canonical text with
    # literals lifted -- which must match what the session cache keys on.
    shape = ServiceRequest(sql=sql).shape()
    service.session.clear_cache()  # force every request through the compiler
    opened_before = REGISTRY.get_counter("serve.breaker.opened")
    replies: List[dict] = []
    with FaultInjector(FaultSpec("codegen", at=None, times=None)):
        with ServiceClient(host, port) as client:
            for _ in range(args.breaker_threshold + 2):
                reply = client.sql(sql, tenant="breaker-smoke")
                _check(reply.get("ok", False), f"degradation failed: {reply}")
                replies.append(reply)
    _check(
        service.breaker.state(shape) == "open",
        f"breaker did not open (state={service.breaker.state(shape)})",
    )
    _check(
        REGISTRY.get_counter("serve.breaker.opened") > opened_before,
        "serve.breaker.opened did not advance",
    )
    time.sleep(args.breaker_cooldown * 1.1)  # let the cooldown lapse
    with ServiceClient(host, port) as client:
        reply = client.sql(sql, tenant="breaker-smoke")
        _check(reply.get("ok", False), f"probe request failed: {reply}")
        replies.append(reply)
    _check(
        service.breaker.state(shape) == "closed",
        f"breaker did not recover (state={service.breaker.state(shape)})",
    )
    print("smoke: breaker opened and recovered", file=sys.stderr)
    return replies


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument("--scale", type=float, default=0.005)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument("--deadline", type=float, default=10.0,
                        help="default per-request deadline (seconds)")
    parser.add_argument("--rate", type=float, default=None,
                        help="global rate limit (requests/second)")
    parser.add_argument("--max-rows", type=int, default=None,
                        help="default per-request scanned-row budget")
    parser.add_argument("--cache-size", type=int, default=256)
    parser.add_argument("--breaker-threshold", type=int, default=3)
    parser.add_argument("--breaker-cooldown", type=float, default=0.3)
    parser.add_argument("--trace", action="store_true",
                        help="attach a per-request trace to every response")
    parser.add_argument("--events", default=None, metavar="PATH",
                        help="write the structured JSONL event log to PATH "
                             "(smoke mode defaults to a temp dir)")
    parser.add_argument("--telemetry", default=None, metavar="PATH",
                        help="enable the workload-telemetry store and "
                             "snapshot it to PATH on shutdown "
                             "(smoke mode defaults to a temp dir)")
    parser.add_argument("--sampling", action="store_true",
                        help="enable tail-based profile sampling (always on "
                             "in smoke mode)")
    parser.add_argument("--profiles", default=None, metavar="PATH",
                        help="write the repro-profiles/v1 snapshot to PATH "
                             "on shutdown (implies --sampling; smoke mode "
                             "defaults to a temp dir)")
    parser.add_argument("--sampler-capacity", type=int, default=1024,
                        help="bounded profile store size for the tail sampler")
    parser.add_argument("--slo-latency", type=float, default=None,
                        metavar="SECONDS",
                        help="arm the SLO monitor with this latency "
                             "threshold (smoke mode arms a generous 30s)")
    parser.add_argument("--slo-objective", type=float, default=0.99,
                        help="SLO success objective (fraction of good "
                             "requests, default 0.99)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the self-contained CI smoke and exit")
    parser.add_argument("--faults", action="store_true",
                        help="smoke: also run with compile-site fault injection")
    parser.add_argument("--clients", type=int, default=4,
                        help="smoke: concurrent client connections")
    parser.add_argument("--rounds", type=int, default=2,
                        help="smoke: workload rounds per client")
    args = parser.parse_args(argv)
    if args.smoke:
        return cmd_smoke(args)
    return cmd_serve(args)


if __name__ == "__main__":
    sys.exit(main())
