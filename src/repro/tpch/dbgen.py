"""A from-scratch, deterministic TPC-H data generator.

Follows the population rules of TPC-H spec Clause 4.2.3: cardinalities,
key formation (including the partsupp/lineitem supplier permutation
formula), value domains, the order/lineitem date relationships, and the
derived columns (``o_orderstatus``, ``o_totalprice``,
``l_extendedprice``).  Generation is seeded, so the same scale factor
always yields byte-identical tables -- the property the differential tests
and benchmarks rely on.

This replaces the official ``dbgen`` binary (unavailable offline); see
DESIGN.md for the substitution note.  Distributions are spec-shaped, which
is what keeps all 22 query predicates selective-but-non-empty.
"""

from __future__ import annotations

from random import Random
from typing import Iterable, Optional

from repro.catalog.types import date_add_days, date_to_int, int_to_date, make_date
from repro.storage.buffer import ColumnarTable
from repro.storage.database import Database, OptimizationLevel
from repro.tpch import text
from repro.tpch.schema import DICTIONARY_COLUMNS, TPCH_TABLES, tpch_catalog

START_DATE = date_to_int("1992-01-01")
CURRENT_DATE = date_to_int("1995-06-17")
# Order dates end 151 days before the last shipdate window closes.
LAST_ORDER_DATE = date_to_int("1998-08-02")

_ORDER_DATE_SPAN = 2405  # days between START_DATE and LAST_ORDER_DATE inclusive


def _money(rng: Random, lo_cents: int, hi_cents: int) -> float:
    return rng.randint(lo_cents, hi_cents) / 100.0


def _scaled(base: int, scale: float) -> int:
    return max(1, int(round(base * scale)))


def generate_region() -> list[tuple]:
    rng = Random(4150)
    return [
        (i, name, text.comment(rng, 10)) for i, name in enumerate(text.REGIONS)
    ]


def generate_nation() -> list[tuple]:
    rng = Random(4151)
    return [
        (i, name, region, text.comment(rng, 10))
        for i, (name, region) in enumerate(text.NATIONS)
    ]


def generate_supplier(scale: float) -> list[tuple]:
    rng = Random(4152)
    count = _scaled(10_000, scale)
    rows = []
    for suppkey in range(1, count + 1):
        nationkey = rng.randrange(25)
        rows.append(
            (
                suppkey,
                f"Supplier#{suppkey:09d}",
                text.words(rng, 3),
                nationkey,
                text.phone(rng, nationkey),
                _money(rng, -99_999, 999_999),
                text.supplier_comment(rng),
            )
        )
    return rows


def generate_customer(scale: float) -> list[tuple]:
    rng = Random(4153)
    count = _scaled(150_000, scale)
    rows = []
    for custkey in range(1, count + 1):
        nationkey = rng.randrange(25)
        rows.append(
            (
                custkey,
                f"Customer#{custkey:09d}",
                text.words(rng, 3),
                nationkey,
                text.phone(rng, nationkey),
                _money(rng, -99_999, 999_999),
                rng.choice(text.SEGMENTS),
                text.comment(rng),
            )
        )
    return rows


def _retail_price(partkey: int) -> float:
    """Spec 4.2.3: (90000 + ((partkey/10) mod 20001) + 100*(partkey mod 1000)) / 100."""
    return (90_000 + ((partkey // 10) % 20_001) + 100 * (partkey % 1_000)) / 100.0


def generate_part(scale: float) -> list[tuple]:
    rng = Random(4154)
    count = _scaled(200_000, scale)
    rows = []
    for partkey in range(1, count + 1):
        mfgr = rng.randint(1, 5)
        brand = mfgr * 10 + rng.randint(1, 5)
        part_type = (
            f"{rng.choice(text.TYPE_SYLLABLE_1)} "
            f"{rng.choice(text.TYPE_SYLLABLE_2)} "
            f"{rng.choice(text.TYPE_SYLLABLE_3)}"
        )
        container = (
            f"{rng.choice(text.CONTAINER_SYLLABLE_1)} "
            f"{rng.choice(text.CONTAINER_SYLLABLE_2)}"
        )
        rows.append(
            (
                partkey,
                text.part_name(rng),
                f"Manufacturer#{mfgr}",
                f"Brand#{brand}",
                part_type,
                rng.randint(1, 50),
                container,
                _retail_price(partkey),
                text.comment(rng, 5),
            )
        )
    return rows


def _partsupp_suppkey(partkey: int, i: int, supplier_count: int) -> int:
    """The spec's supplier permutation: spreads a part's 4 suppliers."""
    s = supplier_count
    return (
        partkey + (i * (s // 4 + (partkey - 1) // s))
    ) % s + 1


def generate_partsupp(scale: float) -> list[tuple]:
    rng = Random(4155)
    part_count = _scaled(200_000, scale)
    supplier_count = _scaled(10_000, scale)
    rows = []
    for partkey in range(1, part_count + 1):
        for i in range(4):
            rows.append(
                (
                    partkey,
                    _partsupp_suppkey(partkey, i, supplier_count),
                    rng.randint(1, 9_999),
                    _money(rng, 100, 100_000),
                    text.comment(rng, 10),
                )
            )
    return rows


def _order_custkey(rng: Random, customer_count: int) -> int:
    """Customers ≡ 0 (mod 3) never place orders (spec: one third inactive)."""
    while True:
        custkey = rng.randint(1, customer_count)
        if custkey % 3 != 0:
            return custkey


def generate_orders_and_lineitem(scale: float) -> tuple[list[tuple], list[tuple]]:
    rng = Random(4156)
    order_count = _scaled(1_500_000, scale)
    customer_count = _scaled(150_000, scale)
    part_count = _scaled(200_000, scale)
    supplier_count = _scaled(10_000, scale)
    clerk_count = _scaled(1_000, scale)

    orders: list[tuple] = []
    lineitems: list[tuple] = []
    for orderkey in range(1, order_count + 1):
        orderdate = date_add_days(START_DATE, rng.randint(0, _ORDER_DATE_SPAN))
        line_count = rng.randint(1, 7)
        total = 0.0
        statuses = []
        for linenumber in range(1, line_count + 1):
            partkey = rng.randint(1, part_count)
            suppkey = _partsupp_suppkey(partkey, rng.randrange(4), supplier_count)
            quantity = float(rng.randint(1, 50))
            extendedprice = round(quantity * _retail_price(partkey), 2)
            discount = rng.randint(0, 10) / 100.0
            tax = rng.randint(0, 8) / 100.0
            shipdate = date_add_days(orderdate, rng.randint(1, 121))
            commitdate = date_add_days(orderdate, rng.randint(30, 90))
            receiptdate = date_add_days(shipdate, rng.randint(1, 30))
            if receiptdate <= CURRENT_DATE:
                returnflag = rng.choice(("R", "A"))
            else:
                returnflag = "N"
            linestatus = "O" if shipdate > CURRENT_DATE else "F"
            statuses.append(linestatus)
            total += extendedprice * (1.0 + tax) * (1.0 - discount)
            lineitems.append(
                (
                    orderkey,
                    partkey,
                    suppkey,
                    linenumber,
                    quantity,
                    extendedprice,
                    discount,
                    tax,
                    returnflag,
                    linestatus,
                    shipdate,
                    commitdate,
                    receiptdate,
                    rng.choice(text.INSTRUCTIONS),
                    rng.choice(text.MODES),
                    text.comment(rng, 6),
                )
            )
        if all(s == "F" for s in statuses):
            orderstatus = "F"
        elif all(s == "O" for s in statuses):
            orderstatus = "O"
        else:
            orderstatus = "P"
        orders.append(
            (
                orderkey,
                _order_custkey(rng, customer_count),
                orderstatus,
                round(total, 2),
                orderdate,
                rng.choice(text.PRIORITIES),
                f"Clerk#{rng.randint(1, clerk_count):09d}",
                0,
                text.order_comment(rng),
            )
        )
    return orders, lineitems


def generate_tables(scale: float = 0.01) -> dict[str, ColumnarTable]:
    """Generate all eight tables at ``scale`` (fraction of SF1)."""
    orders, lineitems = generate_orders_and_lineitem(scale)
    rows_by_table: dict[str, Iterable[tuple]] = {
        "region": generate_region(),
        "nation": generate_nation(),
        "supplier": generate_supplier(scale),
        "customer": generate_customer(scale),
        "part": generate_part(scale),
        "partsupp": generate_partsupp(scale),
        "orders": orders,
        "lineitem": lineitems,
    }
    return {
        name: ColumnarTable.from_rows(TPCH_TABLES[name], rows)
        for name, rows in rows_by_table.items()
    }


def generate_database(
    scale: float = 0.01,
    level: OptimizationLevel = OptimizationLevel.COMPLIANT,
    tables: Optional[dict[str, ColumnarTable]] = None,
) -> Database:
    """A loaded TPC-H database at the given optimization level.

    Pass pre-generated ``tables`` to re-load the same data at several levels
    without regenerating (the Figure 10 loading experiment does this).
    """
    catalog = tpch_catalog()
    db = Database(catalog, level=level, dictionary_columns=DICTIONARY_COLUMNS)
    if tables is None:
        tables = generate_tables(scale)
    for name in TPCH_TABLES:
        db.add_table(tables[name])
    return db
