"""TPC-H queries expressed in SQL, for the front-end path.

Fifteen of the twenty-two queries are expressible in the supported SQL
subset (single-block SELECT plus EXISTS/IN/scalar subqueries).  The rest
need constructs the front-end deliberately omits -- LEFT OUTER JOIN syntax
(Q13), correlated scalar subqueries (Q2, Q17, Q20), derived tables (Q15),
non-equality correlation (Q21), HAVING subqueries (Q11) -- and are covered
by the hand-written plans in :mod:`repro.tpch.queries`, exactly as plans
are supplied explicitly to LB2 in the paper.

Each text is parameter-instantiated with the spec's validation values and
planned by the cost-based optimizer, so these also exercise join ordering
on realistic shapes.  ``test_tpch_sql.py`` checks every one against its
hand-written plan on all engines.
"""

from __future__ import annotations

SQL_QUERIES: dict[int, str] = {
    1: """
        select l_returnflag, l_linestatus,
               sum(l_quantity) as sum_qty,
               sum(l_extendedprice) as sum_base_price,
               sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
               sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
               avg(l_quantity) as avg_qty,
               avg(l_extendedprice) as avg_price,
               avg(l_discount) as avg_disc,
               count(*) as count_order
        from lineitem
        where l_shipdate <= date '1998-09-02'
        group by l_returnflag, l_linestatus
        order by l_returnflag, l_linestatus
    """,
    3: """
        select l_orderkey,
               sum(l_extendedprice * (1 - l_discount)) as revenue,
               o_orderdate, o_shippriority
        from customer, orders, lineitem
        where c_mktsegment = 'BUILDING'
          and c_custkey = o_custkey and l_orderkey = o_orderkey
          and o_orderdate < date '1995-03-15'
          and l_shipdate > date '1995-03-15'
        group by l_orderkey, o_orderdate, o_shippriority
        order by revenue desc, o_orderdate
        limit 10
    """,
    4: """
        select o_orderpriority, count(*) as order_count
        from orders
        where o_orderdate >= date '1993-07-01'
          and o_orderdate < date '1993-07-01' + interval '3' month
          and exists (select l_orderkey from lineitem
                      where l_orderkey = o_orderkey
                        and l_commitdate < l_receiptdate)
        group by o_orderpriority
        order by o_orderpriority
    """,
    5: """
        select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
        from customer, orders, lineitem, supplier, nation, region
        where c_custkey = o_custkey and l_orderkey = o_orderkey
          and l_suppkey = s_suppkey and c_nationkey = s_nationkey
          and s_nationkey = n_nationkey and n_regionkey = r_regionkey
          and r_name = 'ASIA'
          and o_orderdate >= date '1994-01-01'
          and o_orderdate < date '1994-01-01' + interval '1' year
        group by n_name
        order by revenue desc
    """,
    6: """
        select sum(l_extendedprice * l_discount) as revenue
        from lineitem
        where l_shipdate >= date '1994-01-01'
          and l_shipdate < date '1994-01-01' + interval '1' year
          and l_discount between 0.05 and 0.07
          and l_quantity < 24
    """,
    7: """
        select n1.n_name as supp_nation, n2.n_name as cust_nation,
               extract(year from l_shipdate) as l_year,
               sum(l_extendedprice * (1 - l_discount)) as volume
        from supplier, lineitem, orders, customer, nation n1, nation n2
        where s_suppkey = l_suppkey and o_orderkey = l_orderkey
          and c_custkey = o_custkey
          and s_nationkey = n1.n_nationkey and c_nationkey = n2.n_nationkey
          and ((n1.n_name = 'FRANCE' and n2.n_name = 'GERMANY')
            or (n1.n_name = 'GERMANY' and n2.n_name = 'FRANCE'))
          and l_shipdate between date '1995-01-01' and date '1996-12-31'
        group by n1.n_name, n2.n_name, extract(year from l_shipdate)
        order by 1, 2, 3
    """,
    8: """
        select extract(year from o_orderdate) as o_year,
               sum(case when n2.n_name = 'BRAZIL'
                        then l_extendedprice * (1 - l_discount)
                        else 0.0 end)
                 / sum(l_extendedprice * (1 - l_discount)) as mkt_share
        from part, supplier, lineitem, orders, customer, nation n1, nation n2, region
        where p_partkey = l_partkey and s_suppkey = l_suppkey
          and l_orderkey = o_orderkey and o_custkey = c_custkey
          and c_nationkey = n1.n_nationkey and n1.n_regionkey = r_regionkey
          and r_name = 'AMERICA' and s_nationkey = n2.n_nationkey
          and o_orderdate between date '1995-01-01' and date '1996-12-31'
          and p_type = 'ECONOMY ANODIZED STEEL'
        group by extract(year from o_orderdate)
        order by o_year
    """,
    9: """
        select n_name as nation, extract(year from o_orderdate) as o_year,
               sum(l_extendedprice * (1 - l_discount)
                   - ps_supplycost * l_quantity) as sum_profit
        from part, supplier, lineitem, partsupp, orders, nation
        where s_suppkey = l_suppkey
          and ps_suppkey = l_suppkey and ps_partkey = l_partkey
          and p_partkey = l_partkey and o_orderkey = l_orderkey
          and s_nationkey = n_nationkey
          and p_name like '%green%'
        group by n_name, extract(year from o_orderdate)
        order by nation, o_year desc
    """,
    10: """
        select c_custkey, c_name,
               sum(l_extendedprice * (1 - l_discount)) as revenue,
               c_acctbal, n_name, c_address, c_phone, c_comment
        from customer, orders, lineitem, nation
        where c_custkey = o_custkey and l_orderkey = o_orderkey
          and o_orderdate >= date '1993-10-01'
          and o_orderdate < date '1993-10-01' + interval '3' month
          and l_returnflag = 'R' and c_nationkey = n_nationkey
        group by c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
        order by revenue desc
        limit 20
    """,
    12: """
        select l_shipmode,
               sum(case when o_orderpriority = '1-URGENT'
                          or o_orderpriority = '2-HIGH'
                        then 1 else 0 end) as high_line_count,
               sum(case when o_orderpriority <> '1-URGENT'
                         and o_orderpriority <> '2-HIGH'
                        then 1 else 0 end) as low_line_count
        from orders, lineitem
        where o_orderkey = l_orderkey
          and l_shipmode in ('MAIL', 'SHIP')
          and l_commitdate < l_receiptdate
          and l_shipdate < l_commitdate
          and l_receiptdate >= date '1994-01-01'
          and l_receiptdate < date '1994-01-01' + interval '1' year
        group by l_shipmode
        order by l_shipmode
    """,
    14: """
        select 100.00 * sum(case when p_type like 'PROMO%'
                                 then l_extendedprice * (1 - l_discount)
                                 else 0.0 end)
               / sum(l_extendedprice * (1 - l_discount)) as promo_revenue
        from lineitem, part
        where l_partkey = p_partkey
          and l_shipdate >= date '1995-09-01'
          and l_shipdate < date '1995-09-01' + interval '1' month
    """,
    16: """
        select p_brand, p_type, p_size,
               count(distinct ps_suppkey) as supplier_cnt
        from partsupp, part
        where p_partkey = ps_partkey
          and p_brand <> 'Brand#45'
          and p_type not like 'MEDIUM POLISHED%'
          and p_size in (49, 14, 23, 45, 19, 3, 36, 9)
          and ps_suppkey not in (
              select s_suppkey from supplier
              where s_comment like '%Customer%Complaints%')
        group by p_brand, p_type, p_size
        order by supplier_cnt desc, p_brand, p_type, p_size
    """,
    18: """
        select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
               sum(l_quantity) as sum_qty
        from customer, orders, lineitem
        where o_orderkey in (
              select l_orderkey from lineitem
              group by l_orderkey having sum(l_quantity) > 300)
          and c_custkey = o_custkey and o_orderkey = l_orderkey
        group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
        order by o_totalprice desc, o_orderdate
        limit 100
    """,
    19: """
        select sum(l_extendedprice * (1 - l_discount)) as revenue
        from lineitem, part
        where l_partkey = p_partkey
          and l_shipmode in ('AIR', 'AIR REG')
          and l_shipinstruct = 'DELIVER IN PERSON'
          and ((p_brand = 'Brand#12'
                and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
                and l_quantity between 1 and 11 and p_size between 1 and 5)
            or (p_brand = 'Brand#23'
                and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
                and l_quantity between 10 and 20 and p_size between 1 and 10)
            or (p_brand = 'Brand#34'
                and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
                and l_quantity between 20 and 30 and p_size between 1 and 15))
    """,
    22: """
        select substring(c_phone from 1 for 2) as cntrycode,
               count(*) as numcust, sum(c_acctbal) as totacctbal
        from customer
        where substring(c_phone from 1 for 2)
                in ('13', '31', '23', '29', '30', '18', '17')
          and c_acctbal > (
              select avg(c_acctbal) from customer
              where c_acctbal > 0.0
                and substring(c_phone from 1 for 2)
                      in ('13', '31', '23', '29', '30', '18', '17'))
          and not exists (
              select o_orderkey from orders where o_custkey = c_custkey)
        group by substring(c_phone from 1 for 2)
        order by cntrycode
    """,
}

# Queries needing constructs outside the SQL subset; plan-DSL only.
PLAN_ONLY = {
    2: "correlated scalar subquery (min supply cost per part)",
    11: "HAVING threshold computed from a scalar subquery",
    13: "LEFT OUTER JOIN syntax",
    15: "derived table (revenue view) + scalar max over it",
    17: "correlated scalar subquery (avg quantity per part)",
    20: "nested IN subqueries with correlated aggregation",
    21: "EXISTS with non-equality correlation (s2.suppkey <> s1.suppkey)",
}
