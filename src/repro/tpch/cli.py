"""Command-line dbgen: generate TPC-H data as ``.tbl`` files, and reload.

Usage::

    python -m repro.tpch.cli generate --scale 0.01 --out ./tpch-data
    python -m repro.tpch.cli show --scale 0.002 --query 6
    python -m repro.tpch.cli run --dir ./tpch-data --query 6 [--level idx_date]

``generate`` writes the eight tables in the official pipe-separated format;
``run`` loads a directory and executes one of the 22 queries with the LB2
compiler; ``show`` prints a query's physical plan and generated code.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.compiler.driver import LB2Compiler
from repro.plan.explain import explain
from repro.plan.rewrite import optimize_for_level
from repro.storage.database import Database, OptimizationLevel
from repro.storage.loader import load_tbl, save_tbl
from repro.tpch.dbgen import generate_database, generate_tables
from repro.tpch.queries import query_plan
from repro.tpch.schema import DICTIONARY_COLUMNS, TPCH_TABLES, tpch_catalog


def cmd_generate(args: argparse.Namespace) -> int:
    tables = generate_tables(args.scale)
    os.makedirs(args.out, exist_ok=True)
    for name, table in tables.items():
        path = os.path.join(args.out, f"{name}.tbl")
        save_tbl(table, path)
        print(f"wrote {path} ({len(table)} rows)")
    return 0


def load_directory(directory: str, level: OptimizationLevel) -> Database:
    """Load a dbgen-format directory into a Database."""
    db = Database(tpch_catalog(), level=level, dictionary_columns=DICTIONARY_COLUMNS)
    for name, schema in TPCH_TABLES.items():
        path = os.path.join(directory, f"{name}.tbl")
        if not os.path.exists(path):
            raise FileNotFoundError(f"missing table file {path}")
        db.add_table(load_tbl(schema, path))
    return db


def _level(text: str) -> OptimizationLevel:
    try:
        return OptimizationLevel[text.upper()]
    except KeyError:
        valid = ", ".join(l.name.lower() for l in OptimizationLevel)
        raise argparse.ArgumentTypeError(f"level must be one of: {valid}") from None


def cmd_run(args: argparse.Namespace) -> int:
    start = time.perf_counter()
    if args.dir:
        db = load_directory(args.dir, args.level)
    else:
        db = generate_database(args.scale, level=args.level)
    load_seconds = time.perf_counter() - start
    plan = query_plan(args.query, scale=args.scale)
    if args.level is not OptimizationLevel.COMPLIANT:
        plan = optimize_for_level(plan, db, db.catalog)
    compiled = LB2Compiler(db.catalog, db).compile(plan)
    start = time.perf_counter()
    rows = compiled.run(db)
    run_seconds = time.perf_counter() - start
    for row in rows:
        print("|".join(str(v) for v in row))
    print(
        f"-- Q{args.query}: {len(rows)} rows; load {load_seconds * 1000:.0f}ms, "
        f"compile {1000 * (compiled.generation_seconds + compiled.compile_seconds):.1f}ms, "
        f"run {run_seconds * 1000:.1f}ms",
        file=sys.stderr,
    )
    if args.analyze:
        from repro.obs.explain import explain_analyze_plan

        ea = explain_analyze_plan(db, plan)
        print(ea.render(), file=sys.stderr)
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    db = generate_database(args.scale, level=args.level)
    plan = query_plan(args.query, scale=args.scale)
    if args.level is not OptimizationLevel.COMPLIANT:
        plan = optimize_for_level(plan, db, db.catalog)
    print(explain(plan, db.catalog))
    compiled = LB2Compiler(db.catalog, db).compile(plan)
    print("\n-- generated code --")
    print(compiled.source)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.tpch", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write .tbl files")
    gen.add_argument("--scale", type=float, default=0.01)
    gen.add_argument("--out", required=True)
    gen.set_defaults(fn=cmd_generate)

    run = sub.add_parser("run", help="execute a TPC-H query (compiled)")
    run.add_argument("--dir", default=None, help=".tbl directory (else generate)")
    run.add_argument("--scale", type=float, default=0.01)
    run.add_argument("--query", type=int, required=True, choices=range(1, 23))
    run.add_argument("--level", type=_level, default=OptimizationLevel.COMPLIANT)
    run.add_argument("--analyze", action="store_true",
                     help="also print the EXPLAIN ANALYZE operator tree")
    run.set_defaults(fn=cmd_run)

    show = sub.add_parser("show", help="print plan and generated code")
    show.add_argument("--scale", type=float, default=0.002)
    show.add_argument("--query", type=int, required=True, choices=range(1, 23))
    show.add_argument("--level", type=_level, default=OptimizationLevel.COMPLIANT)
    show.set_defaults(fn=cmd_show)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
