"""TPC-H value domains and text generation.

The word lists follow Clause 4.2.2.13 / Appendix A of the TPC-H
specification (colors, type syllables, containers, segments, priorities,
instructions, modes, nations and regions).  Comments are pseudo-text drawn
from a small vocabulary; the generator injects the marker phrases the
benchmark queries grep for (``special ... requests`` in order comments for
Q13, ``Customer ... Complaints`` in supplier comments for Q16) with
spec-shaped frequencies.
"""

from __future__ import annotations

from random import Random

COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
    "light", "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight",
    "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
    "pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff",
    "purple", "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy",
    "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring", "steel",
    "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
]

TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

CONTAINER_SYLLABLE_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_SYLLABLE_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]

PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]

INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]

MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]

# (name, region index) per the spec's Nation/Region tables.
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

_NOUNS = [
    "packages", "requests", "accounts", "deposits", "foxes", "ideas", "theodolites",
    "pinto beans", "instructions", "dependencies", "excuses", "platelets",
    "asymptotes", "courts", "dolphins", "multipliers", "sauternes", "warthogs",
    "frets", "dinos", "attainments", "somas", "braids", "hockey players",
]

_VERBS = [
    "sleep", "wake", "are", "cajole", "haggle", "nag", "use", "boost", "affix",
    "detect", "integrate", "maintain", "nod", "was", "lose", "sublate", "solve",
    "thrash", "promise", "engage", "hinder", "print", "doze", "run",
]

_ADJECTIVES = [
    "furious", "sly", "careful", "blithe", "quick", "fluffy", "slow", "quiet",
    "ruthless", "thin", "close", "dogged", "daring", "bold", "stealthy",
    "permanent", "enticing", "idle", "busy", "regular", "final", "ironic",
    "even", "bold", "silent",
]

_ADVERBS = [
    "sometimes", "always", "never", "furiously", "slyly", "carefully", "blithely",
    "quickly", "fluffily", "slowly", "quietly", "ruthlessly", "thinly", "closely",
    "doggedly", "daringly", "boldly", "stealthily", "permanently", "enticingly",
    "idly", "busily", "regularly", "finally", "ironically", "evenly", "silently",
]


def words(rng: Random, count: int) -> str:
    """``count`` pseudo-text words."""
    pieces = []
    for _ in range(count):
        bucket = rng.randrange(4)
        if bucket == 0:
            pieces.append(rng.choice(_NOUNS))
        elif bucket == 1:
            pieces.append(rng.choice(_VERBS))
        elif bucket == 2:
            pieces.append(rng.choice(_ADJECTIVES))
        else:
            pieces.append(rng.choice(_ADVERBS))
    return " ".join(pieces)


def comment(rng: Random, max_words: int = 8) -> str:
    """A plain random comment."""
    return words(rng, rng.randint(2, max_words))


def order_comment(rng: Random) -> str:
    """Order comments; ~1.2% contain ``special ... requests`` (Q13)."""
    if rng.random() < 0.012:
        return f"{words(rng, 2)} special {words(rng, 1)} requests {words(rng, 1)}"
    return comment(rng)


def supplier_comment(rng: Random) -> str:
    """Supplier comments; the spec plants ~5 per 10k suppliers with
    ``Customer ... Complaints`` (Q16) and 5 with ``Customer ... Recommends``."""
    roll = rng.random()
    if roll < 0.0005:
        return f"{words(rng, 2)} Customer {words(rng, 1)} Complaints {words(rng, 1)}"
    if roll < 0.0010:
        return f"{words(rng, 2)} Customer {words(rng, 1)} Recommends {words(rng, 1)}"
    return comment(rng)


def part_name(rng: Random) -> str:
    """Five distinct color words (so Q9's ``%green%`` and Q20's ``forest%``
    have spec-like selectivity)."""
    return " ".join(rng.sample(COLORS, 5))


def phone(rng: Random, nationkey: int) -> str:
    """``CC-LLL-LLL-NNNN`` with country code = nation key + 10 (Q22)."""
    return (
        f"{nationkey + 10}-{rng.randint(100, 999)}-"
        f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}"
    )
