"""The TPC-H schema (all eight tables) with key metadata.

Primary/foreign keys follow the spec; the loader uses them to build the
"idx" optimization level's indexes (Section 4.3 / Figure 9).
"""

from __future__ import annotations

from repro.catalog import Catalog, DATE, FLOAT, INT, STRING
from repro.catalog.schema import TableSchema, schema

REGION = schema(
    "region",
    ("r_regionkey", INT),
    ("r_name", STRING),
    ("r_comment", STRING),
    pk=["r_regionkey"],
)

NATION = schema(
    "nation",
    ("n_nationkey", INT),
    ("n_name", STRING),
    ("n_regionkey", INT),
    ("n_comment", STRING),
    pk=["n_nationkey"],
    fks={"n_regionkey": ("region", "r_regionkey")},
)

SUPPLIER = schema(
    "supplier",
    ("s_suppkey", INT),
    ("s_name", STRING),
    ("s_address", STRING),
    ("s_nationkey", INT),
    ("s_phone", STRING),
    ("s_acctbal", FLOAT),
    ("s_comment", STRING),
    pk=["s_suppkey"],
    fks={"s_nationkey": ("nation", "n_nationkey")},
)

CUSTOMER = schema(
    "customer",
    ("c_custkey", INT),
    ("c_name", STRING),
    ("c_address", STRING),
    ("c_nationkey", INT),
    ("c_phone", STRING),
    ("c_acctbal", FLOAT),
    ("c_mktsegment", STRING),
    ("c_comment", STRING),
    pk=["c_custkey"],
    fks={"c_nationkey": ("nation", "n_nationkey")},
)

PART = schema(
    "part",
    ("p_partkey", INT),
    ("p_name", STRING),
    ("p_mfgr", STRING),
    ("p_brand", STRING),
    ("p_type", STRING),
    ("p_size", INT),
    ("p_container", STRING),
    ("p_retailprice", FLOAT),
    ("p_comment", STRING),
    pk=["p_partkey"],
)

PARTSUPP = schema(
    "partsupp",
    ("ps_partkey", INT),
    ("ps_suppkey", INT),
    ("ps_availqty", INT),
    ("ps_supplycost", FLOAT),
    ("ps_comment", STRING),
    fks={
        "ps_partkey": ("part", "p_partkey"),
        "ps_suppkey": ("supplier", "s_suppkey"),
    },
)

ORDERS = schema(
    "orders",
    ("o_orderkey", INT),
    ("o_custkey", INT),
    ("o_orderstatus", STRING),
    ("o_totalprice", FLOAT),
    ("o_orderdate", DATE),
    ("o_orderpriority", STRING),
    ("o_clerk", STRING),
    ("o_shippriority", INT),
    ("o_comment", STRING),
    pk=["o_orderkey"],
    fks={"o_custkey": ("customer", "c_custkey")},
)

LINEITEM = schema(
    "lineitem",
    ("l_orderkey", INT),
    ("l_partkey", INT),
    ("l_suppkey", INT),
    ("l_linenumber", INT),
    ("l_quantity", FLOAT),
    ("l_extendedprice", FLOAT),
    ("l_discount", FLOAT),
    ("l_tax", FLOAT),
    ("l_returnflag", STRING),
    ("l_linestatus", STRING),
    ("l_shipdate", DATE),
    ("l_commitdate", DATE),
    ("l_receiptdate", DATE),
    ("l_shipinstruct", STRING),
    ("l_shipmode", STRING),
    ("l_comment", STRING),
    fks={
        "l_orderkey": ("orders", "o_orderkey"),
        "l_partkey": ("part", "p_partkey"),
        "l_suppkey": ("supplier", "s_suppkey"),
    },
)

TPCH_TABLES: dict[str, TableSchema] = {
    s.name: s
    for s in (REGION, NATION, SUPPLIER, CUSTOMER, PART, PARTSUPP, ORDERS, LINEITEM)
}

# Columns worth dictionary-compressing at the idx-date-str level: the
# low-cardinality strings that TPC-H predicates and group-bys touch.
DICTIONARY_COLUMNS: dict[str, list[str]] = {
    "part": ["p_name", "p_mfgr", "p_brand", "p_type", "p_container"],
    "customer": ["c_mktsegment", "c_phone"],
    "orders": ["o_orderstatus", "o_orderpriority"],
    "lineitem": [
        "l_returnflag",
        "l_linestatus",
        "l_shipinstruct",
        "l_shipmode",
    ],
    "nation": ["n_name"],
    "region": ["r_name"],
    "supplier": ["s_name"],
}


def tpch_catalog() -> Catalog:
    """A fresh catalog containing all eight TPC-H tables."""
    return Catalog(TPCH_TABLES.values())
