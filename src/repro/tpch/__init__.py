"""TPC-H substrate: schema, deterministic data generator, the 22 query plans."""

from repro.tpch.schema import TPCH_TABLES, tpch_catalog
from repro.tpch.dbgen import generate_database, generate_tables
from repro.tpch.queries import QUERIES, query_plan
from repro.tpch.sql_queries import PLAN_ONLY, SQL_QUERIES

__all__ = [
    "TPCH_TABLES",
    "tpch_catalog",
    "generate_database",
    "generate_tables",
    "QUERIES",
    "query_plan",
    "SQL_QUERIES",
    "PLAN_ONLY",
]
