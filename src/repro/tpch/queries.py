"""Physical plans for all 22 TPC-H queries.

Plans are supplied explicitly, exactly as for LB2 and DBLAB in the paper
("Query plans in LB2 and DBLAB are supplied explicitly").  Parameters use
the spec's validation values.  Correlated subqueries are decorrelated by
hand into the standard join/aggregate shapes (e.g. Q2's per-part minimum
cost, Q17's per-part average quantity, Q21's per-order supplier counts).

Each ``qN`` function builds a fresh plan; :data:`QUERIES` maps query number
to builder.  ``scale`` only affects Q11, whose HAVING fraction is
``0.0001 / SF`` per the spec.
"""

from __future__ import annotations

from typing import Callable

from repro.catalog.types import date_add_days, date_add_months, date_add_years, date_to_int
from repro.plan import (
    Agg,
    AntiJoin,
    Arith,
    Between,
    Case,
    Cmp,
    Col,
    Const,
    ExtractYear,
    HashJoin,
    InList,
    LeftOuterJoin,
    Like,
    Limit,
    Not,
    Or,
    PhysicalPlan,
    Project,
    Scan,
    Select,
    SemiJoin,
    Sort,
    Substring,
    And,
    avg,
    col,
    count,
    count_col,
    count_distinct,
    lit,
    max_,
    min_,
    sum_,
)
from repro.tpch.schema import TPCH_TABLES


def _d(text: str) -> int:
    return date_to_int(text)


def keep(plan: PhysicalPlan, names: list[str]) -> Project:
    """Projection-prune to ``names`` (pass-through columns)."""
    return Project(plan, [(n, col(n)) for n in names])


def alias(table: str, prefix: str) -> dict[str, str]:
    """Rename every column ``t_x`` of ``table`` to ``<prefix>_x``."""
    out = {}
    for column in TPCH_TABLES[table].columns:
        _, _, rest = column.name.partition("_")
        out[column.name] = f"{prefix}_{rest}"
    return out


def single_row_join(
    left: PhysicalPlan,
    right_single: PhysicalPlan,
    left_names: list[str],
    right_names: list[str],
) -> HashJoin:
    """Join every left row with the unique row of ``right_single``.

    This is the decorrelation device for scalar subqueries (Q11, Q15, Q22):
    both sides gain a constant key column and hash-join on it; the
    single-row side is the build side.
    """
    left_proj = Project(left, [(n, col(n)) for n in left_names] + [("__kl", lit(1))])
    right_proj = Project(
        right_single, [(n, col(n)) for n in right_names] + [("__kr", lit(1))]
    )
    return HashJoin(right_proj, left_proj, ("__kr",), ("__kl",))


def revenue() -> Arith:
    """The ubiquitous ``l_extendedprice * (1 - l_discount)``."""
    return col("l_extendedprice") * (lit(1.0) - col("l_discount"))


# ---------------------------------------------------------------------------


def q1(scale: float = 1.0) -> PhysicalPlan:
    """Pricing summary report."""
    cutoff = date_add_days(_d("1998-12-01"), -90)
    filtered = Select(Scan("lineitem"), col("l_shipdate").le(cutoff))
    agg = Agg(
        filtered,
        keys=[("l_returnflag", col("l_returnflag")), ("l_linestatus", col("l_linestatus"))],
        aggs=[
            ("sum_qty", sum_(col("l_quantity"))),
            ("sum_base_price", sum_(col("l_extendedprice"))),
            ("sum_disc_price", sum_(revenue())),
            ("sum_charge", sum_(revenue() * (lit(1.0) + col("l_tax")))),
            ("avg_qty", avg(col("l_quantity"))),
            ("avg_price", avg(col("l_extendedprice"))),
            ("avg_disc", avg(col("l_discount"))),
            ("count_order", count()),
        ],
    )
    return Sort(agg, [("l_returnflag", True), ("l_linestatus", True)])


def q2(scale: float = 1.0) -> PhysicalPlan:
    """Minimum cost supplier.  Inner block: min supply cost per part in EUROPE."""

    def europe_suppliers(prefix: str | None) -> PhysicalPlan:
        """Suppliers in EUROPE; ``prefix`` renames columns for the inner
        block so the two instances of the join do not clash."""

        def name(base: str) -> str:
            if prefix is None:
                return base
            _, _, rest = base.partition("_")
            return f"{prefix}{base[0]}_{rest}"

        def scan(table: str) -> Scan:
            if prefix is None:
                return Scan(table)
            short = table[0]
            return Scan(table, rename=alias(table, f"{prefix}{short}"))

        region = Select(scan("region"), col(name("r_name")).eq("EUROPE"))
        nations = HashJoin(
            keep(region, [name("r_regionkey")]),
            scan("nation"),
            (name("r_regionkey"),),
            (name("n_regionkey"),),
        )
        return HashJoin(
            keep(nations, [name("n_nationkey"), name("n_name")]),
            scan("supplier"),
            (name("n_nationkey"),),
            (name("s_nationkey"),),
        )

    inner = Agg(
        HashJoin(
            keep(europe_suppliers("i"), ["is_suppkey"]),
            Scan("partsupp", rename=alias("partsupp", "m")),
            ("is_suppkey",),
            ("m_suppkey",),
        ),
        keys=[("m_partkey", col("m_partkey"))],
        aggs=[("min_cost", min_(col("m_supplycost")))],
    )
    parts = Select(
        Scan("part"),
        And(col("p_size").eq(15), Like(col("p_type"), "%BRASS")),
    )
    part_min = HashJoin(
        keep(parts, ["p_partkey", "p_mfgr"]), inner, ("p_partkey",), ("m_partkey",)
    )
    with_ps = HashJoin(
        keep(part_min, ["p_partkey", "p_mfgr", "min_cost"]),
        Scan("partsupp"),
        ("p_partkey", "min_cost"),
        ("ps_partkey", "ps_supplycost"),
    )
    eu = keep(
        europe_suppliers(None),  # plain s_/n_/r_ names for the outer block
        [
            "s_suppkey",
            "s_name",
            "s_address",
            "s_phone",
            "s_acctbal",
            "s_comment",
            "n_name",
        ],
    )
    joined = HashJoin(
        keep(with_ps, ["p_partkey", "p_mfgr", "ps_suppkey"]),
        eu,
        ("ps_suppkey",),
        ("s_suppkey",),
    )
    out = Project(
        joined,
        [
            ("s_acctbal", col("s_acctbal")),
            ("s_name", col("s_name")),
            ("n_name", col("n_name")),
            ("p_partkey", col("p_partkey")),
            ("p_mfgr", col("p_mfgr")),
            ("s_address", col("s_address")),
            ("s_phone", col("s_phone")),
            ("s_comment", col("s_comment")),
        ],
    )
    return Limit(
        Sort(
            out,
            [
                ("s_acctbal", False),
                ("n_name", True),
                ("s_name", True),
                ("p_partkey", True),
            ],
        ),
        100,
    )


def q3(scale: float = 1.0) -> PhysicalPlan:
    """Shipping priority."""
    cutoff = _d("1995-03-15")
    customers = keep(
        Select(Scan("customer"), col("c_mktsegment").eq("BUILDING")), ["c_custkey"]
    )
    orders = Select(Scan("orders"), col("o_orderdate").lt(cutoff))
    co = HashJoin(customers, orders, ("c_custkey",), ("o_custkey",))
    lines = Select(Scan("lineitem"), col("l_shipdate").gt(cutoff))
    col_join = HashJoin(
        keep(co, ["o_orderkey", "o_orderdate", "o_shippriority"]),
        lines,
        ("o_orderkey",),
        ("l_orderkey",),
    )
    agg = Agg(
        col_join,
        keys=[
            ("l_orderkey", col("l_orderkey")),
            ("o_orderdate", col("o_orderdate")),
            ("o_shippriority", col("o_shippriority")),
        ],
        aggs=[("revenue", sum_(revenue()))],
    )
    out = Project(
        agg,
        [
            ("l_orderkey", col("l_orderkey")),
            ("revenue", col("revenue")),
            ("o_orderdate", col("o_orderdate")),
            ("o_shippriority", col("o_shippriority")),
        ],
    )
    return Limit(Sort(out, [("revenue", False), ("o_orderdate", True)]), 10)


def q4(scale: float = 1.0) -> PhysicalPlan:
    """Order priority checking."""
    start = _d("1993-07-01")
    end = date_add_months(start, 3)
    orders = Select(
        Scan("orders"),
        And(col("o_orderdate").ge(start), col("o_orderdate").lt(end)),
    )
    late = keep(
        Select(Scan("lineitem"), col("l_commitdate").lt(col("l_receiptdate"))),
        ["l_orderkey"],
    )
    semi = SemiJoin(orders, late, ("o_orderkey",), ("l_orderkey",))
    agg = Agg(
        semi,
        keys=[("o_orderpriority", col("o_orderpriority"))],
        aggs=[("order_count", count())],
    )
    return Sort(agg, [("o_orderpriority", True)])


def q5(scale: float = 1.0) -> PhysicalPlan:
    """Local supplier volume (ASIA, 1994)."""
    start = _d("1994-01-01")
    end = date_add_years(start, 1)
    region = Select(Scan("region"), col("r_name").eq("ASIA"))
    nations = HashJoin(
        keep(region, ["r_regionkey"]), Scan("nation"), ("r_regionkey",), ("n_regionkey",)
    )
    suppliers = HashJoin(
        keep(nations, ["n_nationkey", "n_name"]),
        Scan("supplier"),
        ("n_nationkey",),
        ("s_nationkey",),
    )
    orders = Select(
        Scan("orders"),
        And(col("o_orderdate").ge(start), col("o_orderdate").lt(end)),
    )
    co = HashJoin(
        keep(Scan("customer"), ["c_custkey", "c_nationkey"]),
        keep(orders, ["o_orderkey", "o_custkey"]),
        ("c_custkey",),
        ("o_custkey",),
    )
    col_join = HashJoin(
        keep(co, ["o_orderkey", "c_nationkey"]),
        keep(
            Scan("lineitem"),
            ["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
        ),
        ("o_orderkey",),
        ("l_orderkey",),
    )
    full = HashJoin(
        keep(suppliers, ["s_suppkey", "s_nationkey", "n_name"]),
        col_join,
        ("s_suppkey", "s_nationkey"),
        ("l_suppkey", "c_nationkey"),
    )
    agg = Agg(full, keys=[("n_name", col("n_name"))], aggs=[("revenue", sum_(revenue()))])
    return Sort(agg, [("revenue", False)])


def q6(scale: float = 1.0) -> PhysicalPlan:
    """Forecasting revenue change."""
    start = _d("1994-01-01")
    end = date_add_years(start, 1)
    filtered = Select(
        Scan("lineitem"),
        And(
            col("l_shipdate").ge(start),
            col("l_shipdate").lt(end),
            Between(col("l_discount"), 0.05, 0.07),
            col("l_quantity").lt(24.0),
        ),
    )
    return Agg(
        filtered,
        keys=[],
        aggs=[("revenue", sum_(col("l_extendedprice") * col("l_discount")))],
    )


def q7(scale: float = 1.0) -> PhysicalPlan:
    """Volume shipping between FRANCE and GERMANY."""
    pair = ("FRANCE", "GERMANY")
    n1 = Select(
        Scan("nation", rename={"n_nationkey": "n1_nationkey", "n_name": "supp_nation",
                               "n_regionkey": "n1_regionkey", "n_comment": "n1_comment"}),
        InList(col("supp_nation"), pair),
    )
    n2 = Select(
        Scan("nation", rename={"n_nationkey": "n2_nationkey", "n_name": "cust_nation",
                               "n_regionkey": "n2_regionkey", "n_comment": "n2_comment"}),
        InList(col("cust_nation"), pair),
    )
    suppliers = HashJoin(
        keep(n1, ["n1_nationkey", "supp_nation"]),
        Scan("supplier"),
        ("n1_nationkey",),
        ("s_nationkey",),
    )
    customers = HashJoin(
        keep(n2, ["n2_nationkey", "cust_nation"]),
        Scan("customer"),
        ("n2_nationkey",),
        ("c_nationkey",),
    )
    orders = HashJoin(
        keep(customers, ["c_custkey", "cust_nation"]),
        keep(Scan("orders"), ["o_orderkey", "o_custkey"]),
        ("c_custkey",),
        ("o_custkey",),
    )
    lines = Select(
        Scan("lineitem"),
        And(col("l_shipdate").ge(_d("1995-01-01")), col("l_shipdate").le(_d("1996-12-31"))),
    )
    ol = HashJoin(
        keep(orders, ["o_orderkey", "cust_nation"]),
        keep(
            lines,
            ["l_orderkey", "l_suppkey", "l_shipdate", "l_extendedprice", "l_discount"],
        ),
        ("o_orderkey",),
        ("l_orderkey",),
    )
    full = HashJoin(
        keep(suppliers, ["s_suppkey", "supp_nation"]),
        ol,
        ("s_suppkey",),
        ("l_suppkey",),
    )
    matched = Select(
        full,
        Or(
            And(col("supp_nation").eq(pair[0]), col("cust_nation").eq(pair[1])),
            And(col("supp_nation").eq(pair[1]), col("cust_nation").eq(pair[0])),
        ),
    )
    agg = Agg(
        matched,
        keys=[
            ("supp_nation", col("supp_nation")),
            ("cust_nation", col("cust_nation")),
            ("l_year", ExtractYear(col("l_shipdate"))),
        ],
        aggs=[("volume", sum_(revenue()))],
    )
    return Sort(agg, [("supp_nation", True), ("cust_nation", True), ("l_year", True)])


def q8(scale: float = 1.0) -> PhysicalPlan:
    """National market share (BRAZIL in AMERICA, ECONOMY ANODIZED STEEL)."""
    parts = keep(
        Select(Scan("part"), col("p_type").eq("ECONOMY ANODIZED STEEL")), ["p_partkey"]
    )
    part_lines = HashJoin(
        parts,
        keep(
            Scan("lineitem"),
            ["l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount"],
        ),
        ("p_partkey",),
        ("l_partkey",),
    )
    orders = Select(
        Scan("orders"),
        And(col("o_orderdate").ge(_d("1995-01-01")), col("o_orderdate").le(_d("1996-12-31"))),
    )
    plo = HashJoin(
        keep(part_lines, ["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"]),
        keep(orders, ["o_orderkey", "o_custkey", "o_orderdate"]),
        ("l_orderkey",),
        ("o_orderkey",),
    )
    america = Select(Scan("region"), col("r_name").eq("AMERICA"))
    am_nations = HashJoin(
        keep(america, ["r_regionkey"]), Scan("nation"), ("r_regionkey",), ("n_regionkey",)
    )
    am_customers = HashJoin(
        keep(am_nations, ["n_nationkey"]),
        keep(Scan("customer"), ["c_custkey", "c_nationkey"]),
        ("n_nationkey",),
        ("c_nationkey",),
    )
    ploc = HashJoin(
        keep(am_customers, ["c_custkey"]), plo, ("c_custkey",), ("o_custkey",)
    )
    supp_nation = HashJoin(
        keep(Scan("nation", rename=alias("nation", "sn")), ["sn_nationkey", "sn_name"]),
        keep(Scan("supplier"), ["s_suppkey", "s_nationkey"]),
        ("sn_nationkey",),
        ("s_nationkey",),
    )
    full = HashJoin(
        keep(supp_nation, ["s_suppkey", "sn_name"]),
        ploc,
        ("s_suppkey",),
        ("l_suppkey",),
    )
    agg = Agg(
        full,
        keys=[("o_year", ExtractYear(col("o_orderdate")))],
        aggs=[
            (
                "brazil_volume",
                sum_(Case(col("sn_name").eq("BRAZIL"), revenue(), lit(0.0))),
            ),
            ("total_volume", sum_(revenue())),
        ],
    )
    out = Project(
        agg,
        [
            ("o_year", col("o_year")),
            ("mkt_share", col("brazil_volume") / col("total_volume")),
        ],
    )
    return Sort(out, [("o_year", True)])


def q9(scale: float = 1.0) -> PhysicalPlan:
    """Product type profit measure (parts containing 'green')."""
    parts = keep(Select(Scan("part"), Like(col("p_name"), "%green%")), ["p_partkey"])
    part_lines = HashJoin(
        parts,
        keep(
            Scan("lineitem"),
            [
                "l_orderkey",
                "l_partkey",
                "l_suppkey",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
            ],
        ),
        ("p_partkey",),
        ("l_partkey",),
    )
    with_ps = HashJoin(
        keep(Scan("partsupp"), ["ps_partkey", "ps_suppkey", "ps_supplycost"]),
        part_lines,
        ("ps_partkey", "ps_suppkey"),
        ("l_partkey", "l_suppkey"),
    )
    with_supp = HashJoin(
        keep(Scan("supplier"), ["s_suppkey", "s_nationkey"]),
        with_ps,
        ("s_suppkey",),
        ("l_suppkey",),
    )
    with_nation = HashJoin(
        keep(Scan("nation"), ["n_nationkey", "n_name"]),
        with_supp,
        ("n_nationkey",),
        ("s_nationkey",),
    )
    full = HashJoin(
        keep(
            with_nation,
            [
                "n_name",
                "l_orderkey",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
                "ps_supplycost",
            ],
        ),
        keep(Scan("orders"), ["o_orderkey", "o_orderdate"]),
        ("l_orderkey",),
        ("o_orderkey",),
    )
    profit = revenue() - col("ps_supplycost") * col("l_quantity")
    agg = Agg(
        full,
        keys=[("nation", col("n_name")), ("o_year", ExtractYear(col("o_orderdate")))],
        aggs=[("sum_profit", sum_(profit))],
    )
    return Sort(agg, [("nation", True), ("o_year", False)])


def q10(scale: float = 1.0) -> PhysicalPlan:
    """Returned item reporting."""
    start = _d("1993-10-01")
    end = date_add_months(start, 3)
    orders = Select(
        Scan("orders"),
        And(col("o_orderdate").ge(start), col("o_orderdate").lt(end)),
    )
    returned = Select(Scan("lineitem"), col("l_returnflag").eq("R"))
    ol = HashJoin(
        keep(orders, ["o_orderkey", "o_custkey"]),
        keep(returned, ["l_orderkey", "l_extendedprice", "l_discount"]),
        ("o_orderkey",),
        ("l_orderkey",),
    )
    customers = HashJoin(
        keep(Scan("nation"), ["n_nationkey", "n_name"]),
        Scan("customer"),
        ("n_nationkey",),
        ("c_nationkey",),
    )
    full = HashJoin(
        keep(
            customers,
            [
                "c_custkey",
                "c_name",
                "c_acctbal",
                "c_phone",
                "n_name",
                "c_address",
                "c_comment",
            ],
        ),
        keep(ol, ["o_custkey", "l_extendedprice", "l_discount"]),
        ("c_custkey",),
        ("o_custkey",),
    )
    agg = Agg(
        full,
        keys=[
            ("c_custkey", col("c_custkey")),
            ("c_name", col("c_name")),
            ("c_acctbal", col("c_acctbal")),
            ("c_phone", col("c_phone")),
            ("n_name", col("n_name")),
            ("c_address", col("c_address")),
            ("c_comment", col("c_comment")),
        ],
        aggs=[("revenue", sum_(revenue()))],
    )
    out = Project(
        agg,
        [
            ("c_custkey", col("c_custkey")),
            ("c_name", col("c_name")),
            ("revenue", col("revenue")),
            ("c_acctbal", col("c_acctbal")),
            ("n_name", col("n_name")),
            ("c_address", col("c_address")),
            ("c_phone", col("c_phone")),
            ("c_comment", col("c_comment")),
        ],
    )
    return Limit(Sort(out, [("revenue", False)]), 20)


def q11(scale: float = 1.0) -> PhysicalPlan:
    """Important stock identification (GERMANY)."""
    fraction = 0.0001 / scale

    def german_partsupp() -> PhysicalPlan:
        nation = Select(Scan("nation"), col("n_name").eq("GERMANY"))
        suppliers = HashJoin(
            keep(nation, ["n_nationkey"]),
            keep(Scan("supplier"), ["s_suppkey", "s_nationkey"]),
            ("n_nationkey",),
            ("s_nationkey",),
        )
        return HashJoin(
            keep(suppliers, ["s_suppkey"]),
            keep(Scan("partsupp"), ["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"]),
            ("s_suppkey",),
            ("ps_suppkey",),
        )

    value_expr = col("ps_supplycost") * col("ps_availqty")
    groups = Agg(
        german_partsupp(),
        keys=[("ps_partkey", col("ps_partkey"))],
        aggs=[("value", sum_(value_expr))],
    )
    total = Agg(german_partsupp(), keys=[], aggs=[("total_value", sum_(value_expr))])
    joined = single_row_join(groups, total, ["ps_partkey", "value"], ["total_value"])
    filtered = Select(joined, col("value").gt(col("total_value") * lit(fraction)))
    out = Project(filtered, [("ps_partkey", col("ps_partkey")), ("value", col("value"))])
    return Sort(out, [("value", False)])


def q12(scale: float = 1.0) -> PhysicalPlan:
    """Shipping modes and order priority."""
    start = _d("1994-01-01")
    end = date_add_years(start, 1)
    lines = Select(
        Scan("lineitem"),
        And(
            InList(col("l_shipmode"), ("MAIL", "SHIP")),
            col("l_commitdate").lt(col("l_receiptdate")),
            col("l_shipdate").lt(col("l_commitdate")),
            col("l_receiptdate").ge(start),
            col("l_receiptdate").lt(end),
        ),
    )
    joined = HashJoin(
        keep(lines, ["l_orderkey", "l_shipmode"]),
        keep(Scan("orders"), ["o_orderkey", "o_orderpriority"]),
        ("l_orderkey",),
        ("o_orderkey",),
    )
    urgent = InList(col("o_orderpriority"), ("1-URGENT", "2-HIGH"))
    agg = Agg(
        joined,
        keys=[("l_shipmode", col("l_shipmode"))],
        aggs=[
            ("high_line_count", sum_(Case(urgent, lit(1), lit(0)))),
            ("low_line_count", sum_(Case(Not(urgent), lit(1), lit(0)))),
        ],
    )
    return Sort(agg, [("l_shipmode", True)])


def q13(scale: float = 1.0) -> PhysicalPlan:
    """Customer distribution (left outer join with comment filter)."""
    orders = Select(
        Scan("orders"), Not(Like(col("o_comment"), "%special%requests%"))
    )
    outer = LeftOuterJoin(
        keep(Scan("customer"), ["c_custkey"]),
        keep(orders, ["o_orderkey", "o_custkey"]),
        ("c_custkey",),
        ("o_custkey",),
    )
    per_customer = Agg(
        outer,
        keys=[("c_custkey", col("c_custkey"))],
        aggs=[("c_count", count_col(col("o_orderkey")))],
    )
    distribution = Agg(
        per_customer,
        keys=[("c_count", col("c_count"))],
        aggs=[("custdist", count())],
    )
    return Sort(distribution, [("custdist", False), ("c_count", False)])


def q13_groupjoin(scale: float = 1.0) -> PhysicalPlan:
    """Q13 using the GroupJoin extension operator (HyPer-style).

    Replaces the LeftOuterJoin + per-customer Agg pair with one operator
    that aggregates matching orders per customer directly -- no join
    product is ever materialized.  Results are identical to :func:`q13`.
    """
    from repro.plan.physical import GroupJoin

    orders = Select(
        Scan("orders"), Not(Like(col("o_comment"), "%special%requests%"))
    )
    per_customer = GroupJoin(
        keep(Scan("customer"), ["c_custkey"]),
        keep(orders, ["o_orderkey", "o_custkey"]),
        ("c_custkey",),
        ("o_custkey",),
        [("c_count", count_col(col("o_orderkey")))],
    )
    distribution = Agg(
        per_customer,
        keys=[("c_count", col("c_count"))],
        aggs=[("custdist", count())],
    )
    return Sort(distribution, [("custdist", False), ("c_count", False)])


def q14(scale: float = 1.0) -> PhysicalPlan:
    """Promotion effect."""
    start = _d("1995-09-01")
    end = date_add_months(start, 1)
    lines = Select(
        Scan("lineitem"),
        And(col("l_shipdate").ge(start), col("l_shipdate").lt(end)),
    )
    joined = HashJoin(
        keep(lines, ["l_partkey", "l_extendedprice", "l_discount"]),
        keep(Scan("part"), ["p_partkey", "p_type"]),
        ("l_partkey",),
        ("p_partkey",),
    )
    agg = Agg(
        joined,
        keys=[],
        aggs=[
            ("promo", sum_(Case(Like(col("p_type"), "PROMO%"), revenue(), lit(0.0)))),
            ("total", sum_(revenue())),
        ],
    )
    return Project(
        agg, [("promo_revenue", lit(100.0) * col("promo") / col("total"))]
    )


def q15(scale: float = 1.0) -> PhysicalPlan:
    """Top supplier (revenue view + max)."""
    start = _d("1996-01-01")
    end = date_add_months(start, 3)
    lines = Select(
        Scan("lineitem"),
        And(col("l_shipdate").ge(start), col("l_shipdate").lt(end)),
    )
    view = Agg(
        lines,
        keys=[("supplier_no", col("l_suppkey"))],
        aggs=[("total_revenue", sum_(revenue()))],
    )
    top = Agg(view, keys=[], aggs=[("max_revenue", max_(col("total_revenue")))])
    joined = single_row_join(view, top, ["supplier_no", "total_revenue"], ["max_revenue"])
    best = Select(joined, col("total_revenue").eq(col("max_revenue")))
    with_supplier = HashJoin(
        keep(best, ["supplier_no", "total_revenue"]),
        keep(Scan("supplier"), ["s_suppkey", "s_name", "s_address", "s_phone"]),
        ("supplier_no",),
        ("s_suppkey",),
    )
    out = Project(
        with_supplier,
        [
            ("s_suppkey", col("s_suppkey")),
            ("s_name", col("s_name")),
            ("s_address", col("s_address")),
            ("s_phone", col("s_phone")),
            ("total_revenue", col("total_revenue")),
        ],
    )
    return Sort(out, [("s_suppkey", True)])


def q16(scale: float = 1.0) -> PhysicalPlan:
    """Parts/supplier relationship."""
    parts = Select(
        Scan("part"),
        And(
            col("p_brand").ne("Brand#45"),
            Not(Like(col("p_type"), "MEDIUM POLISHED%")),
            InList(col("p_size"), (49, 14, 23, 45, 19, 3, 36, 9)),
        ),
    )
    joined = HashJoin(
        keep(parts, ["p_partkey", "p_brand", "p_type", "p_size"]),
        keep(Scan("partsupp"), ["ps_partkey", "ps_suppkey"]),
        ("p_partkey",),
        ("ps_partkey",),
    )
    complainers = keep(
        Select(Scan("supplier"), Like(col("s_comment"), "%Customer%Complaints%")),
        ["s_suppkey"],
    )
    good = AntiJoin(joined, complainers, ("ps_suppkey",), ("s_suppkey",))
    agg = Agg(
        good,
        keys=[
            ("p_brand", col("p_brand")),
            ("p_type", col("p_type")),
            ("p_size", col("p_size")),
        ],
        aggs=[("supplier_cnt", count_distinct(col("ps_suppkey")))],
    )
    return Sort(
        agg,
        [("supplier_cnt", False), ("p_brand", True), ("p_type", True), ("p_size", True)],
    )


def q17(scale: float = 1.0) -> PhysicalPlan:
    """Small-quantity-order revenue."""
    averages = Agg(
        Scan("lineitem"),
        keys=[("a_partkey", col("l_partkey"))],
        aggs=[("avg_qty", avg(col("l_quantity")))],
    )
    parts = keep(
        Select(
            Scan("part"),
            And(col("p_brand").eq("Brand#23"), col("p_container").eq("MED BOX")),
        ),
        ["p_partkey"],
    )
    part_lines = HashJoin(
        parts,
        keep(Scan("lineitem"), ["l_partkey", "l_quantity", "l_extendedprice"]),
        ("p_partkey",),
        ("l_partkey",),
    )
    with_avg = HashJoin(
        keep(part_lines, ["l_partkey", "l_quantity", "l_extendedprice"]),
        averages,
        ("l_partkey",),
        ("a_partkey",),
    )
    small = Select(with_avg, col("l_quantity").lt(lit(0.2) * col("avg_qty")))
    total = Agg(small, keys=[], aggs=[("total_price", sum_(col("l_extendedprice")))])
    return Project(total, [("avg_yearly", col("total_price") / lit(7.0))])


def q18(scale: float = 1.0) -> PhysicalPlan:
    """Large volume customer."""
    big = Select(
        Agg(
            Scan("lineitem"),
            keys=[("b_orderkey", col("l_orderkey"))],
            aggs=[("b_qty", sum_(col("l_quantity")))],
        ),
        col("b_qty").gt(300.0),
    )
    orders = HashJoin(
        keep(big, ["b_orderkey"]),
        keep(Scan("orders"), ["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"]),
        ("b_orderkey",),
        ("o_orderkey",),
    )
    with_customer = HashJoin(
        keep(orders, ["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"]),
        keep(Scan("customer"), ["c_custkey", "c_name"]),
        ("o_custkey",),
        ("c_custkey",),
    )
    full = HashJoin(
        keep(
            with_customer,
            ["c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"],
        ),
        keep(Scan("lineitem"), ["l_orderkey", "l_quantity"]),
        ("o_orderkey",),
        ("l_orderkey",),
    )
    agg = Agg(
        full,
        keys=[
            ("c_name", col("c_name")),
            ("c_custkey", col("c_custkey")),
            ("o_orderkey", col("o_orderkey")),
            ("o_orderdate", col("o_orderdate")),
            ("o_totalprice", col("o_totalprice")),
        ],
        aggs=[("sum_qty", sum_(col("l_quantity")))],
    )
    return Limit(Sort(agg, [("o_totalprice", False), ("o_orderdate", True)]), 100)


def q19(scale: float = 1.0) -> PhysicalPlan:
    """Discounted revenue (three OR branches)."""
    lines = Select(
        Scan("lineitem"),
        And(
            InList(col("l_shipmode"), ("AIR", "AIR REG")),
            col("l_shipinstruct").eq("DELIVER IN PERSON"),
        ),
    )
    joined = HashJoin(
        keep(lines, ["l_partkey", "l_quantity", "l_extendedprice", "l_discount"]),
        keep(Scan("part"), ["p_partkey", "p_brand", "p_size", "p_container"]),
        ("l_partkey",),
        ("p_partkey",),
    )
    branch1 = And(
        col("p_brand").eq("Brand#12"),
        InList(col("p_container"), ("SM CASE", "SM BOX", "SM PACK", "SM PKG")),
        Between(col("l_quantity"), 1.0, 11.0),
        Between(col("p_size"), 1, 5),
    )
    branch2 = And(
        col("p_brand").eq("Brand#23"),
        InList(col("p_container"), ("MED BAG", "MED BOX", "MED PKG", "MED PACK")),
        Between(col("l_quantity"), 10.0, 20.0),
        Between(col("p_size"), 1, 10),
    )
    branch3 = And(
        col("p_brand").eq("Brand#34"),
        InList(col("p_container"), ("LG CASE", "LG BOX", "LG PACK", "LG PKG")),
        Between(col("l_quantity"), 20.0, 30.0),
        Between(col("p_size"), 1, 15),
    )
    matched = Select(joined, Or(branch1, branch2, branch3))
    return Agg(matched, keys=[], aggs=[("revenue", sum_(revenue()))])


def q20(scale: float = 1.0) -> PhysicalPlan:
    """Potential part promotion (CANADA, forest parts, 1994)."""
    start = _d("1994-01-01")
    end = date_add_years(start, 1)
    forest_parts = keep(
        Select(Scan("part"), Like(col("p_name"), "forest%")), ["p_partkey"]
    )
    shipped = Agg(
        Select(
            Scan("lineitem"),
            And(col("l_shipdate").ge(start), col("l_shipdate").lt(end)),
        ),
        keys=[("g_partkey", col("l_partkey")), ("g_suppkey", col("l_suppkey"))],
        aggs=[("qty_sum", sum_(col("l_quantity")))],
    )
    half = Project(
        shipped,
        [
            ("g_partkey", col("g_partkey")),
            ("g_suppkey", col("g_suppkey")),
            ("half_qty", lit(0.5) * col("qty_sum")),
        ],
    )
    candidate_ps = SemiJoin(
        keep(Scan("partsupp"), ["ps_partkey", "ps_suppkey", "ps_availqty"]),
        forest_parts,
        ("ps_partkey",),
        ("p_partkey",),
    )
    with_half = HashJoin(
        half, candidate_ps, ("g_partkey", "g_suppkey"), ("ps_partkey", "ps_suppkey")
    )
    qualified = keep(
        Select(with_half, col("ps_availqty").gt(col("half_qty"))), ["ps_suppkey"]
    )
    canada_suppliers = HashJoin(
        keep(Select(Scan("nation"), col("n_name").eq("CANADA")), ["n_nationkey"]),
        Scan("supplier"),
        ("n_nationkey",),
        ("s_nationkey",),
    )
    final = SemiJoin(canada_suppliers, qualified, ("s_suppkey",), ("ps_suppkey",))
    out = Project(final, [("s_name", col("s_name")), ("s_address", col("s_address"))])
    return Sort(out, [("s_name", True)])


def q21(scale: float = 1.0) -> PhysicalPlan:
    """Suppliers who kept orders waiting (SAUDI ARABIA)."""
    supplier_counts = Agg(
        Scan("lineitem"),
        keys=[("k1_orderkey", col("l_orderkey"))],
        aggs=[("nsupp", count_distinct(col("l_suppkey")))],
    )
    late_counts = Agg(
        Select(Scan("lineitem", rename=alias("lineitem", "x")),
               col("x_receiptdate").gt(col("x_commitdate"))),
        keys=[("k2_orderkey", col("x_orderkey"))],
        aggs=[("nlate", count_distinct(col("x_suppkey")))],
    )
    saudi_suppliers = HashJoin(
        keep(Select(Scan("nation"), col("n_name").eq("SAUDI ARABIA")), ["n_nationkey"]),
        keep(Scan("supplier"), ["s_suppkey", "s_name", "s_nationkey"]),
        ("n_nationkey",),
        ("s_nationkey",),
    )
    late_lines = keep(
        Select(Scan("lineitem"), col("l_receiptdate").gt(col("l_commitdate"))),
        ["l_orderkey", "l_suppkey"],
    )
    sl = HashJoin(
        keep(saudi_suppliers, ["s_suppkey", "s_name"]),
        late_lines,
        ("s_suppkey",),
        ("l_suppkey",),
    )
    f_orders = keep(
        Select(Scan("orders"), col("o_orderstatus").eq("F")), ["o_orderkey"]
    )
    slo = HashJoin(
        keep(sl, ["s_name", "l_orderkey"]), f_orders, ("l_orderkey",), ("o_orderkey",)
    )
    with_counts = HashJoin(
        keep(slo, ["s_name", "l_orderkey"]),
        supplier_counts,
        ("l_orderkey",),
        ("k1_orderkey",),
    )
    multi_supplier = Select(with_counts, col("nsupp").gt(1))
    with_late = HashJoin(
        keep(multi_supplier, ["s_name", "l_orderkey"]),
        late_counts,
        ("l_orderkey",),
        ("k2_orderkey",),
    )
    # l1's supplier is late by construction, so "no *other* supplier was
    # late" is exactly "the order has one late supplier".
    lonely_late = Select(with_late, col("nlate").eq(1))
    agg = Agg(lonely_late, keys=[("s_name", col("s_name"))], aggs=[("numwait", count())])
    return Limit(Sort(agg, [("numwait", False), ("s_name", True)]), 100)


def q22(scale: float = 1.0) -> PhysicalPlan:
    """Global sales opportunity."""
    codes = ("13", "31", "23", "29", "30", "18", "17")
    code_expr = Substring(col("c_phone"), 1, 2)
    candidates = Select(Scan("customer"), InList(code_expr, codes))
    average = Agg(
        Select(
            Scan("customer"),
            And(InList(code_expr, codes), col("c_acctbal").gt(0.0)),
        ),
        keys=[],
        aggs=[("avg_bal", avg(col("c_acctbal")))],
    )
    no_orders = AntiJoin(
        keep(candidates, ["c_custkey", "c_phone", "c_acctbal"]),
        keep(Scan("orders"), ["o_custkey"]),
        ("c_custkey",),
        ("o_custkey",),
    )
    joined = single_row_join(
        no_orders, average, ["c_custkey", "c_phone", "c_acctbal"], ["avg_bal"]
    )
    wealthy = Select(joined, col("c_acctbal").gt(col("avg_bal")))
    agg = Agg(
        wealthy,
        keys=[("cntrycode", Substring(col("c_phone"), 1, 2))],
        aggs=[("numcust", count()), ("totacctbal", sum_(col("c_acctbal")))],
    )
    return Sort(agg, [("cntrycode", True)])


QUERIES: dict[int, Callable[..., PhysicalPlan]] = {
    1: q1, 2: q2, 3: q3, 4: q4, 5: q5, 6: q6, 7: q7, 8: q8, 9: q9, 10: q10,
    11: q11, 12: q12, 13: q13, 14: q14, 15: q15, 16: q16, 17: q17, 18: q18,
    19: q19, 20: q20, 21: q21, 22: q22,
}


def query_plan(number: int, scale: float = 1.0) -> PhysicalPlan:
    """The physical plan for TPC-H query ``number`` (1-22)."""
    try:
        builder = QUERIES[number]
    except KeyError:
        raise KeyError(f"TPC-H queries are numbered 1..22, got {number}") from None
    return builder(scale)
