"""Bottom-up type inference over residual programs, checked against hints.

``ir.Assign.ctype`` defaults to ``"long"``; the Python target never reads
it, but the C emitter renders it as the declaration type -- so a staged
string (or double) bound without an explicit hint silently miscompiles in
C.  This pass reconstructs types from the leaves (constants, intrinsic
signatures, operators) and flags every hint the inference contradicts.

Inference is deliberately partial: opaque values (subscripts into runtime
collections, unknown helpers) type as *unknown* and are never flagged.
``"void*"`` declarations are opaque-pointer declarations and accept
anything; ``bool``/``long`` are mutually compatible (C integers).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.walker import AnalysisPass, Diagnostic
from repro.staging import ir

# Result C types of the intrinsics both emitters know.  ``None`` marks an
# opaque/unknown result; "void" marks statement-position helpers.
INTRINSIC_RESULT: dict[str, Optional[str]] = {
    "len": "long",
    "to_float": "double",
    "to_int": "long",
    "hash_str": "long",
    "hash_int": "long",
    "abs": "long",
    "min2": None,
    "max2": None,
    "str_startswith": "bool",
    "str_endswith": "bool",
    "str_contains": "bool",
    "str_slice": "char*",
    "str_concat": "char*",
    "str_eq": "bool",
    "alloc": "void*",
    "list_new": "void*",
    "list_append": "void",
    "list_len": "long",
    "list_extend": "void",
    "list_head": "void*",
    "dict_new": "void*",
    "dict_get": None,
    "dict_contains": "bool",
    "dict_items": "void*",
    "dict_values": "void*",
    "dict_keys": "void*",
    "dict_len": "long",
    "db_column": "void*",
    "db_column_vec": None,  # vec_long / vec_double / ... depending on column
    "db_size": "long",
    "db_index": "void*",
    "db_unique_index": "void*",
    "db_dictionary": "void*",
    "db_date_index": "void*",
    "db_encoded": "void*",
    "db_dict_strings": "void*",
    "db_date_candidates": "void*",
    "db_date_runs": "void*",
    "index_lookup": "void*",
    "index_lookup_unique": "long",
    "set_new": "void*",
    "set_new1": "void*",
    "set_add": "void",
    "set_contains": "bool",
    "set_len": "long",
    "tuple1": "void*",
    "not_none": "bool",
    "is_none": "bool",
    "out_append": "void",
    # runtime-module helpers routed through ``rt.``
    "sort_rows": "void",
    "topk_rows": "void*",
    "argsort_columns": "void*",
    "map_full": "void",
    "scan_tick": "void",
    # observability: wall-clock read bracketed around instrumented operators
    "obs_now": "double",
    # batch-vectorized backend kernels (``rt.v_*``); elementwise arithmetic
    # kernels are polymorphic over the element type, comparisons and boolean
    # combinators always produce mask vectors
    "v_add": None,
    "v_sub": None,
    "v_mul": None,
    "v_div": "vec_double",
    "v_floordiv": "vec_long",
    "v_mod": "vec_long",
    "v_eq": "vec_bool",
    "v_ne": "vec_bool",
    "v_lt": "vec_bool",
    "v_le": "vec_bool",
    "v_gt": "vec_bool",
    "v_ge": "vec_bool",
    "v_and": "vec_bool",
    "v_or": "vec_bool",
    "v_not": "vec_bool",
    "v_neg": None,
    "v_mask_index": "void*",
    "v_take": None,
    "v_len": "long",
    "v_tolist": "void*",
    "v_group": "void*",
    "v_group_sum": "void*",
    "v_group_fsum": "void*",
    "v_group_count": "void*",
    "v_group_count_nn": "void*",
    "v_group_min": "void*",
    "v_group_max": "void*",
    "v_sum": None,
    "v_fsum": "double",
    "v_count_nn": "long",
    "v_min": None,
    "v_max": None,
}

_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}
_NUMERIC = {"long", "bool", "double"}


def _const_type(value: object) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "long"
    if isinstance(value, float):
        return "double"
    if isinstance(value, str):
        return "char*"
    return "void*"  # None, embedded tuples, ...


def infer_expr(expr: ir.Expr, env: dict[str, Optional[str]]) -> Optional[str]:
    """Infer an expression's C type bottom-up; ``None`` when unknown."""
    if isinstance(expr, ir.Const):
        return _const_type(expr.value)
    if isinstance(expr, ir.Sym):
        return env.get(expr.name)
    if isinstance(expr, ir.Bin):
        lhs = infer_expr(expr.lhs, env)
        rhs = infer_expr(expr.rhs, env)
        op = expr.op
        if op in _COMPARISONS or op in ("and", "or"):
            return "bool"
        if op == "/":
            return "double"
        if op in ("//", "%"):
            if lhs in ("long", "bool") and rhs in ("long", "bool"):
                return "long"
            return None
        # + - * : numeric promotion; string + never appears (str_concat does)
        if lhs == "double" or rhs == "double":
            return "double"
        if lhs in ("long", "bool") and rhs in ("long", "bool"):
            return "long"
        if lhs == "char*" and rhs == "char*" and op == "+":
            return "char*"
        return None
    if isinstance(expr, ir.Un):
        if expr.op == "not":
            return "bool"
        return infer_expr(expr.operand, env)
    if isinstance(expr, ir.Call):
        result = INTRINSIC_RESULT.get(expr.fn)
        if result == "void":
            return None
        if result is None and expr.fn in ("min2", "max2") and len(expr.args) == 2:
            a = infer_expr(expr.args[0], env)
            b = infer_expr(expr.args[1], env)
            if a is not None and a == b:
                return a
        return result
    if isinstance(expr, ir.Index):
        return None  # element types of runtime collections are opaque
    if isinstance(expr, (ir.TupleExpr, ir.ListExpr)):
        return "void*"
    return None


def compatible(declared: str, inferred: Optional[str]) -> bool:
    """Whether a declaration type can carry a value of the inferred type."""
    if inferred is None or declared == inferred:
        return True
    if declared in ("void*",):
        return True  # opaque pointer declarations accept anything
    if declared in ("long", "int", "bool") and inferred in ("long", "bool"):
        return True
    return False


class TypeChecker(AnalysisPass):
    """Flags ``ctype`` hints that contradict bottom-up inference."""

    name = "typecheck"

    def run(self, functions: Sequence[ir.Function]) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for fn in functions:
            # parameters are opaque runtime values
            env: dict[str, Optional[str]] = {p: None for p in fn.params}
            declared: dict[str, str] = {}
            self._check_block(fn.name, fn.body, env, declared, out)
        return out

    def _check_block(
        self,
        fn_name: str,
        block: ir.Block,
        env: dict[str, Optional[str]],
        declared: dict[str, str],
        out: list[Diagnostic],
    ) -> None:
        for stmt in block:
            if isinstance(stmt, ir.Assign):
                inferred = infer_expr(stmt.expr, env)
                if not compatible(stmt.ctype, inferred):
                    out.append(self.diag(
                        "ctype-mismatch",
                        f"{stmt.name!r} declared {stmt.ctype!r} but its "
                        f"initializer has type {inferred!r} -- the C emitter "
                        "would declare the wrong type",
                        fn_name,
                        stmt,
                    ))
                declared[stmt.name] = stmt.ctype
                env[stmt.name] = inferred if inferred is not None else (
                    stmt.ctype if stmt.ctype != "void*" else None
                )
            elif isinstance(stmt, ir.Reassign):
                inferred = infer_expr(stmt.expr, env)
                decl = declared.get(stmt.name)
                if decl is not None and not compatible(decl, inferred):
                    out.append(self.diag(
                        "reassign-type",
                        f"{stmt.name!r} declared {decl!r} but reassigned a "
                        f"value of type {inferred!r}",
                        fn_name,
                        stmt,
                    ))
            elif isinstance(stmt, ir.If):
                cond = infer_expr(stmt.cond, env)
                if cond in ("char*", "double"):
                    out.append(self.diag(
                        "cond-type",
                        f"branch condition has type {cond!r}; staged "
                        "conditions must be boolean (or integer) valued",
                        fn_name,
                        stmt,
                    ))
            elif isinstance(stmt, ir.ForRange):
                env[stmt.var] = "long"
            elif isinstance(stmt, ir.ForEach):
                env[stmt.var] = None
            elif isinstance(stmt, ir.NestedFunc):
                for p in stmt.params:
                    env.setdefault(p, None)
            for sub in ir.stmt_blocks(stmt):
                self._check_block(fn_name, sub, env, declared, out)
