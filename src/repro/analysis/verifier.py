"""The IR verifier: structural well-formedness of residual programs.

The staged evaluator emits code in one pass with no checking stage, so any
codegen bug becomes a runtime failure (or a silently wrong answer) in the
residual program.  The verifier restores the guarantee that typed
multi-pass IRs get for free, as pure analysis:

* **def-before-use** -- every :class:`ir.Sym` must refer to a function
  parameter or a name bound by an earlier statement (closures see the whole
  enclosing scope, matching Python's late binding);
* **single assignment** -- :class:`ir.Assign` introduces a fresh name; a
  second static assignment (or shadowing of any visible name) is an error;
* **mutability discipline** -- :class:`ir.Reassign` may only target names
  introduced with ``mutable=True`` (the ``StagedVar`` contract);
* **loop context** -- ``Break``/``Continue`` only inside a loop body, and
  never escaping through a :class:`ir.NestedFunc` boundary;
* **closure capture** -- every free name of a nested function (the
  Section-4.4 ``prepare``/``run`` pair) must be bound in an enclosing
  scope, and closure reassignments must target mutable names (these are
  exactly the names the Python emitter declares ``nonlocal``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.walker import AnalysisPass, Diagnostic
from repro.staging import ir


class _Scope:
    """A lexical scope: name -> mutable flag, chained to the enclosing one."""

    def __init__(self, parent: Optional["_Scope"] = None,
                 params: Sequence[str] = ()) -> None:
        self.parent = parent
        self.names: dict[str, bool] = {p: False for p in params}

    def lookup(self, name: str) -> Optional[bool]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def is_visible(self, name: str) -> bool:
        return self.lookup(name) is not None

    def define(self, name: str, mutable: bool) -> None:
        self.names[name] = mutable


class Verifier(AnalysisPass):
    """Checks every function of a staged program; reports all violations."""

    name = "verifier"

    def run(self, functions: Sequence[ir.Function]) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for fn in functions:
            scope = _Scope(params=fn.params)
            self._check_scope(fn.name, fn.body, scope, nested=False, out=out)
        return out

    # -- scope checking -------------------------------------------------------

    def _check_scope(
        self,
        fn_name: str,
        body: ir.Block,
        scope: _Scope,
        nested: bool,
        out: list[Diagnostic],
    ) -> None:
        """Walk one function scope in program order, then its closures.

        Nested function bodies are deferred until the enclosing scope is
        fully populated: a closure runs only when called, so it legally
        references every name its enclosing scope ever defines (Python's
        late binding).  That is precisely the hoisted ``prepare``/``run``
        situation the Section 4.4 code-motion path produces.
        """
        deferred: list[ir.NestedFunc] = []
        self._check_block(fn_name, body, scope, loop_depth=0, nested=nested,
                          deferred=deferred, out=out)
        for node in deferred:
            child = _Scope(parent=scope, params=node.params)
            self._check_scope(f"{fn_name}.{node.name}", node.body, child,
                              nested=True, out=out)

    def _check_block(
        self,
        fn_name: str,
        block: ir.Block,
        scope: _Scope,
        loop_depth: int,
        nested: bool,
        deferred: list[ir.NestedFunc],
        out: list[Diagnostic],
    ) -> None:
        for stmt in block:
            # 1. every directly-read symbol must already be bound
            for expr in ir.stmt_exprs(stmt):
                for node in ir.walk_expr(expr):
                    if isinstance(node, ir.Sym) and not scope.is_visible(node.name):
                        rule = "closure-capture" if nested else "undefined-sym"
                        what = (
                            "free variable of closure is not bound in any "
                            "enclosing scope"
                            if nested
                            else "symbol used before any definition"
                        )
                        out.append(self.diag(
                            rule,
                            f"{what}: {node.name!r}",
                            fn_name,
                            stmt,
                        ))

            # 2. statement-specific rules
            if isinstance(stmt, ir.Assign):
                self._define(fn_name, stmt, stmt.name, stmt.mutable, scope, out)
            elif isinstance(stmt, ir.Reassign):
                mutable = scope.lookup(stmt.name)
                if mutable is None:
                    out.append(self.diag(
                        "reassign-undefined",
                        f"reassignment of undefined name {stmt.name!r}",
                        fn_name,
                        stmt,
                    ))
                elif not mutable:
                    out.append(self.diag(
                        "reassign-immutable",
                        f"reassignment of immutable name {stmt.name!r} "
                        "(bound without mutable=True)",
                        fn_name,
                        stmt,
                    ))
            elif isinstance(stmt, (ir.Break, ir.Continue)):
                if loop_depth == 0:
                    kind = "break" if isinstance(stmt, ir.Break) else "continue"
                    out.append(self.diag(
                        f"{kind}-outside-loop",
                        f"{kind} statement outside any loop body",
                        fn_name,
                        stmt,
                    ))
            elif isinstance(stmt, ir.NestedFunc):
                self._define(fn_name, stmt, stmt.name, False, scope, out)
                deferred.append(stmt)
                continue  # body checked later, against the complete scope
            elif isinstance(stmt, (ir.ForRange, ir.ForEach)):
                self._define(fn_name, stmt, stmt.var, False, scope, out)

            # 3. recurse into sub-blocks (loops bump the break context)
            inner_depth = loop_depth + (
                1 if isinstance(stmt, (ir.While, ir.ForRange, ir.ForEach)) else 0
            )
            for sub in ir.stmt_blocks(stmt):
                self._check_block(fn_name, sub, scope, inner_depth, nested,
                                  deferred, out)

    def _define(
        self,
        fn_name: str,
        stmt: ir.Stmt,
        name: str,
        mutable: bool,
        scope: _Scope,
        out: list[Diagnostic],
    ) -> None:
        if scope.is_visible(name):
            out.append(self.diag(
                "duplicate-def",
                f"second static binding of name {name!r} "
                "(fresh-name single-assignment discipline violated)",
                fn_name,
                stmt,
            ))
        scope.define(name, mutable)
