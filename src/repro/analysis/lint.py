"""Lint passes: residual-program smells that are not outright errors.

Each pass is independent and composes over the shared walker:

* :class:`UnreachableCode` -- statements following a ``Break``/``Continue``/
  ``Return`` in the same block can never execute;
* :class:`DeadStore` -- a pure, immutable binding whose name is never read
  (the generation pass emitted work the residual program never uses);
* :class:`InfiniteLoop` -- a ``while True`` body with no reachable ``break``
  or ``return`` (staged loops model their condition as internal ``Break``
  guards, so a loop without one can never terminate);
* :class:`HoistSafety` -- effect analysis for the Section-4.4 code-motion
  path: everything emitted *before* the ``run`` closure in a
  ``prepare``/``run`` pair executes ahead of the hot loop, so it must be
  restricted to pure computation, allocation, and database reads -- writes
  to pre-existing state or result output there would reorder observable
  effects;
* :class:`BulkOpInLoop` -- a whole-column vector kernel staged inside a
  residual loop body runs once per iteration instead of once per batch,
  turning the vector backend's O(n) into O(n^2); the batch lowering is
  supposed to keep every ``v_*`` call at statement nesting depth zero;
* :class:`DeadInstrumentation` -- an observability intrinsic (``obs_now``)
  staged inside a hot loop, or a timer bind that is never read: profiling
  overhead the instrument lowering is supposed to keep off the per-row path.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.walker import (
    AnalysisPass,
    Diagnostic,
    Severity,
    iter_stmts,
    used_names,
)
from repro.staging import ir


def default_lint_passes() -> list[AnalysisPass]:
    return [
        UnreachableCode(),
        DeadStore(),
        InfiniteLoop(),
        HoistSafety(),
        BulkOpInLoop(),
        DeadInstrumentation(),
    ]


_TERMINATORS = (ir.Break, ir.Continue, ir.Return)


class UnreachableCode(AnalysisPass):
    """Flags statements after a terminator within one block."""

    name = "lint"

    def run(self, functions: Sequence[ir.Function]) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for fn in functions:
            self._check_block(fn.name, fn.body, out)
        return out

    def _check_block(self, fn_name: str, block: ir.Block,
                     out: list[Diagnostic]) -> None:
        terminated_by: Optional[ir.Stmt] = None
        for stmt in block:
            if terminated_by is not None and not isinstance(stmt, ir.Comment):
                kind = type(terminated_by).__name__.lower()
                out.append(self.diag(
                    "unreachable-code",
                    f"statement is unreachable: the block already "
                    f"terminated with a {kind}",
                    fn_name,
                    stmt,
                    severity=Severity.WARNING,
                ))
            for sub in ir.stmt_blocks(stmt):
                self._check_block(fn_name, sub, out)
            if isinstance(stmt, _TERMINATORS) and terminated_by is None:
                terminated_by = stmt
        return None


def _is_pure(expr: ir.Expr) -> bool:
    """Pure = safe to delete: no helper calls, no subscripts (which may
    fault at run time), only constants/symbols/operators/constructors."""
    if isinstance(expr, (ir.Call, ir.Index)):
        return False
    return all(_is_pure(child) for child in ir.expr_children(expr))


class DeadStore(AnalysisPass):
    """Flags immutable bindings of pure expressions that are never read."""

    name = "lint"

    def run(self, functions: Sequence[ir.Function]) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for fn in functions:
            used = used_names(fn.body)
            for stmt in iter_stmts(fn.body):
                if (
                    isinstance(stmt, ir.Assign)
                    and not stmt.mutable
                    and stmt.name not in used
                    and _is_pure(stmt.expr)
                ):
                    out.append(self.diag(
                        "dead-store",
                        f"{stmt.name!r} is bound to a pure expression but "
                        "never read",
                        fn.name,
                        stmt,
                        severity=Severity.WARNING,
                    ))
        return out


class InfiniteLoop(AnalysisPass):
    """Flags ``While`` bodies with no way out.

    Staged loops are ``while True`` by construction (:class:`ir.While` has
    no condition); every such loop must contain a ``break`` at its own
    nesting level or a ``return`` somewhere in its body.  Breaks belonging
    to *inner* loops do not count, and nested functions are opaque.
    """

    name = "lint"

    def run(self, functions: Sequence[ir.Function]) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for fn in functions:
            for stmt in iter_stmts(fn.body, into_nested=False):
                if isinstance(stmt, ir.While) and not self._has_exit(stmt.body, 0):
                    out.append(self.diag(
                        "infinite-loop",
                        "while-true body contains no reachable break or "
                        "return; the generated loop cannot terminate",
                        fn.name,
                        stmt,
                        severity=Severity.WARNING,
                    ))
        return out

    def _has_exit(self, block: ir.Block, depth: int) -> bool:
        for stmt in block:
            if isinstance(stmt, ir.Break) and depth == 0:
                return True
            if isinstance(stmt, ir.Return):
                return True
            if isinstance(stmt, ir.If):
                if self._has_exit(stmt.then, depth) or self._has_exit(stmt.els, depth):
                    return True
            elif isinstance(stmt, (ir.While, ir.ForRange, ir.ForEach)):
                # inner loops swallow their own breaks; returns still exit
                if self._has_exit(stmt.body, depth + 1):
                    return True
        return False


# -- effect analysis ---------------------------------------------------------

#: Effect classes of call intrinsics, for the hoisting-safety rule.
PURE, ALLOC, READ, WRITE, IO = "pure", "alloc", "read", "write", "io"

CALL_EFFECTS: dict[str, str] = {
    # allocation: creates fresh state, trivially movable ahead of the hot path
    "alloc": ALLOC, "list_new": ALLOC, "dict_new": ALLOC, "set_new": ALLOC,
    "set_new1": ALLOC, "tuple1": ALLOC,
    # database reads: idempotent snapshots of load-time state
    "db_column": READ, "db_column_vec": READ, "db_size": READ, "db_index": READ,
    "db_unique_index": READ, "db_dictionary": READ, "db_date_index": READ,
    "db_encoded": READ, "db_dict_strings": READ, "db_date_candidates": READ,
    "db_date_runs": READ, "index_lookup": READ, "index_lookup_unique": READ,
    # mutation of the first argument
    "list_append": WRITE, "list_extend": WRITE, "set_add": WRITE,
    "sort_rows": WRITE,
    # externally observable effects
    "out_append": IO, "map_full": IO,
    # cooperative budget/fault checkpoint: may raise, must stay in the loop
    "scan_tick": IO,
    # observability clock read: idempotent-for-safety (moving one changes a
    # measurement, never a result), so hoisting analysis treats it as READ
    "obs_now": READ,
}

#: Observability intrinsics the instrument lowering stages.  Bracketing an
#: operator costs two of these per *datapath invocation* (depth zero); one
#: inside a residual loop body would fire per row instead -- dead
#: instrumentation overhead on the hot path.
OBS_CALLS = frozenset({"obs_now"})

_PURE_CALLS = {
    "len", "to_float", "to_int", "hash_str", "hash_int", "abs", "min2",
    "max2", "str_startswith", "str_endswith", "str_contains", "str_slice",
    "str_concat", "str_eq", "dict_get", "dict_contains", "dict_items",
    "dict_values", "dict_keys", "dict_len", "list_len", "list_head",
    "set_contains", "set_len", "not_none", "is_none", "topk_rows",
    "argsort_columns",
}

#: Whole-column kernels of the batch-vectorized backend.  All of them build
#: fresh arrays from their inputs (no argument is mutated, nothing external
#: is observed), so they are PURE for hoisting -- but each call walks an
#: entire column, so :class:`BulkOpInLoop` rejects them inside loop bodies.
VECTOR_KERNEL_CALLS = frozenset({
    "v_add", "v_sub", "v_mul", "v_div", "v_floordiv", "v_mod",
    "v_eq", "v_ne", "v_lt", "v_le", "v_gt", "v_ge",
    "v_and", "v_or", "v_not", "v_neg",
    "v_mask_index", "v_take", "v_len", "v_tolist",
    "v_group", "v_group_sum", "v_group_fsum", "v_group_count",
    "v_group_count_nn", "v_group_min", "v_group_max",
    "v_sum", "v_fsum", "v_count_nn", "v_min", "v_max",
})


def call_effect(fn: str) -> Optional[str]:
    """The effect class of an intrinsic; None when unknown (conservative)."""
    if fn in CALL_EFFECTS:
        return CALL_EFFECTS[fn]
    if fn in _PURE_CALLS or fn in VECTOR_KERNEL_CALLS:
        return PURE
    return None


class HoistSafety(AnalysisPass):
    """Proves the cold path of a ``prepare``/``run`` split is safe to hoist.

    For every function that defines a nested closure at the top level of
    its body (the code-motion shape the driver emits with
    ``split_prepare=True``), each statement *preceding* the closure was
    moved out of the hot path by the generation pass.  The move is safe iff
    those statements only compute, allocate, read the database, or
    initialize state allocated within the same prelude; anything that
    writes pre-existing state or emits output is flagged.
    """

    name = "lint"

    def run(self, functions: Sequence[ir.Function]) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for fn in functions:
            split = next(
                (i for i, s in enumerate(fn.body) if isinstance(s, ir.NestedFunc)),
                None,
            )
            if split is None:
                continue
            local_allocs: set[str] = set()
            for stmt in fn.body[:split]:
                self._check_hoisted(fn.name, stmt, local_allocs, out)
        return out

    def _check_hoisted(
        self,
        fn_name: str,
        stmt: ir.Stmt,
        local_allocs: set[str],
        out: list[Diagnostic],
    ) -> None:
        def flag(message: str) -> None:
            out.append(self.diag(
                "hoist-unsafe",
                message,
                fn_name,
                stmt,
                severity=Severity.WARNING,
            ))

        def check_expr(expr: ir.Expr) -> None:
            for node in ir.walk_expr(expr):
                if isinstance(node, ir.Call):
                    effect = call_effect(node.fn)
                    if effect in (WRITE, IO):
                        target = node.args[0] if node.args else None
                        if (
                            effect == WRITE
                            and isinstance(target, ir.Sym)
                            and target.name in local_allocs
                        ):
                            continue  # initializing freshly allocated state
                        flag(
                            f"hoisted statement calls {node.fn!r}, which "
                            "has observable effects; it must stay on the "
                            "hot path"
                        )
                    elif effect is None:
                        flag(
                            f"hoisted statement calls unknown helper "
                            f"{node.fn!r}; cannot prove the hoist safe"
                        )

        if isinstance(stmt, ir.SetIndex):
            if not (isinstance(stmt.arr, ir.Sym) and stmt.arr.name in local_allocs):
                flag(
                    "hoisted subscript-write targets state that was not "
                    "allocated in the prelude"
                )
        for expr in ir.stmt_exprs(stmt):
            check_expr(expr)
        if isinstance(stmt, ir.Assign):
            if isinstance(stmt.expr, ir.Call) and call_effect(stmt.expr.fn) == ALLOC:
                local_allocs.add(stmt.name)
        for sub in ir.stmt_blocks(stmt):
            for inner in sub:
                self._check_hoisted(fn_name, inner, local_allocs, out)


class BulkOpInLoop(AnalysisPass):
    """Flags whole-column vector kernels staged inside a loop body.

    The vector backend's contract is that every ``v_*`` kernel runs once
    per *batch*: filters compose masks, aggregations factorize keys, and
    the only residual loops left are per-group emission and devectorized
    edges -- whose column views (``v_tolist``) are bound *before* the loop.
    A kernel call that ends up inside a ``for``/``while`` body re-scans a
    full column every iteration, which silently degrades the batch lowering
    from O(n) to O(n^2).  The walk treats nested functions as part of their
    enclosing nesting depth: a hoisted ``run`` closure at depth zero is
    fine, but a kernel inside its scan loop is not.
    """

    name = "lint"

    def run(self, functions: Sequence[ir.Function]) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for fn in functions:
            self._check_block(fn.name, fn.body, False, out)
        return out

    def _check_block(
        self,
        fn_name: str,
        block: ir.Block,
        in_loop: bool,
        out: list[Diagnostic],
    ) -> None:
        for stmt in block:
            if in_loop:
                for expr in ir.stmt_exprs(stmt):
                    for node in ir.walk_expr(expr):
                        if (
                            isinstance(node, ir.Call)
                            and node.fn in VECTOR_KERNEL_CALLS
                        ):
                            out.append(self.diag(
                                "bulk-op-in-loop",
                                f"vector kernel {node.fn!r} is staged inside "
                                "a loop body; whole-column kernels must run "
                                "once per batch, not once per iteration",
                                fn_name,
                                stmt,
                                severity=Severity.WARNING,
                            ))
            entered = in_loop or isinstance(
                stmt, (ir.While, ir.ForRange, ir.ForEach)
            )
            for sub in ir.stmt_blocks(stmt):
                self._check_block(fn_name, sub, entered, out)


class DeadInstrumentation(AnalysisPass):
    """Flags observability intrinsics that cost more than they measure.

    The instrument lowering brackets each operator's datapath with a pair
    of ``obs_now`` reads at statement depth zero (datapaths chain at the
    top level of the generated function), so two legitimate shapes exist:
    a depth-zero timer bind whose value feeds a stats write, and nothing
    else.  Everything outside that is dead instrumentation:

    * an ``obs_now`` staged inside a loop body fires once per *row* --
      clock-read overhead on the hot path that no report ever aggregates;
    * a timer bind whose name is never read -- the generation pass paid
      for a measurement and then dropped it.
    """

    name = "lint"

    def run(self, functions: Sequence[ir.Function]) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for fn in functions:
            self._check_block(fn.name, fn.body, False, out)
            used = used_names(fn.body)
            for stmt in iter_stmts(fn.body):
                if (
                    isinstance(stmt, ir.Assign)
                    and isinstance(stmt.expr, ir.Call)
                    and stmt.expr.fn in OBS_CALLS
                    and stmt.name not in used
                ):
                    out.append(self.diag(
                        "dead-instrumentation",
                        f"timer bind {stmt.name!r} ({stmt.expr.fn}) is never "
                        "read; the measurement is taken and dropped",
                        fn.name,
                        stmt,
                        severity=Severity.WARNING,
                    ))
        return out

    def _check_block(
        self,
        fn_name: str,
        block: ir.Block,
        in_loop: bool,
        out: list[Diagnostic],
    ) -> None:
        for stmt in block:
            if in_loop:
                for expr in ir.stmt_exprs(stmt):
                    for node in ir.walk_expr(expr):
                        if isinstance(node, ir.Call) and node.fn in OBS_CALLS:
                            out.append(self.diag(
                                "dead-instrumentation",
                                f"observability intrinsic {node.fn!r} is "
                                "staged inside a loop body; timers bracket "
                                "whole datapaths, they never run per row",
                                fn_name,
                                stmt,
                                severity=Severity.WARNING,
                            ))
            entered = in_loop or isinstance(
                stmt, (ir.While, ir.ForRange, ir.ForEach)
            )
            for sub in ir.stmt_blocks(stmt):
                self._check_block(fn_name, sub, entered, out)
