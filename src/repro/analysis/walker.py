"""Shared traversal machinery for the analysis-only passes.

The paper's architecture deliberately has *no* transformation passes over
the IR -- the single generation pass is the whole compiler.  What this
module adds is the complementary guarantee: analysis passes that walk the
residual program and *validate* it without ever rewriting a node, turning
the IR into a checked contract between the staged evaluator and the
emitters.

Every pass subclasses :class:`AnalysisPass` and reports
:class:`Diagnostic`s; the walk itself is driven through the hook functions
in :mod:`repro.staging.ir` (``stmt_exprs`` / ``stmt_blocks`` /
``stmt_binds``), so passes never hard-code node shapes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.errors import ReproError
from repro.staging import ir
from repro.staging.pygen import _Writer


class Severity(enum.Enum):
    """Diagnostic severity: errors are contract violations (the program is
    wrong or would miscompile in C); warnings are suspicious-but-runnable."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding: which pass, which rule, where, and what went wrong."""

    pass_name: str
    rule: str
    severity: Severity
    message: str
    function: str
    stmt: Optional[ir.Stmt] = field(default=None, compare=False, repr=False)

    def render(self) -> str:
        return (
            f"[{self.severity}] {self.pass_name}/{self.rule} "
            f"in {self.function}(): {self.message}"
        )


class AnalysisPass:
    """Base class for analysis passes.

    A pass is a callable over a whole program (a list of
    :class:`ir.Function`); it must be read-only with respect to the IR.
    Subclasses set :attr:`name` and implement :meth:`run`.
    """

    name = "pass"

    def run(self, functions: Sequence[ir.Function]) -> list[Diagnostic]:
        raise NotImplementedError

    # -- reporting helper ----------------------------------------------------

    def diag(
        self,
        rule: str,
        message: str,
        function: str,
        stmt: Optional[ir.Stmt] = None,
        severity: Severity = Severity.ERROR,
    ) -> Diagnostic:
        return Diagnostic(
            pass_name=self.name,
            rule=rule,
            severity=severity,
            message=message,
            function=function,
            stmt=stmt,
        )


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------


def iter_stmts(block: ir.Block, *, into_nested: bool = True) -> Iterator[ir.Stmt]:
    """Yield every statement in ``block``, pre-order, including nested blocks.

    ``into_nested=False`` stops at :class:`ir.NestedFunc` boundaries, which
    is what scope-sensitive passes want (a nested function is a separate
    scope and, for loops, a separate break/continue context).
    """
    for stmt in block:
        yield stmt
        if isinstance(stmt, ir.NestedFunc) and not into_nested:
            continue
        for sub in ir.stmt_blocks(stmt):
            yield from iter_stmts(sub, into_nested=into_nested)


def stmt_syms(stmt: ir.Stmt) -> Iterator[ir.Sym]:
    """Every :class:`ir.Sym` read directly by ``stmt`` (not by sub-blocks)."""
    for expr in ir.stmt_exprs(stmt):
        for node in ir.walk_expr(expr):
            if isinstance(node, ir.Sym):
                yield node


def used_names(block: ir.Block) -> set[str]:
    """All names referenced anywhere under ``block`` (crossing nested funcs),
    including :class:`ir.Reassign` targets (a reassignment keeps the
    original binding live)."""
    names: set[str] = set()
    for stmt in iter_stmts(block):
        for sym in stmt_syms(stmt):
            names.add(sym.name)
        if isinstance(stmt, ir.Reassign):
            names.add(stmt.name)
    return names


# ---------------------------------------------------------------------------
# Pass driver
# ---------------------------------------------------------------------------


def run_passes(
    functions: Sequence[ir.Function],
    passes: Sequence[AnalysisPass],
) -> list[Diagnostic]:
    """Run each pass over the program; concatenate their diagnostics."""
    out: list[Diagnostic] = []
    for p in passes:
        out.extend(p.run(functions))
    return out


def default_passes() -> list[AnalysisPass]:
    """The standard pipeline: verify, type-check, then lint."""
    from repro.analysis.lint import default_lint_passes
    from repro.analysis.typecheck import TypeChecker
    from repro.analysis.verifier import Verifier

    return [Verifier(), TypeChecker(), *default_lint_passes()]


def analyze(functions: Sequence[ir.Function]) -> list[Diagnostic]:
    """Run the full default pipeline over a staged program."""
    return run_passes(functions, default_passes())


# ---------------------------------------------------------------------------
# Source excerpts (for IRVerificationError rendering)
# ---------------------------------------------------------------------------


class _TrackingWriter(_Writer):
    """The Python writer, additionally recording each statement's first line."""

    def __init__(self) -> None:
        super().__init__()
        self.stmt_lines: dict[int, int] = {}

    def stmt(self, node: ir.Stmt) -> bool:
        self.stmt_lines.setdefault(id(node), len(self.lines))
        return super().stmt(node)


def render_excerpt(
    functions: Sequence[ir.Function],
    stmt: Optional[ir.Stmt],
    context: int = 3,
) -> str:
    """Render the generated-Python neighbourhood of ``stmt``, marked.

    Falls back to the first function's header when the statement cannot be
    located (e.g. a function-level diagnostic).
    """
    writer = _TrackingWriter()
    for fn in functions:
        writer.line(f"def {fn.name}({', '.join(fn.params)}):")
        writer.block(fn.body)
        writer.line("")
    target = writer.stmt_lines.get(id(stmt)) if stmt is not None else None
    if target is None:
        target = 0
    lo = max(0, target - context)
    hi = min(len(writer.lines), target + context + 1)
    out = []
    for i in range(lo, hi):
        marker = ">>>" if i == target else "   "
        out.append(f"{marker} {i + 1:4d} | {writer.lines[i]}")
    return "\n".join(out)


class IRVerificationError(ReproError):
    """Raised by ``LB2Compiler.compile(verify=True)`` on a bad residual
    program.  Carries the structured diagnostics plus a rendered excerpt of
    the generated source around the first offending statement."""

    code = "E_VERIFY"
    phase = "verify"

    def __init__(
        self,
        diagnostics: Sequence[Diagnostic],
        functions: Sequence[ir.Function],
    ) -> None:
        self.diagnostics = list(diagnostics)
        first = self.diagnostics[0]
        excerpt = render_excerpt(functions, first.stmt)
        lines = [d.render() for d in self.diagnostics[:10]]
        more = len(self.diagnostics) - 10
        if more > 0:
            lines.append(f"... and {more} more")
        super().__init__(
            "generated IR failed verification:\n"
            + "\n".join(lines)
            + "\n--- generated source (excerpt) ---\n"
            + excerpt
        )
