"""A translation-validated IR optimizer over residual programs.

The paper's thesis is that the single generation pass leaves (almost)
nothing on the table -- LegoBase's counter-claim is that analysis-driven
IR transformation is where the wins are.  This module exists to measure
that disagreement instead of asserting it: a small pipeline of classic
dataflow optimizations over the staged IR, consuming the facts of
:mod:`repro.analysis.dataflow`, with every transform checked.

Passes (``Config(opt_level=1)`` runs the first four, ``opt_level=2`` all):

* :class:`CopyPropagation` -- ``x = y`` forwards ``y`` into every use of
  ``x`` (sound unguarded because bindings are fresh names and only
  ``mutable=True`` names are ever reassigned);
* :class:`ConstPropagation` -- ``x = <const>`` forwards the constant and
  folds constant operator trees (Python evaluation semantics, including
  ``and``/``or`` short-circuit on a constant left operand);
* :class:`SimplifyIfs` -- splices branches of constant conditions and
  drops effect-free empty conditionals;
* :class:`DeadCodeElim` -- removes statically-unreachable statements,
  never-read pure/alloc/read bindings (a global property, closures
  included), and -- via block liveness -- dead reassignments of mutable
  staged variables;
* :class:`CommonSubexprElim` -- reuses the first binding of a repeated
  pure expression; availability is scoped by the statement tree and
  *killed* across writes and loop back edges for state-reading entries
  (subscripts, container reads);
* :class:`LoopInvariantHoist` -- moves loop-invariant field loads and
  pure computations out of scan-loop bodies, one nesting level per
  pipeline round.

Translation validation: the pipeline re-runs the structural
:class:`~repro.analysis.verifier.Verifier` and the
:class:`~repro.analysis.typecheck.TypeChecker` after every pass that
changed the program and raises :class:`OptError` on any diagnostic -- a
transform may only ever produce programs the analysis layer certifies.
The behavioural half of the contract (optimized output answers exactly
like unoptimized) is pinned by the 22-query parity suite in
``tests/test_opt.py`` and the ``repro-lint`` matrix.

Deliberately *not* here: anything that changes the lowering.  The passes
clean up the residual program the single pass emitted; they never
re-decide data structures or operator strategies (that is ROADMAP item 3,
which consumes these same dataflow facts at plan time).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow import (
    ALLOC,
    PURE,
    READ,
    def_use,
    expr_effect,
    has_volatile,
    stmt_defs,
    stmt_uses,
)
from repro.analysis.lint import VECTOR_KERNEL_CALLS, call_effect
from repro.analysis.typecheck import TypeChecker
from repro.analysis.verifier import Verifier
from repro.analysis.walker import Diagnostic, render_excerpt
from repro.errors import ReproError
from repro.staging import ir


class OptError(ReproError):
    """A transform produced a program the analysis layer rejects.

    Raised by the translation-validation hook between passes; carries the
    offending pass name and the structured diagnostics.  This is a bug in
    the optimizer by definition -- the input program was certified before
    the pass ran.
    """

    code = "E_OPT"
    phase = "optimize"

    def __init__(
        self,
        origin: str,
        diagnostics: Sequence[Diagnostic],
        functions: Sequence[ir.Function],
    ) -> None:
        self.origin = origin
        self.diagnostics = list(diagnostics)
        lines = [d.render() for d in self.diagnostics[:10]]
        more = len(self.diagnostics) - 10
        if more > 0:
            lines.append(f"... and {more} more")
        try:
            excerpt = render_excerpt(
                functions, self.diagnostics[0].stmt if self.diagnostics else None
            )
        except Exception:  # a broken program may not even render
            excerpt = "<unrenderable program>"
        super().__init__(
            f"optimizer pass {origin!r} broke the residual program:\n"
            + "\n".join(lines)
            + "\n--- generated source (excerpt) ---\n"
            + excerpt
        )


@dataclass
class OptStats:
    """Per-pipeline counters, mirrored into ``codegen_stats['opt']`` and
    the metrics registry (``opt.*``)."""

    stmts_removed: int = 0
    exprs_cse: int = 0
    hoisted: int = 0
    copies_propagated: int = 0
    consts_folded: int = 0
    branches_simplified: int = 0
    iterations: int = 0
    stmts_before: int = 0
    stmts_after: int = 0
    per_pass: Dict[str, int] = field(default_factory=dict)

    def bump(self, pass_name: str, delta: int) -> None:
        if delta:
            self.per_pass[pass_name] = self.per_pass.get(pass_name, 0) + delta

    def to_dict(self) -> dict:
        return {
            "stmts_removed": self.stmts_removed,
            "exprs_cse": self.exprs_cse,
            "hoisted": self.hoisted,
            "copies_propagated": self.copies_propagated,
            "consts_folded": self.consts_folded,
            "branches_simplified": self.branches_simplified,
            "iterations": self.iterations,
            "stmts_before": self.stmts_before,
            "stmts_after": self.stmts_after,
            "per_pass": dict(self.per_pass),
        }


def stmt_count(functions: Sequence[ir.Function]) -> int:
    """Real (non-comment) statements across a program, closures included."""
    from repro.analysis.walker import iter_stmts

    return sum(
        1
        for fn in functions
        for stmt in iter_stmts(fn.body)
        if not ir.is_transparent(stmt)
    )


# ---------------------------------------------------------------------------
# Expression rewriting helpers
# ---------------------------------------------------------------------------


def _subst(expr: ir.Expr, mapping: Dict[str, ir.Expr], counter: List[int]) -> ir.Expr:
    """Rebuild ``expr`` with every mapped symbol replaced (frozen nodes)."""
    if isinstance(expr, ir.Sym):
        repl = mapping.get(expr.name)
        if repl is not None:
            counter[0] += 1
            return repl
        return expr
    if isinstance(expr, ir.Const):
        return expr
    if isinstance(expr, ir.Bin):
        return ir.Bin(expr.op, _subst(expr.lhs, mapping, counter),
                      _subst(expr.rhs, mapping, counter))
    if isinstance(expr, ir.Un):
        return ir.Un(expr.op, _subst(expr.operand, mapping, counter))
    if isinstance(expr, ir.Call):
        return ir.Call(expr.fn, tuple(_subst(a, mapping, counter) for a in expr.args))
    if isinstance(expr, ir.Index):
        return ir.Index(_subst(expr.arr, mapping, counter),
                        _subst(expr.idx, mapping, counter))
    if isinstance(expr, ir.TupleExpr):
        return ir.TupleExpr(tuple(_subst(i, mapping, counter) for i in expr.items))
    if isinstance(expr, ir.ListExpr):
        return ir.ListExpr(tuple(_subst(i, mapping, counter) for i in expr.items))
    return expr


def map_stmt_exprs(stmt: ir.Stmt, fn: Callable[[ir.Expr], ir.Expr]) -> None:
    """Apply ``fn`` to every expression field of one statement, in place.

    The write-side twin of :func:`ir.stmt_exprs`; sub-blocks are the
    caller's responsibility.
    """
    if isinstance(stmt, (ir.Assign, ir.Reassign, ir.ExprStmt)):
        stmt.expr = fn(stmt.expr)
    elif isinstance(stmt, ir.SetIndex):
        stmt.arr = fn(stmt.arr)
        stmt.idx = fn(stmt.idx)
        stmt.value = fn(stmt.value)
    elif isinstance(stmt, ir.If):
        stmt.cond = fn(stmt.cond)
    elif isinstance(stmt, ir.ForRange):
        stmt.start = fn(stmt.start)
        stmt.stop = fn(stmt.stop)
        if stmt.step is not None:
            stmt.step = fn(stmt.step)
    elif isinstance(stmt, ir.ForEach):
        stmt.iterable = fn(stmt.iterable)
    elif isinstance(stmt, ir.Return) and stmt.expr is not None:
        stmt.expr = fn(stmt.expr)


def _rewrite_program(
    functions: Sequence[ir.Function], fn: Callable[[ir.Expr], ir.Expr]
) -> None:
    from repro.analysis.walker import iter_stmts

    for func in functions:
        for stmt in iter_stmts(func.body):
            map_stmt_exprs(stmt, fn)


def _apply_mapping(functions: Sequence[ir.Function],
                   mapping: Dict[str, ir.Expr]) -> int:
    """Substitute name -> replacement everywhere; returns replacement count."""
    if not mapping:
        return 0
    counter = [0]
    _rewrite_program(functions, lambda e: _subst(e, mapping, counter))
    return counter[0]


def _resolve_chains(mapping: Dict[str, ir.Expr]) -> None:
    """Compress x->y, y->z chains so one application suffices."""
    for name in list(mapping):
        seen = {name}
        target = mapping[name]
        while isinstance(target, ir.Sym) and target.name in mapping:
            if target.name in seen:  # defensive; cycles cannot happen (SSA)
                break
            seen.add(target.name)
            target = mapping[target.name]
        mapping[name] = target


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------


class OptPass:
    """One rewrite over a whole program; returns True when it changed it."""

    name = "opt-pass"

    def run(self, functions: Sequence[ir.Function], stats: OptStats) -> bool:
        raise NotImplementedError


class CopyPropagation(OptPass):
    """Forward ``x = y`` copies into every use of ``x``.

    Sound without dataflow guards because of the IR's verifier-enforced
    discipline: ``x`` immutable means its value never changes after the
    bind, and ``y`` immutable means the copied value equals ``y`` at every
    later program point (closures included -- late binding reads the same
    never-changing slot).  Mutable names on either side are excluded.
    """

    name = "copyprop"

    def run(self, functions: Sequence[ir.Function], stats: OptStats) -> bool:
        from repro.analysis.walker import iter_stmts

        mapping: Dict[str, ir.Expr] = {}
        for fn in functions:
            du = def_use(fn)
            for stmt in iter_stmts(fn.body):
                if (
                    isinstance(stmt, ir.Assign)
                    and not stmt.mutable
                    and isinstance(stmt.expr, ir.Sym)
                    and stmt.expr.name not in du.mutable
                ):
                    mapping[stmt.name] = stmt.expr
        _resolve_chains(mapping)
        replaced = _apply_mapping(functions, mapping)
        stats.copies_propagated += replaced
        stats.bump(self.name, replaced)
        return replaced > 0


_BIN_FOLD = {
    "+": operator.add, "-": operator.sub, "*": operator.mul,
    "/": operator.truediv, "//": operator.floordiv, "%": operator.mod,
    "==": operator.eq, "!=": operator.ne,
    "<": operator.lt, "<=": operator.le,
    ">": operator.gt, ">=": operator.ge,
}

_FOLDABLE_CONSTS = (bool, int, float, str)


def fold_expr(expr: ir.Expr, counter: List[int]) -> ir.Expr:
    """Bottom-up constant folding with Python evaluation semantics.

    Anything that would raise at run time (zero division, mixed-type
    ordering) is left alone -- folding must never turn a crashing program
    into an answering one or vice versa.
    """
    if isinstance(expr, (ir.Const, ir.Sym)):
        return expr
    if isinstance(expr, ir.Bin):
        lhs = fold_expr(expr.lhs, counter)
        rhs = fold_expr(expr.rhs, counter)
        if expr.op in ("and", "or") and isinstance(lhs, ir.Const):
            # Python short-circuit: a constant left operand decides whether
            # the right side is ever evaluated, so dropping it is exactly
            # what the unoptimized program does.
            counter[0] += 1
            take_rhs = bool(lhs.value) if expr.op == "and" else not bool(lhs.value)
            return rhs if take_rhs else lhs
        if (
            isinstance(lhs, ir.Const)
            and isinstance(rhs, ir.Const)
            and isinstance(lhs.value, _FOLDABLE_CONSTS)
            and isinstance(rhs.value, _FOLDABLE_CONSTS)
            and expr.op in _BIN_FOLD
        ):
            try:
                value = _BIN_FOLD[expr.op](lhs.value, rhs.value)
            except (ZeroDivisionError, TypeError, OverflowError):
                value = None
            else:
                if isinstance(value, _FOLDABLE_CONSTS):
                    counter[0] += 1
                    return ir.Const(value)
        if lhs is expr.lhs and rhs is expr.rhs:
            return expr
        return ir.Bin(expr.op, lhs, rhs)
    if isinstance(expr, ir.Un):
        operand = fold_expr(expr.operand, counter)
        if isinstance(operand, ir.Const) and isinstance(
            operand.value, _FOLDABLE_CONSTS
        ):
            if expr.op == "not":
                counter[0] += 1
                return ir.Const(not operand.value)
            if expr.op == "-" and not isinstance(operand.value, str):
                counter[0] += 1
                return ir.Const(-operand.value)
        if operand is expr.operand:
            return expr
        return ir.Un(expr.op, operand)
    if isinstance(expr, ir.Call):
        args = tuple(fold_expr(a, counter) for a in expr.args)
        return expr if all(a is b for a, b in zip(args, expr.args)) else \
            ir.Call(expr.fn, args)
    if isinstance(expr, ir.Index):
        arr = fold_expr(expr.arr, counter)
        idx = fold_expr(expr.idx, counter)
        return expr if arr is expr.arr and idx is expr.idx else ir.Index(arr, idx)
    if isinstance(expr, ir.TupleExpr):
        items = tuple(fold_expr(i, counter) for i in expr.items)
        return expr if all(a is b for a, b in zip(items, expr.items)) else \
            ir.TupleExpr(items)
    if isinstance(expr, ir.ListExpr):
        items = tuple(fold_expr(i, counter) for i in expr.items)
        return expr if all(a is b for a, b in zip(items, expr.items)) else \
            ir.ListExpr(items)
    return expr


class ConstPropagation(OptPass):
    """Forward constant bindings into their uses, then fold."""

    name = "constprop"

    def run(self, functions: Sequence[ir.Function], stats: OptStats) -> bool:
        from repro.analysis.walker import iter_stmts

        mapping: Dict[str, ir.Expr] = {}
        for fn in functions:
            for stmt in iter_stmts(fn.body):
                if (
                    isinstance(stmt, ir.Assign)
                    and not stmt.mutable
                    and isinstance(stmt.expr, ir.Const)
                    and isinstance(stmt.expr.value, _FOLDABLE_CONSTS + (type(None),))
                ):
                    mapping[stmt.name] = stmt.expr
        replaced = _apply_mapping(functions, mapping)
        counter = [0]
        _rewrite_program(functions, lambda e: fold_expr(e, counter))
        stats.consts_folded += counter[0]
        total = replaced + counter[0]
        stats.bump(self.name, total)
        return total > 0


class SimplifyIfs(OptPass):
    """Splice constant-condition branches; drop effect-free empty ifs."""

    name = "simplify-ifs"

    def run(self, functions: Sequence[ir.Function], stats: OptStats) -> bool:
        changed = [0]
        for fn in functions:
            self._walk(fn.body, changed)
        stats.branches_simplified += changed[0]
        stats.bump(self.name, changed[0])
        return changed[0] > 0

    def _walk(self, block: ir.Block, changed: List[int]) -> None:
        out: List[ir.Stmt] = []
        for stmt in block:
            for sub in ir.stmt_blocks(stmt):
                self._walk(sub, changed)
            if isinstance(stmt, ir.If):
                if isinstance(stmt.cond, ir.Const):
                    taken = stmt.then if stmt.cond.value else stmt.els
                    out.extend(taken)
                    changed[0] += 1
                    continue
                empty = not any(True for _ in _real(stmt.then)) and not any(
                    True for _ in _real(stmt.els)
                )
                if (
                    empty
                    and expr_effect(stmt.cond) in (PURE, ALLOC, READ)
                    and not has_volatile(stmt.cond)
                ):
                    changed[0] += 1
                    continue  # drop the whole conditional
            out.append(stmt)
        block[:] = out


def _real(block: ir.Block):
    for stmt in block:
        if not ir.is_transparent(stmt):
            yield stmt


_REMOVABLE_EFFECTS = (PURE, ALLOC, READ)

_TERMINATORS = (ir.Break, ir.Continue, ir.Return)


class DeadCodeElim(OptPass):
    """Dead stores and dead code, the transforming twin of the lint rules.

    Three families, all validated by construction:

    * statements after a ``break``/``continue``/``return`` in the same
      block can never execute -- removed (comments kept);
    * an immutable binding whose name is read nowhere -- not by any
      statement, not by any closure -- is deleted when its initializer
      cannot write or emit (``PURE``/``ALLOC``/``READ``); a never-read
      *mutable* variable loses its reassignments too;
    * a reassignment whose target is dead at that point (block liveness,
      closure captures pinned live) is a dead store -- removed while the
      variable's declaring bind stays (the C emitter needs the
      declaration).
    """

    name = "dce"

    def run(self, functions: Sequence[ir.Function], stats: OptStats) -> bool:
        removed = 0
        for fn in functions:
            removed += self._prune_unreachable(fn.body)
            removed += self._remove_dead_bindings(fn)
            removed += self._remove_dead_reassigns(fn)
        stats.stmts_removed += removed
        stats.bump(self.name, removed)
        return removed > 0

    def _prune_unreachable(self, block: ir.Block) -> int:
        removed = 0
        terminated = False
        out: List[ir.Stmt] = []
        for stmt in block:
            if terminated and not ir.is_transparent(stmt):
                removed += 1
                continue
            for sub in ir.stmt_blocks(stmt):
                removed += self._prune_unreachable(sub)
            out.append(stmt)
            if isinstance(stmt, _TERMINATORS):
                terminated = True
        block[:] = out
        return removed

    def _remove_dead_bindings(self, fn: ir.Function) -> int:
        du = def_use(fn)
        dead_ids: Set[int] = set()
        for name, sites in du.defs.items():
            head = sites[0]
            if not isinstance(head, ir.Assign):
                continue  # loop vars and closures are not removable binds
            if du.use_count(name) or name in du.closure_used:
                continue
            if expr_effect(head.expr) not in _REMOVABLE_EFFECTS:
                continue
            if name in du.mutable:
                # never-read variable: initial bind and every reassign go,
                # provided no reassigned value could have effects
                if any(
                    isinstance(s, ir.Reassign)
                    and expr_effect(s.expr) not in _REMOVABLE_EFFECTS
                    for s in sites
                ):
                    continue
                dead_ids.update(id(s) for s in sites)
            else:
                dead_ids.add(id(head))
        return self._drop(fn.body, dead_ids)

    def _remove_dead_reassigns(self, fn: ir.Function) -> int:
        from repro.analysis.dataflow import analyze_function

        flow = analyze_function(fn)
        protected = flow.defuse.closure_used
        dead_ids: Set[int] = set()
        for block in flow.cfg:
            live = set(flow.live.live_out[block.bid])
            ordered = list(block.real())
            if block.terminator is not None:
                ordered.append(block.terminator)
            for stmt in reversed(ordered):
                defs = stmt_defs(stmt)
                if (
                    isinstance(stmt, ir.Reassign)
                    and stmt.name not in live
                    and stmt.name not in protected
                    and expr_effect(stmt.expr) in _REMOVABLE_EFFECTS
                ):
                    dead_ids.add(id(stmt))
                    continue  # a removed store neither kills nor uses
                live.difference_update(defs)
                live.update(stmt_uses(stmt))
        return self._drop(fn.body, dead_ids)

    def _drop(self, block: ir.Block, dead_ids: Set[int]) -> int:
        if not dead_ids:
            return 0
        removed = 0
        out: List[ir.Stmt] = []
        for stmt in block:
            if id(stmt) in dead_ids:
                removed += 1
                continue
            for sub in ir.stmt_blocks(stmt):
                removed += self._drop(sub, dead_ids)
            out.append(stmt)
        block[:] = out
        return removed


# -- common-subexpression elimination ----------------------------------------

#: Pure calls over immutable scalar values: always CSE-safe.
_CSE_SCALAR_CALLS = frozenset({
    "hash_str", "hash_int", "to_float", "to_int", "abs", "min2", "max2",
    "str_startswith", "str_endswith", "str_contains", "str_slice",
    "str_concat", "str_eq", "not_none", "is_none",
})

#: Idempotent snapshots of load-time database state: CSE-safe for a whole
#: run (nothing mutates the database while a residual program executes).
_CSE_DB_CALLS = frozenset({
    "db_column", "db_column_vec", "db_size", "db_index", "db_unique_index",
    "db_dictionary", "db_date_index", "db_encoded", "db_dict_strings",
    "db_date_candidates", "db_date_runs", "index_lookup",
    "index_lookup_unique",
})

#: Reads of runtime containers: CSE-able only under kill discipline (any
#: write, unknown call, or loop back edge invalidates them).
_CSE_CONTAINER_CALLS = frozenset({
    "len", "list_len", "dict_get", "dict_contains", "dict_len",
    "set_contains", "set_len",
})

#: Whole-column kernels build fresh arrays from immutable inputs; results
#: are never mutated, so deduplicating one saves a full column scan.
#: ``v_tolist`` is excluded: it manufactures a mutable list.
_CSE_KERNEL_CALLS = VECTOR_KERNEL_CALLS - {"v_tolist"}


def _cse_classify(expr: ir.Expr, mutable: Set[str]) -> Optional[bool]:
    """Whether ``expr`` may key a CSE entry.

    Returns ``None`` (ineligible), ``False`` (eligible, stable for the
    whole run) or ``True`` (eligible but *killable*: its value reads
    mutable state).  Atoms are eligible-in-context but pointless as keys;
    callers skip them separately.
    """
    killable = False
    for node in ir.walk_expr(expr):
        if isinstance(node, ir.Sym):
            if node.name in mutable:
                return None
        elif isinstance(node, (ir.Const, ir.Bin, ir.Un, ir.TupleExpr)):
            continue
        elif isinstance(node, ir.ListExpr):
            return None  # fresh mutable allocation: identity matters
        elif isinstance(node, ir.Index):
            killable = True
        elif isinstance(node, ir.Call):
            if node.fn in _CSE_SCALAR_CALLS or node.fn in _CSE_DB_CALLS \
                    or node.fn in _CSE_KERNEL_CALLS:
                continue
            if node.fn in _CSE_CONTAINER_CALLS:
                killable = True
            else:
                return None  # volatile, allocating, writing, or unknown
        else:
            return None
    return killable


def _stmt_kills(stmt: ir.Stmt) -> bool:
    """Whether executing ``stmt`` may invalidate state-reading entries."""
    if isinstance(stmt, ir.SetIndex):
        return True
    for expr in ir.stmt_exprs(stmt):
        for node in ir.walk_expr(expr):
            if isinstance(node, ir.Call):
                eff = call_effect(node.fn)
                if eff is None or eff in ("write", "io"):
                    return True
    return False


def _region_kills(block: ir.Block) -> bool:
    """Whether any statement under ``block`` (closures included) kills."""
    for stmt in block:
        if ir.is_transparent(stmt):
            continue
        if _stmt_kills(stmt):
            return True
        for sub in ir.stmt_blocks(stmt):
            if _region_kills(sub):
                return True
    return False


class CommonSubexprElim(OptPass):
    """Reuse the first binding of a repeated pure expression.

    Availability is scoped by the statement tree: an entry bound at some
    position dominates everything later in its block and everything
    nested under it, which is exactly the region where reuse is legal
    under the fresh-name discipline.  Entries whose value reads mutable
    state (subscripts, container lookups) are additionally killed by any
    write/unknown call and before every loop body (the back edge makes
    "earlier in the block" ambiguous); closures start from an empty table
    because they run at an unknown later time.
    """

    name = "cse"

    def run(self, functions: Sequence[ir.Function], stats: OptStats) -> bool:
        total = 0
        for fn in functions:
            du = def_use(fn)
            mapping: Dict[str, ir.Expr] = {}
            removed_ids: Set[int] = set()
            self._walk(fn.body, [{}], du.mutable, mapping, removed_ids)
            if mapping:
                _apply_mapping([fn], mapping)
                DeadCodeElim()._drop(fn.body, removed_ids)
                total += len(removed_ids)
        stats.exprs_cse += total
        stats.bump(self.name, total)
        return total > 0

    # scope stack entries: dict[key expr -> (Sym, killable)]
    def _walk(
        self,
        block: ir.Block,
        stack: List[Dict[ir.Expr, Tuple[ir.Sym, bool]]],
        mutable: Set[str],
        mapping: Dict[str, ir.Expr],
        removed_ids: Set[int],
    ) -> None:
        for stmt in block:
            if ir.is_transparent(stmt):
                continue
            if (
                isinstance(stmt, ir.Assign)
                and not stmt.mutable
                and not ir.is_atom(stmt.expr)
            ):
                killable = _cse_classify(stmt.expr, mutable)
                if killable is not None:
                    hit = self._lookup(stack, stmt.expr)
                    if hit is not None:
                        mapping[stmt.name] = hit
                        removed_ids.add(id(stmt))
                    else:
                        stack[-1][stmt.expr] = (ir.Sym(stmt.name), killable)
            if _stmt_kills(stmt):
                self._kill(stack)
            if isinstance(stmt, ir.If):
                for branch in (stmt.then, stmt.els):
                    stack.append({})
                    self._walk(branch, stack, mutable, mapping, removed_ids)
                    stack.pop()
            elif isinstance(stmt, (ir.While, ir.ForRange, ir.ForEach)):
                if _region_kills(stmt.body):
                    self._kill(stack)
                stack.append({})
                self._walk(stmt.body, stack, mutable, mapping, removed_ids)
                stack.pop()
            elif isinstance(stmt, ir.NestedFunc):
                # a closure runs later: only run-stable facts would carry
                # over, and conservatively not even those
                self._walk(stmt.body, [{}], mutable, mapping, removed_ids)

    def _lookup(
        self, stack: List[Dict[ir.Expr, Tuple[ir.Sym, bool]]], key: ir.Expr
    ) -> Optional[ir.Sym]:
        for scope in reversed(stack):
            entry = scope.get(key)
            if entry is not None:
                return entry[0]
        return None

    def _kill(self, stack: List[Dict[ir.Expr, Tuple[ir.Sym, bool]]]) -> None:
        for scope in stack:
            for key in [k for k, (_, killable) in scope.items() if killable]:
                del scope[key]


class LoopInvariantHoist(OptPass):
    """Hoist loop-invariant field loads and pure computations out of loops.

    A candidate is an immutable top-level binding of a loop body whose
    initializer (a) cannot write, emit, allocate mutable state, or read
    the clock, and (b) references no name defined or reassigned anywhere
    inside the loop.  Such a statement computes the same value on every
    iteration; moving it immediately before the loop preserves all uses
    (the fresh name stays unique) and every effect ordering.  Subscript
    loads qualify deliberately: the canonical win is an outer-row field
    load sitting inside an inner join loop, whose index the enclosing
    scan already proved in bounds.  One extra gate mirrors the CSE kill
    discipline: an initializer that reads *runtime* state (a subscript, a
    container lookup -- anything outside the load-time database
    snapshot) is only invariant if nothing inside the loop can write, so
    such candidates are rejected whenever the body contains a store or
    an unknown/writing call.  Inner loops hoist before their enclosing
    loop is considered, so invariants bubble all the way up across
    pipeline rounds.
    """

    name = "licm"

    _HOISTABLE_EFFECTS = (PURE, READ)  # ALLOC must stay per-iteration

    def run(self, functions: Sequence[ir.Function], stats: OptStats) -> bool:
        hoisted = [0]
        for fn in functions:
            self._walk(fn.body, hoisted)
        stats.hoisted += hoisted[0]
        stats.bump(self.name, hoisted[0])
        return hoisted[0] > 0

    def _walk(self, block: ir.Block, hoisted: List[int]) -> None:
        i = 0
        while i < len(block):
            stmt = block[i]
            for sub in ir.stmt_blocks(stmt):
                self._walk(sub, hoisted)
            if isinstance(stmt, (ir.While, ir.ForRange, ir.ForEach)):
                moved = self._hoist_from(stmt)
                if moved:
                    block[i:i] = moved
                    hoisted[0] += len(moved)
                    i += len(moved)
            i += 1

    def _hoist_from(self, loop: ir.Stmt) -> List[ir.Stmt]:
        body: ir.Block = loop.body
        loop_defs = self._defined_in(body)
        if isinstance(loop, (ir.ForRange, ir.ForEach)):
            loop_defs.add(loop.var)
        body_kills = _region_kills(body)
        moved: List[ir.Stmt] = []
        kept: List[ir.Stmt] = []
        for stmt in body:
            if (
                isinstance(stmt, ir.Assign)
                and not stmt.mutable
                and not ir.is_atom(stmt.expr)
                and expr_effect(stmt.expr) in self._HOISTABLE_EFFECTS
                and not has_volatile(stmt.expr)
                and not self._unguarded_division(stmt.expr)
                and not (body_kills and self._reads_runtime_state(stmt.expr))
                and not any(
                    name in loop_defs for name in self._expr_names(stmt.expr)
                )
            ):
                moved.append(stmt)
            else:
                kept.append(stmt)
        if moved:
            body[:] = kept
        return moved

    @staticmethod
    def _expr_names(expr: ir.Expr):
        for node in ir.walk_expr(expr):
            if isinstance(node, ir.Sym):
                yield node.name

    @staticmethod
    def _reads_runtime_state(expr: ir.Expr) -> bool:
        """Whether the value depends on state a loop body could mutate.

        Database-snapshot reads, whole-column kernels and pure scalar
        calls are stable for an entire run; subscripts and every other
        call (container lookups included) count as runtime-state reads.
        """
        for node in ir.walk_expr(expr):
            if isinstance(node, ir.Index):
                return True
            if isinstance(node, ir.Call) and not (
                node.fn in _CSE_SCALAR_CALLS
                or node.fn in _CSE_DB_CALLS
                or node.fn in _CSE_KERNEL_CALLS
            ):
                return True
        return False

    @staticmethod
    def _unguarded_division(expr: ir.Expr) -> bool:
        for node in ir.walk_expr(expr):
            if isinstance(node, ir.Bin) and node.op in ("/", "//", "%"):
                rhs = node.rhs
                if not (isinstance(rhs, ir.Const) and rhs.value not in (0, 0.0)):
                    return True
        return False

    def _defined_in(self, block: ir.Block) -> Set[str]:
        """Every name bound or reassigned anywhere under ``block``."""
        defined: Set[str] = set()

        def walk(b: ir.Block) -> None:
            for stmt in b:
                if ir.is_transparent(stmt):
                    continue
                defined.update(stmt_defs(stmt))
                if isinstance(stmt, ir.NestedFunc):
                    defined.update(stmt.params)
                    walk(stmt.body)
                for sub in ir.stmt_blocks(stmt):
                    walk(sub)

        walk(block)
        return defined


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------


@dataclass
class OptResult:
    """The optimized program (mutated in place) plus its statistics."""

    functions: List[ir.Function]
    stats: OptStats


def passes_for_level(level: int) -> List[OptPass]:
    """The pass sequence one pipeline round runs at ``opt_level=level``."""
    base: List[OptPass] = [CopyPropagation(), ConstPropagation(), SimplifyIfs()]
    if level >= 2:
        base.extend([CommonSubexprElim(), LoopInvariantHoist()])
    base.append(DeadCodeElim())
    return base


def optimize(
    functions: Sequence[ir.Function],
    level: int = 1,
    *,
    validate: bool = True,
    max_rounds: int = 8,
) -> OptResult:
    """Run the pass pipeline to a fixpoint; mutates ``functions`` in place.

    ``validate=True`` (default, and what the compile driver uses) runs the
    verifier and the type checker over the input and again after every
    pass that changed the program, raising :class:`OptError` on any
    diagnostic: the optimizer is only allowed to produce programs the
    analysis layer certifies.
    """
    functions = list(functions)
    stats = OptStats()
    stats.stmts_before = stmt_count(functions)
    stats.stmts_after = stats.stmts_before
    if level <= 0:
        return OptResult(functions, stats)
    if level > 2:
        raise ValueError(f"opt_level must be 0, 1 or 2, got {level}")
    if validate:
        _validate(functions, "input")
    passes = passes_for_level(level)
    for _ in range(max_rounds):
        stats.iterations += 1
        any_change = False
        for p in passes:
            changed = p.run(functions, stats)
            if changed:
                any_change = True
                if validate:
                    _validate(functions, p.name)
        if not any_change:
            break
    stats.stmts_after = stmt_count(functions)
    return OptResult(functions, stats)


def _validate(functions: Sequence[ir.Function], origin: str) -> None:
    diagnostics = Verifier().run(functions) + TypeChecker().run(functions)
    if diagnostics:
        raise OptError(origin, diagnostics, functions)
