"""Lint gate: statically analyze the generated IR of every TPC-H query.

Usage::

    python -m repro.analysis.cli                 # full matrix, exit 1 on findings
    python -m repro.analysis.cli --query 6 -v    # one query, show every program
    python -m repro.analysis.cli --fast          # compliant config only (CI smoke)

For each of the 22 TPC-H queries this compiles the residual program under
every :class:`repro.compiler.lb2.Config` combination (codegen backend x
hash map implementation x sort layout x allocation hoisting x dictionaries
x instrumentation), plus the Section-4.4 ``prepare``/``run`` split form,
the rewritten (index/date-index) plans, and the Section-4.5 parallel
partials -- and runs the verifier, the type checker and all lint passes
over each.
Any diagnostic fails the gate: the residual program is supposed to be a
*checked* contract, not just one that happens to run.
"""

from __future__ import annotations

import argparse
import itertools
import sys
from typing import Iterator, Optional, Sequence

from repro.analysis.walker import Diagnostic, analyze
from repro.compiler.driver import LB2Compiler
from repro.compiler.lb2 import Config
from repro.compiler.parallel import ParallelError, ParallelQuery
from repro.plan.rewrite import optimize_for_level
from repro.storage.database import Database, OptimizationLevel
from repro.tpch.dbgen import generate_database
from repro.tpch.queries import QUERIES, query_plan


def iter_configs(fast: bool = False) -> Iterator[Config]:
    """Every compilation-knob combination (or just the two codegen
    backends at defaults for --fast)."""
    if fast:
        yield Config()
        yield Config(codegen="vector")
        return
    for codegen, hashmap, sort_layout, hoist, use_dicts, instrument in (
        itertools.product(
            ("scalar", "vector"), ("native", "open"), ("row", "column"),
            (True, False), (True, False), (False, True),
        )
    ):
        yield Config(
            codegen=codegen,
            hashmap=hashmap,
            sort_layout=sort_layout,
            hoist=hoist,
            use_dictionaries=use_dicts,
            instrument=instrument,
        )


def config_label(config: Config, *, split: bool = False) -> str:
    parts = [
        config.codegen,
        config.hashmap,
        config.sort_layout,
        "hoist" if config.hoist else "nohoist",
        "dict" if config.use_dictionaries else "nodict",
    ]
    if config.instrument:
        parts.append("instr")
    if split:
        parts.append("prepare/run")
    return "+".join(parts)


def _analyze_program(
    label: str,
    functions,
    findings: list[tuple[str, Diagnostic]],
) -> int:
    diags = analyze(functions)
    for d in diags:
        findings.append((label, d))
    return len(diags)


def lint_query(
    q: int,
    db: Database,
    scale: float,
    fast: bool,
    findings: list[tuple[str, Diagnostic]],
) -> int:
    """Compile and analyze every program variant of one query; returns the
    number of programs checked."""
    checked = 0
    plans = {"": query_plan(q, scale=scale)}
    if not fast:
        plans["rewritten:"] = optimize_for_level(plans[""], db, db.catalog)
    for plan_tag, plan in plans.items():
        for config in iter_configs(fast):
            compiler = LB2Compiler(db.catalog, db, config)
            label = f"Q{q} {plan_tag}{config_label(config)}"
            compiled = compiler.compile(plan, verify=False)
            _analyze_program(label, compiled.functions, findings)
            checked += 1
            if config.hoist and not config.instrument:
                split = compiler.compile(plan, split_prepare=True, verify=False)
                _analyze_program(
                    f"Q{q} {plan_tag}{config_label(config, split=True)}",
                    split.functions,
                    findings,
                )
                checked += 1
    # Section 4.5: the parallel partial is its own residual program.
    for hoist in (True,) if fast else (True, False):
        try:
            pq = ParallelQuery(
                plans[""], db, db.catalog, Config(hoist=hoist), verify=False
            )
        except ParallelError:
            break  # plan shape not partitionable; same for both hoist modes
        _analyze_program(
            f"Q{q} parallel+{'hoist' if hoist else 'nohoist'}",
            pq.functions,
            findings,
        )
        checked += 1
    return checked


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.analysis", description=__doc__)
    parser.add_argument("--scale", type=float, default=0.002,
                        help="TPC-H scale factor for the catalog/dictionaries")
    parser.add_argument("--query", type=int, default=None,
                        choices=sorted(QUERIES), help="lint a single query")
    parser.add_argument("--fast", action="store_true",
                        help="default config only (CI smoke mode)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every program checked")
    args = parser.parse_args(argv)

    db = generate_database(args.scale, level=OptimizationLevel.IDX_DATE_STR)
    queries = [args.query] if args.query is not None else sorted(QUERIES)
    findings: list[tuple[str, Diagnostic]] = []
    programs = 0
    for q in queries:
        before = len(findings)
        count = lint_query(q, db, args.scale, args.fast, findings)
        programs += count
        if args.verbose:
            status = "clean" if len(findings) == before else "FINDINGS"
            print(f"Q{q:>2}: {count} programs, {status}")

    for label, diag in findings:
        print(f"{label}: {diag.render()}")
    summary = (
        f"{programs} residual programs analyzed across "
        f"{len(queries)} queries: "
        + ("clean" if not findings else f"{len(findings)} findings")
    )
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
