"""Lint gate: statically analyze the generated IR of every TPC-H query.

Usage::

    python -m repro.analysis.cli                 # full matrix, exit 1 on findings
    python -m repro.analysis.cli --query 6 -v    # one query, show every program
    python -m repro.analysis.cli --fast          # compliant config only (CI smoke)
    python -m repro.analysis.cli --opt-level 2   # lint the *optimized* programs
    python -m repro.analysis.cli --report opt    # optimizer statistics report
    python -m repro.analysis.cli --json --check  # machine-readable, validated

For each of the 22 TPC-H queries this compiles the residual program under
every :class:`repro.compiler.lb2.Config` combination (codegen backend x
hash map implementation x sort layout x allocation hoisting x dictionaries
x instrumentation), plus the Section-4.4 ``prepare``/``run`` split form,
the rewritten (index/date-index) plans, and the Section-4.5 parallel
partials -- and runs the verifier, the type checker and all lint passes
over each.
Any diagnostic fails the gate: the residual program is supposed to be a
*checked* contract, not just one that happens to run.

``--opt-level N`` compiles the same matrix with the translation-validated
optimizer (:mod:`repro.analysis.opt`) enabled, holding optimized programs
to the identical bar.  ``--report opt`` switches from linting to the
optimizer-statistics report: each query is compiled at every level under
both codegens and the per-pass counters are tabulated.  ``--json`` emits
one ``repro-lint/v1`` document (mirroring the ``repro-obs/v1`` style);
``--check`` validates it with :func:`validate_report`.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from typing import Iterator, Optional, Sequence

from repro.analysis.walker import Diagnostic, analyze
from repro.compiler.driver import LB2Compiler
from repro.compiler.lb2 import Config
from repro.compiler.parallel import ParallelError, ParallelQuery
from repro.obs.metrics import REGISTRY
from repro.plan.rewrite import optimize_for_level
from repro.storage.database import Database, OptimizationLevel
from repro.tpch.dbgen import generate_database
from repro.tpch.queries import QUERIES, query_plan

SCHEMA = "repro-lint/v1"


def iter_configs(fast: bool = False, opt_level: int = 0) -> Iterator[Config]:
    """Every compilation-knob combination (or just the two codegen
    backends at defaults for --fast), at the requested ``opt_level``."""
    if fast:
        yield Config(opt_level=opt_level)
        yield Config(codegen="vector", opt_level=opt_level)
        return
    for codegen, hashmap, sort_layout, hoist, use_dicts, instrument in (
        itertools.product(
            ("scalar", "vector"), ("native", "open"), ("row", "column"),
            (True, False), (True, False), (False, True),
        )
    ):
        yield Config(
            codegen=codegen,
            hashmap=hashmap,
            sort_layout=sort_layout,
            hoist=hoist,
            use_dictionaries=use_dicts,
            instrument=instrument,
            opt_level=opt_level,
        )


def config_label(config: Config, *, split: bool = False) -> str:
    parts = [
        config.codegen,
        config.hashmap,
        config.sort_layout,
        "hoist" if config.hoist else "nohoist",
        "dict" if config.use_dictionaries else "nodict",
    ]
    if config.instrument:
        parts.append("instr")
    if config.opt_level:
        parts.append(f"opt{config.opt_level}")
    if split:
        parts.append("prepare/run")
    return "+".join(parts)


def _analyze_program(
    label: str,
    functions,
    findings: list[tuple[str, Diagnostic]],
) -> int:
    diags = analyze(functions)
    for d in diags:
        findings.append((label, d))
        REGISTRY.counter(f"analysis.violations.{d.pass_name}/{d.rule}")
    return len(diags)


def lint_query(
    q: int,
    db: Database,
    scale: float,
    fast: bool,
    findings: list[tuple[str, Diagnostic]],
    opt_level: int = 0,
) -> int:
    """Compile and analyze every program variant of one query; returns the
    number of programs checked."""
    checked = 0
    plans = {"": query_plan(q, scale=scale)}
    if not fast:
        plans["rewritten:"] = optimize_for_level(plans[""], db, db.catalog)
    # The parameterized residual program is its own closure convention
    # (the generated function takes a runtime parameter vector); hold it
    # to the same verifier/type-checker bar across the config matrix.
    # Built from the auto-parameterized shape of the query's SQL text, so
    # the lint gate covers exactly what the session cache compiles.
    from repro.sql import sql_to_plan
    from repro.sql.shape import statement_shape
    from repro.tpch.sql_queries import SQL_QUERIES

    if q in SQL_QUERIES:
        shape = statement_shape(SQL_QUERIES[q])
        if shape.param_count:
            plans["param:"] = sql_to_plan(shape.text, db)
    for plan_tag, plan in plans.items():
        for config in iter_configs(fast, opt_level):
            compiler = LB2Compiler(db.catalog, db, config)
            label = f"Q{q} {plan_tag}{config_label(config)}"
            compiled = compiler.compile(plan, verify=False)
            _analyze_program(label, compiled.functions, findings)
            checked += 1
            # split_prepare stages build-side work at hoist time, which a
            # per-execution parameter vector is incompatible with (the
            # driver raises the typed CompileError); param plans skip it.
            if config.hoist and not config.instrument and plan_tag != "param:":
                split = compiler.compile(plan, split_prepare=True, verify=False)
                _analyze_program(
                    f"Q{q} {plan_tag}{config_label(config, split=True)}",
                    split.functions,
                    findings,
                )
                checked += 1
    # Section 4.5: the parallel partial is its own residual program.
    for hoist in (True,) if fast else (True, False):
        try:
            pq = ParallelQuery(
                plans[""], db, db.catalog,
                Config(hoist=hoist, opt_level=opt_level), verify=False,
            )
        except ParallelError:
            break  # plan shape not partitionable; same for both hoist modes
        _analyze_program(
            f"Q{q} parallel+{'hoist' if hoist else 'nohoist'}",
            pq.functions,
            findings,
        )
        checked += 1
    return checked


def opt_report_query(q: int, db: Database, scale: float) -> list[dict]:
    """Optimizer statistics for one query: both codegens x levels 1 and 2."""
    plan = query_plan(q, scale=scale)
    rows: list[dict] = []
    for codegen in ("scalar", "vector"):
        levels: dict[str, dict] = {}
        for level in (1, 2):
            compiled = LB2Compiler(
                db.catalog, db, Config(codegen=codegen, opt_level=level)
            ).compile(plan, verify=False)
            levels[str(level)] = compiled.codegen_stats["opt"]
        rows.append({"query": q, "codegen": codegen, "levels": levels})
    return rows


# -- schema validation --------------------------------------------------------


def validate_report(doc: object) -> list[str]:
    """Problems that make ``doc`` invalid under ``repro-lint/v1`` (empty = ok)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["report is not an object"]
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema: expected {SCHEMA!r}, got {doc.get('schema')!r}")
    if doc.get("mode") not in ("lint", "opt"):
        problems.append(f"mode: expected 'lint' or 'opt', got {doc.get('mode')!r}")
    if not isinstance(doc.get("scale"), (int, float)):
        problems.append("scale: expected number")
    if not isinstance(doc.get("queries"), list) or not doc.get("queries"):
        problems.append("queries: expected non-empty list")
    if not isinstance(doc.get("opt_level"), int):
        problems.append("opt_level: expected int")
    if not isinstance(doc.get("programs_checked"), int):
        problems.append("programs_checked: expected int")
    findings = doc.get("findings")
    if not isinstance(findings, list):
        problems.append("findings: expected list")
    else:
        for i, f in enumerate(findings):
            if not isinstance(f, dict):
                problems.append(f"findings[{i}]: not an object")
                continue
            for key in ("label", "pass", "rule", "severity", "message", "function"):
                if not isinstance(f.get(key), str):
                    problems.append(f"findings[{i}].{key}: expected str")
    by_rule = doc.get("violations_by_rule")
    if not isinstance(by_rule, dict) or not all(
        isinstance(v, int) for v in (by_rule or {}).values()
    ):
        problems.append("violations_by_rule: expected object of ints")
    if doc.get("mode") == "opt":
        opt = doc.get("opt")
        if not isinstance(opt, list) or not opt:
            problems.append("opt: expected non-empty list in opt mode")
        else:
            for i, row in enumerate(opt):
                if not isinstance(row, dict):
                    problems.append(f"opt[{i}]: not an object")
                    continue
                if not isinstance(row.get("query"), int):
                    problems.append(f"opt[{i}].query: expected int")
                if row.get("codegen") not in ("scalar", "vector"):
                    problems.append(f"opt[{i}].codegen: expected scalar|vector")
                levels = row.get("levels")
                if not isinstance(levels, dict) or not levels:
                    problems.append(f"opt[{i}].levels: expected non-empty object")
                    continue
                for lv, stats in levels.items():
                    if not isinstance(stats, dict):
                        problems.append(f"opt[{i}].levels[{lv}]: not an object")
                        continue
                    for key in ("stmts_before", "stmts_after", "stmts_removed",
                                "exprs_cse", "hoisted", "iterations"):
                        if not isinstance(stats.get(key), int):
                            problems.append(
                                f"opt[{i}].levels[{lv}].{key}: expected int"
                            )
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not isinstance(
        metrics.get("counters"), dict
    ):
        problems.append("metrics.counters: expected object")
    return problems


# -- entry point --------------------------------------------------------------


def _print_opt_report(rows: list[dict]) -> None:
    header = (
        f"{'query':>5} {'codegen':>7} {'lvl':>3} {'before':>6} {'after':>6} "
        f"{'removed':>7} {'cse':>4} {'hoist':>5} {'%':>6}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        for lv in sorted(row["levels"]):
            s = row["levels"][lv]
            pct = (
                100.0 * (s["stmts_before"] - s["stmts_after"]) / s["stmts_before"]
                if s["stmts_before"]
                else 0.0
            )
            print(
                f"{row['query']:>5} {row['codegen']:>7} {lv:>3} "
                f"{s['stmts_before']:>6} {s['stmts_after']:>6} "
                f"{s['stmts_removed']:>7} {s['exprs_cse']:>4} "
                f"{s['hoisted']:>5} {pct:>5.1f}%"
            )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.analysis", description=__doc__)
    parser.add_argument("--scale", type=float, default=0.002,
                        help="TPC-H scale factor for the catalog/dictionaries")
    parser.add_argument("--query", type=int, default=None,
                        choices=sorted(QUERIES), help="lint a single query")
    parser.add_argument("--fast", action="store_true",
                        help="default config only (CI smoke mode)")
    parser.add_argument("--opt-level", type=int, default=0, choices=(0, 1, 2),
                        help="run the IR optimizer at this level before linting")
    parser.add_argument("--report", choices=("lint", "opt"), default="lint",
                        help="'lint' (default) gates on diagnostics; 'opt' "
                        "tabulates optimizer statistics per query and level")
    parser.add_argument("--json", action="store_true",
                        help="emit one repro-lint/v1 JSON document to stdout")
    parser.add_argument("--check", action="store_true",
                        help="validate the JSON report against the schema; "
                        "non-zero exit on problems")
    parser.add_argument("--out", default=None,
                        help="also write the JSON report to a file")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every program checked")
    args = parser.parse_args(argv)

    db = generate_database(args.scale, level=OptimizationLevel.IDX_DATE_STR)
    queries = [args.query] if args.query is not None else sorted(QUERIES)
    findings: list[tuple[str, Diagnostic]] = []
    programs = 0
    opt_rows: list[dict] = []
    for q in queries:
        if args.report == "opt":
            opt_rows.extend(opt_report_query(q, db, args.scale))
            programs += 4  # 2 codegens x 2 levels
            if args.verbose and not args.json:
                print(f"Q{q:>2}: optimizer stats collected")
            continue
        before = len(findings)
        count = lint_query(q, db, args.scale, args.fast, findings, args.opt_level)
        programs += count
        if args.verbose and not args.json:
            status = "clean" if len(findings) == before else "FINDINGS"
            print(f"Q{q:>2}: {count} programs, {status}")

    by_rule: dict[str, int] = {}
    for _, diag in findings:
        key = f"{diag.pass_name}/{diag.rule}"
        by_rule[key] = by_rule.get(key, 0) + 1

    report = {
        "schema": SCHEMA,
        "mode": args.report,
        "scale": args.scale,
        "fast": args.fast,
        "opt_level": args.opt_level,
        "queries": queries,
        "programs_checked": programs,
        "findings": [
            {
                "label": label,
                "pass": diag.pass_name,
                "rule": diag.rule,
                "severity": str(diag.severity),
                "message": diag.message,
                "function": diag.function,
            }
            for label, diag in findings
        ],
        "violations_by_rule": by_rule,
        "opt": opt_rows,
        "metrics": {"counters": REGISTRY.snapshot()["counters"]},
    }

    if args.json:
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
    elif args.report == "opt":
        _print_opt_report(opt_rows)
    else:
        for label, diag in findings:
            print(f"{label}: {diag.render()}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")

    summary = (
        f"{programs} residual programs analyzed across "
        f"{len(queries)} queries: "
        + ("clean" if not findings else f"{len(findings)} findings")
    )
    print(summary, file=sys.stderr)
    if args.check:
        problems = validate_report(report)
        if problems:
            for problem in problems:
                print(f"schema violation: {problem}", file=sys.stderr)
            return 1
        print("schema ok", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
