"""Static analysis over staged residual programs.

The single generation pass *is* the compiler (first Futamura projection);
this package adds the missing safety net as pure, composable analyses that
never rewrite the IR: a structural verifier, a bottom-up type checker, and
a set of lint passes (unreachable code, dead stores, infinite loops, and
Section-4.4 hoisting-safety effect analysis).

Two modules go further.  :mod:`repro.analysis.dataflow` derives classic
dataflow facts from the structured IR -- basic blocks, def-use chains,
reaching definitions, liveness, and an effect lattice over intrinsics.
:mod:`repro.analysis.opt` is the one sanctioned exception to the
"never rewrite" rule: an *optional*, translation-validated optimizer
(``Config(opt_level=1|2)``) that consumes those facts; at the default
``opt_level=0`` it never runs and the single-pass property holds
byte-for-byte.

Entry points:

* :func:`analyze` -- run the full default pipeline over a program;
* :func:`analyze_function` / :func:`optimize` -- dataflow facts and the
  verified pass pipeline;
* ``python -m repro.analysis.cli`` -- the TPC-H lint gate (also the
  ``--report opt`` optimizer-statistics mode and the ``repro-lint/v1``
  JSON report);
* ``LB2Compiler.compile(verify=True)`` -- the in-driver verifier hook,
  raising :class:`IRVerificationError` on contract violations.
"""

from repro.analysis.dataflow import (
    CFG,
    BasicBlock,
    DefUse,
    FunctionDataflow,
    analyze_function,
    analyze_program,
    build_cfg,
    def_use,
    expr_effect,
    liveness,
    reaching_definitions,
    stmt_effect,
)
from repro.analysis.opt import OptError, OptStats, optimize, stmt_count

from repro.analysis.lint import (
    DeadStore,
    HoistSafety,
    InfiniteLoop,
    UnreachableCode,
    call_effect,
    default_lint_passes,
)
from repro.analysis.typecheck import TypeChecker, compatible, infer_expr
from repro.analysis.verifier import Verifier
from repro.analysis.walker import (
    AnalysisPass,
    Diagnostic,
    IRVerificationError,
    Severity,
    analyze,
    default_passes,
    iter_stmts,
    render_excerpt,
    run_passes,
    used_names,
)

__all__ = [
    "AnalysisPass",
    "BasicBlock",
    "CFG",
    "DeadStore",
    "DefUse",
    "Diagnostic",
    "FunctionDataflow",
    "HoistSafety",
    "IRVerificationError",
    "InfiniteLoop",
    "OptError",
    "OptStats",
    "Severity",
    "TypeChecker",
    "UnreachableCode",
    "Verifier",
    "analyze",
    "analyze_function",
    "analyze_program",
    "build_cfg",
    "call_effect",
    "compatible",
    "def_use",
    "default_lint_passes",
    "default_passes",
    "expr_effect",
    "infer_expr",
    "iter_stmts",
    "liveness",
    "optimize",
    "reaching_definitions",
    "render_excerpt",
    "run_passes",
    "stmt_count",
    "stmt_effect",
    "used_names",
]
