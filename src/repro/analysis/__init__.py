"""Static analysis over staged residual programs.

The single generation pass *is* the compiler (first Futamura projection);
this package adds the missing safety net as pure, composable analyses that
never rewrite the IR: a structural verifier, a bottom-up type checker, and
a set of lint passes (unreachable code, dead stores, infinite loops, and
Section-4.4 hoisting-safety effect analysis).

Entry points:

* :func:`analyze` -- run the full default pipeline over a program;
* ``python -m repro.analysis.cli`` -- the TPC-H lint gate;
* ``LB2Compiler.compile(verify=True)`` -- the in-driver verifier hook,
  raising :class:`IRVerificationError` on contract violations.
"""

from repro.analysis.lint import (
    DeadStore,
    HoistSafety,
    InfiniteLoop,
    UnreachableCode,
    call_effect,
    default_lint_passes,
)
from repro.analysis.typecheck import TypeChecker, compatible, infer_expr
from repro.analysis.verifier import Verifier
from repro.analysis.walker import (
    AnalysisPass,
    Diagnostic,
    IRVerificationError,
    Severity,
    analyze,
    default_passes,
    iter_stmts,
    render_excerpt,
    run_passes,
    used_names,
)

__all__ = [
    "AnalysisPass",
    "DeadStore",
    "Diagnostic",
    "HoistSafety",
    "IRVerificationError",
    "InfiniteLoop",
    "Severity",
    "TypeChecker",
    "UnreachableCode",
    "Verifier",
    "analyze",
    "call_effect",
    "compatible",
    "default_lint_passes",
    "default_passes",
    "infer_expr",
    "iter_stmts",
    "render_excerpt",
    "run_passes",
    "used_names",
]
