"""Dataflow analysis over staged residual programs.

The single generation pass emits structured IR (:mod:`repro.staging.ir`)
with two strong invariants the verifier enforces: every ``Assign`` binds a
*fresh* name (no shadowing anywhere in a function, including closures) and
only ``mutable=True`` bindings are ever reassigned.  Those invariants make
classic dataflow over the residual program both simple and precise -- and
this module builds it as pure analysis, the same contract as the rest of
:mod:`repro.analysis`: facts in, no IR mutation.

What it provides, per :class:`repro.staging.ir.Function`:

* :func:`build_cfg` -- basic blocks over the structured statement tree
  (``If``/``While``/``ForRange``/``ForEach``/``Break``/``Continue``/
  ``Return`` become edges; ``Comment`` statements are fully transparent:
  they never split a block and carry no facts);
* :func:`def_use` -- definition sites and use sites for every name
  (closures count as uses of their free variables);
* :class:`ReachingDefinitions` -- which definitions reach each block
  (forward, may);
* :class:`Liveness` -- which names are live into/out of each block
  (backward, may; closure-captured names are pinned live at exit, since a
  returned ``run`` closure observes them after the function body ends);
* effect classification -- :func:`expr_effect` / :func:`stmt_effect` over
  the same intrinsic effect table the hoisting lint uses
  (:data:`repro.analysis.lint.CALL_EFFECTS`), extended with an
  ``UNKNOWN`` top element and fault/volatility predicates the optimizer
  needs (:func:`may_fault`, :data:`VOLATILE_CALLS`).

The optimizer (:mod:`repro.analysis.opt`) is the first consumer; the
cost-driven lowering work (ROADMAP item 3) is the next.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint import (
    ALLOC,
    CALL_EFFECTS,
    IO,
    PURE,
    READ,
    WRITE,
    call_effect,
)
from repro.staging import ir

#: Effect lattice top: a call the effect table does not know.  Conservative
#: consumers must treat it as "anything may happen".
UNKNOWN = "unknown"

#: Severity order of the effect lattice, weakest to strongest.
EFFECT_ORDER: tuple[str, ...] = (PURE, ALLOC, READ, WRITE, IO, UNKNOWN)
_EFFECT_RANK = {e: i for i, e in enumerate(EFFECT_ORDER)}

#: Calls whose *value* depends on when they run, even though their effect
#: class is benign for hoisting (moving one changes a measurement, not a
#: result).  They must never be deduplicated or deleted as "redundant":
#: two clock reads are two different values by design.
VOLATILE_CALLS = frozenset({"obs_now", "scan_tick"})


def effect_join(a: str, b: str) -> str:
    """The stronger of two effect classes."""
    return a if _EFFECT_RANK[a] >= _EFFECT_RANK[b] else b


def expr_effect(expr: ir.Expr) -> str:
    """The strongest effect evaluating ``expr`` can have.

    Subscript reads rank as ``READ``: they observe mutable state and may
    fault, but never change anything.  Unknown helpers rank ``UNKNOWN``.
    """
    worst = PURE
    for node in ir.walk_expr(expr):
        if isinstance(node, ir.Call):
            eff = call_effect(node.fn)
            worst = effect_join(worst, UNKNOWN if eff is None else eff)
        elif isinstance(node, ir.Index):
            worst = effect_join(worst, READ)
        elif isinstance(node, ir.ListExpr):
            # a fresh mutable list is an allocation, not a pure value
            worst = effect_join(worst, ALLOC)
    return worst


def stmt_effect(stmt: ir.Stmt) -> str:
    """The strongest effect of one statement's direct expressions.

    ``SetIndex`` is a write by construction; sub-blocks are *not* folded
    in (callers walking a region join block effects themselves).
    """
    worst = PURE
    if isinstance(stmt, ir.SetIndex):
        worst = WRITE
    for expr in ir.stmt_exprs(stmt):
        worst = effect_join(worst, expr_effect(expr))
    return worst


def has_volatile(expr: ir.Expr) -> bool:
    """True when ``expr`` contains a call whose value is time-dependent."""
    return any(
        isinstance(node, ir.Call) and node.fn in VOLATILE_CALLS
        for node in ir.walk_expr(expr)
    )


def may_fault(expr: ir.Expr) -> bool:
    """Whether evaluating ``expr`` could raise at run time.

    Conservative per node: subscripts can be out of bounds, division-family
    operators can divide by zero (unless the divisor is a non-zero
    constant), and unknown calls can do anything.  Known intrinsics are
    taken at their effect-table word: the ones classed ``PURE``/``READ``
    are total over the values codegen feeds them.
    """
    for node in ir.walk_expr(expr):
        if isinstance(node, ir.Index):
            return True
        if isinstance(node, ir.Bin) and node.op in ("/", "//", "%"):
            rhs = node.rhs
            if not (isinstance(rhs, ir.Const) and rhs.value not in (0, 0.0)):
                return True
        if isinstance(node, ir.Call) and call_effect(node.fn) is None:
            return True
    return False


# ---------------------------------------------------------------------------
# Statement facts (Comment-transparent by construction)
# ---------------------------------------------------------------------------


def real_stmts(block: ir.Block) -> Iterator[ir.Stmt]:
    """The statements of ``block`` with transparent nodes skipped."""
    for stmt in block:
        if not ir.is_transparent(stmt):
            yield stmt


def stmt_defs(stmt: ir.Stmt) -> tuple[str, ...]:
    """Names ``stmt`` writes: fresh binds, loop variables, reassignments."""
    if isinstance(stmt, ir.Reassign):
        return (stmt.name,)
    bound = ir.stmt_binds(stmt)
    return () if bound is None else (bound,)


def nested_free_names(node: ir.NestedFunc) -> set[str]:
    """The free variables of a closure: names its body reads or reassigns
    without binding them itself (including transitively nested closures)."""
    bound: set[str] = set(node.params)
    used: set[str] = set()

    def walk(block: ir.Block) -> None:
        for stmt in block:
            for expr in ir.stmt_exprs(stmt):
                for sub in ir.walk_expr(expr):
                    if isinstance(sub, ir.Sym):
                        used.add(sub.name)
            if isinstance(stmt, ir.Reassign):
                used.add(stmt.name)
            name = ir.stmt_binds(stmt)
            if name is not None:
                bound.add(name)
            if isinstance(stmt, ir.NestedFunc):
                bound.update(stmt.params)
            for sub_block in ir.stmt_blocks(stmt):
                walk(sub_block)

    walk(node.body)
    return used - bound


def stmt_uses(stmt: ir.Stmt) -> set[str]:
    """Names ``stmt`` reads directly (not through its sub-blocks).

    A :class:`ir.NestedFunc` *uses* every free variable of its body: the
    closure observes those bindings when it runs, so any analysis that
    would reorder or delete their definitions must see the dependency.
    """
    if isinstance(stmt, ir.NestedFunc):
        return nested_free_names(stmt)
    out: set[str] = set()
    for expr in ir.stmt_exprs(stmt):
        for node in ir.walk_expr(expr):
            if isinstance(node, ir.Sym):
                out.add(node.name)
    return out


# ---------------------------------------------------------------------------
# Basic blocks / CFG
# ---------------------------------------------------------------------------


@dataclass
class BasicBlock:
    """A maximal straight-line statement run plus its control terminator.

    ``stmts`` holds the simple statements (assignments, writes, expression
    statements, nested function definitions -- and comments, which are kept
    for attribution but contribute no facts).  ``terminator`` is the
    structured statement that ends the block, when one does: an ``If`` (its
    condition is evaluated here), a ``ForRange``/``ForEach`` header (its
    bounds/iterable are evaluated and its variable defined here, once per
    entry and per back edge), a ``Break``/``Continue``/``Return``.  Plain
    ``While`` headers and join points have no terminator.
    """

    bid: int
    label: str = ""
    stmts: List[ir.Stmt] = field(default_factory=list)
    terminator: Optional[ir.Stmt] = None
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    def real(self) -> Iterator[ir.Stmt]:
        """Simple statements of the block, comments skipped."""
        yield from real_stmts(self.stmts)

    def facts_stmts(self) -> Iterator[ir.Stmt]:
        """Every statement contributing defs/uses, terminator included."""
        yield from self.real()
        if self.terminator is not None:
            yield self.terminator


class CFG:
    """The control-flow graph of one function scope.

    Nested functions are opaque simple statements in the enclosing graph
    (a closure is *defined* here, it runs elsewhere); build a separate CFG
    for each via :func:`build_cfg` on a synthetic function if needed.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: Dict[int, BasicBlock] = {}
        self.entry: int = 0
        self.exit: int = 0

    def block(self, bid: int) -> BasicBlock:
        return self.blocks[bid]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())

    def __len__(self) -> int:
        return len(self.blocks)

    def rpo(self) -> list[int]:
        """Block ids in reverse post-order from the entry (good iteration
        order for forward problems; unreachable blocks appended last)."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(bid: int) -> None:
            seen.add(bid)
            for succ in self.blocks[bid].succs:
                if succ not in seen:
                    visit(succ)
            order.append(bid)

        visit(self.entry)
        post = list(reversed(order))
        post.extend(bid for bid in self.blocks if bid not in seen)
        return post

    def render(self) -> str:  # pragma: no cover - debugging aid
        lines = []
        for bid in sorted(self.blocks):
            b = self.blocks[bid]
            term = type(b.terminator).__name__ if b.terminator else "-"
            lines.append(
                f"b{bid} [{b.label}] stmts={len(list(b.real()))} "
                f"term={term} -> {sorted(b.succs)}"
            )
        return "\n".join(lines)


_SIMPLE = (ir.Assign, ir.Reassign, ir.SetIndex, ir.ExprStmt, ir.NestedFunc)


class _CfgBuilder:
    def __init__(self, name: str) -> None:
        self.cfg = CFG(name)
        self._next = 0
        self.cfg.entry = self._new("entry").bid
        self._exit = self._new("exit")
        self.cfg.exit = self._exit.bid
        self.current = self.cfg.block(self.cfg.entry)

    def _new(self, label: str) -> BasicBlock:
        block = BasicBlock(bid=self._next, label=label)
        self._next += 1
        self.cfg.blocks[block.bid] = block
        return block

    def _edge(self, src: BasicBlock, dst: BasicBlock) -> None:
        if dst.bid not in src.succs:
            src.succs.append(dst.bid)
            dst.preds.append(src.bid)

    def _seal(self, stmt: ir.Stmt, target: BasicBlock, label: str) -> None:
        """Terminate the current block with a jump; open a fresh (dead)
        block so statically-unreachable trailing statements still land
        somewhere the lint layer can point at."""
        self.current.terminator = stmt
        self._edge(self.current, target)
        self.current = self._new(label)

    def build(self, body: ir.Block) -> CFG:
        self.walk(body, loops=[])
        self._edge(self.current, self._exit)
        return self.cfg

    def walk(self, block: ir.Block, loops: list[tuple[BasicBlock, BasicBlock]]) -> None:
        for stmt in block:
            if ir.is_transparent(stmt) or isinstance(stmt, _SIMPLE):
                # Comments ride along without splitting the block.
                self.current.stmts.append(stmt)
            elif isinstance(stmt, ir.If):
                cond_block = self.current
                cond_block.terminator = stmt
                join = self._new("join")
                then_entry = self._new("then")
                self._edge(cond_block, then_entry)
                self.current = then_entry
                self.walk(stmt.then, loops)
                self._edge(self.current, join)
                if stmt.els:
                    els_entry = self._new("else")
                    self._edge(cond_block, els_entry)
                    self.current = els_entry
                    self.walk(stmt.els, loops)
                    self._edge(self.current, join)
                else:
                    self._edge(cond_block, join)
                self.current = join
            elif isinstance(stmt, ir.While):
                header = self._new("loop-header")
                self._edge(self.current, header)
                exit_block = self._new("loop-exit")
                body_entry = self._new("loop-body")
                self._edge(header, body_entry)
                self.current = body_entry
                self.walk(stmt.body, loops + [(header, exit_block)])
                self._edge(self.current, header)  # back edge
                # ``while True`` only leaves through breaks/returns: no
                # header->exit edge exists unless a break created one.
                self.current = exit_block
            elif isinstance(stmt, (ir.ForRange, ir.ForEach)):
                header = self._new("for-header")
                header.terminator = stmt  # evaluates bounds, defines var
                self._edge(self.current, header)
                exit_block = self._new("for-exit")
                self._edge(header, exit_block)  # zero-iteration path
                body_entry = self._new("for-body")
                self._edge(header, body_entry)
                self.current = body_entry
                self.walk(stmt.body, loops + [(header, exit_block)])
                self._edge(self.current, header)  # back edge
                self.current = exit_block
            elif isinstance(stmt, ir.Break):
                if loops:
                    self._seal(stmt, loops[-1][1], "post-break")
                else:  # malformed program; verifier reports it
                    self._seal(stmt, self._exit, "post-break")
            elif isinstance(stmt, ir.Continue):
                if loops:
                    self._seal(stmt, loops[-1][0], "post-continue")
                else:
                    self._seal(stmt, self._exit, "post-continue")
            elif isinstance(stmt, ir.Return):
                self._seal(stmt, self._exit, "post-return")
            else:  # pragma: no cover - new node kinds must be taught here
                raise TypeError(f"unhandled statement kind: {stmt!r}")


def build_cfg(fn: ir.Function) -> CFG:
    """Basic blocks + edges for one function's body (closures opaque)."""
    return _CfgBuilder(fn.name).build(fn.body)


# ---------------------------------------------------------------------------
# Def-use chains
# ---------------------------------------------------------------------------


@dataclass
class DefUse:
    """Definition and use sites for every name in one function.

    Names are function-unique (the verifier bans shadowing), so a flat
    name -> sites mapping *is* the chain: ``defs`` holds the binding
    statements in program order (one for immutables, 1+N for a mutable
    with N reassigns), ``uses`` the reading statement per occurrence (a
    statement reading a name twice appears twice).  ``mutable`` is
    the set of names that may change after their first binding;
    ``closure_used`` the names some closure captures.
    """

    params: tuple[str, ...]
    defs: Dict[str, List[ir.Stmt]] = field(default_factory=dict)
    uses: Dict[str, List[ir.Stmt]] = field(default_factory=dict)
    mutable: Set[str] = field(default_factory=set)
    closure_used: Set[str] = field(default_factory=set)

    def use_count(self, name: str) -> int:
        return len(self.uses.get(name, ()))

    def is_dead(self, name: str) -> bool:
        """A binding nothing ever reads (reassignments are writes, not
        reads; closure captures count as reads)."""
        return self.use_count(name) == 0


def def_use(fn: ir.Function) -> DefUse:
    """Compute def/use sites over the whole function, closures included.

    The traversal crosses :class:`ir.NestedFunc` boundaries -- legal
    because names are unique across the whole function scope -- and
    additionally records each closure's free variables in
    ``closure_used`` (their definitions must survive as long as the
    closure might run).
    """
    du = DefUse(params=fn.params)

    def record_use(name: str, stmt: ir.Stmt) -> None:
        du.uses.setdefault(name, []).append(stmt)

    def walk(block: ir.Block) -> None:
        for stmt in block:
            if ir.is_transparent(stmt):
                continue
            if isinstance(stmt, ir.NestedFunc):
                du.defs.setdefault(stmt.name, []).append(stmt)
                du.closure_used.update(nested_free_names(stmt))
                walk(stmt.body)
                continue
            for expr in ir.stmt_exprs(stmt):
                for node in ir.walk_expr(expr):
                    if isinstance(node, ir.Sym):
                        record_use(node.name, stmt)
            for name in stmt_defs(stmt):
                du.defs.setdefault(name, []).append(stmt)
            if isinstance(stmt, ir.Reassign):
                du.mutable.add(stmt.name)
            elif isinstance(stmt, ir.Assign) and stmt.mutable:
                du.mutable.add(stmt.name)
            for sub in ir.stmt_blocks(stmt):
                walk(sub)

    walk(fn.body)
    return du


# ---------------------------------------------------------------------------
# Reaching definitions (forward, may)
# ---------------------------------------------------------------------------


class ReachingDefinitions:
    """Which definition sites may reach the start/end of each block.

    A definition site is ``id(stmt)`` of the defining statement (plus the
    synthetic ``("param", name)`` sites for parameters, which reach the
    entry).  ``reach_in``/``reach_out`` map block id -> frozenset of sites;
    ``site_name`` maps a site back to the name it defines.
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.site_name: Dict[object, str] = {}
        self.site_stmt: Dict[object, Optional[ir.Stmt]] = {}
        gen: Dict[int, Dict[str, object]] = {}
        defs_of: Dict[str, Set[object]] = {}

        for block in cfg:
            last: Dict[str, object] = {}
            for stmt in block.facts_stmts():
                for name in stmt_defs(stmt):
                    site = id(stmt)
                    self.site_name[site] = name
                    self.site_stmt[site] = stmt
                    defs_of.setdefault(name, set()).add(site)
                    last[name] = site
            gen[block.bid] = last

        entry_sites: Set[object] = set()
        # parameters reach the entry as synthetic sites
        param_names = getattr(cfg, "params", ())
        for name in param_names:
            site = ("param", name)
            self.site_name[site] = name
            self.site_stmt[site] = None
            defs_of.setdefault(name, set()).add(site)
            entry_sites.add(site)

        self.reach_in: Dict[int, frozenset] = {}
        self.reach_out: Dict[int, frozenset] = {}
        in_sets: Dict[int, Set[object]] = {b.bid: set() for b in cfg}
        out_sets: Dict[int, Set[object]] = {b.bid: set() for b in cfg}
        in_sets[cfg.entry] = set(entry_sites)

        order = cfg.rpo()
        changed = True
        while changed:
            changed = False
            for bid in order:
                block = cfg.block(bid)
                new_in: Set[object] = set(entry_sites) if bid == cfg.entry else set()
                for pred in block.preds:
                    new_in |= out_sets[pred]
                killed_names = set(gen[bid])
                new_out = {
                    s for s in new_in if self.site_name[s] not in killed_names
                }
                new_out.update(gen[bid].values())
                if new_in != in_sets[bid] or new_out != out_sets[bid]:
                    in_sets[bid] = new_in
                    out_sets[bid] = new_out
                    changed = True
        for bid in in_sets:
            self.reach_in[bid] = frozenset(in_sets[bid])
            self.reach_out[bid] = frozenset(out_sets[bid])

    def reaching_names(self, bid: int) -> set[str]:
        """The names with at least one definition reaching block entry."""
        return {self.site_name[s] for s in self.reach_in[bid]}


def reaching_definitions(fn: ir.Function) -> ReachingDefinitions:
    cfg = build_cfg(fn)
    cfg.params = fn.params  # type: ignore[attr-defined]
    return ReachingDefinitions(cfg)


# ---------------------------------------------------------------------------
# Liveness (backward, may)
# ---------------------------------------------------------------------------


class Liveness:
    """Live-variable analysis over a CFG.

    ``live_in[b]``/``live_out[b]`` are the names live at block entry/exit.
    ``exit_live`` names are pinned live at the function exit -- callers
    pass the closure-captured set, because a returned closure reads its
    captures after the body finishes (the Section 4.4 ``prepare``/``run``
    shape makes this the common case, not a corner).
    """

    def __init__(self, cfg: CFG, exit_live: Set[str] = frozenset()) -> None:
        self.cfg = cfg
        self.exit_live = set(exit_live)
        use: Dict[int, Set[str]] = {}
        defs: Dict[int, Set[str]] = {}
        for block in cfg:
            upward: Set[str] = set()
            defined: Set[str] = set()
            for stmt in block.facts_stmts():
                for name in stmt_uses(stmt):
                    if name not in defined:
                        upward.add(name)
                for name in stmt_defs(stmt):
                    defined.add(name)
            use[block.bid] = upward
            defs[block.bid] = defined

        self.live_in: Dict[int, Set[str]] = {b.bid: set() for b in cfg}
        self.live_out: Dict[int, Set[str]] = {b.bid: set() for b in cfg}
        order = list(reversed(cfg.rpo()))
        changed = True
        while changed:
            changed = False
            for bid in order:
                block = cfg.block(bid)
                out: Set[str] = set(self.exit_live) if bid == cfg.exit else set()
                for succ in block.succs:
                    out |= self.live_in[succ]
                new_in = use[bid] | (out - defs[bid])
                if out != self.live_out[bid] or new_in != self.live_in[bid]:
                    self.live_out[bid] = out
                    self.live_in[bid] = new_in
                    changed = True


def liveness(fn: ir.Function) -> Liveness:
    du = def_use(fn)
    return Liveness(build_cfg(fn), exit_live=du.closure_used)


# ---------------------------------------------------------------------------
# Convenience bundle
# ---------------------------------------------------------------------------


@dataclass
class FunctionDataflow:
    """Every fact for one function, computed once and shared."""

    fn: ir.Function
    cfg: CFG
    defuse: DefUse
    reaching: ReachingDefinitions
    live: Liveness


def analyze_function(fn: ir.Function) -> FunctionDataflow:
    """Compute CFG + def-use + reaching definitions + liveness for ``fn``."""
    cfg = build_cfg(fn)
    cfg.params = fn.params  # type: ignore[attr-defined]
    du = def_use(fn)
    reaching = ReachingDefinitions(cfg)
    live = Liveness(cfg, exit_live=du.closure_used)
    return FunctionDataflow(fn=fn, cfg=cfg, defuse=du, reaching=reaching, live=live)


def analyze_program(functions: Sequence[ir.Function]) -> list[FunctionDataflow]:
    return [analyze_function(fn) for fn in functions]
