"""A cost-based optimizer for single-block queries (join graph -> plan).

The paper leans on this component existing: "the database community has
already solved the query optimization problem for interpreted engines, and
cost-based optimizers that produce good plans are available" (Section 7);
LB2 "delegates such decisions to the query optimizer".  This module is that
delegate for the SQL front-end:

* predicate pushdown -- single-relation conjuncts filter their scan;
* projection pruning -- scans keep only referenced columns;
* greedy cost-based join ordering over table statistics, with the smaller
  estimated input as the hash-join build side;
* the remaining cross-relation predicates, aggregation, HAVING, output
  projection, DISTINCT, ORDER BY and LIMIT layered on top.

Hand-written plans (the TPC-H suite) bypass this module, exactly as plans
are "supplied explicitly" to LB2 in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.catalog.catalog import Catalog
from repro.plan import physical as phys
from repro.plan.expressions import (
    AggSpec,
    And,
    Cmp,
    Col,
    Const,
    Expr,
    InList,
    Like,
    col,
)
from repro.storage.database import Database


class OptimizeError(Exception):
    """Raised for unplannable query blocks (e.g. cross products)."""


@dataclass
class Relation:
    """One FROM item with its pushed-down filters."""

    alias: str
    table: str
    filters: list[Expr] = field(default_factory=list)


@dataclass
class QueryBlock:
    """A normalized single-block query, ready for join ordering.

    All column names are alias-qualified (``alias.column``); the physical
    scans rename accordingly, so self-joins are safe by construction.
    """

    relations: list[Relation]
    join_edges: list[tuple[str, str]]  # (left qualified col, right qualified col)
    cross_filters: list[Expr] = field(default_factory=list)
    keys: list[tuple[str, Expr]] = field(default_factory=list)
    aggs: list[tuple[str, AggSpec]] = field(default_factory=list)
    having: Optional[Expr] = None
    outputs: list[tuple[str, Expr]] = field(default_factory=list)
    order_by: list[tuple[str, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
    # Columns needed by operators grafted above the join tree (subquery
    # correlation keys); protects them from projection pruning.
    extra_columns: list[str] = field(default_factory=list)


def _alias_of(qualified: str) -> str:
    return qualified.split(".", 1)[0]


# ---------------------------------------------------------------------------
# Cardinality estimation
# ---------------------------------------------------------------------------


def _filter_selectivity(pred: Expr, db: Database, relation: Relation) -> float:
    stats = db.stats(relation.table)

    def column_stats(qualified: str):
        return stats.column(qualified.split(".", 1)[1])

    if isinstance(pred, And):
        out = 1.0
        for term in pred.terms:
            out *= _filter_selectivity(term, db, relation)
        return out
    if isinstance(pred, Cmp) and isinstance(pred.lhs, Col) and isinstance(pred.rhs, Const):
        cs = column_stats(pred.lhs.name)
        if cs is None:
            return 1.0 / 3.0
        if pred.op == "==":
            return cs.selectivity_eq()
        if pred.op in ("<", "<="):
            return cs.selectivity_range(hi=pred.rhs.value)
        if pred.op in (">", ">="):
            return cs.selectivity_range(lo=pred.rhs.value)
        return 1.0 - cs.selectivity_eq()  # !=
    if isinstance(pred, InList) and isinstance(pred.term, Col):
        cs = column_stats(pred.term.name)
        if cs is None:
            return 1.0 / 3.0
        return min(1.0, len(pred.values) * cs.selectivity_eq())
    if isinstance(pred, Like):
        return 0.1 if not pred.negate else 0.9
    return 1.0 / 3.0  # the classic default


def estimated_rows(relation: Relation, db: Database) -> float:
    """Post-filter cardinality estimate for one relation."""
    rows = float(db.stats(relation.table).row_count)
    for pred in relation.filters:
        rows *= _filter_selectivity(pred, db, relation)
    return max(rows, 1.0)


def _join_result_estimate(
    left_rows: float,
    right_rows: float,
    edges: Sequence[tuple[str, str]],
    db: Database,
    relations: dict[str, Relation],
) -> float:
    result = left_rows * right_rows
    for lcol, rcol in edges:
        distincts = []
        for qualified in (lcol, rcol):
            relation = relations[_alias_of(qualified)]
            cs = db.stats(relation.table).column(qualified.split(".", 1)[1])
            if cs is not None:
                distincts.append(max(cs.distinct, 1))
        if distincts:
            result /= max(distincts)
    return max(result, 1.0)


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------


def _scan_plan(
    relation: Relation, needed: set[str], catalog: Catalog
) -> phys.PhysicalPlan:
    schema = catalog.table(relation.table)
    rename = {c.name: f"{relation.alias}.{c.name}" for c in schema.columns}
    plan: phys.PhysicalPlan = phys.Scan(relation.table, rename=rename)
    if relation.filters:
        plan = phys.Select(plan, And(*relation.filters))
    keep = [q for q in (rename[c.name] for c in schema.columns) if q in needed]
    if keep and len(keep) < len(schema.columns):
        plan = phys.Project(plan, [(name, col(name)) for name in keep])
    return plan


def _needed_columns(block: QueryBlock) -> set[str]:
    needed: set[str] = set()
    for lcol, rcol in block.join_edges:
        needed.add(lcol)
        needed.add(rcol)
    for pred in block.cross_filters:
        needed |= pred.columns()
    for _, expr in block.keys:
        needed |= expr.columns()
    for _, spec in block.aggs:
        needed |= spec.columns()
    if not block.aggs and not block.keys:
        for _, expr in block.outputs:
            needed |= expr.columns()
    needed |= set(block.extra_columns)
    return needed


def order_joins(
    block: QueryBlock, db: Database, catalog: Catalog
) -> phys.PhysicalPlan:
    """Greedy cost-based join ordering; returns the joined subplan."""
    relations = {r.alias: r for r in block.relations}
    needed = _needed_columns(block)
    # All pushed-filter columns are needed *inside* the scan's Select, which
    # sits below the Project, so only cross-plan columns matter here.
    plans = {
        alias: _scan_plan(rel, needed, catalog) for alias, rel in relations.items()
    }
    sizes = {alias: estimated_rows(rel, db) for alias, rel in relations.items()}
    if len(plans) == 1:
        return next(iter(plans.values()))

    remaining_edges = list(block.join_edges)
    joined: set[str] = set()
    start = min(sizes, key=lambda a: sizes[a])
    joined.add(start)
    current = plans[start]
    current_rows = sizes[start]

    while len(joined) < len(relations):
        # Candidate relations connected to the joined set by at least one edge.
        candidates: dict[str, list[tuple[str, str]]] = {}
        for lcol, rcol in remaining_edges:
            la, ra = _alias_of(lcol), _alias_of(rcol)
            if la in joined and ra not in joined:
                candidates.setdefault(ra, []).append((lcol, rcol))
            elif ra in joined and la not in joined:
                candidates.setdefault(la, []).append((rcol, lcol))
        if not candidates:
            missing = sorted(set(relations) - joined)
            raise OptimizeError(
                f"query requires a cross product to reach {missing}; "
                "add a join predicate"
            )
        best_alias = None
        best_cost = float("inf")
        for alias, edges in candidates.items():
            cost = _join_result_estimate(
                current_rows, sizes[alias], edges, db, relations
            )
            if cost < best_cost:
                best_alias, best_cost = alias, cost
        assert best_alias is not None
        edges = candidates[best_alias]
        left_keys = tuple(e[0] for e in edges)   # in the joined set
        right_keys = tuple(e[1] for e in edges)  # in the new relation
        # Build on the smaller estimated side.
        if sizes[best_alias] <= current_rows:
            current = phys.HashJoin(plans[best_alias], current, right_keys, left_keys)
        else:
            current = phys.HashJoin(current, plans[best_alias], left_keys, right_keys)
        joined.add(best_alias)
        current_rows = best_cost
        remaining_edges = [
            e for e in remaining_edges
            if not (_alias_of(e[0]) in joined and _alias_of(e[1]) in joined)
        ]
    return current


def plan_block(
    block: QueryBlock,
    db: Database,
    catalog: Catalog,
    base: Optional[phys.PhysicalPlan] = None,
) -> phys.PhysicalPlan:
    """Full pipeline: joins, residual filters, aggregation, output shaping.

    ``base`` overrides the join phase entirely -- the SQL planner uses this
    after grafting decorrelated subquery operators onto the join tree.
    """
    if base is not None:
        plan = base
    else:
        plan = order_joins(block, db, catalog)
        if block.cross_filters:
            plan = phys.Select(plan, And(*block.cross_filters))
    if block.aggs or block.keys:
        plan = phys.Agg(plan, block.keys, block.aggs)
    if block.having is not None:
        plan = phys.Select(plan, block.having)
    if block.outputs:
        plan = phys.Project(plan, block.outputs)
    if block.distinct:
        plan = phys.Distinct(plan)
    if block.order_by:
        plan = phys.Sort(plan, block.order_by)
    if block.limit is not None:
        plan = phys.Limit(plan, block.limit)
    return plan
