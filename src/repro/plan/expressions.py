"""Scalar expressions over records, with three co-defined backends.

Each node knows how to:

* ``eval(row)``      -- evaluate directly on a runtime row (dict); used by the
  Volcano and push interpreters;
* ``stage(rec)``     -- evaluate symbolically on a staged record, *emitting*
  residual code (the LB2 path -- the Futamura projection applied to this very
  evaluator);
* ``template(rec)``  -- render a Python source fragment referencing ``rec``
  (the coarse template-expansion compiler of Section 4's strawman).

Keeping all three on one node is the reproduction's embodiment of the
paper's claim that the compiler is the interpreter, re-typed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.catalog.types import ColumnType

Types = dict[str, ColumnType]


class ExprError(Exception):
    """Raised on malformed expressions or unresolvable columns."""


class Expr:
    """Base class for scalar expressions."""

    def eval(self, row: dict) -> object:
        raise NotImplementedError

    def stage(self, rec) -> object:
        raise NotImplementedError

    def template(self, rec: str) -> str:
        raise NotImplementedError

    def columns(self) -> set[str]:
        raise NotImplementedError

    def result_type(self, types: Types) -> ColumnType:
        raise NotImplementedError

    # -- tiny combinator sugar used by query definitions ------------------------

    def __add__(self, other: "Expr") -> "Arith":
        return Arith("+", self, _wrap(other))

    def __sub__(self, other: "Expr") -> "Arith":
        return Arith("-", self, _wrap(other))

    def __mul__(self, other: "Expr") -> "Arith":
        return Arith("*", self, _wrap(other))

    def __truediv__(self, other: "Expr") -> "Arith":
        return Arith("/", self, _wrap(other))

    def eq(self, other) -> "Cmp":
        return Cmp("==", self, _wrap(other))

    def ne(self, other) -> "Cmp":
        return Cmp("!=", self, _wrap(other))

    def lt(self, other) -> "Cmp":
        return Cmp("<", self, _wrap(other))

    def le(self, other) -> "Cmp":
        return Cmp("<=", self, _wrap(other))

    def gt(self, other) -> "Cmp":
        return Cmp(">", self, _wrap(other))

    def ge(self, other) -> "Cmp":
        return Cmp(">=", self, _wrap(other))


def _wrap(value) -> Expr:
    if isinstance(value, Expr):
        return value
    return Const(value)


@dataclass(frozen=True)
class Col(Expr):
    """A reference to a named field of the current record."""

    name: str

    def eval(self, row: dict) -> object:
        try:
            return row[self.name]
        except KeyError:
            raise ExprError(
                f"record has no field {self.name!r}; fields: {sorted(row)}"
            ) from None

    def stage(self, rec):
        return rec[self.name]

    def template(self, rec: str) -> str:
        return f"{rec}[{self.name!r}]"

    def columns(self) -> set[str]:
        return {self.name}

    def result_type(self, types: Types) -> ColumnType:
        try:
            return types[self.name]
        except KeyError:
            raise ExprError(f"unknown field {self.name!r} in type context") from None


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant (present-stage: folded into generated code)."""

    value: object

    def eval(self, row: dict) -> object:
        return self.value

    def stage(self, rec):
        return rec.ctx.lift(self.value)

    def template(self, rec: str) -> str:
        return repr(self.value)

    def columns(self) -> set[str]:
        return set()

    def result_type(self, types: Types) -> ColumnType:
        if isinstance(self.value, bool):
            return ColumnType.BOOL
        if isinstance(self.value, int):
            return ColumnType.INT
        if isinstance(self.value, float):
            return ColumnType.FLOAT
        if isinstance(self.value, str):
            return ColumnType.STRING
        raise ExprError(f"untypable constant {self.value!r}")


@dataclass(frozen=True)
class Param(Expr):
    """A runtime parameter slot (future-stage: *not* folded into code).

    Where :class:`Const` is a present-stage value the generator bakes into
    the residual program, ``Param`` is a hole the residual program fills at
    every execution from the parameter vector it closes over -- parameters
    are applied last and never change the plan.  ``index`` is the slot in
    that vector, ``name`` the source-level ``:name`` (``None`` for
    positional ``?``), and ``ptype`` the type the planner inferred from the
    expression context (a comparison against a column, an arithmetic
    sibling, ...).

    ``eval`` raises: the interpreted engines never see a ``Param`` --
    callers substitute bound values first (``plan.params.bind_params``).
    """

    index: int
    name: Optional[str] = None
    ptype: Optional[ColumnType] = None

    def eval(self, row: dict) -> object:
        from repro.errors import ParamError

        raise ParamError(
            f"unbound parameter {self.describe()}: interpreted execution "
            "requires bind_params() before eval",
            phase="execute",
        )

    def stage(self, rec):
        return rec.ctx.param_rep(self.index)

    def template(self, rec: str) -> str:
        return f"params[{self.index}]"

    def columns(self) -> set[str]:
        return set()

    def result_type(self, types: Types) -> ColumnType:
        if self.ptype is None:
            raise ExprError(f"parameter {self.describe()} has no inferred type")
        return self.ptype

    def describe(self) -> str:
        return f":{self.name}" if self.name else f"?{self.index}"


_ARITH_EVAL = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class Arith(Expr):
    """Binary arithmetic (+ - * /)."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITH_EVAL:
            raise ExprError(f"unknown arithmetic operator {self.op!r}")

    def eval(self, row: dict) -> object:
        return _ARITH_EVAL[self.op](self.lhs.eval(row), self.rhs.eval(row))

    def stage(self, rec):
        lhs, rhs = self.lhs.stage(rec), self.rhs.stage(rec)
        if self.op == "+":
            return lhs + rhs
        if self.op == "-":
            return lhs - rhs
        if self.op == "*":
            return lhs * rhs
        return lhs / rhs

    def template(self, rec: str) -> str:
        return f"({self.lhs.template(rec)} {self.op} {self.rhs.template(rec)})"

    def columns(self) -> set[str]:
        return self.lhs.columns() | self.rhs.columns()

    def result_type(self, types: Types) -> ColumnType:
        if self.op == "/":
            return ColumnType.FLOAT
        left = self.lhs.result_type(types)
        right = self.rhs.result_type(types)
        if ColumnType.FLOAT in (left, right):
            return ColumnType.FLOAT
        return ColumnType.INT


_CMP_EVAL = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Cmp(Expr):
    """A comparison producing a boolean."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in _CMP_EVAL:
            raise ExprError(f"unknown comparison operator {self.op!r}")

    def eval(self, row: dict) -> bool:
        return _CMP_EVAL[self.op](self.lhs.eval(row), self.rhs.eval(row))

    def stage(self, rec):
        from repro.compiler.staged_record import DicValue

        lhs, rhs = self.lhs.stage(rec), self.rhs.stage(rec)
        op = self.op
        if isinstance(rhs, DicValue) and not isinstance(lhs, DicValue):
            # Dictionary-compressed values drive the specialization; mirror
            # the comparison so the DicValue is the receiver.
            lhs, rhs = rhs, lhs
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}[op]
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        return lhs >= rhs

    def template(self, rec: str) -> str:
        return f"({self.lhs.template(rec)} {self.op} {self.rhs.template(rec)})"

    def columns(self) -> set[str]:
        return self.lhs.columns() | self.rhs.columns()

    def result_type(self, types: Types) -> ColumnType:
        return ColumnType.BOOL


@dataclass(frozen=True)
class And(Expr):
    """Conjunction of one or more boolean expressions."""

    terms: tuple[Expr, ...]

    def __init__(self, *terms: Expr) -> None:
        flat: list[Expr] = []
        for term in terms:
            if isinstance(term, And):
                flat.extend(term.terms)
            else:
                flat.append(term)
        if not flat:
            raise ExprError("And() needs at least one term")
        object.__setattr__(self, "terms", tuple(flat))

    def eval(self, row: dict) -> bool:
        return all(t.eval(row) for t in self.terms)

    def stage(self, rec):
        result = self.terms[0].stage(rec)
        for term in self.terms[1:]:
            result = result & term.stage(rec)
        return result

    def template(self, rec: str) -> str:
        return "(" + " and ".join(t.template(rec) for t in self.terms) + ")"

    def columns(self) -> set[str]:
        out: set[str] = set()
        for term in self.terms:
            out |= term.columns()
        return out

    def result_type(self, types: Types) -> ColumnType:
        return ColumnType.BOOL


@dataclass(frozen=True)
class Or(Expr):
    """Disjunction of one or more boolean expressions."""

    terms: tuple[Expr, ...]

    def __init__(self, *terms: Expr) -> None:
        flat: list[Expr] = []
        for term in terms:
            if isinstance(term, Or):
                flat.extend(term.terms)
            else:
                flat.append(term)
        if not flat:
            raise ExprError("Or() needs at least one term")
        object.__setattr__(self, "terms", tuple(flat))

    def eval(self, row: dict) -> bool:
        return any(t.eval(row) for t in self.terms)

    def stage(self, rec):
        result = self.terms[0].stage(rec)
        for term in self.terms[1:]:
            result = result | term.stage(rec)
        return result

    def template(self, rec: str) -> str:
        return "(" + " or ".join(t.template(rec) for t in self.terms) + ")"

    def columns(self) -> set[str]:
        out: set[str] = set()
        for term in self.terms:
            out |= term.columns()
        return out

    def result_type(self, types: Types) -> ColumnType:
        return ColumnType.BOOL


@dataclass(frozen=True)
class Not(Expr):
    """Boolean negation."""

    term: Expr

    def eval(self, row: dict) -> bool:
        return not self.term.eval(row)

    def stage(self, rec):
        return ~self.term.stage(rec)

    def template(self, rec: str) -> str:
        return f"(not {self.term.template(rec)})"

    def columns(self) -> set[str]:
        return self.term.columns()

    def result_type(self, types: Types) -> ColumnType:
        return ColumnType.BOOL


def _like_shape(pattern: str) -> tuple[str, tuple[str, ...]]:
    """Classify a LIKE pattern for specialization.

    Returns ``(shape, parts)`` where shape is one of ``exact``, ``prefix``,
    ``suffix``, ``contains``, ``contains2`` (``%a%b%``) or ``generic``.
    The common shapes compile to direct string operations; ``generic`` falls
    back to the runtime matcher.
    """
    if "_" in pattern:
        return "generic", (pattern,)
    body = pattern.split("%")
    if len(body) == 1:
        return "exact", (pattern,)
    if len(body) == 2:
        head, tail = body
        if head and not tail:
            return "prefix", (head,)
        if tail and not head:
            return "suffix", (tail,)
        if head and tail:
            return "generic", (pattern,)
        return "any", ()
    if len(body) == 3 and not body[0] and not body[2] and body[1]:
        return "contains", (body[1],)
    if (
        len(body) == 4
        and not body[0]
        and not body[3]
        and body[1]
        and body[2]
    ):
        return "contains2", (body[1], body[2])
    return "generic", (pattern,)


@dataclass(frozen=True)
class Like(Expr):
    """SQL LIKE, specialized by pattern shape at construction time."""

    term: Expr
    pattern: str
    negate: bool = False

    @property
    def shape(self) -> str:
        return _like_shape(self.pattern)[0]

    def _match(self, value: str) -> bool:
        shape, parts = _like_shape(self.pattern)
        if shape == "exact":
            result = value == self.pattern
        elif shape == "prefix":
            result = value.startswith(parts[0])
        elif shape == "suffix":
            result = value.endswith(parts[0])
        elif shape == "contains":
            result = parts[0] in value
        elif shape == "contains2":
            first = value.find(parts[0])
            result = first >= 0 and value.find(parts[1], first + len(parts[0])) >= 0
        elif shape == "any":
            result = True
        else:
            from repro.compiler import runtime

            result = runtime.like(value, self.pattern)
        return not result if self.negate else result

    def eval(self, row: dict) -> bool:
        return self._match(self.term.eval(row))

    def stage(self, rec):
        value = self.term.stage(rec)
        shape, parts = _like_shape(self.pattern)
        ctx = rec.ctx
        if shape == "exact":
            result = value == self.pattern
        elif shape == "prefix":
            result = value.startswith(parts[0])
        elif shape == "suffix":
            result = value.endswith(parts[0])
        elif shape == "contains":
            result = value.contains(parts[0])
        elif shape == "contains2":
            result = ctx.call(
                "like_contains2", [value, parts[0], parts[1]], result="bool"
            )
        elif shape == "any":
            result = ctx.bool_(True)
        else:
            result = ctx.call("like", [value, self.pattern], result="bool")
        return ~result if self.negate else result

    def template(self, rec: str) -> str:
        value = self.term.template(rec)
        shape, parts = _like_shape(self.pattern)
        if shape == "exact":
            body = f"({value} == {self.pattern!r})"
        elif shape == "prefix":
            body = f"{value}.startswith({parts[0]!r})"
        elif shape == "suffix":
            body = f"{value}.endswith({parts[0]!r})"
        elif shape == "contains":
            body = f"({parts[0]!r} in {value})"
        elif shape == "any":
            body = "True"
        else:
            body = f"rt.like({value}, {self.pattern!r})"
        return f"(not {body})" if self.negate else body

    def columns(self) -> set[str]:
        return self.term.columns()

    def result_type(self, types: Types) -> ColumnType:
        return ColumnType.BOOL


@dataclass(frozen=True)
class Case(Expr):
    """``CASE WHEN cond THEN a ELSE b END`` (two-armed)."""

    cond: Expr
    then: Expr
    els: Expr

    def eval(self, row: dict) -> object:
        return self.then.eval(row) if self.cond.eval(row) else self.els.eval(row)

    def stage(self, rec):
        # Both arms are staged *outside* the branch: expressions are pure,
        # and hoisting the loads keeps record-field memoization sound (a
        # field first touched inside a branch must not be reused after it).
        ctx = rec.ctx
        cond = self.cond.stage(rec)
        then = self.then.stage(rec)
        els = self.els.stage(rec)
        var = ctx.var(_plain(els, ctx), prefix="case")
        with ctx.if_(cond):
            var.set(_plain(then, ctx))
        return var.get()

    def template(self, rec: str) -> str:
        return (
            f"({self.then.template(rec)} if {self.cond.template(rec)} "
            f"else {self.els.template(rec)})"
        )

    def columns(self) -> set[str]:
        return self.cond.columns() | self.then.columns() | self.els.columns()

    def result_type(self, types: Types) -> ColumnType:
        return self.then.result_type(types)


def _plain(value, ctx):
    """Force a staged value to a plain Rep (decode dictionary codes)."""
    from repro.compiler.staged_record import DicValue

    if isinstance(value, DicValue):
        return value.decode()
    return value


@dataclass(frozen=True)
class ExtractYear(Expr):
    """``extract(year from date_col)`` on the integer date encoding."""

    term: Expr

    def eval(self, row: dict) -> int:
        return self.term.eval(row) // 10000

    def stage(self, rec):
        return self.term.stage(rec) // 10000

    def template(self, rec: str) -> str:
        return f"({self.term.template(rec)} // 10000)"

    def columns(self) -> set[str]:
        return self.term.columns()

    def result_type(self, types: Types) -> ColumnType:
        return ColumnType.INT


@dataclass(frozen=True)
class Substring(Expr):
    """``substring(s from start for length)`` -- 1-based, like SQL."""

    term: Expr
    start: int
    length: int

    def eval(self, row: dict) -> str:
        value = self.term.eval(row)
        return value[self.start - 1 : self.start - 1 + self.length]

    def stage(self, rec):
        value = self.term.stage(rec)
        return value.substring(self.start - 1, self.start - 1 + self.length)

    def template(self, rec: str) -> str:
        lo = self.start - 1
        return f"{self.term.template(rec)}[{lo}:{lo + self.length}]"

    def columns(self) -> set[str]:
        return self.term.columns()

    def result_type(self, types: Types) -> ColumnType:
        return ColumnType.STRING


@dataclass(frozen=True)
class InList(Expr):
    """``expr IN (const, ...)`` over a literal list."""

    term: Expr
    values: tuple

    def __init__(self, term: Expr, values: Sequence[object]) -> None:
        object.__setattr__(self, "term", term)
        object.__setattr__(self, "values", tuple(values))

    def eval(self, row: dict) -> bool:
        return self.term.eval(row) in self.values

    def stage(self, rec):
        value = self.term.stage(rec)
        result = value == self.values[0]
        for candidate in self.values[1:]:
            result = result | (value == candidate)
        return result

    def template(self, rec: str) -> str:
        return f"({self.term.template(rec)} in {self.values!r})"

    def columns(self) -> set[str]:
        return self.term.columns()

    def result_type(self, types: Types) -> ColumnType:
        return ColumnType.BOOL


def Between(term: Expr, lo, hi) -> And:
    """``term BETWEEN lo AND hi`` (inclusive both ends)."""
    return And(term.ge(lo), term.le(hi))


# -- aggregate specifications ---------------------------------------------------

_AGG_KINDS = ("sum", "count", "avg", "min", "max", "count_distinct")


@dataclass(frozen=True)
class AggSpec:
    """An aggregate over a group: kind plus the aggregated expression."""

    kind: str
    expr: Optional[Expr] = None

    def __post_init__(self) -> None:
        if self.kind not in _AGG_KINDS:
            raise ExprError(f"unknown aggregate kind {self.kind!r}")
        if self.kind != "count" and self.expr is None:
            raise ExprError(f"aggregate {self.kind!r} requires an expression")

    def columns(self) -> set[str]:
        return self.expr.columns() if self.expr is not None else set()

    def result_type(self, types: Types) -> ColumnType:
        if self.kind in ("count", "count_distinct"):
            return ColumnType.INT
        if self.kind == "avg":
            return ColumnType.FLOAT
        assert self.expr is not None
        return self.expr.result_type(types)


def sum_(expr: Expr) -> AggSpec:
    return AggSpec("sum", expr)


def count() -> AggSpec:
    return AggSpec("count")


def count_col(expr: Expr) -> AggSpec:
    """``count(expr)`` -- counts non-null values (left outer join support)."""
    return AggSpec("count", expr)


def avg(expr: Expr) -> AggSpec:
    return AggSpec("avg", expr)


def min_(expr: Expr) -> AggSpec:
    return AggSpec("min", expr)


def max_(expr: Expr) -> AggSpec:
    return AggSpec("max", expr)


def count_distinct(expr: Expr) -> AggSpec:
    return AggSpec("count_distinct", expr)


# -- terse constructors -----------------------------------------------------------


def col(name: str) -> Col:
    return Col(name)


def lit(value) -> Const:
    return Const(value)
