"""Parameter slots of a physical plan: collect, validate, bind.

A plan produced from parameterized SQL carries :class:`~repro.plan.
expressions.Param` leaves in its expression slots (Select predicates,
Project outputs, index-join residuals, aggregate arguments).  This module
is the single place that understands where those slots live:

* :func:`collect_params` walks a plan and returns its parameter signature
  -- one :class:`ParamSlot` per vector index, with the planner-inferred
  type (INT/FLOAT unify to FLOAT when occurrences disagree).  A slot the
  planner could not type raises the typed ``E_PARAM`` error here, at
  statement time, not deep inside code generation.
* :func:`check_bindings` validates user-supplied bindings (positional
  sequence or name mapping) against a signature and returns the positional
  value vector -- arity, missing/unknown names, and Python-type mismatches
  all raise ``E_PARAM`` with ``phase="execute"``.
* :func:`bind_params` substitutes a value vector into the plan, turning
  every ``Param`` back into a :class:`Const`.  The interpreted engines
  (Volcano, push) execute the bound plan; the compiled engines never need
  it -- their residual program reads the vector at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple, Union

from repro.catalog.types import ColumnType
from repro.errors import ParamError
from repro.plan import physical as phys
from repro.plan.expressions import (
    AggSpec,
    And,
    Arith,
    Case,
    Cmp,
    Const,
    Expr,
    ExtractYear,
    InList,
    Like,
    Not,
    Or,
    Param,
    Substring,
)

Bindings = Union[Sequence[object], Mapping[str, object]]


@dataclass(frozen=True)
class ParamSlot:
    """One slot of a plan's runtime parameter vector."""

    index: int
    ctype: ColumnType
    name: Optional[str] = None

    def describe(self) -> str:
        return f":{self.name}" if self.name else f"?{self.index}"


def _map_expr(expr: Expr, fn) -> Expr:
    """Rebuild ``expr`` with ``fn`` applied to every :class:`Param` leaf."""
    if isinstance(expr, Param):
        return fn(expr)
    if isinstance(expr, Arith):
        return Arith(expr.op, _map_expr(expr.lhs, fn), _map_expr(expr.rhs, fn))
    if isinstance(expr, Cmp):
        return Cmp(expr.op, _map_expr(expr.lhs, fn), _map_expr(expr.rhs, fn))
    if isinstance(expr, And):
        return And(*[_map_expr(t, fn) for t in expr.terms])
    if isinstance(expr, Or):
        return Or(*[_map_expr(t, fn) for t in expr.terms])
    if isinstance(expr, Not):
        return Not(_map_expr(expr.term, fn))
    if isinstance(expr, Case):
        return Case(
            _map_expr(expr.cond, fn),
            _map_expr(expr.then, fn),
            _map_expr(expr.els, fn),
        )
    if isinstance(expr, Like):
        return Like(_map_expr(expr.term, fn), expr.pattern, expr.negate)
    if isinstance(expr, InList):
        return InList(_map_expr(expr.term, fn), expr.values)
    if isinstance(expr, ExtractYear):
        return ExtractYear(_map_expr(expr.term, fn))
    if isinstance(expr, Substring):
        return Substring(_map_expr(expr.term, fn), expr.start, expr.length)
    return expr


def _walk_exprs(expr: Expr, out: list) -> None:
    def visit(param: Param) -> Expr:
        out.append(param)
        return param

    _map_expr(expr, visit)


def _map_agg(spec: AggSpec, fn) -> AggSpec:
    if spec.expr is None:
        return spec
    return AggSpec(spec.kind, _map_expr(spec.expr, fn))


def map_plan_exprs(plan: phys.PhysicalPlan, fn) -> phys.PhysicalPlan:
    """Rebuild ``plan`` with ``fn`` applied to every Param in every
    expression slot.  Operators without expression slots are rebuilt only
    when a child changed."""
    if isinstance(plan, phys.Select):
        return phys.Select(map_plan_exprs(plan.child, fn), _map_expr(plan.pred, fn))
    if isinstance(plan, phys.Project):
        return phys.Project(
            map_plan_exprs(plan.child, fn),
            [(n, _map_expr(e, fn)) for n, e in plan.outputs],
        )
    if isinstance(plan, phys.Agg):
        return phys.Agg(
            map_plan_exprs(plan.child, fn),
            [(n, _map_expr(e, fn)) for n, e in plan.keys],
            [(n, _map_agg(s, fn)) for n, s in plan.aggs],
        )
    if isinstance(plan, phys.GroupJoin):
        return phys.GroupJoin(
            map_plan_exprs(plan.left, fn),
            map_plan_exprs(plan.right, fn),
            plan.left_keys,
            plan.right_keys,
            [(n, _map_agg(s, fn)) for n, s in plan.aggs],
        )
    if isinstance(plan, phys.IndexJoin):
        return phys.IndexJoin(
            map_plan_exprs(plan.child, fn),
            plan.table,
            plan.table_key,
            plan.child_key,
            unique=plan.unique,
            residual=None if plan.residual is None else _map_expr(plan.residual, fn),
            rename=plan.rename_map,
        )
    if isinstance(plan, phys.IndexSemiJoin):
        return phys.IndexSemiJoin(
            map_plan_exprs(plan.child, fn),
            plan.table,
            plan.table_key,
            plan.child_key,
            anti=plan.anti,
            unique=plan.unique,
            residual=None if plan.residual is None else _map_expr(plan.residual, fn),
            rename=plan.rename_map,
        )
    if isinstance(plan, (phys.HashJoin, phys.LeftOuterJoin, phys.SemiJoin, phys.AntiJoin)):
        return type(plan)(
            map_plan_exprs(plan.left, fn),
            map_plan_exprs(plan.right, fn),
            plan.left_keys,
            plan.right_keys,
        )
    if isinstance(plan, phys.Sort):
        return phys.Sort(map_plan_exprs(plan.child, fn), plan.keys, plan.limit)
    if isinstance(plan, phys.Limit):
        return phys.Limit(map_plan_exprs(plan.child, fn), plan.n)
    if isinstance(plan, phys.Distinct):
        return phys.Distinct(map_plan_exprs(plan.child, fn))
    # Leaves (Scan, DateIndexScan) and any operator without expression
    # slots pass through untouched.
    return plan


def plan_params(plan: phys.PhysicalPlan) -> list[Param]:
    """Every Param occurrence in the plan, in traversal order."""
    out: list[Param] = []

    def visit(param: Param) -> Expr:
        out.append(param)
        return param

    map_plan_exprs(plan, visit)
    return out


def _unify(a: Optional[ColumnType], b: Optional[ColumnType], slot: str) -> Optional[ColumnType]:
    if a is None:
        return b
    if b is None or a is b:
        return a
    numeric = {ColumnType.INT, ColumnType.FLOAT}
    if a in numeric and b in numeric:
        return ColumnType.FLOAT
    if {a, b} == {ColumnType.DATE, ColumnType.INT}:
        return ColumnType.DATE
    raise ParamError(
        f"parameter {slot} used with conflicting types "
        f"{a.value} and {b.value}",
        phase="plan",
    )


def collect_params(plan: phys.PhysicalPlan) -> Tuple[ParamSlot, ...]:
    """The plan's parameter signature, ordered by vector index.

    Raises ``E_PARAM`` (phase ``plan``) for an untypable slot, a gap in
    the index sequence, or occurrences with irreconcilable types.
    """
    occurrences = plan_params(plan)
    if not occurrences:
        return ()
    by_index: dict[int, tuple[Optional[str], Optional[ColumnType]]] = {}
    for param in occurrences:
        name, ctype = by_index.get(param.index, (param.name, None))
        by_index[param.index] = (
            name or param.name,
            _unify(ctype, param.ptype, param.describe()),
        )
    count = max(by_index) + 1
    slots: list[ParamSlot] = []
    for index in range(count):
        if index not in by_index:
            raise ParamError(
                f"parameter vector has a gap at slot {index}", phase="plan"
            )
        name, ctype = by_index[index]
        if ctype is None:
            label = f":{name}" if name else f"?{index}"
            raise ParamError(
                f"cannot infer a type for parameter {label}; compare it "
                "against a column or another typed expression",
                phase="plan",
            )
        slots.append(ParamSlot(index, ctype, name))
    return tuple(slots)


_PY_TYPES = {
    ColumnType.INT: "int",
    ColumnType.FLOAT: "float",
    ColumnType.STRING: "str",
    ColumnType.DATE: "int (YYYYMMDD date encoding)",
    ColumnType.BOOL: "bool",
}


def _check_value(slot: ParamSlot, value: object) -> object:
    ok: bool
    if slot.ctype is ColumnType.BOOL:
        ok = isinstance(value, bool)
    elif slot.ctype is ColumnType.FLOAT:
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
    elif slot.ctype in (ColumnType.INT, ColumnType.DATE):
        ok = isinstance(value, int) and not isinstance(value, bool)
    else:  # STRING
        ok = isinstance(value, str)
    if not ok:
        raise ParamError(
            f"parameter {slot.describe()} expects {_PY_TYPES[slot.ctype]}, "
            f"got {type(value).__name__} {value!r}",
            phase="execute",
        )
    return value


def check_bindings(
    signature: Sequence[ParamSlot], params: Optional[Bindings]
) -> Tuple[object, ...]:
    """Validate bindings against a signature; return the positional vector.

    Positional statements take a sequence of the exact arity; named
    statements take either a mapping over exactly the statement's names or
    a sequence in first-occurrence order.  Every violation is a typed
    ``E_PARAM`` with ``phase="execute"`` -- never a raw ``TypeError``.
    """
    signature = tuple(signature)
    if not signature:
        if params:
            raise ParamError(
                f"statement takes no parameters, got {len(params)}",
                phase="execute",
            )
        return ()
    named = any(slot.name for slot in signature)
    if params is None:
        raise ParamError(
            f"statement takes {len(signature)} parameter(s), got none",
            phase="execute",
        )
    if isinstance(params, Mapping):
        if not named:
            raise ParamError(
                "statement uses positional '?' parameters; pass a sequence, "
                "not a mapping",
                phase="execute",
            )
        names = {slot.name for slot in signature}
        unknown = sorted(set(params) - names)
        if unknown:
            raise ParamError(
                f"unknown parameter name(s): {', '.join(unknown)}",
                phase="execute",
            )
        missing = sorted(names - set(params))
        if missing:
            raise ParamError(
                f"missing parameter(s): {', '.join(missing)}", phase="execute"
            )
        return tuple(
            _check_value(slot, params[slot.name]) for slot in signature
        )
    if isinstance(params, (str, bytes)):
        raise ParamError(
            "parameters must be a sequence or mapping, not a string",
            phase="execute",
        )
    values = tuple(params)
    if len(values) != len(signature):
        raise ParamError(
            f"statement takes {len(signature)} parameter(s), got {len(values)}",
            phase="execute",
        )
    return tuple(
        _check_value(slot, value) for slot, value in zip(signature, values)
    )


def bind_params(
    plan: phys.PhysicalPlan, values: Sequence[object]
) -> phys.PhysicalPlan:
    """Substitute a positional value vector: every Param becomes a Const.

    ``values`` must already be validated (:func:`check_bindings`); an
    out-of-range index raises ``E_PARAM`` defensively.
    """
    values = tuple(values)

    def visit(param: Param) -> Expr:
        if param.index >= len(values):
            raise ParamError(
                f"no binding for parameter {param.describe()}",
                phase="execute",
            )
        value = values[param.index]
        if param.ptype is ColumnType.FLOAT and isinstance(value, int):
            value = float(value)
        return Const(value)

    return map_plan_exprs(plan, visit)
