"""Plan-level optimization rewrites for the index levels of Section 4.3.

The paper argues these decisions belong at the query-plan level, not in
low-level code analysis ("LB2 does not attempt to infer indexes
automatically and instead delegates such decisions to the query
optimizer").  These rewriters are that delegation:

* :func:`rewrite_index_joins` -- replace a hash join whose build side is a
  (projected/filtered) base-table scan with an :class:`IndexJoin` through
  that table's primary/foreign-key hash index.
* :func:`rewrite_date_index_scans` -- route scans filtered by date-range
  predicates through the per-(year, month) date index, pruning partitions.

Both are semantics-preserving: filters stay in place (boundary partitions
re-check the predicate) and a Project restores the original field order, so
rewritten plans are drop-in replacements in every engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.catalog.catalog import Catalog
from repro.catalog.types import ColumnType
from repro.plan import physical as phys
from repro.plan.expressions import And, Cmp, Col, Const, Expr, col
from repro.storage.database import Database


@dataclass
class _ScanChain:
    """A decomposed Project*/Select*/Scan chain (the rewrite pattern)."""

    table: str
    scan_rename: dict[str, str]
    predicates: list[Expr]
    projected: Optional[list[str]]  # None = all columns


def _decompose(node: phys.PhysicalPlan) -> Optional[_ScanChain]:
    """Match ``Project(keep)* / Select* / Scan`` and pull it apart."""
    predicates: list[Expr] = []
    projected: Optional[list[str]] = None
    while True:
        if isinstance(node, phys.Project):
            names = []
            for name, expr in node.outputs:
                if not (isinstance(expr, Col) and expr.name == name):
                    return None  # computing/renaming projects are not rewritten
                names.append(name)
            if projected is None:
                projected = names
            else:
                projected = [n for n in names if n in projected] or names
            node = node.child
        elif isinstance(node, phys.Select):
            predicates.append(node.pred)
            node = node.child
        elif isinstance(node, phys.Scan):
            return _ScanChain(node.table, node.rename_map, predicates, projected)
        else:
            return None


def _base_column(chain: _ScanChain, name: str) -> Optional[str]:
    """Map an output field name back to the scanned table's column."""
    for original, renamed in chain.scan_rename.items():
        if renamed == name:
            return original
    return name if not chain.scan_rename or name not in chain.scan_rename.values() else None


def _try_index_join(
    node: phys.HashJoin, db: Database, catalog: Catalog
) -> Optional[phys.PhysicalPlan]:
    original_fields = node.field_names(catalog)

    for table_side, other_side, table_keys, other_keys in (
        (node.left, node.right, node.left_keys, node.right_keys),
        (node.right, node.left, node.right_keys, node.left_keys),
    ):
        if len(table_keys) != 1:
            continue
        chain = _decompose(table_side)
        if chain is None:
            continue
        base_key = _base_column(chain, table_keys[0])
        if base_key is None:
            continue
        if db.has_unique_index(chain.table, base_key):
            unique = True
        elif db.has_index(chain.table, base_key):
            unique = False
        else:
            continue
        residual = And(*chain.predicates) if chain.predicates else None
        candidate = phys.IndexJoin(
            child=other_side,
            table=chain.table,
            table_key=base_key,
            child_key=other_keys[0],
            unique=unique,
            residual=residual,
            rename=chain.scan_rename,
        )
        restored = phys.Project(candidate, [(n, col(n)) for n in original_fields])
        try:
            restored.validate(catalog)
        except phys.PlanError:
            continue  # field clash (self-join against the same table): skip
        return restored
    return None


def _try_index_semi_join(
    node, db: Database, catalog: Catalog
) -> Optional[phys.PhysicalPlan]:
    """Semi/anti joins whose right side scans an indexed key become
    existence probes (the paper's IndexSemiJoin / IndexAntiJoin)."""
    if len(node.right_keys) != 1:
        return None
    chain = _decompose(node.right)
    if chain is None:
        return None
    base_key = _base_column(chain, node.right_keys[0])
    if base_key is None:
        return None
    if db.has_unique_index(chain.table, base_key):
        unique = True
    elif db.has_index(chain.table, base_key):
        unique = False
    else:
        return None
    residual = And(*chain.predicates) if chain.predicates else None
    candidate = phys.IndexSemiJoin(
        child=node.left,
        table=chain.table,
        table_key=base_key,
        child_key=node.left_keys[0],
        anti=isinstance(node, phys.AntiJoin),
        unique=unique,
        residual=residual,
        rename=chain.scan_rename,
    )
    try:
        candidate.validate(catalog)
    except phys.PlanError:
        return None
    return candidate


def rewrite_index_joins(
    plan: phys.PhysicalPlan, db: Database, catalog: Catalog
) -> phys.PhysicalPlan:
    """Bottom-up: turn eligible hash/semi/anti joins into index joins."""
    rebuilt = _rebuild(plan, [
        rewrite_index_joins(c, db, catalog) for c in plan.children()
    ])
    if isinstance(rebuilt, phys.HashJoin):
        replacement = _try_index_join(rebuilt, db, catalog)
        if replacement is not None:
            return replacement
    if isinstance(rebuilt, (phys.SemiJoin, phys.AntiJoin)):
        replacement = _try_index_semi_join(rebuilt, db, catalog)
        if replacement is not None:
            return replacement
    return rebuilt


# -- date indexes ------------------------------------------------------------


@dataclass
class _DateRange:
    """The extracted range: bound values, strictness, and the conjuncts
    the scan absorbs (removed from the residual Select)."""

    column: str
    lo: Optional[int] = None
    hi: Optional[int] = None
    lo_strict: bool = False
    hi_strict: bool = False
    absorbed: tuple[Expr, ...] = ()


def _date_bounds(
    pred: Expr, chain: _ScanChain, schema, db: Database
) -> Optional[_DateRange]:
    """Extract the most constrained date range among indexed date columns."""
    conjuncts = list(pred.terms) if isinstance(pred, And) else [pred]
    per_column: dict[str, _DateRange] = {}
    for term in conjuncts:
        if not (
            isinstance(term, Cmp)
            and isinstance(term.lhs, Col)
            and isinstance(term.rhs, Const)
            and isinstance(term.rhs.value, int)
            and term.op in (">", ">=", "<", "<=")
        ):
            continue
        base = _base_column(chain, term.lhs.name)
        if base is None or not schema.has_column(base):
            continue
        if schema.column_type(base) is not ColumnType.DATE:
            continue
        if not db.has_date_index(chain.table, base):
            continue
        rng = per_column.setdefault(base, _DateRange(base))
        value = term.rhs.value
        strict = term.op in (">", "<")
        if term.op in (">", ">="):
            # keep the binding lower bound; strict wins ties
            if rng.lo is None or value > rng.lo or (value == rng.lo and strict):
                rng.lo, rng.lo_strict = value, strict
        else:
            if rng.hi is None or value < rng.hi or (value == rng.hi and strict):
                rng.hi, rng.hi_strict = value, strict
        rng.absorbed = rng.absorbed + (term,)
    best: Optional[_DateRange] = None
    best_score = 0
    for rng in per_column.values():
        score = (rng.lo is not None) + (rng.hi is not None)
        if score > best_score:
            best, best_score = rng, score
    if best is None:
        return None
    # Only absorb conjuncts that are implied by the chosen bounds; weaker
    # duplicates (e.g. two lower bounds) stay in the residual Select.
    implied = []
    for term in best.absorbed:
        value, strict = term.rhs.value, term.op in (">", "<")  # type: ignore[union-attr]
        if term.op in (">", ">="):  # type: ignore[union-attr]
            ok = best.lo is not None and (
                best.lo > value or (best.lo == value and (best.lo_strict or not strict))
            )
        else:
            ok = best.hi is not None and (
                best.hi < value or (best.hi == value and (best.hi_strict or not strict))
            )
        if ok:
            implied.append(term)
    best.absorbed = tuple(implied)
    return best


def rewrite_date_index_scans(
    plan: phys.PhysicalPlan, db: Database, catalog: Catalog
) -> phys.PhysicalPlan:
    """Bottom-up: route date-filtered scans through the date index.

    The scan *enforces* the extracted bounds itself, so the compiled form
    can skip the comparison entirely on interior partitions; the residual
    Select keeps only the remaining conjuncts.
    """
    rebuilt = _rebuild(plan, [
        rewrite_date_index_scans(c, db, catalog) for c in plan.children()
    ])
    if isinstance(rebuilt, phys.Select) and isinstance(rebuilt.child, phys.Scan):
        scan = rebuilt.child
        chain = _ScanChain(scan.table, scan.rename_map, [rebuilt.pred], None)
        schema = catalog.table(scan.table)
        rng = _date_bounds(rebuilt.pred, chain, schema, db)
        if rng is not None:
            pruned = phys.DateIndexScan(
                scan.table,
                rng.column,
                lo=rng.lo,
                hi=rng.hi,
                rename=scan.rename_map or None,
                enforce=True,
                lo_strict=rng.lo_strict,
                hi_strict=rng.hi_strict,
            )
            conjuncts = (
                list(rebuilt.pred.terms)
                if isinstance(rebuilt.pred, And)
                else [rebuilt.pred]
            )
            residual = [t for t in conjuncts if t not in rng.absorbed]
            if residual:
                return phys.Select(pruned, And(*residual))
            return pruned
    return rebuilt


# -- generic tree reconstruction ------------------------------------------------


def _rebuild(
    node: phys.PhysicalPlan, new_children: list[phys.PhysicalPlan]
) -> phys.PhysicalPlan:
    """A copy of ``node`` with ``new_children`` substituted in order."""
    if not new_children:
        return node
    if isinstance(node, phys.Select):
        return phys.Select(new_children[0], node.pred)
    if isinstance(node, phys.Project):
        return phys.Project(new_children[0], node.outputs)
    if isinstance(node, phys.HashJoin):
        return phys.HashJoin(
            new_children[0], new_children[1], node.left_keys, node.right_keys
        )
    if isinstance(node, phys.LeftOuterJoin):
        return phys.LeftOuterJoin(
            new_children[0], new_children[1], node.left_keys, node.right_keys
        )
    if isinstance(node, phys.SemiJoin):
        return phys.SemiJoin(
            new_children[0], new_children[1], node.left_keys, node.right_keys
        )
    if isinstance(node, phys.AntiJoin):
        return phys.AntiJoin(
            new_children[0], new_children[1], node.left_keys, node.right_keys
        )
    if isinstance(node, phys.IndexJoin):
        return phys.IndexJoin(
            new_children[0],
            node.table,
            node.table_key,
            node.child_key,
            unique=node.unique,
            residual=node.residual,
            rename=node.rename_map or None,
        )
    if isinstance(node, phys.IndexSemiJoin):
        return phys.IndexSemiJoin(
            new_children[0],
            node.table,
            node.table_key,
            node.child_key,
            anti=node.anti,
            unique=node.unique,
            residual=node.residual,
            rename=node.rename_map or None,
        )
    if isinstance(node, phys.Agg):
        return phys.Agg(new_children[0], node.keys, node.aggs)
    if isinstance(node, phys.Sort):
        return phys.Sort(new_children[0], node.keys, limit=node.limit)
    if isinstance(node, phys.Limit):
        return phys.Limit(new_children[0], node.n)
    if isinstance(node, phys.Distinct):
        return phys.Distinct(new_children[0])
    raise phys.PlanError(f"_rebuild: unhandled node {type(node).__name__}")


def fuse_topk(plan: phys.PhysicalPlan) -> phys.PhysicalPlan:
    """Fuse ``Limit(Sort(x))`` into a bounded (Top-K) sort.

    Semantics-preserving for multisets (tie order within the cut is
    engine-defined, exactly as for Limit itself); engines then select the
    top ``n`` with a bounded heap instead of sorting everything.
    """
    rebuilt = _rebuild(plan, [fuse_topk(c) for c in plan.children()])
    if (
        isinstance(rebuilt, phys.Limit)
        and isinstance(rebuilt.child, phys.Sort)
        and rebuilt.child.limit is None
    ):
        sort = rebuilt.child
        return phys.Sort(sort.child, sort.keys, limit=rebuilt.n)
    return rebuilt


def optimize_for_level(
    plan: phys.PhysicalPlan, db: Database, catalog: Catalog
) -> phys.PhysicalPlan:
    """Apply every rewrite the database's optimization level supports."""
    plan = fuse_topk(plan)
    if db.level.builds_date_indexes:
        plan = rewrite_date_index_scans(plan, db, catalog)
    if db.level.builds_key_indexes:
        plan = rewrite_index_joins(plan, db, catalog)
    return plan
