"""Plan pretty-printing ("EXPLAIN").

Renders operator trees as indented text with the per-operator details a
reader needs to audit a plan: predicates, join keys, aggregate specs,
index usage, sort order, output fields.
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.catalog import Catalog
from repro.plan import physical as phys
from repro.plan.expressions import (
    AggSpec,
    And,
    Arith,
    Between,
    Case,
    Cmp,
    Col,
    Const,
    Expr,
    ExtractYear,
    InList,
    Like,
    Not,
    Or,
    Substring,
)


def format_expr(expr: Expr) -> str:
    """A compact, SQL-ish rendering of a plan expression."""
    if isinstance(expr, Col):
        return expr.name
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Arith):
        return f"({format_expr(expr.lhs)} {expr.op} {format_expr(expr.rhs)})"
    if isinstance(expr, Cmp):
        op = {"==": "=", "!=": "<>"}.get(expr.op, expr.op)
        return f"{format_expr(expr.lhs)} {op} {format_expr(expr.rhs)}"
    if isinstance(expr, And):
        return " AND ".join(format_expr(t) for t in expr.terms)
    if isinstance(expr, Or):
        return "(" + " OR ".join(format_expr(t) for t in expr.terms) + ")"
    if isinstance(expr, Not):
        return f"NOT ({format_expr(expr.term)})"
    if isinstance(expr, Like):
        negate = "NOT " if expr.negate else ""
        return f"{format_expr(expr.term)} {negate}LIKE {expr.pattern!r}"
    if isinstance(expr, InList):
        return f"{format_expr(expr.term)} IN {expr.values!r}"
    if isinstance(expr, Case):
        return (
            f"CASE WHEN {format_expr(expr.cond)} THEN {format_expr(expr.then)} "
            f"ELSE {format_expr(expr.els)} END"
        )
    if isinstance(expr, ExtractYear):
        return f"YEAR({format_expr(expr.term)})"
    if isinstance(expr, Substring):
        return f"SUBSTR({format_expr(expr.term)}, {expr.start}, {expr.length})"
    return type(expr).__name__


def format_agg(spec: AggSpec) -> str:
    if spec.kind == "count" and spec.expr is None:
        return "count(*)"
    if spec.kind == "count_distinct":
        return f"count(distinct {format_expr(spec.expr)})"
    return f"{spec.kind}({format_expr(spec.expr)})"


def _describe(node: phys.PhysicalPlan) -> str:
    if isinstance(node, phys.Scan):
        extra = f" renamed {dict(node.rename)}" if node.rename else ""
        return f"Scan {node.table}{extra}"
    if isinstance(node, phys.DateIndexScan):
        mode = "enforced" if node.enforce else "pruning-only"
        return (
            f"DateIndexScan {node.table}.{node.column} "
            f"[{node.lo}, {node.hi}] ({mode})"
        )
    if isinstance(node, phys.Select):
        return f"Select {format_expr(node.pred)}"
    if isinstance(node, phys.Project):
        parts = ", ".join(
            name if isinstance(e, Col) and e.name == name else f"{format_expr(e)} AS {name}"
            for name, e in node.outputs
        )
        return f"Project {parts}"
    if isinstance(node, phys.HashJoin):
        keys = ", ".join(f"{a}={b}" for a, b in zip(node.left_keys, node.right_keys))
        return f"HashJoin on {keys} (build left)"
    if isinstance(node, phys.LeftOuterJoin):
        keys = ", ".join(f"{a}={b}" for a, b in zip(node.left_keys, node.right_keys))
        return f"LeftOuterJoin on {keys} (build right)"
    if isinstance(node, phys.SemiJoin):
        keys = ", ".join(f"{a}={b}" for a, b in zip(node.left_keys, node.right_keys))
        return f"SemiJoin on {keys}"
    if isinstance(node, phys.AntiJoin):
        keys = ", ".join(f"{a}={b}" for a, b in zip(node.left_keys, node.right_keys))
        return f"AntiJoin on {keys}"
    if isinstance(node, phys.IndexJoin):
        kind = "unique" if node.unique else "multi"
        residual = f" residual {format_expr(node.residual)}" if node.residual else ""
        return (
            f"IndexJoin {node.table} via {kind} index on {node.table_key} "
            f"probe {node.child_key}{residual}"
        )
    if isinstance(node, phys.IndexSemiJoin):
        kind = "anti" if node.anti else "semi"
        residual = f" residual {format_expr(node.residual)}" if node.residual else ""
        return (
            f"Index{kind.capitalize()}Join {node.table} on {node.table_key} "
            f"probe {node.child_key}{residual}"
        )
    if isinstance(node, phys.Agg):
        keys = ", ".join(f"{format_expr(e)} AS {n}" for n, e in node.keys) or "(global)"
        aggs = ", ".join(f"{format_agg(s)} AS {n}" for n, s in node.aggs)
        return f"Agg by {keys}: {aggs}"
    if isinstance(node, phys.Sort):
        keys = ", ".join(f"{n} {'asc' if asc else 'desc'}" for n, asc in node.keys)
        return f"Sort by {keys}"
    if isinstance(node, phys.Limit):
        return f"Limit {node.n}"
    if isinstance(node, phys.Distinct):
        return "Distinct"
    return type(node).__name__


def explain(plan: phys.PhysicalPlan, catalog: Optional[Catalog] = None) -> str:
    """Multi-line indented rendering of a plan tree.

    With a catalog, the root line also lists the output fields.
    """
    lines: list[str] = []

    def walk(node: phys.PhysicalPlan, depth: int) -> None:
        lines.append("  " * depth + "-> " + _describe(node))
        for child in node.children():
            walk(child, depth + 1)

    walk(plan, 0)
    if catalog is not None:
        names = ", ".join(plan.field_names(catalog))
        lines.insert(0, f"output: [{names}]")
    return "\n".join(lines)
