"""Physical query plans.

These are the operator trees that all four engines consume: the Volcano
interpreter, the data-centric push interpreter, the template-expansion
compiler and the LB2 single-pass compiler.  As in the paper, plans are
supplied explicitly (by the optimizer, by the SQL planner, or hand-written
for the TPC-H suite) -- "Query plans in LB2 and DBLAB are supplied
explicitly".

Every node can compute its ordered output fields (name, type) given the
catalog; the compiled engines rely on this for typed code generation, and
the interpreters use it to emit result rows in a deterministic column order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.catalog.catalog import Catalog
from repro.catalog.types import ColumnType
from repro.plan.expressions import AggSpec, Expr, ExprError

Fields = list[tuple[str, ColumnType]]


class PlanError(ReproError):
    """Raised on malformed plans (unknown fields, clashing names...)."""

    code = "E_PLAN"
    phase = "plan"


class PhysicalPlan:
    """Base class for physical operators."""

    def children(self) -> tuple["PhysicalPlan", ...]:
        raise NotImplementedError

    def fields(self, catalog: Catalog) -> Fields:
        """Ordered output fields of this operator (memoized per catalog).

        Plans are immutable, so the result is cached on the node; deep
        plans would otherwise recompute child fields exponentially often.
        """
        memo = self.__dict__.get("_fields_memo")
        if memo is not None and memo[0] is catalog:
            return memo[1]
        result = self.compute_fields(catalog)
        object.__setattr__(self, "_fields_memo", (catalog, result))
        return result

    def compute_fields(self, catalog: Catalog) -> Fields:
        """Compute ordered output fields (overridden per operator)."""
        raise NotImplementedError

    def field_types(self, catalog: Catalog) -> dict[str, ColumnType]:
        return dict(self.fields(catalog))

    def field_names(self, catalog: Catalog) -> list[str]:
        return [name for name, _ in self.fields(catalog)]

    def validate(self, catalog: Catalog) -> None:
        """Walk the plan, forcing field resolution everywhere."""
        for child in self.children():
            child.validate(catalog)
        self.fields(catalog)

    def operator_count(self) -> int:
        return 1 + sum(c.operator_count() for c in self.children())

    def _require(self, catalog: Catalog, child: "PhysicalPlan", names: Sequence[str]) -> None:
        have = set(child.field_names(catalog))
        missing = [n for n in names if n not in have]
        if missing:
            raise PlanError(
                f"{type(self).__name__}: fields {missing} not produced by child "
                f"{type(child).__name__} (has: {sorted(have)})"
            )


@dataclass(frozen=True)
class Scan(PhysicalPlan):
    """Full scan of a base table, optionally renaming columns.

    ``rename`` supports self-joins (e.g. TPC-H Q21 scans lineitem three
    times): renamed fields keep their column's type.  Only renamed fields
    change; others pass through under their own names.
    """

    table: str
    rename: tuple[tuple[str, str], ...] = ()

    def __init__(self, table: str, rename: Optional[dict[str, str]] = None) -> None:
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "rename", tuple(sorted((rename or {}).items())))

    @property
    def rename_map(self) -> dict[str, str]:
        return dict(self.rename)

    def children(self) -> tuple[PhysicalPlan, ...]:
        return ()

    def compute_fields(self, catalog: Catalog) -> Fields:
        schema = catalog.table(self.table)
        renames = self.rename_map
        for old in renames:
            schema.require(old)
        return [(renames.get(c.name, c.name), c.type) for c in schema.columns]


@dataclass(frozen=True)
class DateIndexScan(PhysicalPlan):
    """Scan of a table pruned by a date index to a date range.

    Two modes:

    * ``enforce=False`` (default): the scan only *prunes* whole partitions;
      the plan's Select still carries the exact predicate (boundary
      partitions can contain out-of-range rows).
    * ``enforce=True``: the scan itself enforces the bounds, using the
      comparison strictness in ``lo_strict``/``hi_strict``; the rewriter
      removes the corresponding conjuncts from the Select.  The LB2
      back-end then emits *two* loops -- interior partitions run the
      pipeline with no date check at all, boundary partitions re-check --
      one of the "intricate compilation patterns" done in a single pass.

    ``lo_strict=True`` means ``column > lo``; ``hi_strict=True`` means
    ``column < hi``.
    """

    table: str
    column: str
    lo: Optional[int] = None
    hi: Optional[int] = None
    rename: tuple[tuple[str, str], ...] = ()
    enforce: bool = False
    lo_strict: bool = False
    hi_strict: bool = False

    def __init__(
        self,
        table: str,
        column: str,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
        rename: Optional[dict[str, str]] = None,
        enforce: bool = False,
        lo_strict: bool = False,
        hi_strict: bool = False,
    ) -> None:
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "rename", tuple(sorted((rename or {}).items())))
        object.__setattr__(self, "enforce", enforce)
        object.__setattr__(self, "lo_strict", lo_strict)
        object.__setattr__(self, "hi_strict", hi_strict)

    def bound_check(self, value: int) -> bool:
        """Evaluate the enforced bounds on one encoded date (runtime use)."""
        if self.lo is not None:
            if self.lo_strict:
                if not value > self.lo:
                    return False
            elif not value >= self.lo:
                return False
        if self.hi is not None:
            if self.hi_strict:
                if not value < self.hi:
                    return False
            elif not value <= self.hi:
                return False
        return True

    @property
    def rename_map(self) -> dict[str, str]:
        return dict(self.rename)

    def children(self) -> tuple[PhysicalPlan, ...]:
        return ()

    def compute_fields(self, catalog: Catalog) -> Fields:
        schema = catalog.table(self.table)
        if schema.column_type(self.column) is not ColumnType.DATE:
            raise PlanError(
                f"DateIndexScan column {self.table}.{self.column} is not a date"
            )
        renames = self.rename_map
        return [(renames.get(c.name, c.name), c.type) for c in schema.columns]


@dataclass(frozen=True)
class Select(PhysicalPlan):
    """Filter by a boolean predicate."""

    child: PhysicalPlan
    pred: Expr

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def compute_fields(self, catalog: Catalog) -> Fields:
        out = self.child.fields(catalog)
        self._require(catalog, self.child, sorted(self.pred.columns()))
        if self.pred.result_type(dict(out)) is not ColumnType.BOOL:
            raise PlanError("Select predicate is not boolean")
        return out


@dataclass(frozen=True)
class Project(PhysicalPlan):
    """Compute named output expressions (also used for renaming)."""

    child: PhysicalPlan
    outputs: tuple[tuple[str, Expr], ...]

    def __init__(self, child: PhysicalPlan, outputs: Sequence[tuple[str, Expr]]):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "outputs", tuple(outputs))

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def compute_fields(self, catalog: Catalog) -> Fields:
        types = self.child.field_types(catalog)
        names = [n for n, _ in self.outputs]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate output names in Project: {names}")
        needed: set[str] = set()
        for _, expr in self.outputs:
            needed |= expr.columns()
        self._require(catalog, self.child, sorted(needed))
        return [(name, expr.result_type(types)) for name, expr in self.outputs]


def _join_fields(
    node: PhysicalPlan,
    catalog: Catalog,
    left: PhysicalPlan,
    right: PhysicalPlan,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
) -> Fields:
    if len(left_keys) != len(right_keys):
        raise PlanError(f"{type(node).__name__}: key arity mismatch")
    node._require(catalog, left, left_keys)
    node._require(catalog, right, right_keys)
    lf, rf = left.fields(catalog), right.fields(catalog)
    clash = {n for n, _ in lf} & {n for n, _ in rf}
    if clash:
        raise PlanError(
            f"{type(node).__name__}: output field name clash {sorted(clash)}; "
            "rename one side (Scan(rename=...) or Project)"
        )
    return lf + rf


@dataclass(frozen=True)
class HashJoin(PhysicalPlan):
    """Inner equi-join; builds a hash table on the left (build) side."""

    left: PhysicalPlan
    right: PhysicalPlan
    left_keys: tuple[str, ...]
    right_keys: tuple[str, ...]

    def __init__(self, left, right, left_keys, right_keys):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "left_keys", _as_keys(left_keys))
        object.__setattr__(self, "right_keys", _as_keys(right_keys))

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def compute_fields(self, catalog: Catalog) -> Fields:
        return _join_fields(
            self, catalog, self.left, self.right, self.left_keys, self.right_keys
        )


@dataclass(frozen=True)
class LeftOuterJoin(PhysicalPlan):
    """Left outer equi-join; unmatched left rows carry None right fields."""

    left: PhysicalPlan
    right: PhysicalPlan
    left_keys: tuple[str, ...]
    right_keys: tuple[str, ...]

    def __init__(self, left, right, left_keys, right_keys):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "left_keys", _as_keys(left_keys))
        object.__setattr__(self, "right_keys", _as_keys(right_keys))

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def compute_fields(self, catalog: Catalog) -> Fields:
        return _join_fields(
            self, catalog, self.left, self.right, self.left_keys, self.right_keys
        )


@dataclass(frozen=True)
class SemiJoin(PhysicalPlan):
    """Keep left rows having at least one key match on the right (EXISTS)."""

    left: PhysicalPlan
    right: PhysicalPlan
    left_keys: tuple[str, ...]
    right_keys: tuple[str, ...]

    def __init__(self, left, right, left_keys, right_keys):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "left_keys", _as_keys(left_keys))
        object.__setattr__(self, "right_keys", _as_keys(right_keys))

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def compute_fields(self, catalog: Catalog) -> Fields:
        self._require(catalog, self.left, self.left_keys)
        self._require(catalog, self.right, self.right_keys)
        return self.left.fields(catalog)


@dataclass(frozen=True)
class AntiJoin(PhysicalPlan):
    """Keep left rows having no key match on the right (NOT EXISTS)."""

    left: PhysicalPlan
    right: PhysicalPlan
    left_keys: tuple[str, ...]
    right_keys: tuple[str, ...]

    def __init__(self, left, right, left_keys, right_keys):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "left_keys", _as_keys(left_keys))
        object.__setattr__(self, "right_keys", _as_keys(right_keys))

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def compute_fields(self, catalog: Catalog) -> Fields:
        self._require(catalog, self.left, self.left_keys)
        self._require(catalog, self.right, self.right_keys)
        return self.left.fields(catalog)


@dataclass(frozen=True)
class IndexJoin(PhysicalPlan):
    """Join the child stream against a base table through its hash index.

    The paper's Section 4.3 operator: ``index(rkey(rTuple))`` finds matching
    base-table rows without building a hash table.  ``unique`` selects the
    primary-key (one row) vs foreign-key (row list) index.  An optional
    residual predicate filters fetched base rows before merging.
    """

    child: PhysicalPlan
    table: str
    table_key: str
    child_key: str
    unique: bool = True
    residual: Optional[Expr] = None
    rename: tuple[tuple[str, str], ...] = ()

    def __init__(
        self,
        child: PhysicalPlan,
        table: str,
        table_key: str,
        child_key: str,
        unique: bool = True,
        residual: Optional[Expr] = None,
        rename: Optional[dict[str, str]] = None,
    ) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "table_key", table_key)
        object.__setattr__(self, "child_key", child_key)
        object.__setattr__(self, "unique", unique)
        object.__setattr__(self, "residual", residual)
        object.__setattr__(self, "rename", tuple(sorted((rename or {}).items())))

    @property
    def rename_map(self) -> dict[str, str]:
        return dict(self.rename)

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def compute_fields(self, catalog: Catalog) -> Fields:
        self._require(catalog, self.child, [self.child_key])
        schema = catalog.table(self.table)
        schema.require(self.table_key)
        renames = self.rename_map
        table_fields = [(renames.get(c.name, c.name), c.type) for c in schema.columns]
        child_fields = self.child.fields(catalog)
        clash = {n for n, _ in child_fields} & {n for n, _ in table_fields}
        if clash:
            raise PlanError(f"IndexJoin: field name clash {sorted(clash)}")
        out = child_fields + table_fields
        if self.residual is not None:
            types = dict(out)
            for name in self.residual.columns():
                if name not in types:
                    raise PlanError(f"IndexJoin residual references unknown {name!r}")
        return out


@dataclass(frozen=True)
class IndexSemiJoin(PhysicalPlan):
    """Semi/anti join through a base-table index (Section 4.3).

    The paper: "Method ``exists`` is used by IndexSemiJoin and
    IndexAntiJoin operators."  Keeps child rows for which the indexed
    table has (``anti=False``) or lacks (``anti=True``) a matching row;
    with a ``residual`` predicate, existence is evaluated against fetched
    rows (the ``IndexEntryView.exists(pred)`` form).
    """

    child: PhysicalPlan
    table: str
    table_key: str
    child_key: str
    anti: bool = False
    unique: bool = False
    residual: Optional[Expr] = None
    rename: tuple[tuple[str, str], ...] = ()

    def __init__(
        self,
        child: PhysicalPlan,
        table: str,
        table_key: str,
        child_key: str,
        anti: bool = False,
        unique: bool = False,
        residual: Optional[Expr] = None,
        rename: Optional[dict[str, str]] = None,
    ) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "table_key", table_key)
        object.__setattr__(self, "child_key", child_key)
        object.__setattr__(self, "anti", anti)
        object.__setattr__(self, "unique", unique)
        object.__setattr__(self, "residual", residual)
        object.__setattr__(self, "rename", tuple(sorted((rename or {}).items())))

    @property
    def rename_map(self) -> dict[str, str]:
        return dict(self.rename)

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def compute_fields(self, catalog: Catalog) -> Fields:
        self._require(catalog, self.child, [self.child_key])
        schema = catalog.table(self.table)
        schema.require(self.table_key)
        out = self.child.fields(catalog)
        if self.residual is not None:
            renames = self.rename_map
            table_types = {
                renames.get(c.name, c.name): c.type for c in schema.columns
            }
            types = dict(out) | table_types
            for name in self.residual.columns():
                if name not in types:
                    raise PlanError(
                        f"IndexSemiJoin residual references unknown {name!r}"
                    )
        return out


@dataclass(frozen=True)
class Agg(PhysicalPlan):
    """Hash aggregation with optional grouping keys.

    With no keys this is a global aggregate producing exactly one row (SQL
    semantics for empty input: count = 0, sum/avg/min/max = None).
    """

    child: PhysicalPlan
    keys: tuple[tuple[str, Expr], ...]
    aggs: tuple[tuple[str, AggSpec], ...]

    def __init__(
        self,
        child: PhysicalPlan,
        keys: Sequence[tuple[str, Expr]],
        aggs: Sequence[tuple[str, AggSpec]],
    ) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "keys", tuple(keys))
        object.__setattr__(self, "aggs", tuple(aggs))

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def compute_fields(self, catalog: Catalog) -> Fields:
        types = self.child.field_types(catalog)
        needed: set[str] = set()
        for _, expr in self.keys:
            needed |= expr.columns()
        for _, spec in self.aggs:
            needed |= spec.columns()
        self._require(catalog, self.child, sorted(needed))
        out: Fields = [(n, e.result_type(types)) for n, e in self.keys]
        out += [(n, s.result_type(types)) for n, s in self.aggs]
        names = [n for n, _ in out]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate output names in Agg: {names}")
        return out


@dataclass(frozen=True)
class GroupJoin(PhysicalPlan):
    """Combined outer join + aggregation (HyPer's specialized operator).

    The paper attributes part of HyPer's edge on some queries to "specialized
    operators like GroupJoin"; this is that operator, as an extension: for
    each left row, aggregate the matching right rows directly -- one row out
    per left row, no intermediate join product.  Unmatched left rows get the
    empty-group values (count = 0, sum/avg/min/max = None), i.e. the
    ``LEFT OUTER JOIN ... GROUP BY left key`` pattern of TPC-H Q13 in one
    operator.

    ``aggs`` range over *right-side* fields only.
    """

    left: PhysicalPlan
    right: PhysicalPlan
    left_keys: tuple[str, ...]
    right_keys: tuple[str, ...]
    aggs: tuple[tuple[str, AggSpec], ...]

    def __init__(self, left, right, left_keys, right_keys, aggs):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "left_keys", _as_keys(left_keys))
        object.__setattr__(self, "right_keys", _as_keys(right_keys))
        object.__setattr__(self, "aggs", tuple(aggs))

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def compute_fields(self, catalog: Catalog) -> Fields:
        if len(self.left_keys) != len(self.right_keys):
            raise PlanError("GroupJoin: key arity mismatch")
        self._require(catalog, self.left, self.left_keys)
        self._require(catalog, self.right, self.right_keys)
        right_types = self.right.field_types(catalog)
        needed: set[str] = set()
        for _, spec in self.aggs:
            needed |= spec.columns()
        self._require(catalog, self.right, sorted(needed))
        out = list(self.left.fields(catalog))
        names = {n for n, _ in out}
        for name, spec in self.aggs:
            if name in names:
                raise PlanError(f"GroupJoin output name clash: {name!r}")
            out.append((name, spec.result_type(right_types)))
        return out


@dataclass(frozen=True)
class Sort(PhysicalPlan):
    """Order by named output fields of the child; True = ascending.

    ``limit`` bounds the output (Top-K): engines may then use a bounded
    heap selection instead of a full sort -- the fusion target of
    :func:`repro.plan.rewrite.fuse_topk`.
    """

    child: PhysicalPlan
    keys: tuple[tuple[str, bool], ...]
    limit: Optional[int] = None

    def __init__(
        self,
        child: PhysicalPlan,
        keys: Sequence[tuple[str, bool]],
        limit: Optional[int] = None,
    ):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "keys", tuple(keys))
        object.__setattr__(self, "limit", limit)

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def compute_fields(self, catalog: Catalog) -> Fields:
        if self.limit is not None and self.limit < 0:
            raise PlanError("Sort limit must be non-negative")
        self._require(catalog, self.child, [n for n, _ in self.keys])
        return self.child.fields(catalog)


@dataclass(frozen=True)
class Limit(PhysicalPlan):
    """Emit at most ``n`` rows."""

    child: PhysicalPlan
    n: int

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def compute_fields(self, catalog: Catalog) -> Fields:
        if self.n < 0:
            raise PlanError(f"Limit must be non-negative, got {self.n}")
        return self.child.fields(catalog)


@dataclass(frozen=True)
class Distinct(PhysicalPlan):
    """Remove duplicate rows."""

    child: PhysicalPlan

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def compute_fields(self, catalog: Catalog) -> Fields:
        return self.child.fields(catalog)


def needs_null_guard(node: PhysicalPlan) -> bool:
    """True when a Project's outputs must propagate SQL NULLs.

    Global aggregates over empty input yield None for sum/avg/min/max;
    Projects directly over them (the Q14/Q17-style final ratio) must map
    None through arithmetic instead of crashing.  All engines consult this.
    """
    if not isinstance(node, Project):
        return False
    child = node.child
    return isinstance(child, Agg) and not child.keys


def _as_keys(keys) -> tuple[str, ...]:
    if isinstance(keys, str):
        return (keys,)
    return tuple(keys)
