"""Row- and column-oriented table storage (the runtime Buffer of Section 4.1).

``ColumnarTable`` is the primary store: one Python list per column.  It is
what compiled queries read directly (raw subscripting in the residual code).
``RowTable`` is the row-oriented variant used to demonstrate layout choice;
both expose the same interface so engines are layout-agnostic, mirroring the
paper's ``FlatBuffer`` / ``ColumnarBuffer`` pair.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.catalog.schema import SchemaError, TableSchema
from repro.catalog.types import ColumnType

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the no-numpy tests
    _np = None

_NP_DTYPES = None if _np is None else {
    ColumnType.INT: _np.int64,
    ColumnType.DATE: _np.int64,
    ColumnType.FLOAT: _np.float64,
    ColumnType.BOOL: _np.bool_,
    ColumnType.STRING: object,
}


class ColumnarTable:
    """Column-oriented storage: ``{column name -> list of values}``."""

    layout = "column"

    def __init__(self, schema: TableSchema, columns: dict[str, list] | None = None):
        self.schema = schema
        if columns is None:
            columns = {c.name: [] for c in schema.columns}
        missing = [c.name for c in schema.columns if c.name not in columns]
        if missing:
            raise SchemaError(f"missing columns for {schema.name!r}: {missing}")
        self.columns: dict[str, list] = {c.name: columns[c.name] for c in schema.columns}
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns in {schema.name!r}: {sorted(lengths)}")
        self._rows = lengths.pop() if lengths else 0
        self._arrays: dict[str, object] = {}

    # -- sizing ------------------------------------------------------------

    def __len__(self) -> int:
        return self._rows

    # -- row access ----------------------------------------------------------

    def row(self, i: int) -> dict[str, object]:
        """Materialize row ``i`` as a dict (interpreted engines only)."""
        return {name: col[i] for name, col in self.columns.items()}

    def rows(self) -> Iterator[dict[str, object]]:
        names = list(self.columns)
        cols = [self.columns[n] for n in names]
        for values in zip(*cols) if cols else iter(()):
            yield dict(zip(names, values))

    def row_tuple(self, i: int) -> tuple:
        return tuple(col[i] for col in self.columns.values())

    def append_row(self, values: dict[str, object]) -> None:
        for name, col in self.columns.items():
            col.append(values[name])
        self._rows += 1

    # -- column access ---------------------------------------------------------

    def column(self, name: str) -> list:
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(
                f"table {self.schema.name!r} has no column {name!r}"
            ) from None

    def array(self, name: str):
        """The column as a typed NumPy array (vector backend read path).

        Built lazily on first access and cached; with NumPy absent the raw
        Python list is returned instead, and the ``v_*`` batch kernels fall
        back to list processing.  The cache is never invalidated on
        ``append_row`` -- base tables are immutable once queries run, which
        is the same assumption the hash/date indexes already make.
        """
        if name not in self._arrays:
            values = self.column(name)
            if _np is None:
                self._arrays[name] = values
            else:
                dtype = _NP_DTYPES[self.schema.column_type(name)]
                self._arrays[name] = _np.asarray(values, dtype=dtype)
        return self._arrays[name]

    @classmethod
    def from_rows(
        cls, schema: TableSchema, rows: Iterable[Sequence[object]]
    ) -> "ColumnarTable":
        """Build from an iterable of positional row tuples."""
        names = schema.column_names()
        columns: dict[str, list] = {n: [] for n in names}
        for row in rows:
            if len(row) != len(names):
                raise SchemaError(
                    f"row arity {len(row)} != schema arity {len(names)} "
                    f"for table {schema.name!r}"
                )
            for name, value in zip(names, row):
                columns[name].append(value)
        return cls(schema, columns)

    def to_rows(self) -> list[tuple]:
        return [self.row_tuple(i) for i in range(len(self))]


class RowTable:
    """Row-oriented storage: a list of row tuples (the ``FlatBuffer`` analogue)."""

    layout = "row"

    def __init__(self, schema: TableSchema, rows: list[tuple] | None = None):
        self.schema = schema
        self.data: list[tuple] = rows if rows is not None else []
        self._index = {c.name: i for i, c in enumerate(schema.columns)}

    def __len__(self) -> int:
        return len(self.data)

    def row(self, i: int) -> dict[str, object]:
        values = self.data[i]
        return {name: values[j] for name, j in self._index.items()}

    def rows(self) -> Iterator[dict[str, object]]:
        names = list(self._index)
        for values in self.data:
            yield dict(zip(names, values))

    def row_tuple(self, i: int) -> tuple:
        return self.data[i]

    def append_row(self, values: dict[str, object]) -> None:
        self.data.append(tuple(values[c.name] for c in self.schema.columns))

    def column(self, name: str) -> list:
        """Extract one column (O(n) copy -- row stores pay for column access)."""
        j = self._index[name]
        return [row[j] for row in self.data]

    @classmethod
    def from_rows(cls, schema: TableSchema, rows: Iterable[Sequence[object]]) -> "RowTable":
        return cls(schema, [tuple(r) for r in rows])

    def to_rows(self) -> list[tuple]:
        return list(self.data)

    @classmethod
    def from_columnar(cls, table: ColumnarTable) -> "RowTable":
        return cls(table.schema, table.to_rows())
