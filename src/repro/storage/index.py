"""Auxiliary index structures (Section 4.3).

Three kinds, matching the paper's optimization levels:

* :class:`UniqueHashIndex` -- primary-key index: key -> row id.
* :class:`HashIndex` -- foreign-key index: key -> list of row ids.
* :class:`DateIndex` -- per-(year, month) partitioning of row ids so date
  range scans touch only overlapping partitions ("the table is partitioned
  by year and month on the given attribute and the index is scanned only on
  the dates that satisfy the predicate").
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.catalog.types import date_parts


class IndexError_(Exception):
    """Raised for index construction problems (duplicate primary keys...)."""


class UniqueHashIndex:
    """key -> row id for a unique column."""

    unique = True

    def __init__(self, values: Sequence[object]) -> None:
        mapping: dict[object, int] = {}
        for rowid, key in enumerate(values):
            if key in mapping:
                raise IndexError_(f"duplicate key {key!r} in unique index")
            mapping[key] = rowid
        self._map = mapping

    def __len__(self) -> int:
        return len(self._map)

    def get(self, key: object, default: int = -1) -> int:
        """The row id for ``key`` or ``default`` (generated-code entry point)."""
        return self._map.get(key, default)

    def contains(self, key: object) -> bool:
        return key in self._map


class HashIndex:
    """key -> list of row ids for a non-unique column."""

    unique = False

    def __init__(self, values: Sequence[object]) -> None:
        mapping: dict[object, list[int]] = {}
        for rowid, key in enumerate(values):
            bucket = mapping.get(key)
            if bucket is None:
                mapping[key] = [rowid]
            else:
                bucket.append(rowid)
        self._map = mapping

    def __len__(self) -> int:
        return len(self._map)

    def get(self, key: object, default: tuple = ()) -> Sequence[int]:
        """The row ids for ``key`` (generated-code entry point)."""
        return self._map.get(key, default)

    def contains(self, key: object) -> bool:
        return key in self._map


class DateIndex:
    """(year, month) partitions over an encoded-date column.

    ``candidates(lo, hi)`` yields only row ids whose partition overlaps the
    closed range, skipping the bulk of the table for selective date ranges.
    Row ids inside a partition are in insertion order.  Callers re-check the
    exact predicate on the two boundary partitions; fully-interior
    partitions are emitted without per-row checks via :meth:`runs`.
    """

    def __init__(self, values: Sequence[int]) -> None:
        partitions: dict[int, list[int]] = {}
        for rowid, encoded in enumerate(values):
            year, month, _ = date_parts(encoded)
            key = year * 100 + month
            bucket = partitions.get(key)
            if bucket is None:
                partitions[key] = [rowid]
            else:
                bucket.append(rowid)
        self._partitions = dict(sorted(partitions.items()))
        self._keys = list(self._partitions)

    def __len__(self) -> int:
        return len(self._partitions)

    def partition_keys(self) -> list[int]:
        return list(self._keys)

    def candidates(self, lo: Optional[int], hi: Optional[int]) -> Iterator[int]:
        """Row ids in partitions overlapping the date range ``[lo, hi]``.

        ``lo``/``hi`` are encoded dates (or None for an open end).  The exact
        predicate must still be applied per row by the caller; this only
        prunes whole months.
        """
        lo_key = 0 if lo is None else lo // 100
        hi_key = 999999 if hi is None else hi // 100
        for key in self._keys:
            if lo_key <= key <= hi_key:
                yield from self._partitions[key]

    def candidate_list(self, lo: Optional[int], hi: Optional[int]) -> list[int]:
        """Materialized :meth:`candidates` (what generated loops iterate)."""
        return list(self.candidates(lo, hi))

    def runs(self, lo: Optional[int], hi: Optional[int]) -> tuple[list[int], list[int]]:
        """Split candidates into (interior, boundary) row ids.

        Rows in *interior* partitions (strictly inside the range) satisfy
        any ``lo <= d <= hi`` predicate by construction, so generated code
        can skip the comparison for them; *boundary* rows still need it.
        """
        lo_key = 0 if lo is None else lo // 100
        hi_key = 999999 if hi is None else hi // 100
        interior: list[int] = []
        boundary: list[int] = []
        for key in self._keys:
            if key < lo_key or key > hi_key:
                continue
            is_boundary = key == lo_key or key == hi_key
            (boundary if is_boundary else interior).extend(self._partitions[key])
        return interior, boundary
