"""The in-memory database: tables plus the auxiliary structures of Section 4.3.

A :class:`Database` owns columnar tables and, depending on the configured
:class:`OptimizationLevel`, the index structures the paper's Figures 9/10
evaluate:

* ``COMPLIANT``     -- raw columns only (TPC-H-compliant loading);
* ``IDX``           -- + primary/foreign-key hash indexes;
* ``IDX_DATE``      -- + per-(year, month) date partitions;
* ``IDX_DATE_STR``  -- + order-preserving string dictionaries.

Index construction is timed (``build_seconds``) so the loading-overhead
experiment (Figure 10) can report slowdowns relative to compliant loading.

Generated code accesses everything through the narrow, stable surface
``column / size / index / unique_index / date_index / dictionary /
encoded_column`` -- these names are baked into residual programs.
"""

from __future__ import annotations

import enum
import time
from typing import Iterable, Optional, Sequence

from repro.catalog.catalog import Catalog
from repro.catalog.schema import SchemaError, TableSchema
from repro.catalog.statistics import TableStats, collect_table_stats
from repro.catalog.types import ColumnType
from repro.storage.buffer import ColumnarTable
from repro.storage.dictionary import StringDictionary
from repro.storage.index import DateIndex, HashIndex, UniqueHashIndex


class OptimizationLevel(enum.IntEnum):
    """Cumulative data-preparation levels (each includes the previous)."""

    COMPLIANT = 0
    IDX = 1
    IDX_DATE = 2
    IDX_DATE_STR = 3

    @property
    def builds_key_indexes(self) -> bool:
        return self >= OptimizationLevel.IDX

    @property
    def builds_date_indexes(self) -> bool:
        return self >= OptimizationLevel.IDX_DATE

    @property
    def builds_dictionaries(self) -> bool:
        return self >= OptimizationLevel.IDX_DATE_STR


class Database:
    """Tables, indexes, dictionaries and statistics behind one facade."""

    def __init__(
        self,
        catalog: Catalog,
        level: OptimizationLevel = OptimizationLevel.COMPLIANT,
        dictionary_columns: Optional[dict[str, Sequence[str]]] = None,
        date_index_columns: Optional[dict[str, Sequence[str]]] = None,
    ) -> None:
        self.catalog = catalog
        self.level = level
        self._tables: dict[str, ColumnarTable] = {}
        self._unique_indexes: dict[tuple[str, str], UniqueHashIndex] = {}
        self._indexes: dict[tuple[str, str], HashIndex] = {}
        self._date_indexes: dict[tuple[str, str], DateIndex] = {}
        self._dictionaries: dict[tuple[str, str], StringDictionary] = {}
        self._encoded: dict[tuple[str, str], list[int]] = {}
        self._stats: dict[str, TableStats] = {}
        self._dictionary_columns = dict(dictionary_columns or {})
        self._date_index_columns = dict(date_index_columns or {})
        self.build_seconds = 0.0  # auxiliary-structure build time (Figure 10)

    # -- population ------------------------------------------------------------

    def add_table(self, table: ColumnarTable) -> None:
        """Register loaded data and build the level's auxiliary structures."""
        name = table.schema.name
        if not self.catalog.has_table(name):
            self.catalog.register(table.schema)
        if name in self._tables:
            raise SchemaError(f"table {name!r} already loaded")
        self._tables[name] = table
        start = time.perf_counter()
        self._build_auxiliary(table)
        self.build_seconds += time.perf_counter() - start

    def _build_auxiliary(self, table: ColumnarTable) -> None:
        schema = table.schema
        name = schema.name
        if self.level.builds_key_indexes:
            if len(schema.primary_key) == 1:
                key = schema.primary_key[0]
                self._unique_indexes[(name, key)] = UniqueHashIndex(table.column(key))
            for fk_col in schema.foreign_keys:
                self._indexes[(name, fk_col)] = HashIndex(table.column(fk_col))
        if self.level.builds_date_indexes:
            date_cols = self._date_index_columns.get(
                name,
                [c.name for c in schema.columns if c.type is ColumnType.DATE],
            )
            for col in date_cols:
                self._date_indexes[(name, col)] = DateIndex(table.column(col))
        if self.level.builds_dictionaries:
            dict_cols = self._dictionary_columns.get(
                name,
                [c.name for c in schema.columns if c.type is ColumnType.STRING],
            )
            for col in dict_cols:
                values = table.column(col)
                dictionary = StringDictionary(values)
                self._dictionaries[(name, col)] = dictionary
                self._encoded[(name, col)] = dictionary.encode_column(values)

    def add_rows(self, schema: TableSchema, rows: Iterable[Sequence[object]]) -> None:
        """Convenience: build a columnar table from row tuples and register it."""
        self.add_table(ColumnarTable.from_rows(schema, rows))

    # -- generated-code surface ---------------------------------------------------

    def table(self, name: str) -> ColumnarTable:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"table {name!r} is not loaded") from None

    def has_loaded(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def column(self, table: str, column: str) -> list:
        return self.table(table).column(column)

    def column_vec(self, table: str, column: str):
        """The column as a typed batch array (vector backend read path).

        Row-layout tables have no cached array form; they hand back the
        materialized column list, which the batch kernels accept as-is.
        """
        t = self.table(table)
        array = getattr(t, "array", None)
        return array(column) if array is not None else t.column(column)

    def size(self, table: str) -> int:
        return len(self.table(table))

    def unique_index(self, table: str, column: str) -> UniqueHashIndex:
        key = (table, column)
        if key not in self._unique_indexes:
            raise SchemaError(
                f"no unique index on {table}.{column} "
                f"(optimization level: {self.level.name})"
            )
        return self._unique_indexes[key]

    def index(self, table: str, column: str) -> HashIndex:
        key = (table, column)
        if key not in self._indexes:
            raise SchemaError(
                f"no index on {table}.{column} "
                f"(optimization level: {self.level.name})"
            )
        return self._indexes[key]

    def date_index(self, table: str, column: str) -> DateIndex:
        key = (table, column)
        if key not in self._date_indexes:
            raise SchemaError(
                f"no date index on {table}.{column} "
                f"(optimization level: {self.level.name})"
            )
        return self._date_indexes[key]

    def dictionary(self, table: str, column: str) -> StringDictionary:
        key = (table, column)
        if key not in self._dictionaries:
            raise SchemaError(
                f"no string dictionary on {table}.{column} "
                f"(optimization level: {self.level.name})"
            )
        return self._dictionaries[key]

    def encoded_column(self, table: str, column: str) -> list[int]:
        key = (table, column)
        if key not in self._encoded:
            raise SchemaError(f"column {table}.{column} is not dictionary-compressed")
        return self._encoded[key]

    # -- capability queries (used by the optimizer/compiler) ----------------------

    def has_unique_index(self, table: str, column: str) -> bool:
        return (table, column) in self._unique_indexes

    def has_index(self, table: str, column: str) -> bool:
        return (table, column) in self._indexes

    def has_date_index(self, table: str, column: str) -> bool:
        return (table, column) in self._date_indexes

    def has_dictionary(self, table: str, column: str) -> bool:
        return (table, column) in self._dictionaries

    # -- statistics -------------------------------------------------------------

    def stats(self, table: str) -> TableStats:
        """Table statistics, computed lazily and cached."""
        if table not in self._stats:
            self._stats[table] = collect_table_stats(self.table(table).columns)
        return self._stats[table]
