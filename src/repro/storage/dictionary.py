"""String dictionaries (Section 4.3).

A dictionary assigns each distinct string of a column an integer code.
Codes are assigned in *sorted* order, so the encoding is order-preserving:

* equality compiles to an integer comparison against a code looked up once,
  at query-compile time;
* ``<``/``<=``/``>``/``>=`` compile to integer comparisons directly;
* ``startsWith(p)`` compiles to one range check ``lo <= code < hi`` where
  ``[lo, hi)`` is the code range of strings with prefix ``p`` (this is the
  generalization of the paper's ``p.idx <= idx`` trick);
* anything else (``endsWith``, ``%x%``, substring) decodes and falls back to
  the string representation, exactly as the paper describes.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Optional, Sequence


class StringDictionary:
    """An order-preserving code table for one string column."""

    def __init__(self, values: Iterable[str]) -> None:
        self.strings: list[str] = sorted(set(values))
        self._codes: dict[str, int] = {s: i for i, s in enumerate(self.strings)}

    def __len__(self) -> int:
        return len(self.strings)

    # -- encode / decode -----------------------------------------------------

    def code(self, value: str) -> Optional[int]:
        """The code for ``value`` or None when absent from the dictionary.

        A missing constant means an equality predicate can be folded to
        ``False`` at generation time.
        """
        return self._codes.get(value)

    def encode_column(self, values: Sequence[str]) -> list[int]:
        codes = self._codes
        return [codes[v] for v in values]

    def decode(self, code: int) -> str:
        return self.strings[code]

    # -- predicate support ------------------------------------------------------

    def prefix_range(self, prefix: str) -> tuple[int, int]:
        """The half-open code range of strings starting with ``prefix``.

        Returns ``(lo, hi)`` with ``lo == hi`` when no string matches, so the
        generated range check is uniformly correct.
        """
        lo = bisect.bisect_left(self.strings, prefix)
        # The successor of prefix in prefix-order: bump the last character.
        hi = bisect.bisect_left(self.strings, _prefix_successor(prefix)) if prefix else len(self.strings)
        return lo, hi

    def code_floor(self, value: str) -> int:
        """Number of dictionary strings strictly less than ``value``.

        Lets ``col < const`` compile to ``code < code_floor(const)`` even
        when ``const`` itself is not in the dictionary.
        """
        return bisect.bisect_left(self.strings, value)

    def code_ceil(self, value: str) -> int:
        """Number of dictionary strings less than or equal to ``value``."""
        return bisect.bisect_right(self.strings, value)


def _prefix_successor(prefix: str) -> str:
    """The smallest string greater than every string with prefix ``prefix``."""
    chars = list(prefix)
    while chars:
        code_point = ord(chars[-1])
        if code_point < 0x10FFFF:
            chars[-1] = chr(code_point + 1)
            return "".join(chars)
        chars.pop()
    # Prefix was entirely U+10FFFF characters; no successor exists.
    return "\U0010ffff" * (len(prefix) + 1)
