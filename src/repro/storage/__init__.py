"""Storage engine: columnar tables, loading, dictionaries and indexes."""

from repro.storage.buffer import ColumnarTable, RowTable
from repro.storage.database import Database, OptimizationLevel
from repro.storage.dictionary import StringDictionary
from repro.storage.index import DateIndex, HashIndex, UniqueHashIndex

__all__ = [
    "ColumnarTable",
    "RowTable",
    "Database",
    "OptimizationLevel",
    "StringDictionary",
    "DateIndex",
    "HashIndex",
    "UniqueHashIndex",
]
