"""Loading and saving tables in the TPC-H ``.tbl`` format.

``.tbl`` files are pipe-separated with a trailing pipe per line, exactly as
produced by the official dbgen.  Values are converted according to the
table schema; dates become the integer encoding.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, TextIO

from repro.catalog.schema import SchemaError, TableSchema
from repro.catalog.types import ColumnType, date_to_int, int_to_date
from repro.storage.buffer import ColumnarTable


class LoadError(Exception):
    """Raised on malformed input files."""


def _parser_for(column_type: ColumnType) -> Callable[[str], object]:
    if column_type is ColumnType.INT:
        return int
    if column_type is ColumnType.FLOAT:
        return float
    if column_type is ColumnType.DATE:
        return date_to_int
    if column_type is ColumnType.BOOL:
        return lambda text: text in ("1", "true", "True", "t")
    return lambda text: text


def parse_tbl_lines(schema: TableSchema, lines: Iterable[str]) -> ColumnarTable:
    """Parse an iterable of ``.tbl`` lines into a columnar table."""
    parsers = [_parser_for(c.type) for c in schema.columns]
    names = schema.column_names()
    columns: dict[str, list] = {n: [] for n in names}
    arity = len(names)
    for lineno, line in enumerate(lines, start=1):
        line = line.rstrip("\n")
        if not line:
            continue
        parts = line.split("|")
        if parts and parts[-1] == "":
            parts.pop()  # trailing separator
        if len(parts) != arity:
            raise LoadError(
                f"{schema.name}.tbl line {lineno}: expected {arity} fields, "
                f"got {len(parts)}"
            )
        try:
            for name, parser, text in zip(names, parsers, parts):
                columns[name].append(parser(text))
        except ValueError as exc:
            raise LoadError(f"{schema.name}.tbl line {lineno}: {exc}") from exc
    return ColumnarTable(schema, columns)


def load_tbl(schema: TableSchema, path: str) -> ColumnarTable:
    """Load ``path`` as table ``schema``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_tbl_lines(schema, handle)


def _format_value(column_type: ColumnType, value: object) -> str:
    if column_type is ColumnType.DATE:
        return int_to_date(int(value))  # type: ignore[arg-type]
    if column_type is ColumnType.FLOAT:
        return f"{value:.2f}"
    if column_type is ColumnType.BOOL:
        return "1" if value else "0"
    return str(value)


def write_tbl(table: ColumnarTable, handle: TextIO) -> None:
    """Write a table in ``.tbl`` format to an open text handle."""
    types = [c.type for c in table.schema.columns]
    cols = [table.columns[c.name] for c in table.schema.columns]
    for i in range(len(table)):
        fields = (_format_value(t, col[i]) for t, col in zip(types, cols))
        handle.write("|".join(fields) + "|\n")


def save_tbl(table: ColumnarTable, path: str) -> None:
    """Write a table as ``<path>`` (creating parent directories)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        write_tbl(table, handle)
