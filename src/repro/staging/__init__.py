"""Staging framework: the LMS analogue used by the LB2 compiler.

This package realizes the mechanism of Section 2 of the paper: symbolic
``Rep`` values with overloaded operators that *emit code as a side effect*
of running ordinary high-level programs.  Running the query interpreter on
``Rep`` inputs therefore performs the first Futamura projection: the output
is a residual program specialized to the query.

Layout:

* :mod:`repro.staging.ir` -- a tiny statement/expression IR (the "graph-like
  intermediate representation" LMS maintains).
* :mod:`repro.staging.builder` -- :class:`StagingContext`: fresh names,
  structured control flow, function scoping.
* :mod:`repro.staging.rep` -- typed symbolic values (``RepInt`` et al.),
  mirroring the paper's ``MyInt`` / ``Rep[T]``.
* :mod:`repro.staging.pygen` -- emits executable Python source.
* :mod:`repro.staging.cgen` -- emits illustrative C source (the paper's
  Appendix B.2 / Figure 14 rendering).
"""

from repro.staging.builder import StagingContext
from repro.staging.rep import (
    Rep,
    RepBool,
    RepFloat,
    RepInt,
    RepStr,
    StagedVar,
)
from repro.staging.pygen import PyProgram, generate_python
from repro.staging.cgen import generate_c

__all__ = [
    "StagingContext",
    "Rep",
    "RepBool",
    "RepFloat",
    "RepInt",
    "RepStr",
    "StagedVar",
    "PyProgram",
    "generate_python",
    "generate_c",
]
