"""Typed symbolic values -- the Python rendering of LMS's ``Rep[T]``.

A :class:`Rep` holds an IR expression and the staging context it belongs to.
Every overloaded operation *emits* an assignment binding the result to a
fresh name and returns a new ``Rep`` referring to that name -- precisely the
``MyInt`` trick from Section 2 of the paper, generalized over types.

Because Python cannot overload ``and``/``or``/``not`` or ``if``, staged
booleans use ``&``, ``|``, ``~`` and ``ctx.if_``; staged mutation goes
through :class:`StagedVar`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence, Type, Union

from repro.staging import ir

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.staging.builder import StagingContext


Liftable = Union["Rep", int, float, bool, str, None]


def lift_expr(ctx: "StagingContext", value: Liftable) -> ir.Expr:
    """Return the IR expression for a Rep or a liftable Python constant."""
    if isinstance(value, Rep):
        return value.expr
    return ctx.lift(value).expr


_FOLDABLE = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
}


def _fold_bin(op: str, lhs: ir.Expr, rhs: ir.Expr):
    """LMS-style smart construction: fold present-stage subcomputations.

    Two constants compute now; boolean/arithmetic identities with one
    constant simplify (``x and True -> x``, ``x * 1 -> x``, ``x + 0 -> x``).
    Division is never folded (the host should raise at run time, in the
    residual program, not at generation time).
    """
    lconst = isinstance(lhs, ir.Const)
    rconst = isinstance(rhs, ir.Const)
    if lconst and rconst and op in _FOLDABLE:
        try:
            return ir.Const(_FOLDABLE[op](lhs.value, rhs.value))
        except TypeError:
            return None
    if op == "and":
        if lconst:
            return rhs if lhs.value else ir.Const(False)
        if rconst:
            return lhs if rhs.value else ir.Const(False)
    if op == "or":
        if lconst:
            return ir.Const(True) if lhs.value else rhs
        if rconst:
            return ir.Const(True) if rhs.value else lhs
    # Arithmetic identities (x * 1, x + 0) are deliberately NOT folded: the
    # paper's MyInt emits them verbatim (the Appendix B.1 trace starts with
    # "x0 = in * 1"), and they are free at run time anyway.
    return None


class Rep:
    """A staged (future-stage) value of unspecified type."""

    ctype = "long"
    is_vector = False  # RepVec subclasses carry batches, not scalars

    def __init__(self, expr: ir.Expr, ctx: "StagingContext", ctype: str | None = None):
        if not ir.is_atom(expr):
            sym = ctx.bind(expr, ctype=ctype or type(self).ctype)
            expr = sym
        self.expr = expr
        self.ctx = ctx
        if ctype is not None:
            self.ctype = ctype

    # -- helpers -------------------------------------------------------------

    def _coerce(self, other: Liftable) -> ir.Expr:
        return lift_expr(self.ctx, other)

    def _bin(self, op: str, other: Liftable, result: Type["Rep"], swap: bool = False):
        if getattr(other, "is_vector", False) and not self.is_vector:
            # A scalar met a batch: the operation broadcasts, and the vector
            # side owns the lowering (a kernel call instead of an inline op).
            return other._scalar_bin(op, self, scalar_is_lhs=not swap)
        lhs, rhs = self.expr, self._coerce(other)
        if swap:
            lhs, rhs = rhs, lhs
        folded = _fold_bin(op, lhs, rhs)
        if folded is not None:
            return result(folded, self.ctx)
        sym = self.ctx.bind(ir.Bin(op, lhs, rhs), ctype=result.ctype)
        return result(sym, self.ctx)

    # -- generic equality (types refine the arithmetic) -----------------------

    def __eq__(self, other: object) -> "RepBool":  # type: ignore[override]
        return self._bin("==", other, RepBool)

    def __ne__(self, other: object) -> "RepBool":  # type: ignore[override]
        return self._bin("!=", other, RepBool)

    __hash__ = None  # type: ignore[assignment] - staged values are not hashable

    def __bool__(self) -> bool:
        raise TypeError(
            "staged value used in a Python conditional; use ctx.if_(...) "
            "instead -- the branch condition is future-stage data"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.expr!r})"


class _NumericRep(Rep):
    """Shared arithmetic for staged ints and floats."""

    def _arith_result(self, other: Liftable, op: str) -> Type["Rep"]:
        if op == "/":
            return RepFloat
        if isinstance(self, RepFloat) or isinstance(other, (RepFloat, float)):
            return RepFloat
        return RepInt

    def __add__(self, other: Liftable):
        return self._bin("+", other, self._arith_result(other, "+"))

    def __radd__(self, other: Liftable):
        return self._bin("+", other, self._arith_result(other, "+"), swap=True)

    def __sub__(self, other: Liftable):
        return self._bin("-", other, self._arith_result(other, "-"))

    def __rsub__(self, other: Liftable):
        return self._bin("-", other, self._arith_result(other, "-"), swap=True)

    def __mul__(self, other: Liftable):
        return self._bin("*", other, self._arith_result(other, "*"))

    def __rmul__(self, other: Liftable):
        return self._bin("*", other, self._arith_result(other, "*"), swap=True)

    def __truediv__(self, other: Liftable):
        return self._bin("/", other, RepFloat)

    def __rtruediv__(self, other: Liftable):
        return self._bin("/", other, RepFloat, swap=True)

    def __floordiv__(self, other: Liftable):
        return self._bin("//", other, RepInt)

    def __mod__(self, other: Liftable):
        return self._bin("%", other, RepInt)

    def __neg__(self):
        sym = self.ctx.bind(ir.Un("-", self.expr), ctype=self.ctype)
        return type(self)(sym, self.ctx)

    def __lt__(self, other: Liftable) -> "RepBool":
        return self._bin("<", other, RepBool)

    def __le__(self, other: Liftable) -> "RepBool":
        return self._bin("<=", other, RepBool)

    def __gt__(self, other: Liftable) -> "RepBool":
        return self._bin(">", other, RepBool)

    def __ge__(self, other: Liftable) -> "RepBool":
        return self._bin(">=", other, RepBool)


class RepInt(_NumericRep):
    """A staged integer (C type ``long``)."""

    ctype = "long"

    def to_float(self) -> "RepFloat":
        return self.ctx.call("to_float", [self], result="double")  # type: ignore[return-value]


class RepFloat(_NumericRep):
    """A staged double-precision float."""

    ctype = "double"


class RepBool(Rep):
    """A staged boolean; combine with ``&``, ``|``, ``~``."""

    ctype = "bool"

    def __and__(self, other: Liftable) -> "RepBool":
        return self._bin("and", other, RepBool)

    def __rand__(self, other: Liftable) -> "RepBool":
        return self._bin("and", other, RepBool, swap=True)

    def __or__(self, other: Liftable) -> "RepBool":
        return self._bin("or", other, RepBool)

    def __ror__(self, other: Liftable) -> "RepBool":
        return self._bin("or", other, RepBool, swap=True)

    def __invert__(self) -> "RepBool":
        sym = self.ctx.bind(ir.Un("not", self.expr), ctype="bool")
        return RepBool(sym, self.ctx)


class RepStr(Rep):
    """A staged string with the operations query plans need."""

    ctype = "char*"

    def __lt__(self, other: Liftable) -> "RepBool":
        return self._bin("<", other, RepBool)

    def __le__(self, other: Liftable) -> "RepBool":
        return self._bin("<=", other, RepBool)

    def __gt__(self, other: Liftable) -> "RepBool":
        return self._bin(">", other, RepBool)

    def __ge__(self, other: Liftable) -> "RepBool":
        return self._bin(">=", other, RepBool)

    def startswith(self, prefix: Liftable) -> "RepBool":
        return self.ctx.call("str_startswith", [self, prefix], result="bool")  # type: ignore[return-value]

    def endswith(self, suffix: Liftable) -> "RepBool":
        return self.ctx.call("str_endswith", [self, suffix], result="bool")  # type: ignore[return-value]

    def contains(self, needle: Liftable) -> "RepBool":
        return self.ctx.call("str_contains", [self, needle], result="bool")  # type: ignore[return-value]

    def substring(self, start: Liftable, stop: Liftable) -> "RepStr":
        return self.ctx.call("str_slice", [self, start, stop], result="char*")  # type: ignore[return-value]

    def length(self) -> RepInt:
        return self.ctx.call("len", [self], result="long")  # type: ignore[return-value]

    def hash(self) -> RepInt:
        return self.ctx.call("hash_str", [self], result="long")  # type: ignore[return-value]


# -- vector (batch) values ---------------------------------------------------
#
# The vector code-generation backend (:mod:`repro.compiler.vec`) stages whole
# columns at a time.  A ``RepVec`` is one such column: every overloaded
# operation lowers to a named batch kernel (``rt.v_*``) over arrays rather
# than an inline scalar expression, but sequencing works identically --
# each kernel result is bound to a fresh name in emission order.  Scalar
# Reps mixed into vector operations broadcast (the kernels accept plain
# Python scalars for either operand).


_VEC_KERNELS = {
    "+": "v_add",
    "-": "v_sub",
    "*": "v_mul",
    "/": "v_div",
    "//": "v_floordiv",
    "%": "v_mod",
    "==": "v_eq",
    "!=": "v_ne",
    "<": "v_lt",
    "<=": "v_le",
    ">": "v_gt",
    ">=": "v_ge",
    "and": "v_and",
    "or": "v_or",
}

_VEC_BOOL_OPS = frozenset({"==", "!=", "<", "<=", ">", ">=", "and", "or"})

# scalar C type -> the vector C type of a column of it
VEC_CTYPES = {
    "long": "vec_long",
    "int": "vec_long",
    "double": "vec_double",
    "bool": "vec_bool",
    "char*": "vec_str",
}


def vec_ctype(scalar_ctype: str) -> str:
    """The vector C type carrying a batch of ``scalar_ctype`` values."""
    return VEC_CTYPES.get(scalar_ctype, "vec_long")


class RepVec(Rep):
    """A staged batch of values: one column of a batch record."""

    ctype = "vec_long"
    scalar_ctype = "long"
    is_vector = True

    def _vcall(self, fn: str, args: Sequence[Liftable], result_cls: Type["Rep"]):
        exprs = tuple(lift_expr(self.ctx, a) for a in args)
        sym = self.ctx.bind(ir.Call(fn, exprs), ctype=result_cls.ctype, prefix="v")
        return result_cls(sym, self.ctx)

    def _vbin(self, fn: str, other: Liftable, result_cls: Type["Rep"], swap: bool = False):
        args = [other, self] if swap else [self, other]
        return self._vcall(fn, args, result_cls)

    def _scalar_bin(self, op: str, scalar: Liftable, scalar_is_lhs: bool):
        """Reflected entry: ``Rep._bin`` saw a scalar meet this vector."""
        fn = _VEC_KERNELS[op]
        if op in _VEC_BOOL_OPS:
            result_cls: Type[Rep] = RepVecBool
        elif op == "/":
            result_cls = RepVecFloat
        elif op in ("//", "%"):
            result_cls = RepVecInt
        elif isinstance(self, RepVecFloat) or isinstance(scalar, (RepFloat, float)):
            result_cls = RepVecFloat
        else:
            result_cls = RepVecInt
        return self._vbin(fn, scalar, result_cls, swap=scalar_is_lhs)

    def __eq__(self, other: object) -> "RepVecBool":  # type: ignore[override]
        return self._vbin("v_eq", other, RepVecBool)

    def __ne__(self, other: object) -> "RepVecBool":  # type: ignore[override]
        return self._vbin("v_ne", other, RepVecBool)

    __hash__ = None  # type: ignore[assignment]


class _VecNumeric(RepVec):
    """Shared arithmetic for staged int and float batches."""

    def _arith_result(self, other: Liftable) -> Type["Rep"]:
        if isinstance(self, RepVecFloat) or isinstance(
            other, (RepVecFloat, RepFloat, float)
        ):
            return RepVecFloat
        return RepVecInt

    def __add__(self, other: Liftable):
        return self._vbin("v_add", other, self._arith_result(other))

    def __radd__(self, other: Liftable):
        return self._vbin("v_add", other, self._arith_result(other), swap=True)

    def __sub__(self, other: Liftable):
        return self._vbin("v_sub", other, self._arith_result(other))

    def __rsub__(self, other: Liftable):
        return self._vbin("v_sub", other, self._arith_result(other), swap=True)

    def __mul__(self, other: Liftable):
        return self._vbin("v_mul", other, self._arith_result(other))

    def __rmul__(self, other: Liftable):
        return self._vbin("v_mul", other, self._arith_result(other), swap=True)

    def __truediv__(self, other: Liftable):
        return self._vbin("v_div", other, RepVecFloat)

    def __rtruediv__(self, other: Liftable):
        return self._vbin("v_div", other, RepVecFloat, swap=True)

    def __floordiv__(self, other: Liftable):
        return self._vbin("v_floordiv", other, RepVecInt)

    def __mod__(self, other: Liftable):
        return self._vbin("v_mod", other, RepVecInt)

    def __neg__(self):
        return self._vcall("v_neg", [self], type(self))

    def __lt__(self, other: Liftable) -> "RepVecBool":
        return self._vbin("v_lt", other, RepVecBool)

    def __le__(self, other: Liftable) -> "RepVecBool":
        return self._vbin("v_le", other, RepVecBool)

    def __gt__(self, other: Liftable) -> "RepVecBool":
        return self._vbin("v_gt", other, RepVecBool)

    def __ge__(self, other: Liftable) -> "RepVecBool":
        return self._vbin("v_ge", other, RepVecBool)


class RepVecInt(_VecNumeric):
    """A staged batch of integers."""

    ctype = "vec_long"
    scalar_ctype = "long"


class RepVecFloat(_VecNumeric):
    """A staged batch of doubles."""

    ctype = "vec_double"
    scalar_ctype = "double"


class RepVecBool(RepVec):
    """A staged batch of booleans (selection masks)."""

    ctype = "vec_bool"
    scalar_ctype = "bool"

    def __and__(self, other: Liftable) -> "RepVecBool":
        return self._vbin("v_and", other, RepVecBool)

    def __rand__(self, other: Liftable) -> "RepVecBool":
        return self._vbin("v_and", other, RepVecBool, swap=True)

    def __or__(self, other: Liftable) -> "RepVecBool":
        return self._vbin("v_or", other, RepVecBool)

    def __ror__(self, other: Liftable) -> "RepVecBool":
        return self._vbin("v_or", other, RepVecBool, swap=True)

    def __invert__(self) -> "RepVecBool":
        return self._vcall("v_not", [self], RepVecBool)


class RepVecStr(RepVec):
    """A staged batch of strings (comparisons only; no LIKE kernels)."""

    ctype = "vec_str"
    scalar_ctype = "char*"

    def __lt__(self, other: Liftable) -> "RepVecBool":
        return self._vbin("v_lt", other, RepVecBool)

    def __le__(self, other: Liftable) -> "RepVecBool":
        return self._vbin("v_le", other, RepVecBool)

    def __gt__(self, other: Liftable) -> "RepVecBool":
        return self._vbin("v_gt", other, RepVecBool)

    def __ge__(self, other: Liftable) -> "RepVecBool":
        return self._vbin("v_ge", other, RepVecBool)


class StagedVar:
    """A mutable future-stage variable (generated local that is reassigned).

    ``get`` returns the current value as a ``Rep``; ``set`` emits a
    reassignment.  Inside staged branches/loops, reads after writes see the
    generated control flow, exactly as a C local would.
    """

    def __init__(
        self,
        name: str,
        rep_type: Type[Rep],
        ctype: str,
        ctx: "StagingContext",
    ) -> None:
        self.name = name
        self.rep_type = rep_type
        self.ctype = ctype
        self.ctx = ctx

    def get(self) -> Rep:
        return self.rep_type(ir.Sym(self.name), self.ctx)

    def set(self, value: Liftable) -> None:
        self.ctx.emit(ir.Reassign(self.name, lift_expr(self.ctx, value)))

    def __iadd__(self, delta: Liftable) -> "StagedVar":
        self.set(self.get() + delta)  # type: ignore[operator]
        return self


_CTYPE_TO_REP: dict[str, Type[Rep]] = {
    "long": RepInt,
    "int": RepInt,
    "double": RepFloat,
    "bool": RepBool,
    "char*": RepStr,
    "void*": Rep,
    "vec_long": RepVecInt,
    "vec_double": RepVecFloat,
    "vec_bool": RepVecBool,
    "vec_str": RepVecStr,
}


def rep_for_ctype(ctype: str) -> Type[Rep]:
    """Map a C type hint to the Rep subclass used for values of that type."""
    return _CTYPE_TO_REP.get(ctype, Rep)
