"""Render staged IR to illustrative C source.

The paper's LB2 emits C (Figure 14).  This reproduction *executes* the
Python rendering (:mod:`repro.staging.pygen`); the C rendering exists to
demonstrate that the very same single generation pass retargets to C-shaped
output, mirroring the artifacts shown in the paper's Appendix B.2.  It is
tested against golden files but not compiled (no C toolchain is assumed in
the environment).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.staging import ir
from repro.staging.pygen import CodegenError

_BIN_C = {
    "and": "&&",
    "or": "||",
    "//": "/",
    "==": "==",
    "!=": "!=",
}

# Intrinsic -> C rendering.  Helpers that have no direct C idiom map onto
# named functions assumed to live in a small hand-written support header,
# just as LB2's generated C calls into a scan/print support layer.
_C_CALLS: dict[str, Callable[..., str]] = {
    "len": lambda a: f"strlen({a})",
    "to_float": lambda a: f"(double){a}",
    "to_int": lambda a: f"(long){a}",
    "hash_str": lambda a: f"hash_string({a})",
    "hash_int": lambda a: f"{a}",
    "abs": lambda a: f"labs({a})",
    "min2": lambda a, b: f"MIN({a}, {b})",
    "max2": lambda a, b: f"MAX({a}, {b})",
    "str_startswith": lambda a, b: f"str_starts_with({a}, {b})",
    "str_endswith": lambda a, b: f"str_ends_with({a}, {b})",
    "str_contains": lambda a, b: f"(strstr({a}, {b}) != NULL)",
    "str_slice": lambda a, lo, hi: f"str_slice({a}, {lo}, {hi})",
    "str_concat": lambda a, b: f"str_concat({a}, {b})",
    "str_eq": lambda a, b: f"(strcmp({a}, {b}) == 0)",
    "alloc": lambda n, v: f"array_fill({n}, {v})",
    "list_new": lambda: "buffer_new()",
    "list_append": lambda l, v: f"buffer_append({l}, {v})",
    "list_len": lambda l: f"buffer_size({l})",
    "list_head": lambda l, n: f"buffer_head({l}, {n})",
    "dict_new": lambda: "hashmap_new()",
    "dict_get": lambda d, k, default: f"hashmap_get({d}, {k}, {default})",
    "dict_contains": lambda d, k: f"hashmap_contains({d}, {k})",
    "dict_items": lambda d: f"hashmap_items({d})",
    "db_column": lambda t, c: f"load_column({t}, {c})",
    "db_column_vec": lambda t, c: f"load_column_vec({t}, {c})",
    "scan_tick": lambda n: f"lb2_scan_tick({n})",
    "db_size": lambda t: f"table_size({t})",
    "db_index": lambda t, c: f"load_index({t}, {c})",
    "db_unique_index": lambda t, c: f"load_unique_index({t}, {c})",
    "db_dictionary": lambda t, c: f"load_dictionary({t}, {c})",
    "db_date_index": lambda t, c: f"load_date_index({t}, {c})",
    "db_encoded": lambda t, c: f"load_encoded_column({t}, {c})",
    "db_dict_strings": lambda t, c: f"load_dictionary_strings({t}, {c})",
    "db_date_candidates": lambda t, c, lo, hi: (
        f"date_index_candidates({t}, {c}, {lo}, {hi})"
    ),
    "db_date_runs": lambda t, c, lo, hi: (
        f"date_index_runs({t}, {c}, {lo}, {hi})"
    ),
    "index_lookup": lambda idx, k: f"index_lookup({idx}, {k})",
    "index_lookup_unique": lambda idx, k: f"index_lookup_unique({idx}, {k})",
    "set_new": lambda: "hashset_new()",
    "set_new1": lambda v: f"hashset_of({v})",
    "set_add": lambda s, v: f"hashset_add({s}, {v})",
    "set_contains": lambda s, v: f"hashset_contains({s}, {v})",
    "set_len": lambda s: f"hashset_size({s})",
    "out_append": lambda v: f"emit_row({v})",
}


def _c_const(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, float):
        text = repr(value)
        return text if ("." in text or "e" in text) else text + ".0"
    return str(value)


def render_expr_c(expr: ir.Expr) -> str:
    """Render one IR expression as C source."""
    if isinstance(expr, ir.Const):
        return _c_const(expr.value)
    if isinstance(expr, ir.Sym):
        return expr.name
    if isinstance(expr, ir.Bin):
        op = _BIN_C.get(expr.op, expr.op)
        return f"{render_expr_c(expr.lhs)} {op} {render_expr_c(expr.rhs)}"
    if isinstance(expr, ir.Un):
        if expr.op == "not":
            return f"!{render_expr_c(expr.operand)}"
        return f"{expr.op}{render_expr_c(expr.operand)}"
    if isinstance(expr, ir.Call):
        args = [render_expr_c(a) for a in expr.args]
        fn = _C_CALLS.get(expr.fn)
        if fn is not None:
            return fn(*args)
        return f"{expr.fn}({', '.join(args)})"
    if isinstance(expr, ir.Index):
        return f"{render_expr_c(expr.arr)}[{render_expr_c(expr.idx)}]"
    if isinstance(expr, ir.TupleExpr):
        inner = ", ".join(render_expr_c(i) for i in expr.items)
        return f"{{{inner}}}"
    if isinstance(expr, ir.ListExpr):
        inner = ", ".join(render_expr_c(i) for i in expr.items)
        return f"{{{inner}}}"
    raise CodegenError(f"unhandled expression node: {expr!r}")


class _CWriter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def line(self, text: str) -> None:
        self.lines.append("  " * self.depth + text)

    def block(self, body: ir.Block) -> None:
        self.depth += 1
        for stmt in body:
            self.stmt(stmt)
        self.depth -= 1

    def stmt(self, node: ir.Stmt) -> None:
        if isinstance(node, ir.Comment):
            self.line(f"// {node.text}")
        elif isinstance(node, ir.Assign):
            self.line(f"{node.ctype} {node.name} = {render_expr_c(node.expr)};")
        elif isinstance(node, ir.Reassign):
            self.line(f"{node.name} = {render_expr_c(node.expr)};")
        elif isinstance(node, ir.SetIndex):
            self.line(
                f"{render_expr_c(node.arr)}[{render_expr_c(node.idx)}] = "
                f"{render_expr_c(node.value)};"
            )
        elif isinstance(node, ir.ExprStmt):
            self.line(f"{render_expr_c(node.expr)};")
        elif isinstance(node, ir.If):
            self.line(f"if ({render_expr_c(node.cond)}) {{")
            self.block(node.then)
            if node.els:
                self.line("} else {")
                self.block(node.els)
            self.line("}")
        elif isinstance(node, ir.While):
            self.line("for (;;) {")
            self.block(node.body)
            self.line("}")
        elif isinstance(node, ir.ForRange):
            var, start = node.var, render_expr_c(node.start)
            stop = render_expr_c(node.stop)
            step = "1" if node.step is None else render_expr_c(node.step)
            incr = f"{var}++" if step == "1" else f"{var} += {step}"
            self.line(f"for (long {var} = {start}; {var} < {stop}; {incr}) {{")
            self.block(node.body)
            self.line("}")
        elif isinstance(node, ir.ForEach):
            self.line(
                f"FOREACH({node.var}, {render_expr_c(node.iterable)}) {{"
            )
            self.block(node.body)
            self.line("}")
        elif isinstance(node, ir.NestedFunc):
            # C has no closures; render as a labelled block for illustration.
            self.line(f"// closure {node.name}({', '.join(node.params)})")
            self.line("{")
            self.block(node.body)
            self.line("}")
        elif isinstance(node, ir.Break):
            self.line("break;")
        elif isinstance(node, ir.Continue):
            self.line("continue;")
        elif isinstance(node, ir.Return):
            if node.expr is None:
                self.line("return;")
            else:
                self.line(f"return {render_expr_c(node.expr)};")
        else:
            raise CodegenError(f"unhandled statement node: {node!r}")


_C_HEADER = """#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <stdbool.h>
#include "lb2_runtime.h"
"""


def generate_c(functions: Sequence[ir.Function], header: str = "") -> str:
    """Render a staged program to illustrative C source."""
    writer = _CWriter()
    for line in _C_HEADER.splitlines():
        writer.line(line)
    writer.line("")
    if header:
        for line in header.splitlines():
            writer.line(f"// {line}" if line else "//")
    for fn in functions:
        params = ", ".join(f"void* {p}" for p in fn.params)
        writer.line(f"void {fn.name}({params}) {{")
        writer.block(fn.body)
        writer.line("}")
        writer.line("")
    return "\n".join(writer.lines) + "\n"
