"""The staging context: fresh names, emission, structured control flow.

A :class:`StagingContext` is the object the staged query interpreter writes
code *into*.  It corresponds to the (implicit, global) code buffer of the
paper's ``MyInt`` example, extended with:

* structured control flow (``if_``/``else``, ``loop``, ``for_range``) as
  context managers, because Python's native ``if``/``while`` cannot be
  overloaded on symbolic booleans;
* function scoping, so a single generation pass can produce several
  functions (needed for allocation hoisting, Section 4.4, and parallel
  partials, Section 4.5);
* typed ``Rep`` constructors, so emitters know C types.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Sequence

from repro.errors import ReproError
from repro.staging import ir
from repro.staging.rep import (
    Rep,
    RepBool,
    RepFloat,
    RepInt,
    RepStr,
    StagedVar,
    lift_expr,
    rep_for_ctype,
)


class StagingError(ReproError):
    """Raised on misuse of the staging API (e.g. ``else_`` without ``if_``)."""

    code = "E_STAGING"
    phase = "codegen"


class StagingContext:
    """Accumulates IR while the staged interpreter runs.

    Usage sketch (the paper's power example)::

        ctx = StagingContext()
        with ctx.function("power4", ["in_"]) as params:
            x = params[0]
            r = ctx.int_(1)
            for _ in range(4):
                r = r * x          # each * emits "xN = r * in_"
            ctx.return_(r)
        source = generate_python(ctx.program())
    """

    def __init__(self) -> None:
        self._counter = 0
        self._functions: list[ir.Function] = []
        self._block_stack: list[ir.Block] = []
        self._last_if: Optional[ir.If] = None
        self._param_reps: dict[int, Rep] = {}

    # -- names and emission -------------------------------------------------

    def fresh(self, prefix: str = "x") -> str:
        """Return a new unique symbol name."""
        name = f"{prefix}{self._counter}"
        self._counter += 1
        return name

    @property
    def current_block(self) -> ir.Block:
        if not self._block_stack:
            raise StagingError("emit outside of a function body")
        return self._block_stack[-1]

    def emit(self, stmt: ir.Stmt) -> None:
        """Append a statement to the innermost open block.

        Comments are transparent to control flow: a ``ctx.comment(...)``
        between an ``if_`` block and its ``else_`` must not sever the pair.
        """
        self.current_block.append(stmt)
        if isinstance(stmt, ir.If):
            self._last_if = stmt
        elif not isinstance(stmt, ir.Comment):
            self._last_if = None

    def comment(self, text: str) -> None:
        self.emit(ir.Comment(text))

    @contextlib.contextmanager
    def emit_into(self, block: ir.Block) -> Iterator[None]:
        """Temporarily redirect emission into ``block``.

        A code-motion helper: stage a fragment into a detached block, then
        splice it wherever it belongs (e.g. the vector backend binds column
        views *before* a devectorizing loop the first time the loop body
        touches the field).  The caller owns the splice; symbols referenced
        by the fragment must already be bound at the insertion point.
        """
        self._block_stack.append(block)
        try:
            yield
        finally:
            self._block_stack.pop()

    def bind(self, expr: ir.Expr, ctype: str = "long", prefix: str = "x") -> ir.Sym:
        """Bind ``expr`` to a fresh name; return the symbol.

        Binding every intermediate result is what guarantees proper
        sequencing of staged operations (Section 2 of the paper).
        """
        if ir.is_atom(expr):
            if isinstance(expr, ir.Sym):
                return expr
        name = self.fresh(prefix)
        self.emit(ir.Assign(name, expr, ctype=ctype))
        return ir.Sym(name)

    # -- typed constructors --------------------------------------------------

    def int_(self, value: int) -> RepInt:
        """Lift a Python int to a staged int."""
        return RepInt(ir.Const(int(value)), self)

    def float_(self, value: float) -> RepFloat:
        return RepFloat(ir.Const(float(value)), self)

    def bool_(self, value: bool) -> RepBool:
        return RepBool(ir.Const(bool(value)), self)

    def str_(self, value: str) -> RepStr:
        return RepStr(ir.Const(str(value)), self)

    def lift(self, value: object) -> Rep:
        """Lift any supported Python constant to a staged value."""
        if isinstance(value, Rep):
            return value
        if isinstance(value, bool):
            return self.bool_(value)
        if isinstance(value, int):
            return self.int_(value)
        if isinstance(value, float):
            return self.float_(value)
        if isinstance(value, str):
            return self.str_(value)
        if value is None:
            return Rep(ir.Const(None), self, ctype="void*")
        if isinstance(value, tuple):
            # Constant tuples (e.g. the empty probe bucket, sort specs) are
            # embedded verbatim in generated code.
            return Rep(ir.Const(value), self, ctype="void*")
        raise StagingError(f"cannot lift value of type {type(value).__name__}")

    def sym(self, name: str, ctype: str = "long") -> Rep:
        """Wrap an existing generated name as a typed staged value."""
        return rep_for_ctype(ctype)(ir.Sym(name), self)

    # -- runtime parameters ---------------------------------------------------
    #
    # The residual program of a parameterized statement closes over a
    # parameter vector instead of baking literal values in.  The driver
    # binds each slot once at the top of the generated function
    # (``param0 = params[0]``) and registers the typed Rep here; staged
    # ``Param`` expressions then read the registered symbol -- parameters
    # are pure future-stage values, invisible to plan-time specialization.

    def register_param(self, index: int, rep: Rep) -> None:
        """Register the staged value of parameter slot ``index``."""
        self._param_reps[index] = rep

    def param_rep(self, index: int) -> Rep:
        """The staged value bound for parameter slot ``index``."""
        try:
            return self._param_reps[index]
        except KeyError:
            raise StagingError(
                f"parameter slot {index} staged without a registered "
                "binding; the driver must register_param() every slot"
            ) from None

    # -- variables ------------------------------------------------------------

    def var(self, init: Rep, prefix: str = "v") -> StagedVar:
        """Introduce a mutable staged variable initialized to ``init``."""
        name = self.fresh(prefix)
        self.emit(ir.Assign(name, init.expr, ctype=init.ctype, mutable=True))
        return StagedVar(name, type(init), init.ctype, self)

    # -- calls ---------------------------------------------------------------

    def call(
        self,
        fn: str,
        args: Sequence[object],
        result: str = "long",
        prefix: str = "x",
    ) -> Rep:
        """Emit a bound call to an intrinsic/runtime helper, return its value."""
        exprs = tuple(lift_expr(self, a) for a in args)
        sym = self.bind(ir.Call(fn, exprs), ctype=result, prefix=prefix)
        return rep_for_ctype(result)(sym, self)

    def call_stmt(self, fn: str, args: Sequence[object]) -> None:
        """Emit a call purely for its side effect."""
        exprs = tuple(lift_expr(self, a) for a in args)
        self.emit(ir.ExprStmt(ir.Call(fn, exprs)))

    # -- control flow ----------------------------------------------------------

    @contextlib.contextmanager
    def function(self, name: str, params: Sequence[str]) -> Iterator[list[Rep]]:
        """Open a generated function scope; yields the parameters as Reps."""
        fn = ir.Function(name, tuple(params), [])
        self._functions.append(fn)
        self._block_stack.append(fn.body)
        try:
            yield [Rep(ir.Sym(p), self, ctype="long") for p in params]
        finally:
            self._block_stack.pop()

    @contextlib.contextmanager
    def nested_function(self, name: str, params: Sequence[str]) -> Iterator[list[Rep]]:
        """A closure defined at the current position (Section 4.4 pattern)."""
        node = ir.NestedFunc(name, tuple(params), [])
        self.emit(node)
        self._block_stack.append(node.body)
        try:
            yield [Rep(ir.Sym(p), self, ctype="long") for p in params]
        finally:
            self._block_stack.pop()

    @contextlib.contextmanager
    def if_(self, cond: Rep) -> Iterator[None]:
        """Staged conditional: ``with ctx.if_(c): ...``."""
        node = ir.If(cond.expr)
        self.emit(node)
        self._block_stack.append(node.then)
        try:
            yield
        finally:
            self._block_stack.pop()
            self._last_if = node

    @contextlib.contextmanager
    def else_(self) -> Iterator[None]:
        """The else branch of the immediately preceding ``if_``."""
        node = self._last_if
        if node is None:
            raise StagingError("else_ must directly follow an if_ block")
        self._block_stack.append(node.els)
        try:
            yield
        finally:
            self._block_stack.pop()
            self._last_if = None

    @contextlib.contextmanager
    def loop(self) -> Iterator[None]:
        """An unbounded loop; exit with :meth:`break_if` / :meth:`break_`."""
        node = ir.While()
        self.emit(node)
        self._block_stack.append(node.body)
        try:
            yield
        finally:
            self._block_stack.pop()

    def break_(self) -> None:
        self.emit(ir.Break())

    def continue_(self) -> None:
        self.emit(ir.Continue())

    def break_if(self, cond: Rep) -> None:
        """Emit ``if cond: break`` -- the staged loop-exit idiom."""
        with self.if_(cond):
            self.break_()

    @contextlib.contextmanager
    def for_range(
        self,
        start: object,
        stop: object,
        prefix: str = "i",
        step: Optional[object] = None,
    ) -> Iterator[RepInt]:
        """Counted loop; yields the staged induction variable."""
        var = self.fresh(prefix)
        node = ir.ForRange(
            var,
            lift_expr(self, start),
            lift_expr(self, stop),
            [],
            step=None if step is None else lift_expr(self, step),
        )
        self.emit(node)
        self._block_stack.append(node.body)
        try:
            yield RepInt(ir.Sym(var), self)
        finally:
            self._block_stack.pop()

    @contextlib.contextmanager
    def for_each(
        self, iterable: Rep, prefix: str = "e", ctype: str = "long"
    ) -> Iterator[Rep]:
        """Iterate a runtime collection; yields the staged element."""
        var = self.fresh(prefix)
        node = ir.ForEach(var, iterable.expr, [])
        self.emit(node)
        self._block_stack.append(node.body)
        try:
            yield rep_for_ctype(ctype)(ir.Sym(var), self)
        finally:
            self._block_stack.pop()

    def return_(self, value: Optional[Rep] = None) -> None:
        self.emit(ir.Return(None if value is None else value.expr))

    # -- results ----------------------------------------------------------------

    def program(self) -> list[ir.Function]:
        """All functions generated so far, in definition order."""
        return list(self._functions)
