"""A minimal statement/expression IR for staged programs.

The paper's point is that a *single* generation pass suffices, so this IR is
deliberately small: it is built once, in order, by the staged interpreter and
then pretty-printed to Python (executable) or C (illustrative).  There are no
transformation passes over it -- it exists only so that the same generated
program can be rendered in more than one target language.

Expressions are trees of :class:`Expr`; statements are :class:`Stmt` nodes
held in :class:`Block` lists.  Every intermediate value computed by the
staged interpreter is bound to a fresh symbol (:class:`Assign`), which --
exactly as in the paper -- guarantees proper sequencing of effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

class Expr:
    """Base class for IR expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """A compile-time constant (int, float, bool, str or None)."""

    value: object


@dataclass(frozen=True)
class Sym(Expr):
    """A reference to a previously bound name."""

    name: str


@dataclass(frozen=True)
class Bin(Expr):
    """A binary operation.

    ``op`` is one of: ``+ - * / // % == != < <= > >= and or`` plus the
    string-typed operators which the emitters special-case.
    """

    op: str
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class Un(Expr):
    """A unary operation: ``not`` or ``-``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A call to a named intrinsic or runtime helper.

    The Python emitter inlines known intrinsics (``len``, ``hash_str``,
    ``tuple``...) and routes everything else through the ``rt`` runtime
    module; the C emitter maps them onto C idioms or helper functions.
    """

    fn: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class Index(Expr):
    """An array/list/dict subscript read: ``arr[idx]``."""

    arr: Expr
    idx: Expr


@dataclass(frozen=True)
class TupleExpr(Expr):
    """Construction of an immutable tuple (used for group keys and rows)."""

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class ListExpr(Expr):
    """Construction of a mutable list (used for aggregate state)."""

    items: tuple[Expr, ...]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

class Stmt:
    """Base class for IR statements."""

    __slots__ = ()


Block = list  # Block is simply a list[Stmt]; alias for readability.


@dataclass
class Assign(Stmt):
    """``name = expr`` -- binds a fresh symbol.

    ``ctype`` is a C-type hint recorded when the value was staged, used only
    by the C emitter.  ``mutable`` marks names introduced by ``StagedVar``
    that are reassigned later (C emits these as declarations + assignments).
    """

    name: str
    expr: Expr
    ctype: str = "long"
    mutable: bool = False


@dataclass
class Reassign(Stmt):
    """``name = expr`` for an already-declared mutable variable."""

    name: str
    expr: Expr


@dataclass
class SetIndex(Stmt):
    """``arr[idx] = value``."""

    arr: Expr
    idx: Expr
    value: Expr


@dataclass
class ExprStmt(Stmt):
    """Evaluate an expression for its side effect (e.g. ``out.append(...)``)."""

    expr: Expr


@dataclass
class If(Stmt):
    """A structured conditional."""

    cond: Expr
    then: Block = field(default_factory=list)
    els: Block = field(default_factory=list)


@dataclass
class While(Stmt):
    """``while True:`` -- staged code exits with :class:`Break` guards.

    Modelling loops this way lets the staged condition be computed with
    arbitrary emitted statements inside the loop header, which a
    ``while cond:`` form could not express.
    """

    body: Block = field(default_factory=list)


@dataclass
class ForRange(Stmt):
    """``for var in range(start, stop):``."""

    var: str
    start: Expr
    stop: Expr
    body: Block = field(default_factory=list)
    step: Optional[Expr] = None


@dataclass
class ForEach(Stmt):
    """``for var in iterable:`` -- iteration over a runtime collection."""

    var: str
    iterable: Expr
    body: Block = field(default_factory=list)


@dataclass
class Break(Stmt):
    """``break``."""


@dataclass
class Continue(Stmt):
    """``continue``."""


@dataclass
class Return(Stmt):
    """``return expr`` (or bare ``return``)."""

    expr: Optional[Expr] = None


@dataclass
class NestedFunc(Stmt):
    """A function defined inside another (closure).

    Used for the code-motion pattern of Section 4.4: ``prepare`` allocates
    data structures and returns a ``run`` closure containing the hot path.
    """

    name: str
    params: tuple[str, ...]
    body: Block = field(default_factory=list)


@dataclass
class Comment(Stmt):
    """A generated-code comment; kept so emitted artifacts stay readable."""

    text: str


@dataclass
class Function:
    """A generated function: name, parameter list and body block."""

    name: str
    params: tuple[str, ...]
    body: Block = field(default_factory=list)


Node = Union[Expr, Stmt]


# --------------------------------------------------------------------------
# Walker hooks
#
# The analysis layer (:mod:`repro.analysis`) never rewrites the IR -- it only
# traverses it.  These helpers are the single place that knows the child
# structure of every node, so adding an IR node means extending exactly one
# table here and every analysis pass picks it up.
# --------------------------------------------------------------------------


def expr_children(expr: Expr) -> tuple[Expr, ...]:
    """The direct sub-expressions of ``expr`` (empty for atoms)."""
    if isinstance(expr, Bin):
        return (expr.lhs, expr.rhs)
    if isinstance(expr, Un):
        return (expr.operand,)
    if isinstance(expr, Call):
        return expr.args
    if isinstance(expr, Index):
        return (expr.arr, expr.idx)
    if isinstance(expr, (TupleExpr, ListExpr)):
        return expr.items
    return ()


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    for child in expr_children(expr):
        yield from walk_expr(child)


def stmt_exprs(stmt: Stmt) -> tuple[Expr, ...]:
    """The expressions a statement evaluates directly (not its sub-blocks)."""
    if isinstance(stmt, (Assign, Reassign)):
        return (stmt.expr,)
    if isinstance(stmt, SetIndex):
        return (stmt.arr, stmt.idx, stmt.value)
    if isinstance(stmt, ExprStmt):
        return (stmt.expr,)
    if isinstance(stmt, If):
        return (stmt.cond,)
    if isinstance(stmt, ForRange):
        if stmt.step is None:
            return (stmt.start, stmt.stop)
        return (stmt.start, stmt.stop, stmt.step)
    if isinstance(stmt, ForEach):
        return (stmt.iterable,)
    if isinstance(stmt, Return):
        return () if stmt.expr is None else (stmt.expr,)
    return ()


def stmt_blocks(stmt: Stmt) -> tuple[Block, ...]:
    """The nested statement blocks of a structured statement."""
    if isinstance(stmt, If):
        return (stmt.then, stmt.els)
    if isinstance(stmt, (While, ForRange, ForEach, NestedFunc)):
        return (stmt.body,)
    return ()


def stmt_binds(stmt: Stmt) -> Optional[str]:
    """The name a statement introduces into the current scope, if any.

    ``NestedFunc`` binds its *function name*; its parameters belong to the
    nested scope and are not returned here.
    """
    if isinstance(stmt, Assign):
        return stmt.name
    if isinstance(stmt, (ForRange, ForEach)):
        return stmt.var
    if isinstance(stmt, NestedFunc):
        return stmt.name
    return None


def is_transparent(stmt: Stmt) -> bool:
    """True for statements that exist only for generated-source readability.

    A transparent statement must be invisible to every analysis layer: it
    never splits a basic block, contributes no defs/uses/effects, and may
    be deleted or crossed freely -- the same contract that keeps a
    ``Comment`` from severing an ``if_``/``else_`` pair in the staging
    context (:meth:`repro.staging.builder.StagingContext.emit`).
    """
    return isinstance(stmt, Comment)


def is_atom(expr: Expr) -> bool:
    """Return True when ``expr`` needs no binding to a fresh name.

    Symbols and constants can be referenced any number of times without
    duplicating work; everything else is bound once by the staging context.
    """
    return isinstance(expr, (Sym, Const))
