"""A minimal statement/expression IR for staged programs.

The paper's point is that a *single* generation pass suffices, so this IR is
deliberately small: it is built once, in order, by the staged interpreter and
then pretty-printed to Python (executable) or C (illustrative).  There are no
transformation passes over it -- it exists only so that the same generated
program can be rendered in more than one target language.

Expressions are trees of :class:`Expr`; statements are :class:`Stmt` nodes
held in :class:`Block` lists.  Every intermediate value computed by the
staged interpreter is bound to a fresh symbol (:class:`Assign`), which --
exactly as in the paper -- guarantees proper sequencing of effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

class Expr:
    """Base class for IR expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """A compile-time constant (int, float, bool, str or None)."""

    value: object


@dataclass(frozen=True)
class Sym(Expr):
    """A reference to a previously bound name."""

    name: str


@dataclass(frozen=True)
class Bin(Expr):
    """A binary operation.

    ``op`` is one of: ``+ - * / // % == != < <= > >= and or`` plus the
    string-typed operators which the emitters special-case.
    """

    op: str
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class Un(Expr):
    """A unary operation: ``not`` or ``-``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A call to a named intrinsic or runtime helper.

    The Python emitter inlines known intrinsics (``len``, ``hash_str``,
    ``tuple``...) and routes everything else through the ``rt`` runtime
    module; the C emitter maps them onto C idioms or helper functions.
    """

    fn: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class Index(Expr):
    """An array/list/dict subscript read: ``arr[idx]``."""

    arr: Expr
    idx: Expr


@dataclass(frozen=True)
class TupleExpr(Expr):
    """Construction of an immutable tuple (used for group keys and rows)."""

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class ListExpr(Expr):
    """Construction of a mutable list (used for aggregate state)."""

    items: tuple[Expr, ...]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

class Stmt:
    """Base class for IR statements."""

    __slots__ = ()


Block = list  # Block is simply a list[Stmt]; alias for readability.


@dataclass
class Assign(Stmt):
    """``name = expr`` -- binds a fresh symbol.

    ``ctype`` is a C-type hint recorded when the value was staged, used only
    by the C emitter.  ``mutable`` marks names introduced by ``StagedVar``
    that are reassigned later (C emits these as declarations + assignments).
    """

    name: str
    expr: Expr
    ctype: str = "long"
    mutable: bool = False


@dataclass
class Reassign(Stmt):
    """``name = expr`` for an already-declared mutable variable."""

    name: str
    expr: Expr


@dataclass
class SetIndex(Stmt):
    """``arr[idx] = value``."""

    arr: Expr
    idx: Expr
    value: Expr


@dataclass
class ExprStmt(Stmt):
    """Evaluate an expression for its side effect (e.g. ``out.append(...)``)."""

    expr: Expr


@dataclass
class If(Stmt):
    """A structured conditional."""

    cond: Expr
    then: Block = field(default_factory=list)
    els: Block = field(default_factory=list)


@dataclass
class While(Stmt):
    """``while True:`` -- staged code exits with :class:`Break` guards.

    Modelling loops this way lets the staged condition be computed with
    arbitrary emitted statements inside the loop header, which a
    ``while cond:`` form could not express.
    """

    body: Block = field(default_factory=list)


@dataclass
class ForRange(Stmt):
    """``for var in range(start, stop):``."""

    var: str
    start: Expr
    stop: Expr
    body: Block = field(default_factory=list)
    step: Optional[Expr] = None


@dataclass
class ForEach(Stmt):
    """``for var in iterable:`` -- iteration over a runtime collection."""

    var: str
    iterable: Expr
    body: Block = field(default_factory=list)


@dataclass
class Break(Stmt):
    """``break``."""


@dataclass
class Continue(Stmt):
    """``continue``."""


@dataclass
class Return(Stmt):
    """``return expr`` (or bare ``return``)."""

    expr: Optional[Expr] = None


@dataclass
class NestedFunc(Stmt):
    """A function defined inside another (closure).

    Used for the code-motion pattern of Section 4.4: ``prepare`` allocates
    data structures and returns a ``run`` closure containing the hot path.
    """

    name: str
    params: tuple[str, ...]
    body: Block = field(default_factory=list)


@dataclass
class Comment(Stmt):
    """A generated-code comment; kept so emitted artifacts stay readable."""

    text: str


@dataclass
class Function:
    """A generated function: name, parameter list and body block."""

    name: str
    params: tuple[str, ...]
    body: Block = field(default_factory=list)


Node = Union[Expr, Stmt]


def is_atom(expr: Expr) -> bool:
    """Return True when ``expr`` needs no binding to a fresh name.

    Symbols and constants can be referenced any number of times without
    duplicating work; everything else is bound once by the staging context.
    """
    return isinstance(expr, (Sym, Const))
