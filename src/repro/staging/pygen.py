"""Render staged IR to executable Python source and compile it.

This is the production back-end of the reproduction: the residual program of
the first Futamura projection is Python source containing only loops, local
variables, subscripts and arithmetic -- all interpretive overhead (operator
objects, expression trees, per-tuple dispatch) has been dissolved by the
generation pass.

Generated functions receive three well-known names:

* ``db``  -- a :class:`repro.storage.database.Database` (raw column access),
* ``out`` -- the output row collector (a list),
* ``rt``  -- the :mod:`repro.compiler.runtime` helper module.

Because every staged intermediate is bound to a fresh name, all expressions
rendered here have atomic operands; no precedence analysis is needed.
"""

from __future__ import annotations

import itertools
from typing import Callable, Sequence

from repro.errors import ReproError
from repro.staging import ir


class CodegenError(ReproError):
    """Raised when the IR contains a node the target cannot render."""

    code = "E_CODEGEN"
    phase = "host-compile"


def _py_const(value: object) -> str:
    if isinstance(value, float):
        # repr keeps round-trip precision; make sure a dot is present so the
        # C emitter's counterpart stays in sync about literal kinds.
        return repr(value)
    return repr(value)


# Intrinsics inlined to plain Python; everything else goes through ``rt.``.
_INLINE: dict[str, Callable[..., str]] = {
    "len": lambda a: f"len({a})",
    "to_float": lambda a: f"float({a})",
    "to_int": lambda a: f"int({a})",
    "hash_str": lambda a: f"hash({a})",
    "hash_int": lambda a: f"({a})",
    "abs": lambda a: f"abs({a})",
    "min2": lambda a, b: f"min({a}, {b})",
    "max2": lambda a, b: f"max({a}, {b})",
    "str_startswith": lambda a, b: f"{a}.startswith({b})",
    "str_endswith": lambda a, b: f"{a}.endswith({b})",
    "str_contains": lambda a, b: f"({b} in {a})",
    "str_slice": lambda a, lo, hi: f"{a}[{lo}:{hi}]",
    "str_concat": lambda a, b: f"({a} + {b})",
    "alloc": lambda n, v: f"[{v}] * {n}",
    "list_new": lambda: "[]",
    "list_append": lambda l, v: f"{l}.append({v})",
    "list_len": lambda l: f"len({l})",
    "list_extend": lambda l, v: f"{l}.extend({v})",
    "list_head": lambda l, n: f"{l}[:{n}]",
    "dict_new": lambda: "{}",
    "dict_get": lambda d, k, default: f"{d}.get({k}, {default})",
    "dict_contains": lambda d, k: f"({k} in {d})",
    "dict_items": lambda d: f"{d}.items()",
    "dict_values": lambda d: f"{d}.values()",
    "dict_keys": lambda d: f"{d}.keys()",
    "dict_len": lambda d: f"len({d})",
    "db_column": lambda t, c: f"db.column({t}, {c})",
    "db_column_vec": lambda t, c: f"db.column_vec({t}, {c})",
    "db_size": lambda t: f"db.size({t})",
    "db_index": lambda t, c: f"db.index({t}, {c})",
    "db_unique_index": lambda t, c: f"db.unique_index({t}, {c})",
    "db_dictionary": lambda t, c: f"db.dictionary({t}, {c})",
    "db_date_index": lambda t, c: f"db.date_index({t}, {c})",
    "db_encoded": lambda t, c: f"db.encoded_column({t}, {c})",
    "db_dict_strings": lambda t, c: f"db.dictionary({t}, {c}).strings",
    "db_date_candidates": lambda t, c, lo, hi: (
        f"db.date_index({t}, {c}).candidate_list({lo}, {hi})"
    ),
    "db_date_runs": lambda t, c, lo, hi: (
        f"db.date_index({t}, {c}).runs({lo}, {hi})"
    ),
    "index_lookup": lambda idx, k: f"{idx}.get({k}, ())",
    "index_lookup_unique": lambda idx, k: f"{idx}.get({k}, -1)",
    "set_new": lambda: "set()",
    "set_new1": lambda v: f"{{{v}}}",
    "set_add": lambda s, v: f"{s}.add({v})",
    "set_contains": lambda s, v: f"({v} in {s})",
    "set_len": lambda s: f"len({s})",
    "tuple1": lambda a: f"({a},)",
    "not_none": lambda a: f"({a} is not None)",
    "is_none": lambda a: f"({a} is None)",
    "out_append": lambda v: f"out.append({v})",
}


def _render_call(node: ir.Call, args: Sequence[str]) -> str:
    fn = _INLINE.get(node.fn)
    if fn is not None:
        return fn(*args)
    return f"rt.{node.fn}({', '.join(args)})"


def render_expr(expr: ir.Expr) -> str:
    """Render one IR expression as Python source."""
    if isinstance(expr, ir.Const):
        return _py_const(expr.value)
    if isinstance(expr, ir.Sym):
        return expr.name
    if isinstance(expr, ir.Bin):
        return f"{render_expr(expr.lhs)} {expr.op} {render_expr(expr.rhs)}"
    if isinstance(expr, ir.Un):
        if expr.op == "not":
            return f"not {render_expr(expr.operand)}"
        return f"{expr.op}{render_expr(expr.operand)}"
    if isinstance(expr, ir.Call):
        return _render_call(expr, [render_expr(a) for a in expr.args])
    if isinstance(expr, ir.Index):
        return f"{render_expr(expr.arr)}[{render_expr(expr.idx)}]"
    if isinstance(expr, ir.TupleExpr):
        inner = ", ".join(render_expr(i) for i in expr.items)
        if len(expr.items) == 1:
            inner += ","
        return f"({inner})"
    if isinstance(expr, ir.ListExpr):
        return f"[{', '.join(render_expr(i) for i in expr.items)}]"
    raise CodegenError(f"unhandled expression node: {expr!r}")


class _Writer:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def block(self, body: ir.Block) -> None:
        self.depth += 1
        emitted = False
        for stmt in body:
            emitted = self.stmt(stmt) or emitted
        if not emitted:
            self.line("pass")
        self.depth -= 1

    def stmt(self, node: ir.Stmt) -> bool:
        """Render one statement; returns False for pure comments."""
        if isinstance(node, ir.Comment):
            self.line(f"# {node.text}")
            return False
        if isinstance(node, (ir.Assign, ir.Reassign)):
            self.line(f"{node.name} = {render_expr(node.expr)}")
        elif isinstance(node, ir.SetIndex):
            self.line(
                f"{render_expr(node.arr)}[{render_expr(node.idx)}] = "
                f"{render_expr(node.value)}"
            )
        elif isinstance(node, ir.ExprStmt):
            self.line(render_expr(node.expr))
        elif isinstance(node, ir.If):
            self.line(f"if {render_expr(node.cond)}:")
            self.block(node.then)
            if node.els:
                self.line("else:")
                self.block(node.els)
        elif isinstance(node, ir.While):
            self.line("while True:")
            self.block(node.body)
        elif isinstance(node, ir.ForRange):
            if node.step is None:
                rng = f"range({render_expr(node.start)}, {render_expr(node.stop)})"
            else:
                rng = (
                    f"range({render_expr(node.start)}, {render_expr(node.stop)}, "
                    f"{render_expr(node.step)})"
                )
            self.line(f"for {node.var} in {rng}:")
            self.block(node.body)
        elif isinstance(node, ir.ForEach):
            self.line(f"for {node.var} in {render_expr(node.iterable)}:")
            self.block(node.body)
        elif isinstance(node, ir.NestedFunc):
            self.line(f"def {node.name}({', '.join(node.params)}):")
            free = _free_mutables(node.body)
            self.depth += 1
            emitted = False
            if free:
                # Mutable staged locals hoisted into the enclosing prepare()
                # scope (Section 4.4) are reassigned by this closure.
                self.line(f"nonlocal {', '.join(sorted(free))}")
                emitted = True
            for stmt in node.body:
                emitted = self.stmt(stmt) or emitted
            if not emitted:
                self.line("pass")
            self.depth -= 1
        elif isinstance(node, ir.Break):
            self.line("break")
        elif isinstance(node, ir.Continue):
            self.line("continue")
        elif isinstance(node, ir.Return):
            if node.expr is None:
                self.line("return")
            else:
                self.line(f"return {render_expr(node.expr)}")
        else:
            raise CodegenError(f"unhandled statement node: {node!r}")
        return True


def _free_mutables(body) -> set[str]:
    """Names a block reassigns without defining -- closures need ``nonlocal``."""
    assigned: set[str] = set()
    reassigned: set[str] = set()

    def walk(block) -> None:
        for stmt in block:
            if isinstance(stmt, ir.Assign):
                assigned.add(stmt.name)
            elif isinstance(stmt, ir.Reassign):
                reassigned.add(stmt.name)
            elif isinstance(stmt, ir.If):
                walk(stmt.then)
                walk(stmt.els)
            elif isinstance(stmt, (ir.While,)):
                walk(stmt.body)
            elif isinstance(stmt, (ir.ForRange, ir.ForEach)):
                assigned.add(stmt.var)
                walk(stmt.body)
            elif isinstance(stmt, ir.NestedFunc):
                walk(stmt.body)

    walk(body)
    return reassigned - assigned


def generate_python(functions: Sequence[ir.Function], header: str = "") -> str:
    """Render a staged program (list of functions) to Python source."""
    writer = _Writer()
    if header:
        for line in header.splitlines():
            writer.line(f"# {line}" if line else "#")
    for fn in functions:
        writer.line(f"def {fn.name}({', '.join(fn.params)}):")
        writer.block(fn.body)
        writer.line("")
    return "\n".join(writer.lines) + "\n"


_module_counter = itertools.count()


class PyProgram:
    """A compiled staged program: source text plus callable entry points."""

    def __init__(self, source: str, globals_: dict | None = None) -> None:
        from repro.compiler import runtime as _rt

        self.source = source
        self.namespace: dict = {"rt": _rt}
        if globals_:
            self.namespace.update(globals_)
        filename = f"<staged-{next(_module_counter)}>"
        code = compile(source, filename, "exec")
        exec(code, self.namespace)  # noqa: S102 - executing our own codegen output

    def fn(self, name: str) -> Callable:
        """Return a generated function by name."""
        func = self.namespace.get(name)
        if not callable(func):
            raise CodegenError(f"no generated function named {name!r}")
        return func
