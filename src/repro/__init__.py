"""repro: a single-pass query compiler derived from a query interpreter.

Reproduction of "How to Architect a Query Compiler, Revisited"
(Tahboub, Essertel, Rompf -- SIGMOD 2018).

Public surface:

* :mod:`repro.catalog`  -- types, schemas, statistics
* :mod:`repro.storage`  -- columnar tables, indexes, dictionaries, Database
* :mod:`repro.plan`     -- expressions, physical plans, rewrites, optimizer
* :mod:`repro.engine`   -- Volcano and data-centric push interpreters
* :mod:`repro.compiler` -- the LB2 single-pass compiler, template compiler,
  parallel driver
* :mod:`repro.sql`      -- SQL front-end
* :mod:`repro.tpch`     -- dbgen + the 22 TPC-H query plans
* :mod:`repro.staging`  -- the staging framework underneath it all
"""

from repro.catalog import Catalog
from repro.storage import Database, OptimizationLevel

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "Database",
    "OptimizationLevel",
    "compile_plan",
    "execute",
    "__version__",
]


def compile_plan(plan, db, config=None):
    """Compile a physical plan against a loaded database (LB2 path)."""
    from repro.compiler.driver import LB2Compiler

    return LB2Compiler(db.catalog, db, config).compile(plan)


def execute(query, db, engine: str = "lb2"):
    """One-call execution of a plan or SQL string on a chosen engine.

    ``engine`` is one of ``lb2`` (compiled, default), ``push``, ``volcano``
    or ``template``.
    """
    from repro.plan.physical import PhysicalPlan

    if isinstance(query, str):
        from repro.sql import sql_to_plan

        plan = sql_to_plan(query, db)
    elif isinstance(query, PhysicalPlan):
        plan = query
    else:
        raise TypeError("query must be a SQL string or a PhysicalPlan")

    if engine == "lb2":
        return compile_plan(plan, db).run(db)
    if engine == "push":
        from repro.engine import execute_push

        return execute_push(plan, db, db.catalog)
    if engine == "volcano":
        from repro.engine import execute_volcano

        return execute_volcano(plan, db, db.catalog)
    if engine == "template":
        from repro.compiler.template import execute_template

        return execute_template(plan, db, db.catalog)
    raise ValueError(f"unknown engine {engine!r}")
