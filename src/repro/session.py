"""A small session facade: SQL in, rows out, compiled queries cached.

This is the "downstream user" surface: it owns a database, plans SQL
through the optimizer, compiles with LB2, and caches compiled queries by
SQL text so repeated statements skip planning and code generation (the
paper: "compilation times ... can often be amortized if queries are
precompiled and used multiple times").

The cache is a bounded LRU (``max_cache_size`` statements); hits, misses
and evictions feed :data:`repro.obs.metrics.REGISTRY` and are inspectable
via :meth:`Session.cache_info`.

The session is safe to share across threads -- the serving tier
(:mod:`repro.serve`) hammers one instance from a worker pool.  Cache
bookkeeping (LRU order, eviction, counters) is serialized under one lock,
and compilation is *single-flight*: when several threads miss on the same
key concurrently, exactly one compiles while the rest block on the
in-flight build and share its result (or its typed failure).  Compilation
itself runs outside the lock, so a slow compile never blocks cache hits
for other statements.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.compiler.driver import CompiledQuery, LB2Compiler
from repro.compiler.lb2 import Config
from repro.errors import ParamError
from repro.obs import events
from repro.obs.metrics import REGISTRY
from repro.obs.telemetry import TELEMETRY
from repro.obs.trace import span
from repro.plan.explain import explain
from repro.plan.params import Bindings, ParamSlot, check_bindings, collect_params
from repro.plan.physical import PhysicalPlan
from repro.plan.rewrite import optimize_for_level
from repro.sql import sql_to_plan
from repro.sql.shape import StatementShape, normalize_statement, statement_shape
from repro.storage.database import Database


class _Inflight:
    """One in-progress compilation that concurrent misses can wait on."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[CompiledQuery] = None
        self.error: Optional[BaseException] = None


@dataclass
class PreparedStatement:
    """A compiled statement bound to its session, executable many times.

    ``text`` is the canonical statement text (the cache key text); for a
    parameterized statement it shows the placeholders.  :meth:`execute`
    validates ``params`` against :attr:`signature` and runs the shared
    residual program -- one compile serves every binding.  Arity, name and
    Python-type mismatches raise the typed ``E_PARAM`` error.
    """

    session: "Session"
    text: str
    shape: StatementShape
    compiled: CompiledQuery

    @property
    def signature(self) -> tuple[ParamSlot, ...]:
        """The statement's parameter slots, in vector order."""
        return self.compiled.param_signature

    @property
    def source(self) -> str:
        """The residual Python program shared across bindings."""
        return self.compiled.source

    def execute(self, params: Optional[Bindings] = None) -> list[tuple]:
        """Run with ``params`` bound; returns result rows."""
        with span("execute", engine="compiled"):
            return self.compiled.run(self.session.db, params)

    def describe(self) -> str:
        slots = ", ".join(
            f"{s.describe()} {s.ctype.value}" for s in self.signature
        )
        return f"{self.text} [{slots}]" if slots else self.text


@dataclass(frozen=True)
class ResolvedStatement:
    """One statement resolved for execution on *any* engine.

    The :class:`~repro.resilience.executor.ResilientExecutor` plans every
    request anyway (interpreted engines walk the plan); this bundles that
    plan with the parameterization decision so the whole fallback chain
    agrees on it: ``text`` is the cache text the compiled engine keys on,
    ``signature``/``bindings`` are what :func:`repro.plan.params.
    check_bindings` turns into the positional vector, and the interpreted
    engines substitute the same vector via :func:`repro.plan.params.
    bind_params`.  ``signature`` is empty for a non-parameterized
    statement (then ``bindings`` is None and ``text`` is the normalized
    literal spelling).
    """

    sql: str
    text: str
    plan: PhysicalPlan
    signature: tuple[ParamSlot, ...]
    bindings: Optional[Bindings]

    @property
    def parameterized(self) -> bool:
        return bool(self.signature)


class Session:
    """Compile-and-cache query execution against one database."""

    def __init__(
        self,
        db: Database,
        config: Optional[Config] = None,
        use_index_rewrites: bool = True,
        max_cache_size: int = 128,
        auto_parameterize: bool = True,
    ) -> None:
        if max_cache_size <= 0:
            raise ValueError("max_cache_size must be positive")
        self.db = db
        self.config = config
        self.use_index_rewrites = use_index_rewrites
        # When False, query()/resolve() never lift literals to parameters:
        # every distinct statement text compiles separately.  Explicit
        # placeholders still work.  Exists for A/B measurement
        # (``repro-bench-serve --params``) and as an escape hatch.
        self.auto_parameterize = auto_parameterize
        self.max_cache_size = max_cache_size
        self._cache: OrderedDict[tuple, CompiledQuery] = OrderedDict()
        self._inflight: dict[tuple, _Inflight] = {}
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._single_flight_waits = 0
        self._shape_hits = 0
        self._shape_misses = 0
        # Shape texts whose parameterized compile (or auto-binding) failed
        # with E_PARAM: the query path falls back to per-literal compiles
        # for these and skips re-attempting the shape on every call.
        self._shape_fallbacks: set[str] = set()

    # -- planning ---------------------------------------------------------------

    def plan(self, sql: str) -> PhysicalPlan:
        """Parse + optimize one SQL statement into a physical plan."""
        with span("plan"):
            plan = sql_to_plan(sql, self.db)
            if self.use_index_rewrites:
                plan = optimize_for_level(plan, self.db, self.db.catalog)
        return plan

    def _cache_key(self, sql: str, config: Optional[Config]) -> tuple:
        """Everything a compiled query was specialized against.

        Keying by statement text alone served stale plans after a config
        change or a ``session.db`` swap -- the residual program bakes in
        dictionary layouts, index choices and instrumentation.  ``Config``
        is a frozen dataclass (hashable); the database contributes its
        identity, so rebinding ``session.db`` misses cleanly.

        The statement text is canonicalized by :func:`repro.sql.shape.
        normalize_statement`: whitespace, keyword case and comments do not
        fragment the cache.
        """
        return (
            normalize_statement(sql),
            config,
            id(self.db),
            self.use_index_rewrites,
        )

    def _plan_cache_key(self, key: str, config: Optional[Config]) -> tuple:
        return (f"plan:{key}", config, id(self.db), self.use_index_rewrites)

    def _shape_cache_key(self, text: str, config: Optional[Config]) -> tuple:
        """The cache key of a shape-compiled (parameterized) statement.

        ``text`` is already canonical (it came out of
        :func:`~repro.sql.shape.statement_shape`); the ``shape:`` prefix
        keeps shape entries distinguishable in :meth:`cache_info` and in
        the ``session.cache.shape_*`` counters.
        """
        return (f"shape:{text}", config, id(self.db), self.use_index_rewrites)

    def prepare(
        self, sql: str, *, config: Optional[Config] = None
    ) -> CompiledQuery:
        """The compiled query for ``sql``, cached by statement + config.

        LRU semantics: a hit refreshes the statement's recency; inserting
        past ``max_cache_size`` evicts the least recently used entry.
        ``config`` overrides the session config for this statement only
        (the serving tier uses this to cache budget-checked builds under
        their own key); None means the session config.
        """
        cfg = self.config if config is None else config
        key = self._cache_key(sql, cfg)

        def compile_sql() -> CompiledQuery:
            with span("compile", statement=" ".join(sql.split())):
                compiler = LB2Compiler(self.db.catalog, self.db, cfg)
                return compiler.compile(self.plan(sql))

        return self._prepare_cached(key, compile_sql)

    def prepare_shape(
        self, text: str, *, config: Optional[Config] = None
    ) -> CompiledQuery:
        """The compiled query for a canonical (usually parameterized) shape.

        ``text`` must be a shape text from :func:`~repro.sql.shape.
        statement_shape` -- canonical spelling, placeholders in value
        positions.  The entry is cached under the ``shape:``-prefixed key,
        so every literal variant of one statement shares one compile; the
        ``session.cache.shape_hits``/``shape_misses`` counters track this
        path separately from per-literal compiles.
        """
        cfg = self.config if config is None else config
        key = self._shape_cache_key(text, cfg)

        def compile_shape() -> CompiledQuery:
            with span("compile", statement=text):
                compiler = LB2Compiler(self.db.catalog, self.db, cfg)
                return compiler.compile(self.plan(text))

        return self._prepare_cached(key, compile_shape)

    def prepare_statement(
        self, sql: str, *, config: Optional[Config] = None
    ) -> PreparedStatement:
        """Prepare ``sql`` once; execute it many times with bindings.

        A statement with explicit placeholders (``?`` positional or
        ``:name`` named) compiles to one shape-keyed residual program that
        closes over the runtime parameter vector;
        :meth:`PreparedStatement.execute` supplies the bindings.  A
        statement without placeholders prepares exactly as written (no
        auto-parameterization -- the user drew the line themselves) and
        executes with no bindings.
        """
        shape = statement_shape(sql)
        if shape.explicit:
            compiled = self.prepare_shape(shape.text, config=config)
            return PreparedStatement(self, shape.text, shape, compiled)
        text = normalize_statement(sql)
        compiled = self.prepare(sql, config=config)
        return PreparedStatement(self, text, StatementShape(text=text), compiled)

    def resolve(
        self, sql: str, params: Optional[Bindings] = None
    ) -> ResolvedStatement:
        """Plan ``sql`` with the parameterization decision made.

        Engine-agnostic front half of execution, shared with the
        resilience layer: explicit placeholders resolve to the shape text
        with the caller's ``params`` as bindings; an eligible literal
        statement auto-parameterizes (its own literals become the
        bindings) unless the shape previously failed with ``E_PARAM``, in
        which case it -- and any statement with nothing to lift --
        resolves to the normalized literal text with no parameters.
        """
        shape = statement_shape(sql)
        if shape.explicit:
            plan = self.plan(shape.text)
            return ResolvedStatement(
                sql, shape.text, plan, collect_params(plan), params
            )
        if params:
            raise ParamError(
                "statement has no parameter placeholders but bindings "
                "were supplied",
                phase="execute",
            )
        if (
            self.auto_parameterize
            and shape.param_count
            and not self._shape_known_bad(shape.text)
        ):
            try:
                plan = self.plan(shape.text)
                signature = collect_params(plan)
                check_bindings(signature, shape.values)
                return ResolvedStatement(
                    sql, shape.text, plan, signature, shape.values
                )
            except ParamError:
                self._mark_shape_bad(shape.text)
        text = normalize_statement(sql)
        return ResolvedStatement(sql, text, self.plan(text), (), None)

    def _shape_known_bad(self, text: str) -> bool:
        with self._lock:
            return text in self._shape_fallbacks

    def _mark_shape_bad(self, text: str) -> None:
        with self._lock:
            self._shape_fallbacks.add(text)

    def prepare_plan(
        self, plan: PhysicalPlan, key: str, *, config: Optional[Config] = None
    ) -> CompiledQuery:
        """Compile-and-cache a hand-built plan under an explicit ``key``.

        The SQL cache amortizes compilation for front-end statements; this
        is the same economics for callers that build
        :class:`~repro.plan.physical.PhysicalPlan` trees directly (the
        TPC-H plan-only queries served by :mod:`repro.serve`).  The caller
        owns the key contract: one key must always name one plan shape.
        """
        cfg = self.config if config is None else config
        cache_key = self._plan_cache_key(key, cfg)

        def compile_plan() -> CompiledQuery:
            with span("compile", statement=f"plan:{key}"):
                compiler = LB2Compiler(self.db.catalog, self.db, cfg)
                return compiler.compile(plan)

        return self._prepare_cached(cache_key, compile_plan)

    def _prepare_cached(
        self, key: tuple, compile_fn: Callable[[], CompiledQuery]
    ) -> CompiledQuery:
        """Cache lookup with single-flight compilation on miss."""
        while True:
            wait_for: Optional[_Inflight] = None
            with self._lock:
                shaped = key[0].startswith("shape:")
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self._hits += 1
                    REGISTRY.counter("session.cache.hits")
                    if shaped:
                        self._shape_hits += 1
                        REGISTRY.counter("session.cache.shape_hits")
                    return cached
                flight = self._inflight.get(key)
                if flight is not None:
                    wait_for = flight
                else:
                    flight = _Inflight()
                    self._inflight[key] = flight
                    self._misses += 1
                    REGISTRY.counter("session.cache.misses")
                    if shaped:
                        self._shape_misses += 1
                        REGISTRY.counter("session.cache.shape_misses")
            if wait_for is not None:
                wait_for.event.wait()
                with self._lock:
                    self._single_flight_waits += 1
                    REGISTRY.counter("session.cache.single_flight_waits")
                if wait_for.error is not None:
                    # Each waiter raises its own shallow copy: exception
                    # instances carry mutable state (tracebacks, engine
                    # trails) that must not be shared across threads.
                    raise copy.copy(wait_for.error)
                result = wait_for.result
                assert result is not None
                return result
            # This thread owns the compile; run it outside the lock.
            t0 = time.perf_counter()
            try:
                compiled = compile_fn()
            except BaseException as exc:
                flight.error = exc
                with self._lock:
                    self._inflight.pop(key, None)
                flight.event.set()
                raise
            # Exactly one compile event / telemetry sample per actual
            # compilation: waiters and cache hits never reach this point.
            # The ambient request context (serve worker threads) supplies
            # the request id; the shape falls back to the cache key's
            # statement text for library callers.
            shape = events.current_shape() or key[0]
            seconds = time.perf_counter() - t0
            events.emit(
                "compile",
                shape=shape,
                seconds=round(seconds, 6),
                generation_seconds=round(compiled.generation_seconds, 6),
                host_seconds=round(compiled.compile_seconds, 6),
            )
            TELEMETRY.record_compile(
                shape,
                seconds,
                generation_seconds=compiled.generation_seconds,
                host_seconds=compiled.compile_seconds,
            )
            with self._lock:
                self._cache[key] = compiled
                while len(self._cache) > self.max_cache_size:
                    self._cache.popitem(last=False)
                    self._evictions += 1
                    REGISTRY.counter("session.cache.evictions")
                self._inflight.pop(key, None)
            flight.result = compiled
            flight.event.set()
            return compiled

    # -- execution -----------------------------------------------------------------

    def query(
        self, sql: str, params: Optional[Bindings] = None
    ) -> list[tuple]:
        """Execute SQL (compiled); returns result rows.

        With explicit placeholders in ``sql``, ``params`` supplies the
        bindings (sequence for ``?``, mapping or first-occurrence-ordered
        sequence for ``:name``) and the compiled shape is shared across
        bindings.  Without placeholders, eligible literals are
        auto-parameterized: statements differing only in those literal
        values share one compiled residual program, keyed by shape.  If
        the shape cannot be parameterized (``E_PARAM`` anywhere on the
        shape path), the statement transparently falls back to a
        per-literal compile -- results are identical either way.
        """
        shape = statement_shape(sql)
        if shape.explicit:
            compiled = self.prepare_shape(shape.text)
            with span("execute", engine="compiled"):
                return compiled.run(self.db, params)
        if params:
            raise ParamError(
                "statement has no parameter placeholders but bindings "
                "were supplied",
                phase="execute",
            )
        if (
            self.auto_parameterize
            and shape.param_count
            and not self._shape_known_bad(shape.text)
        ):
            try:
                compiled = self.prepare_shape(shape.text)
                with span("execute", engine="compiled"):
                    return compiled.run(self.db, shape.values)
            except ParamError:
                self._mark_shape_bad(shape.text)
        compiled = self.prepare(sql)
        with span("execute", engine="compiled"):
            return compiled.run(self.db)

    def execute_plan(self, plan: PhysicalPlan) -> list[tuple]:
        """Execute a hand-built physical plan (compiled, uncached)."""
        compiler = LB2Compiler(self.db.catalog, self.db, self.config)
        return compiler.compile(plan).run(self.db)

    def analyze(self, sql: str) -> tuple[list[tuple], dict[str, int]]:
        """Execute with per-operator row counters (EXPLAIN ANALYZE).

        Returns ``(rows, stats)`` where stats maps operator labels to the
        number of records each emitted.  Compiles a fresh instrumented
        query (not cached -- counters cost a little on the hot path).
        For the full annotated tree -- wall-time, selectivity, kernel
        counts, any engine -- use :meth:`explain_analyze`.
        """
        from dataclasses import replace

        base = self.config or Config()
        compiler = LB2Compiler(
            self.db.catalog, self.db, replace(base, instrument=True)
        )
        compiled = compiler.compile(self.plan(sql))
        rows = compiled.run(self.db)
        return rows, dict(compiled.last_stats or {})

    def explain_analyze(self, sql: str, engine: str = "compiled"):
        """The annotated operator tree: rows, wall-time, selectivity.

        ``engine`` is ``"compiled"`` (scalar codegen), ``"vector"``,
        ``"push"`` or ``"volcano"``; all four label operators identically,
        so their numbers are directly comparable.  Returns an
        :class:`repro.obs.explain.ExplainAnalyze`.
        """
        from repro.obs.explain import explain_analyze_plan

        with span("explain_analyze", engine=engine):
            return explain_analyze_plan(
                self.db, self.plan(sql), engine=engine, config=self.config
            )

    # -- introspection -----------------------------------------------------------------

    def explain(self, sql: str) -> str:
        """The optimized physical plan for ``sql``, pretty-printed."""
        return explain(self.plan(sql), self.db.catalog)

    def generated_code(self, sql: str) -> str:
        """The residual Python program for ``sql``."""
        return self.prepare(sql).source

    @property
    def cached_statements(self) -> int:
        with self._lock:
            return len(self._cache)

    def cache_info(self) -> dict:
        """Size, bound, keys (LRU -> MRU order) and hit/miss/evict counts."""
        with self._lock:
            return {
                "size": len(self._cache),
                "max_size": self.max_cache_size,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "single_flight_waits": self._single_flight_waits,
                "shape_hits": self._shape_hits,
                "shape_misses": self._shape_misses,
                "statements": [key[0] for key in self._cache],
            }

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()
            self._shape_fallbacks.clear()

    def invalidate(self) -> None:
        """Drop every cached compiled query (alias of :meth:`clear_cache`).

        This covers parameterized statements too: shape-keyed entries
        (``shape:`` keys) live in the same LRU, and the shape-fallback
        memo is reset so previously unparameterizable statements get a
        fresh chance after whatever changed.  The resilience layer calls
        this (or :meth:`forget`) when a cached plan misbehaves at run
        time, so degradation never re-serves a known-bad residual program.
        """
        self.clear_cache()

    def forget(self, sql: str, *, config: Optional[Config] = None) -> bool:
        """Evict one statement's compiled queries; True when any was cached.

        ``config`` selects which specialization to evict (the same default
        as :meth:`prepare`: the session config).

        Parameterized-statement contract: a statement maps to up to two
        cache entries -- the per-literal compile (normalized text, the
        :meth:`prepare` key) and the shape-keyed compile shared with every
        literal variant (the :meth:`query`/:meth:`prepare_statement` key).
        ``forget`` evicts both, and clears the statement's shape-fallback
        memo, so the next execution recompiles from scratch no matter
        which path cached it.  Note the shape entry is shared: forgetting
        one literal variant forgets the compile for all of them.
        """
        cfg = self.config if config is None else config
        shape = statement_shape(sql)
        with self._lock:
            dropped = self._cache.pop(self._cache_key(sql, cfg), None) is not None
            if shape.parameterized:
                shape_key = self._shape_cache_key(shape.text, cfg)
                dropped = (
                    self._cache.pop(shape_key, None) is not None
                ) or dropped
                self._shape_fallbacks.discard(shape.text)
            return dropped

    def forget_plan(self, key: str, *, config: Optional[Config] = None) -> bool:
        """Evict one plan-keyed compiled query; True when it was cached."""
        cfg = self.config if config is None else config
        with self._lock:
            return (
                self._cache.pop(self._plan_cache_key(key, cfg), None) is not None
            )
