"""A small session facade: SQL in, rows out, compiled queries cached.

This is the "downstream user" surface: it owns a database, plans SQL
through the optimizer, compiles with LB2, and caches compiled queries by
SQL text so repeated statements skip planning and code generation (the
paper: "compilation times ... can often be amortized if queries are
precompiled and used multiple times").

The cache is a bounded LRU (``max_cache_size`` statements); hits, misses
and evictions feed :data:`repro.obs.metrics.REGISTRY` and are inspectable
via :meth:`Session.cache_info`.

The session is safe to share across threads -- the serving tier
(:mod:`repro.serve`) hammers one instance from a worker pool.  Cache
bookkeeping (LRU order, eviction, counters) is serialized under one lock,
and compilation is *single-flight*: when several threads miss on the same
key concurrently, exactly one compiles while the rest block on the
in-flight build and share its result (or its typed failure).  Compilation
itself runs outside the lock, so a slow compile never blocks cache hits
for other statements.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import OrderedDict
from typing import Callable, Optional

from repro.compiler.driver import CompiledQuery, LB2Compiler
from repro.compiler.lb2 import Config
from repro.obs import events
from repro.obs.metrics import REGISTRY
from repro.obs.telemetry import TELEMETRY
from repro.obs.trace import span
from repro.plan.explain import explain
from repro.plan.physical import PhysicalPlan
from repro.plan.rewrite import optimize_for_level
from repro.sql import sql_to_plan
from repro.storage.database import Database


class _Inflight:
    """One in-progress compilation that concurrent misses can wait on."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[CompiledQuery] = None
        self.error: Optional[BaseException] = None


class Session:
    """Compile-and-cache query execution against one database."""

    def __init__(
        self,
        db: Database,
        config: Optional[Config] = None,
        use_index_rewrites: bool = True,
        max_cache_size: int = 128,
    ) -> None:
        if max_cache_size <= 0:
            raise ValueError("max_cache_size must be positive")
        self.db = db
        self.config = config
        self.use_index_rewrites = use_index_rewrites
        self.max_cache_size = max_cache_size
        self._cache: OrderedDict[tuple, CompiledQuery] = OrderedDict()
        self._inflight: dict[tuple, _Inflight] = {}
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._single_flight_waits = 0

    # -- planning ---------------------------------------------------------------

    def plan(self, sql: str) -> PhysicalPlan:
        """Parse + optimize one SQL statement into a physical plan."""
        with span("plan"):
            plan = sql_to_plan(sql, self.db)
            if self.use_index_rewrites:
                plan = optimize_for_level(plan, self.db, self.db.catalog)
        return plan

    def _cache_key(self, sql: str, config: Optional[Config]) -> tuple:
        """Everything a compiled query was specialized against.

        Keying by statement text alone served stale plans after a config
        change or a ``session.db`` swap -- the residual program bakes in
        dictionary layouts, index choices and instrumentation.  ``Config``
        is a frozen dataclass (hashable); the database contributes its
        identity, so rebinding ``session.db`` misses cleanly.
        """
        return (
            " ".join(sql.split()),  # whitespace-insensitive statement text
            config,
            id(self.db),
            self.use_index_rewrites,
        )

    def _plan_cache_key(self, key: str, config: Optional[Config]) -> tuple:
        return (f"plan:{key}", config, id(self.db), self.use_index_rewrites)

    def prepare(
        self, sql: str, *, config: Optional[Config] = None
    ) -> CompiledQuery:
        """The compiled query for ``sql``, cached by statement + config.

        LRU semantics: a hit refreshes the statement's recency; inserting
        past ``max_cache_size`` evicts the least recently used entry.
        ``config`` overrides the session config for this statement only
        (the serving tier uses this to cache budget-checked builds under
        their own key); None means the session config.
        """
        cfg = self.config if config is None else config
        key = self._cache_key(sql, cfg)

        def compile_sql() -> CompiledQuery:
            with span("compile", statement=" ".join(sql.split())):
                compiler = LB2Compiler(self.db.catalog, self.db, cfg)
                return compiler.compile(self.plan(sql))

        return self._prepare_cached(key, compile_sql)

    def prepare_plan(
        self, plan: PhysicalPlan, key: str, *, config: Optional[Config] = None
    ) -> CompiledQuery:
        """Compile-and-cache a hand-built plan under an explicit ``key``.

        The SQL cache amortizes compilation for front-end statements; this
        is the same economics for callers that build
        :class:`~repro.plan.physical.PhysicalPlan` trees directly (the
        TPC-H plan-only queries served by :mod:`repro.serve`).  The caller
        owns the key contract: one key must always name one plan shape.
        """
        cfg = self.config if config is None else config
        cache_key = self._plan_cache_key(key, cfg)

        def compile_plan() -> CompiledQuery:
            with span("compile", statement=f"plan:{key}"):
                compiler = LB2Compiler(self.db.catalog, self.db, cfg)
                return compiler.compile(plan)

        return self._prepare_cached(cache_key, compile_plan)

    def _prepare_cached(
        self, key: tuple, compile_fn: Callable[[], CompiledQuery]
    ) -> CompiledQuery:
        """Cache lookup with single-flight compilation on miss."""
        while True:
            wait_for: Optional[_Inflight] = None
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self._hits += 1
                    REGISTRY.counter("session.cache.hits")
                    return cached
                flight = self._inflight.get(key)
                if flight is not None:
                    wait_for = flight
                else:
                    flight = _Inflight()
                    self._inflight[key] = flight
                    self._misses += 1
                    REGISTRY.counter("session.cache.misses")
            if wait_for is not None:
                wait_for.event.wait()
                with self._lock:
                    self._single_flight_waits += 1
                    REGISTRY.counter("session.cache.single_flight_waits")
                if wait_for.error is not None:
                    # Each waiter raises its own shallow copy: exception
                    # instances carry mutable state (tracebacks, engine
                    # trails) that must not be shared across threads.
                    raise copy.copy(wait_for.error)
                result = wait_for.result
                assert result is not None
                return result
            # This thread owns the compile; run it outside the lock.
            t0 = time.perf_counter()
            try:
                compiled = compile_fn()
            except BaseException as exc:
                flight.error = exc
                with self._lock:
                    self._inflight.pop(key, None)
                flight.event.set()
                raise
            # Exactly one compile event / telemetry sample per actual
            # compilation: waiters and cache hits never reach this point.
            # The ambient request context (serve worker threads) supplies
            # the request id; the shape falls back to the cache key's
            # statement text for library callers.
            shape = events.current_shape() or key[0]
            seconds = time.perf_counter() - t0
            events.emit(
                "compile",
                shape=shape,
                seconds=round(seconds, 6),
                generation_seconds=round(compiled.generation_seconds, 6),
                host_seconds=round(compiled.compile_seconds, 6),
            )
            TELEMETRY.record_compile(
                shape,
                seconds,
                generation_seconds=compiled.generation_seconds,
                host_seconds=compiled.compile_seconds,
            )
            with self._lock:
                self._cache[key] = compiled
                while len(self._cache) > self.max_cache_size:
                    self._cache.popitem(last=False)
                    self._evictions += 1
                    REGISTRY.counter("session.cache.evictions")
                self._inflight.pop(key, None)
            flight.result = compiled
            flight.event.set()
            return compiled

    # -- execution -----------------------------------------------------------------

    def query(self, sql: str) -> list[tuple]:
        """Execute SQL (compiled); returns result rows."""
        compiled = self.prepare(sql)
        with span("execute", engine="compiled"):
            return compiled.run(self.db)

    def execute_plan(self, plan: PhysicalPlan) -> list[tuple]:
        """Execute a hand-built physical plan (compiled, uncached)."""
        compiler = LB2Compiler(self.db.catalog, self.db, self.config)
        return compiler.compile(plan).run(self.db)

    def analyze(self, sql: str) -> tuple[list[tuple], dict[str, int]]:
        """Execute with per-operator row counters (EXPLAIN ANALYZE).

        Returns ``(rows, stats)`` where stats maps operator labels to the
        number of records each emitted.  Compiles a fresh instrumented
        query (not cached -- counters cost a little on the hot path).
        For the full annotated tree -- wall-time, selectivity, kernel
        counts, any engine -- use :meth:`explain_analyze`.
        """
        from dataclasses import replace

        base = self.config or Config()
        compiler = LB2Compiler(
            self.db.catalog, self.db, replace(base, instrument=True)
        )
        compiled = compiler.compile(self.plan(sql))
        rows = compiled.run(self.db)
        return rows, dict(compiled.last_stats or {})

    def explain_analyze(self, sql: str, engine: str = "compiled"):
        """The annotated operator tree: rows, wall-time, selectivity.

        ``engine`` is ``"compiled"`` (scalar codegen), ``"vector"``,
        ``"push"`` or ``"volcano"``; all four label operators identically,
        so their numbers are directly comparable.  Returns an
        :class:`repro.obs.explain.ExplainAnalyze`.
        """
        from repro.obs.explain import explain_analyze_plan

        with span("explain_analyze", engine=engine):
            return explain_analyze_plan(
                self.db, self.plan(sql), engine=engine, config=self.config
            )

    # -- introspection -----------------------------------------------------------------

    def explain(self, sql: str) -> str:
        """The optimized physical plan for ``sql``, pretty-printed."""
        return explain(self.plan(sql), self.db.catalog)

    def generated_code(self, sql: str) -> str:
        """The residual Python program for ``sql``."""
        return self.prepare(sql).source

    @property
    def cached_statements(self) -> int:
        with self._lock:
            return len(self._cache)

    def cache_info(self) -> dict:
        """Size, bound, keys (LRU -> MRU order) and hit/miss/evict counts."""
        with self._lock:
            return {
                "size": len(self._cache),
                "max_size": self.max_cache_size,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "single_flight_waits": self._single_flight_waits,
                "statements": [key[0] for key in self._cache],
            }

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def invalidate(self) -> None:
        """Drop every cached compiled query (alias of :meth:`clear_cache`).

        The resilience layer calls this (or :meth:`forget`) when a cached
        plan misbehaves at run time, so degradation never re-serves a
        known-bad residual program.
        """
        self.clear_cache()

    def forget(self, sql: str, *, config: Optional[Config] = None) -> bool:
        """Evict one statement's compiled query; True when it was cached.

        ``config`` selects which specialization to evict (the same default
        as :meth:`prepare`: the session config).
        """
        cfg = self.config if config is None else config
        with self._lock:
            return self._cache.pop(self._cache_key(sql, cfg), None) is not None

    def forget_plan(self, key: str, *, config: Optional[Config] = None) -> bool:
        """Evict one plan-keyed compiled query; True when it was cached."""
        cfg = self.config if config is None else config
        with self._lock:
            return (
                self._cache.pop(self._plan_cache_key(key, cfg), None) is not None
            )
