"""A small session facade: SQL in, rows out, compiled queries cached.

This is the "downstream user" surface: it owns a database, plans SQL
through the optimizer, compiles with LB2, and caches compiled queries by
SQL text so repeated statements skip planning and code generation (the
paper: "compilation times ... can often be amortized if queries are
precompiled and used multiple times").
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.driver import CompiledQuery, LB2Compiler
from repro.compiler.lb2 import Config
from repro.plan.explain import explain
from repro.plan.physical import PhysicalPlan
from repro.plan.rewrite import optimize_for_level
from repro.sql import sql_to_plan
from repro.storage.database import Database


class Session:
    """Compile-and-cache query execution against one database."""

    def __init__(
        self,
        db: Database,
        config: Optional[Config] = None,
        use_index_rewrites: bool = True,
    ) -> None:
        self.db = db
        self.config = config
        self.use_index_rewrites = use_index_rewrites
        self._cache: dict[tuple, CompiledQuery] = {}

    # -- planning ---------------------------------------------------------------

    def plan(self, sql: str) -> PhysicalPlan:
        """Parse + optimize one SQL statement into a physical plan."""
        plan = sql_to_plan(sql, self.db)
        if self.use_index_rewrites:
            plan = optimize_for_level(plan, self.db, self.db.catalog)
        return plan

    def _cache_key(self, sql: str) -> tuple:
        """Everything a compiled query was specialized against.

        Keying by statement text alone served stale plans after a config
        change or a ``session.db`` swap -- the residual program bakes in
        dictionary layouts, index choices and instrumentation.  ``Config``
        is a frozen dataclass (hashable); the database contributes its
        identity, so rebinding ``session.db`` misses cleanly.
        """
        return (
            " ".join(sql.split()),  # whitespace-insensitive statement text
            self.config,
            id(self.db),
            self.use_index_rewrites,
        )

    def prepare(self, sql: str) -> CompiledQuery:
        """The compiled query for ``sql``, cached by statement + config."""
        key = self._cache_key(sql)
        if key not in self._cache:
            compiler = LB2Compiler(self.db.catalog, self.db, self.config)
            self._cache[key] = compiler.compile(self.plan(sql))
        return self._cache[key]

    # -- execution -----------------------------------------------------------------

    def query(self, sql: str) -> list[tuple]:
        """Execute SQL (compiled); returns result rows."""
        return self.prepare(sql).run(self.db)

    def execute_plan(self, plan: PhysicalPlan) -> list[tuple]:
        """Execute a hand-built physical plan (compiled, uncached)."""
        compiler = LB2Compiler(self.db.catalog, self.db, self.config)
        return compiler.compile(plan).run(self.db)

    def analyze(self, sql: str) -> tuple[list[tuple], dict[str, int]]:
        """Execute with per-operator row counters (EXPLAIN ANALYZE).

        Returns ``(rows, stats)`` where stats maps operator labels to the
        number of records each emitted.  Compiles a fresh instrumented
        query (not cached -- counters cost a little on the hot path).
        """
        from dataclasses import replace

        base = self.config or Config()
        compiler = LB2Compiler(
            self.db.catalog, self.db, replace(base, instrument=True)
        )
        compiled = compiler.compile(self.plan(sql))
        rows = compiled.run(self.db)
        return rows, dict(compiled.last_stats or {})

    # -- introspection -----------------------------------------------------------------

    def explain(self, sql: str) -> str:
        """The optimized physical plan for ``sql``, pretty-printed."""
        return explain(self.plan(sql), self.db.catalog)

    def generated_code(self, sql: str) -> str:
        """The residual Python program for ``sql``."""
        return self.prepare(sql).source

    @property
    def cached_statements(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()

    def invalidate(self) -> None:
        """Drop every cached compiled query (alias of :meth:`clear_cache`).

        The resilience layer calls this (or :meth:`forget`) when a cached
        plan misbehaves at run time, so degradation never re-serves a
        known-bad residual program.
        """
        self._cache.clear()

    def forget(self, sql: str) -> bool:
        """Evict one statement's compiled query; True when it was cached."""
        return self._cache.pop(self._cache_key(sql), None) is not None
