"""The degradation policy: which failures fall through to the next engine.

The default is the hybrid-engine argument (Kashuba & Muehleisen): *engine*
failures degrade -- a codegen bug, a verifier rejection, a crash inside
generated code are all properties of one evaluation strategy, and the push
interpreter or Volcano iterator can still answer the query.  *Query*
failures re-raise immediately -- a malformed plan or an unknown column
fails identically everywhere, so retrying only buries the real error.
Budget violations also re-raise: the budget bounds the query, not one
engine, and silently restarting the work on a slower engine would be the
opposite of what a timeout is for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BudgetExceeded, ReproError

#: Error codes that indicate the *query* (not the engine) is at fault.
QUERY_FAULT_CODES = frozenset({"E_PLAN", "E_SCHEMA"})


@dataclass(frozen=True)
class FallbackPolicy:
    """Controls which errors degrade to the next engine vs. re-raise.

    * ``enabled`` -- master switch; off means every error re-raises from
      the first engine attempted.
    * ``never_degrade_codes`` -- taxonomy codes that always re-raise.
    * ``degrade_foreign_errors`` -- whether non-:class:`ReproError`
      exceptions (e.g. a ``ZeroDivisionError`` inside generated code)
      degrade; on by default, since an arbitrary crash in one engine is
      exactly what the chain exists to absorb.
    """

    enabled: bool = True
    never_degrade_codes: frozenset[str] = QUERY_FAULT_CODES
    degrade_foreign_errors: bool = True

    def should_degrade(self, error: BaseException) -> bool:
        """True when the fallback chain may retry on the next engine."""
        if not self.enabled:
            return False
        if isinstance(error, (KeyboardInterrupt, SystemExit, MemoryError)):
            return False
        if isinstance(error, BudgetExceeded):
            return False
        if isinstance(error, ReproError):
            return error.code not in self.never_degrade_codes
        return self.degrade_foreign_errors


#: Degrade on engine trouble, re-raise on query trouble -- the default.
DEFAULT_POLICY = FallbackPolicy()

#: Never degrade: every error surfaces from the first engine attempted.
STRICT_POLICY = FallbackPolicy(enabled=False)
