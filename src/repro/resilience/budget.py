"""Execution budgets: wall-clock and row limits, cooperatively enforced.

A :class:`Budget` is a declarative limit; a :class:`BudgetGuard` is its
armed form.  Enforcement is cooperative: guarded *compiled* queries emit
``rt.scan_tick`` checkpoints into their scan loops (see
``Config.budget_checks``), and the interpreted engines tick once per
driving row through the resilient executor.  When a limit is crossed the
guard raises :class:`repro.errors.BudgetExceeded` carrying the partial
statistics gathered so far -- the query aborts at the next checkpoint
instead of hanging.

Row accounting has checkpoint granularity: a counted scan loop reports
``budget_check_interval`` rows per tick, so ``max_rows`` can overshoot by
at most one interval.  Pick an interval no larger than the budget when the
exact cutoff matters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import BudgetExceeded
from repro.obs.metrics import REGISTRY


@dataclass(frozen=True)
class Budget:
    """Declarative execution limits; ``None`` disables a dimension.

    * ``wall_clock_seconds`` -- total elapsed time from guard start.
    * ``max_rows`` -- rows scanned (not emitted) across all checkpoints.
    """

    wall_clock_seconds: Optional[float] = None
    max_rows: Optional[int] = None

    def __post_init__(self) -> None:
        if self.wall_clock_seconds is not None and self.wall_clock_seconds <= 0:
            raise ValueError("wall_clock_seconds must be positive")
        if self.max_rows is not None and self.max_rows <= 0:
            raise ValueError("max_rows must be positive")

    @property
    def unlimited(self) -> bool:
        return self.wall_clock_seconds is None and self.max_rows is None


class BudgetGuard:
    """An armed budget: install as a context manager, tick as work happens.

    While active, the guard registers itself as a runtime tick hook so
    guarded residual programs report progress without knowing the guard
    exists; interpreted engines call :meth:`tick` directly.
    """

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.rows_seen = 0
        self.checks = 0
        self.started_at = time.perf_counter()

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "BudgetGuard":
        # Note: the clock starts at construction, not entry -- a guard
        # re-entered across fallback attempts charges them all to one
        # budget instead of handing each engine a fresh allowance.
        from repro.compiler import runtime

        runtime.push_tick_hook(self.tick)
        return self

    def __exit__(self, *exc_info) -> None:
        from repro.compiler import runtime

        runtime.pop_tick_hook(self.tick)

    # -- enforcement --------------------------------------------------------

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self.started_at

    def stats(self) -> dict:
        """Partial execution statistics (attached to ``BudgetExceeded``)."""
        return {
            "rows_seen": self.rows_seen,
            "checks": self.checks,
            "elapsed_seconds": self.elapsed,
            "wall_clock_seconds": self.budget.wall_clock_seconds,
            "max_rows": self.budget.max_rows,
        }

    def tick(self, n: int = 1) -> None:
        """Account ``n`` scanned rows; raise once a limit is crossed."""
        self.rows_seen += n
        self.checks += 1
        budget = self.budget
        if budget.max_rows is not None and self.rows_seen > budget.max_rows:
            REGISTRY.counter("budget.trips")
            raise BudgetExceeded(
                f"row budget exceeded: scanned >= {self.rows_seen} rows "
                f"(max_rows={budget.max_rows})",
                stats=self.stats(),
            )
        if (
            budget.wall_clock_seconds is not None
            and self.elapsed > budget.wall_clock_seconds
        ):
            REGISTRY.counter("budget.trips")
            raise BudgetExceeded(
                f"wall-clock budget exceeded: {self.elapsed:.4f}s elapsed "
                f"(limit={budget.wall_clock_seconds}s)",
                stats=self.stats(),
            )
