"""The engine fallback chain: compiled -> push interpreter -> Volcano.

The repo has three independent evaluation paths that answer every query
identically (the differential-testing backbone); this module turns that
redundancy into fault tolerance.  A :class:`ResilientExecutor` wraps a
:class:`repro.session.Session` and walks the chain: if the compiled path
fails -- codegen bug, verifier rejection, crash inside the residual
program -- the query transparently retries on the push interpreter, then
on Volcano, recording every attempt in an :class:`ExecutionReport`.  The
:class:`repro.resilience.policy.FallbackPolicy` decides which errors
degrade and which re-raise (a malformed plan fails everywhere; retrying it
is noise, not resilience).

Budgets ride along: with a :class:`repro.resilience.budget.Budget` set,
the compiled engine is built with ``Config(budget_checks=True)`` so the
residual scan loops tick cooperatively, and the interpreted engines tick
once per row reaching the result collector.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.errors import ReproError, error_code, error_phase
from repro.obs import events
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.resilience.budget import Budget, BudgetGuard
from repro.resilience.faults import active_injector
from repro.resilience.policy import DEFAULT_POLICY, FallbackPolicy

#: The default degradation order: fastest first, most battle-tested last.
ENGINE_CHAIN = ("compiled", "push", "volcano")

#: Every available engine, including the opt-in batch-vectorized compiled
#: path.  "vector" is not in the default chain: it shares the compiled
#: engine's failure modes, so degrading vector -> compiled would usually
#: retry the same bug; chains that want it say so explicitly, e.g.
#: ``ResilientExecutor(session, engines=FULL_CHAIN)``.
FULL_CHAIN = ("vector",) + ENGINE_CHAIN


@dataclass
class EngineAttempt:
    """One engine's try at a query: outcome, timing, failure details."""

    engine: str
    seconds: float
    error: Optional[str] = None
    error_code: Optional[str] = None
    phase: Optional[str] = None
    fault_site: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def describe(self) -> str:
        if self.ok:
            return f"{self.engine}: ok ({self.seconds * 1e3:.2f} ms)"
        site = f" fault={self.fault_site}" if self.fault_site else ""
        return (
            f"{self.engine}: {self.error_code} in phase {self.phase}{site}"
            f" ({self.error})"
        )


@dataclass
class ExecutionReport:
    """What happened on the way to an answer (or to exhaustion)."""

    attempts: list[EngineAttempt] = field(default_factory=list)
    engine: Optional[str] = None  # the engine that produced the rows
    budget: Optional[Budget] = None
    budget_stats: Optional[dict] = None
    request_id: Optional[str] = None  # serve-tier correlation id
    # Per-operator telemetry, populated when the executor was built with
    # ``instrument=True`` and a compiled engine answered: label -> seconds,
    # label -> rows, and the vector backend's kernel counts.
    operator_times: Optional[dict] = None
    operator_rows: Optional[dict] = None
    kernels: Optional[dict] = None

    @property
    def engine_trail(self) -> tuple[str, ...]:
        return tuple(a.engine for a in self.attempts)

    @property
    def degraded(self) -> bool:
        return len(self.attempts) > 1

    @property
    def faults(self) -> tuple[str, ...]:
        """Fault-injection sites encountered across attempts."""
        return tuple(a.fault_site for a in self.attempts if a.fault_site)

    def describe(self) -> str:
        lines = [a.describe() for a in self.attempts]
        head = f"engine={self.engine or 'none'} trail={'->'.join(self.engine_trail)}"
        return "\n".join([head] + lines)


@dataclass
class ResilientResult:
    """Result rows plus the execution report that explains them."""

    rows: list[tuple]
    report: ExecutionReport

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


class ResilientExecutor:
    """Fault-tolerant query execution over a :class:`Session`.

    ``engines`` is the ordered fallback chain (a subset/permutation of
    :data:`ENGINE_CHAIN`); ``budget`` bounds every attempt jointly --
    elapsed time and scanned rows accumulate across the chain, so a
    degraded query cannot spend three budgets.
    """

    def __init__(
        self,
        session,
        policy: Optional[FallbackPolicy] = None,
        budget: Optional[Budget] = None,
        engines: Sequence[str] = ENGINE_CHAIN,
        cache_guarded_compiles: bool = False,
        instrument: bool = False,
        request_id: Optional[str] = None,
    ) -> None:
        unknown = [e for e in engines if e not in FULL_CHAIN]
        if unknown:
            raise ValueError(f"unknown engines {unknown}; pick from {FULL_CHAIN}")
        if not engines:
            raise ValueError("at least one engine is required")
        self.session = session
        self.policy = policy or DEFAULT_POLICY
        self.budget = budget
        self.engines = tuple(engines)
        # The serving tier sets this: budget-checked builds go through the
        # session cache (keyed by their own config) instead of compiling
        # fresh per request, so deadlines don't forfeit compile-once
        # economics.  Off by default: one-shot guarded runs (tests, ad-hoc
        # scripts) should not populate the cache with guarded variants.
        self.cache_guarded_compiles = cache_guarded_compiles
        # With ``instrument=True`` the compiled engines build with staged
        # per-operator timers (``Config(instrument=True)``, its own cache
        # key) and the report carries operator_times/operator_rows/kernels
        # -- what the serve tier feeds the workload-telemetry store.
        self.instrument = instrument
        # The serve tier's correlation id; attached to the report and to
        # every error leaving the chain.  An executor instance serves one
        # request at a time (the serve tier builds one per request).
        self.request_id = request_id
        self._captured_compiled = None
        # Per-request parameterization state (an executor serves one
        # request at a time): the validated positional vector and the
        # shape text the compiled engine keys its cache on.  None/None for
        # a non-parameterized statement.
        self._param_vector: Optional[tuple] = None
        self._shape_text: Optional[str] = None

    # -- public surface -----------------------------------------------------

    def query(self, sql: str, params=None) -> ResilientResult:
        """Execute SQL with fallback; planning errors re-raise untouched
        (a bad query is a bad query on every engine).

        ``params`` binds explicit placeholders; statements without
        placeholders auto-parameterize eligible literals via
        :meth:`Session.resolve`, so the whole chain -- compiled shapes,
        interpreted substitution -- agrees on one parameterization.
        Binding errors (arity, names, Python types) raise ``E_PARAM``
        before the first attempt: a bad binding is bad on every engine.
        """
        from repro.plan.params import check_bindings

        resolved = self.session.resolve(sql, params)
        vector: Optional[tuple] = None
        if resolved.parameterized:
            vector = check_bindings(resolved.signature, resolved.bindings)
        self._param_vector = vector
        self._shape_text = resolved.text if resolved.parameterized else None
        try:
            return self._execute(resolved.plan, sql=sql)
        finally:
            self._param_vector = None
            self._shape_text = None

    def execute_plan(self, plan, cache_key: Optional[str] = None) -> ResilientResult:
        """Execute a hand-built physical plan with fallback.

        With ``cache_key`` set, the compiled engine caches the build under
        that key via :meth:`Session.prepare_plan` (compile-once semantics
        for plan-level callers); without it, every call compiles fresh.
        """
        plan.validate(self.session.db.catalog)
        return self._execute(plan, sql=None, cache_key=cache_key)

    # -- the chain ----------------------------------------------------------

    def _execute(
        self, plan, sql: Optional[str], cache_key: Optional[str] = None
    ) -> ResilientResult:
        report = ExecutionReport(
            budget=self.budget,
            request_id=self.request_id or events.current_request_id(),
        )
        guard = BudgetGuard(self.budget) if self._budget_active() else None
        last_error: Optional[BaseException] = None
        for engine in self.engines:
            start = time.perf_counter()
            ok = False
            self._captured_compiled = None
            with span("attempt", engine=engine) as sp:
                try:
                    rows = self._run_engine(engine, plan, sql, guard, cache_key)
                    ok = True
                except BaseException as exc:  # noqa: BLE001 - the policy decides
                    report.attempts.append(
                        EngineAttempt(
                            engine=engine,
                            seconds=time.perf_counter() - start,
                            error=str(exc) or type(exc).__name__,
                            error_code=error_code(exc),
                            phase=error_phase(exc),
                            fault_site=getattr(exc, "site", None),
                        )
                    )
                    last_error = exc
                    REGISTRY.counter(f"engine.failed.{engine}")
                    events.emit(
                        "fallback",
                        request_id=report.request_id,
                        engine=engine,
                        code=error_code(exc),
                        phase=error_phase(exc) or "execute",
                    )
                    if sp:
                        sp.meta["error"] = error_code(exc) or type(exc).__name__
                    if engine == "compiled":
                        # Auto-invalidate: never serve a cached compiled query
                        # that just failed (stale plan, codegen bug...).
                        self._forget_compiled(sql, cache_key)
                    if not self.policy.should_degrade(exc):
                        self._attach(exc, report, guard)
                        raise
            if not ok:
                continue
            report.attempts.append(
                EngineAttempt(engine=engine, seconds=time.perf_counter() - start)
            )
            report.engine = engine
            REGISTRY.counter(f"engine.selected.{engine}")
            if report.degraded:
                REGISTRY.counter("engine.degraded")
            if guard is not None:
                report.budget_stats = guard.stats()
            captured = self._captured_compiled
            self._captured_compiled = None
            if captured is not None and captured.instrumented:
                # The staged instrumentation's per-operator views, taken
                # right after this request's run (the CompiledQuery object
                # is shared across requests of the same shape, so a late
                # read could see a sibling's numbers -- same shape, so the
                # aggregate telemetry stays correct either way).
                report.operator_times = dict(captured.last_times or {})
                report.operator_rows = dict(captured.last_stats or {})
                report.kernels = dict(captured.last_kernels or {})
            self._merge_trail(report)
            return ResilientResult(rows, report)
        assert last_error is not None
        self._attach(last_error, report, guard)
        raise last_error

    @staticmethod
    def _merge_trail(report: ExecutionReport) -> None:
        """Merge the fallback trail into the active trace, if any."""
        with span("report") as sp:
            if sp:
                sp.meta["engine_trail"] = "->".join(report.engine_trail)
                sp.meta["engine"] = report.engine
                sp.meta["degraded"] = report.degraded

    def _attach(
        self,
        exc: BaseException,
        report: ExecutionReport,
        guard: Optional[BudgetGuard],
    ) -> None:
        """Decorate an outgoing error with the trail and partial stats."""
        if guard is not None:
            report.budget_stats = guard.stats()
        if isinstance(exc, ReproError):
            exc.with_trail(report.engine_trail)
            if report.request_id is not None and exc.request_id is None:
                exc.with_request(report.request_id)
        # Always reachable for post-mortems, taxonomy member or not.
        exc.execution_report = report  # type: ignore[attr-defined]

    # -- engines ------------------------------------------------------------

    def _budget_active(self) -> bool:
        return self.budget is not None and not self.budget.unlimited

    def _needs_ticks(self) -> bool:
        """Must the compiled engine emit scan checkpoints this run?"""
        if self._budget_active():
            return True
        injector = active_injector()
        return injector is not None and any(
            spec.site == "mid-scan" for spec in injector.specs
        )

    def _run_engine(
        self,
        engine: str,
        plan,
        sql: Optional[str],
        guard: Optional[BudgetGuard],
        cache_key: Optional[str] = None,
    ) -> list[tuple]:
        if engine == "compiled":
            return self._run_compiled(plan, sql, guard, cache_key)
        if engine == "vector":
            return self._run_vector(plan, guard)
        if engine == "push":
            return self._run_push(plan, guard)
        return self._run_volcano(plan, guard)

    def _config_overrides(self) -> dict:
        """Config fields this run must override on the session config."""
        overrides: dict = {}
        if self._needs_ticks():
            overrides["budget_checks"] = True
        if self.instrument:
            overrides["instrument"] = True
        return overrides

    def _override_config(self, **extra):
        from repro.compiler.lb2 import Config

        base = self.session.config or Config()
        return replace(base, **self._config_overrides(), **extra)

    def _guarded_config(self):
        """Kept for callers/tests that predate ``_override_config``."""
        return self._override_config()

    def _forget_compiled(self, sql: Optional[str], cache_key: Optional[str]) -> None:
        """Evict whatever cache entries the failed compiled attempt used."""
        session = self.session
        configs = [None]
        if self.cache_guarded_compiles and self._config_overrides():
            configs.append(self._override_config())
        for config in configs:
            if sql is not None:
                session.forget(sql, config=config)
            if cache_key is not None:
                session.forget_plan(cache_key, config=config)

    def _run_compiled(
        self,
        plan,
        sql: Optional[str],
        guard: Optional[BudgetGuard],
        cache_key: Optional[str] = None,
    ) -> list[tuple]:
        from repro.compiler.driver import LB2Compiler

        session = self.session
        shape_text = self._shape_text
        if self._config_overrides():
            # Overridden build: cooperative checkpoints in the scan loops
            # (budgets/deadlines) and/or staged per-operator timers
            # (telemetry).  Cached only when the owner opted in (the
            # serving tier, where fresh-compile-per-request would forfeit
            # the compile-once economics); otherwise fresh.
            config = self._override_config()
            if self.cache_guarded_compiles and shape_text is not None:
                compiled = session.prepare_shape(shape_text, config=config)
            elif self.cache_guarded_compiles and sql is not None:
                compiled = session.prepare(sql, config=config)
            elif self.cache_guarded_compiles and cache_key is not None:
                compiled = session.prepare_plan(plan, cache_key, config=config)
            else:
                compiled = LB2Compiler(
                    session.db.catalog, session.db, config
                ).compile(plan)
        elif shape_text is not None:
            # Parameterized statement: the shape-keyed entry is shared
            # across every literal variant -- this is where one compile
            # serves many bindings.
            compiled = session.prepare_shape(shape_text)
        elif sql is not None:
            compiled = session.prepare(sql)
        elif cache_key is not None:
            compiled = session.prepare_plan(plan, cache_key)
        else:
            compiled = LB2Compiler(
                session.db.catalog, session.db, session.config
            ).compile(plan)
        return self._run_query(compiled, guard)

    def _run_vector(self, plan, guard: Optional[BudgetGuard]) -> list[tuple]:
        """The compiled engine with the batch-vectorized codegen backend.

        Always a fresh compile (the session cache is keyed by its own
        config).  Under an active budget the vector backend itself falls
        back to scalar code -- budget ticks are defined per row -- so the
        guarded build is equivalent to the compiled engine's.
        """
        from repro.compiler.driver import LB2Compiler

        session = self.session
        config = self._override_config(codegen="vector")
        compiled = LB2Compiler(session.db.catalog, session.db, config).compile(plan)
        return self._run_query(compiled, guard)

    def _run_query(self, compiled, guard: Optional[BudgetGuard]) -> list[tuple]:
        """Run a compiled query with this request's parameter vector."""
        self._captured_compiled = compiled
        db = self.session.db
        if guard is None:
            return compiled.run(db, self._param_vector)
        with guard:
            return compiled.run(db, self._param_vector)

    def _bound_plan(self, plan):
        """The plan with this request's parameters substituted as consts.

        The interpreted engines evaluate expressions directly, so they
        take the bound plan; the compiled engines never need it -- their
        residual program reads the vector at run time.
        """
        if self._param_vector is None:
            return plan
        from repro.plan.params import bind_params

        return bind_params(plan, self._param_vector)

    def _run_push(self, plan, guard: Optional[BudgetGuard]) -> list[tuple]:
        from repro.engine.push import build_op

        db = self.session.db
        plan = self._bound_plan(plan)
        names = plan.field_names(db.catalog)
        out: list[tuple] = []

        def collect(row: dict) -> None:
            if guard is not None:
                guard.tick(1)
            out.append(tuple(row[n] for n in names))

        build_op(plan, db, db.catalog).exec(collect)
        return out

    def _run_volcano(self, plan, guard: Optional[BudgetGuard]) -> list[tuple]:
        from repro.engine.volcano import iterate

        db = self.session.db
        plan = self._bound_plan(plan)
        names = plan.field_names(db.catalog)
        out: list[tuple] = []
        for row in iterate(plan, db, db.catalog):
            if guard is not None:
                guard.tick(1)
            out.append(tuple(row[n] for n in names))
        return out
