"""Fault-tolerant execution: fallback chain, budgets, fault injection.

This package wraps the three evaluation paths (compiled, push interpreter,
Volcano) into one resilient surface -- a deliberate departure from the
paper's single-engine story, motivated by the hybrid-engine related work
(see ``docs/RESILIENCE.md``).  Pieces:

* :mod:`repro.errors` (re-exported here) -- the structured error taxonomy;
* :mod:`repro.resilience.policy` -- which failures degrade vs. re-raise;
* :mod:`repro.resilience.budget` -- wall-clock / row budgets, enforced
  cooperatively through ``rt.scan_tick`` checkpoints;
* :mod:`repro.resilience.faults` -- deterministic fault injection at named
  pipeline sites;
* :mod:`repro.resilience.executor` -- the engine fallback chain itself.

The executor is re-exported lazily: :func:`fault_point` is called from the
compiler driver, so this ``__init__`` must stay importable from inside the
compiler without circularity.
"""

from repro.errors import (
    ERROR_CODES,
    PHASES,
    BudgetExceeded,
    InjectedFault,
    ReproError,
    error_code,
    error_phase,
)
from repro.resilience.budget import Budget, BudgetGuard
from repro.resilience.faults import (
    FAULT_SITES,
    FaultInjector,
    FaultSpec,
    active_injector,
    fault_point,
)
from repro.resilience.policy import DEFAULT_POLICY, STRICT_POLICY, FallbackPolicy

__all__ = [
    "Budget",
    "BudgetExceeded",
    "BudgetGuard",
    "DEFAULT_POLICY",
    "ENGINE_CHAIN",
    "ERROR_CODES",
    "EngineAttempt",
    "ExecutionReport",
    "FAULT_SITES",
    "FULL_CHAIN",
    "FallbackPolicy",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "PHASES",
    "ReproError",
    "ResilientExecutor",
    "ResilientResult",
    "STRICT_POLICY",
    "active_injector",
    "error_code",
    "error_phase",
    "fault_point",
]

_EXECUTOR_NAMES = {
    "ENGINE_CHAIN",
    "FULL_CHAIN",
    "EngineAttempt",
    "ExecutionReport",
    "ResilientExecutor",
    "ResilientResult",
}


def __getattr__(name: str):
    if name in _EXECUTOR_NAMES:
        from repro.resilience import executor

        return getattr(executor, name)
    raise AttributeError(name)
