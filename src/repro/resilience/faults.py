"""Deterministic fault injection at named pipeline sites.

The compiler and parallel driver call :func:`fault_point` at well-known
places; tests (and the ``repro-faults`` CI job) arm a :class:`FaultInjector`
to make a specific site fail on a specific invocation.  Injection is fully
deterministic -- no randomness, no environment variables -- so every
degradation path of the fallback chain can be exercised reproducibly.

Sites:

* ``codegen``      -- entry of ``LB2Compiler.compile`` (generation pass)
* ``verify``       -- just before the IR verifier runs
* ``host-compile`` -- just before the host ``compile()`` of the residual
* ``worker-run``   -- inside a parallel worker, before its partial runs
  (``key`` is the worker index, so single workers can be targeted)
* ``mid-scan``     -- from ``rt.scan_tick`` inside a running residual scan
  loop (requires ``Config(budget_checks=True)``)

This module deliberately imports only :mod:`repro.errors`, the stdlib-leaf
metrics registry, and the runtime hook API, so any layer can call
:func:`fault_point` without import cycles.  With no injector armed, a
fault point is one global read and a truth test.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import InjectedFault
from repro.obs.metrics import REGISTRY

FAULT_SITES = ("codegen", "verify", "host-compile", "worker-run", "mid-scan")


@dataclass
class FaultSpec:
    """Arm one site: fail invocations whose 0-based ordinal is in ``at``.

    ``at=None`` matches *every* ordinal (sustained failure -- the serve
    smoke uses this to hold a circuit breaker open).  ``key`` (when not
    None) additionally restricts the spec to fault-point calls made with a
    matching ``key=`` argument -- e.g. one parallel worker's index.
    ``times`` bounds how many faults the spec raises in total
    (None = unlimited).
    """

    site: str
    at: Optional[frozenset[int]] = frozenset({0})
    key: Optional[object] = None
    times: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of {FAULT_SITES}"
            )
        if self.at is not None:
            self.at = frozenset(self.at)


class FaultInjector:
    """Context manager holding the armed fault specs.

    Usage::

        with FaultInjector(FaultSpec("verify")):
            ...  # the first compile in this block fails verification
    """

    def __init__(self, *specs: FaultSpec) -> None:
        self.specs = list(specs)
        self.counters: dict[tuple, int] = {}
        self.fired: list[tuple[str, int]] = []  # (site, ordinal) log
        # One lock serializes ordinal assignment, spec matching and the
        # ``times`` decrement: two threads arriving at the same site must
        # each draw a distinct ordinal, and a spec with ``times=1`` must
        # fire exactly once no matter how the arrivals interleave.
        self._lock = threading.Lock()

    def arm(self, spec: FaultSpec) -> "FaultInjector":
        with self._lock:
            self.specs.append(spec)
        return self

    def hit(self, site: str, key: Optional[object]) -> Optional[InjectedFault]:
        """Record one arrival at ``site``; the fault to raise, if armed.

        Ordinals count per ``(site, key)`` pair, not per site: a pool
        process that runs several workers' partials must still see each
        worker's own first call as ordinal 0.  Thread-safe: concurrent
        arrivals draw distinct ordinals and never double-fire a bounded
        spec.
        """
        with self._lock:
            ordinal = self.counters.get((site, key), 0)
            self.counters[(site, key)] = ordinal + 1
            for spec in self.specs:
                if spec.site != site:
                    continue
                if spec.key is not None and spec.key != key:
                    continue
                if spec.at is not None and ordinal not in spec.at:
                    continue
                if spec.times is not None and spec.times <= 0:
                    continue
                if spec.times is not None:
                    spec.times -= 1
                self.fired.append((site, ordinal))
                REGISTRY.counter("faults.injected")
                REGISTRY.counter(f"faults.injected.{site}")
                return InjectedFault(site, detail=f"ordinal={ordinal} key={key!r}")
        return None

    # -- activation ---------------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self
        from repro.compiler import runtime

        runtime.push_tick_hook(self._tick)
        return self

    def __exit__(self, *exc_info) -> None:
        global _ACTIVE
        from repro.compiler import runtime

        runtime.pop_tick_hook(self._tick)
        _ACTIVE = self._previous

    def _tick(self, n: int) -> None:
        """Runtime hook: residual scan loops report progress here."""
        fault = self.hit("mid-scan", key=None)
        if fault is not None:
            raise fault


#: The currently armed injector (None almost always).  A plain module
#: global, not a contextvar: forked parallel workers must inherit it.
_ACTIVE: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    return _ACTIVE


def fault_point(site: str, key: Optional[object] = None) -> None:
    """Declare a named failure site; raises when an injector arms it."""
    injector = _ACTIVE
    if injector is None:
        return
    fault = injector.hit(site, key)
    if fault is not None:
        raise fault
