"""Aggregate accumulator semantics shared by both interpreted engines.

SQL semantics throughout: ``count`` of an empty group is 0; ``sum``, ``avg``,
``min`` and ``max`` of an empty group (global aggregation over zero rows) are
None.  ``count(expr)`` counts non-null values, which is what makes TPC-H Q13
(left outer join feeding ``count(o_orderkey)``) come out right.
"""

from __future__ import annotations

from typing import Sequence

from repro.plan.expressions import AggSpec


def eval_null_safe(expr, row: dict) -> object:
    """Evaluate ``expr`` with SQL NULL propagation: None in -> None out.

    Used by null-guarded Projects (over global aggregates whose input may
    be empty); see :func:`repro.plan.physical.needs_null_guard`.
    """
    if any(row.get(name) is None for name in expr.columns()):
        return None
    return expr.eval(row)


def init_state(aggs: Sequence[tuple[str, AggSpec]]) -> list:
    """A fresh accumulator list for one group."""
    state: list = []
    for _, spec in aggs:
        if spec.kind == "count":
            state.append(0)
        elif spec.kind == "avg":
            state.append([0.0, 0])
        elif spec.kind == "count_distinct":
            state.append(set())
        else:  # sum / min / max start undefined
            state.append(None)
    return state


def update_state(state: list, aggs: Sequence[tuple[str, AggSpec]], row: dict) -> None:
    """Fold one input row into the accumulators."""
    for i, (_, spec) in enumerate(aggs):
        kind = spec.kind
        if kind == "count":
            if spec.expr is None or spec.expr.eval(row) is not None:
                state[i] += 1
            continue
        value = spec.expr.eval(row)  # type: ignore[union-attr]
        if kind == "sum":
            state[i] = value if state[i] is None else state[i] + value
        elif kind == "avg":
            if value is not None:
                state[i][0] += value
                state[i][1] += 1
        elif kind == "min":
            if state[i] is None or value < state[i]:
                state[i] = value
        elif kind == "max":
            if state[i] is None or value > state[i]:
                state[i] = value
        elif kind == "count_distinct":
            state[i].add(value)


def finalize_state(state: list, aggs: Sequence[tuple[str, AggSpec]]) -> list:
    """Turn accumulators into output values."""
    out: list = []
    for value, (_, spec) in zip(state, aggs):
        kind = spec.kind
        if kind == "avg":
            out.append(value[0] / value[1] if value[1] else None)
        elif kind == "count_distinct":
            out.append(len(value))
        else:
            out.append(value)
    return out
