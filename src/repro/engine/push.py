"""The data-centric evaluator with callbacks (Figure 6 / Section 3.1).

Each operator exposes one method, ``exec(cb)``: *"operator, generate your
result and apply the function cb on each tuple."*  Inter-operator control
flow is fully static -- there is no null-record protocol -- which is exactly
why running this same evaluator on staged records yields tight residual
code (the LB2 compiler in :mod:`repro.compiler.lb2` mirrors this module
operator for operator).
"""

from __future__ import annotations

import functools
from typing import Callable, Optional

from repro.errors import ReproError
from repro.catalog.catalog import Catalog
from repro.engine.aggregates import (
    eval_null_safe,
    finalize_state,
    init_state,
    update_state,
)
from repro.plan import physical as phys
from repro.storage.database import Database

Row = dict
Callback = Callable[[Row], None]


class PushError(ReproError):
    """Raised when a plan node has no push-engine implementation."""

    code = "E_PUSH"
    phase = "execute"


class Op:
    """The single-method operator interface of Section 3.1."""

    def exec(self, cb: Callback) -> None:
        raise NotImplementedError


class Scan(Op):
    def __init__(self, db: Database, node: phys.Scan) -> None:
        self.table = db.table(node.table)
        self.rename = node.rename_map

    def exec(self, cb: Callback) -> None:
        rename = self.rename
        if rename:
            for row in self.table.rows():
                cb({rename.get(k, k): v for k, v in row.items()})
        else:
            for row in self.table.rows():
                cb(row)


class DateIndexScan(Op):
    def __init__(self, db: Database, node: phys.DateIndexScan) -> None:
        self.node = node
        self.table = db.table(node.table)
        self.rename = node.rename_map
        self.rowids = db.date_index(node.table, node.column).candidate_list(
            node.lo, node.hi
        )
        self.dates = self.table.column(node.column)

    def exec(self, cb: Callback) -> None:
        node = self.node
        rename = self.rename
        dates = self.dates
        for rowid in self.rowids:
            if node.enforce and not node.bound_check(dates[rowid]):
                continue
            row = self.table.row(rowid)
            if rename:
                row = {rename.get(k, k): v for k, v in row.items()}
            cb(row)


class Select(Op):
    def __init__(self, child: Op, node: phys.Select) -> None:
        self.child = child
        self.pred = node.pred

    def exec(self, cb: Callback) -> None:
        pred = self.pred

        def on_row(row: Row) -> None:
            if pred.eval(row):
                cb(row)

        self.child.exec(on_row)


class Project(Op):
    def __init__(self, child: Op, node: phys.Project) -> None:
        self.child = child
        self.outputs = node.outputs
        self.null_guard = phys.needs_null_guard(node)

    def exec(self, cb: Callback) -> None:
        outputs = self.outputs
        if self.null_guard:
            def on_row(row: Row) -> None:
                cb({name: eval_null_safe(expr, row) for name, expr in outputs})
        else:
            def on_row(row: Row) -> None:
                cb({name: expr.eval(row) for name, expr in outputs})

        self.child.exec(on_row)


class HashJoin(Op):
    """Figure 5(b): two callbacks, build then probe -- no produce/consume
    state flags, no parent links."""

    def __init__(self, left: Op, right: Op, node: phys.HashJoin) -> None:
        self.left = left
        self.right = right
        self.lkeys = node.left_keys
        self.rkeys = node.right_keys

    def exec(self, cb: Callback) -> None:
        table: dict[tuple, list[Row]] = {}
        lkeys, rkeys = self.lkeys, self.rkeys

        def build(row: Row) -> None:
            key = tuple(row[k] for k in lkeys)
            bucket = table.get(key)
            if bucket is None:
                table[key] = [row]
            else:
                bucket.append(row)

        self.left.exec(build)

        def probe(row: Row) -> None:
            key = tuple(row[k] for k in rkeys)
            for left_row in table.get(key, ()):
                merged = dict(left_row)
                merged.update(row)
                cb(merged)

        self.right.exec(probe)


class LeftOuterJoin(Op):
    def __init__(
        self, left: Op, right: Op, node: phys.LeftOuterJoin, right_fields: list[str]
    ) -> None:
        self.left = left
        self.right = right
        self.lkeys = node.left_keys
        self.rkeys = node.right_keys
        self.right_fields = right_fields

    def exec(self, cb: Callback) -> None:
        table: dict[tuple, list[Row]] = {}
        rkeys, lkeys = self.rkeys, self.lkeys
        null_fill = {name: None for name in self.right_fields}

        def build(row: Row) -> None:
            key = tuple(row[k] for k in rkeys)
            bucket = table.get(key)
            if bucket is None:
                table[key] = [row]
            else:
                bucket.append(row)

        self.right.exec(build)

        def probe(row: Row) -> None:
            key = tuple(row[k] for k in lkeys)
            matches = table.get(key)
            if matches:
                for right_row in matches:
                    merged = dict(row)
                    merged.update(right_row)
                    cb(merged)
            else:
                merged = dict(row)
                merged.update(null_fill)
                cb(merged)

        self.left.exec(probe)


class _KeySetJoin(Op):
    keep_matches: bool

    def __init__(self, left: Op, right: Op, lkeys, rkeys) -> None:
        self.left = left
        self.right = right
        self.lkeys = lkeys
        self.rkeys = rkeys

    def exec(self, cb: Callback) -> None:
        keys: set[tuple] = set()
        rkeys, lkeys = self.rkeys, self.lkeys

        def build(row: Row) -> None:
            keys.add(tuple(row[k] for k in rkeys))

        self.right.exec(build)
        keep = self.keep_matches

        def probe(row: Row) -> None:
            if (tuple(row[k] for k in lkeys) in keys) == keep:
                cb(row)

        self.left.exec(probe)


class SemiJoin(_KeySetJoin):
    keep_matches = True


class AntiJoin(_KeySetJoin):
    keep_matches = False


class IndexJoin(Op):
    """Section 4.3: probe a base-table index instead of building a table."""

    def __init__(self, child: Op, db: Database, node: phys.IndexJoin) -> None:
        self.child = child
        self.node = node
        self.table = db.table(node.table)
        self.rename = node.rename_map
        if node.unique:
            self.index = db.unique_index(node.table, node.table_key)
        else:
            self.index = db.index(node.table, node.table_key)

    def exec(self, cb: Callback) -> None:
        node = self.node
        table = self.table
        rename = self.rename
        index = self.index

        def fetch(rowid: int) -> Row:
            row = table.row(rowid)
            if rename:
                row = {rename.get(k, k): v for k, v in row.items()}
            return row

        def probe(row: Row) -> None:
            key = row[node.child_key]
            if node.unique:
                rowid = index.get(key, -1)
                rowids = () if rowid < 0 else (rowid,)
            else:
                rowids = index.get(key, ())
            for rid in rowids:
                merged = dict(row)
                merged.update(fetch(rid))
                if node.residual is None or node.residual.eval(merged):
                    cb(merged)

        self.child.exec(probe)


class IndexSemiJoin(Op):
    """Semi/anti join probing a base-table index (Section 4.3 ``exists``)."""

    def __init__(self, child: Op, db: Database, node: phys.IndexSemiJoin) -> None:
        self.child = child
        self.node = node
        self.table = db.table(node.table)
        self.rename = node.rename_map
        if node.unique:
            self.index = db.unique_index(node.table, node.table_key)
        else:
            self.index = db.index(node.table, node.table_key)

    def exec(self, cb: Callback) -> None:
        node = self.node
        table = self.table
        rename = self.rename
        index = self.index

        def exists(row: Row) -> bool:
            key = row[node.child_key]
            if node.unique:
                rowid = index.get(key, -1)
                rowids = () if rowid < 0 else (rowid,)
            else:
                rowids = index.get(key, ())
            if node.residual is None:
                return bool(rowids)
            for rid in rowids:
                fetched = table.row(rid)
                if rename:
                    fetched = {rename.get(k, k): v for k, v in fetched.items()}
                merged = dict(row)
                merged.update(fetched)
                if node.residual.eval(merged):
                    return True
            return False

        def probe(row: Row) -> None:
            if exists(row) != node.anti:
                cb(row)

        self.child.exec(probe)


class Agg(Op):
    def __init__(self, child: Op, node: phys.Agg) -> None:
        self.child = child
        self.node = node

    def exec(self, cb: Callback) -> None:
        node = self.node
        groups: dict[tuple, list] = {}

        def accumulate(row: Row) -> None:
            key = tuple(expr.eval(row) for _, expr in node.keys)
            state = groups.get(key)
            if state is None:
                state = init_state(node.aggs)
                groups[key] = state
            update_state(state, node.aggs, row)

        self.child.exec(accumulate)
        if not groups and not node.keys:
            groups[()] = init_state(node.aggs)
        for key, state in groups.items():
            out: Row = {name: value for (name, _), value in zip(node.keys, key)}
            for (name, _), value in zip(node.aggs, finalize_state(state, node.aggs)):
                out[name] = value
            cb(out)


class GroupJoin(Op):
    """HyPer-style combined join + aggregation (one row per left tuple)."""

    def __init__(self, left: Op, right: Op, node: phys.GroupJoin) -> None:
        self.left = left
        self.right = right
        self.node = node

    def exec(self, cb: Callback) -> None:
        node = self.node
        groups: dict[tuple, list] = {}

        def build(row: Row) -> None:
            key = tuple(row[k] for k in node.right_keys)
            state = groups.get(key)
            if state is None:
                state = init_state(node.aggs)
                groups[key] = state
            update_state(state, node.aggs, row)

        self.right.exec(build)

        def probe(row: Row) -> None:
            key = tuple(row[k] for k in node.left_keys)
            state = groups.get(key)
            if state is None:
                state = init_state(node.aggs)  # empty group
            merged = dict(row)
            for (name, _), value in zip(
                node.aggs, finalize_state(state, node.aggs)
            ):
                merged[name] = value
            cb(merged)

        self.left.exec(probe)


class Sort(Op):
    """A pipeline breaker: materialize, order, replay downstream."""

    def __init__(self, child: Op, node: phys.Sort) -> None:
        self.child = child
        self.node = node
        self.keys = node.keys

    def exec(self, cb: Callback) -> None:
        rows: list[Row] = []
        self.child.exec(rows.append)
        keys = self.keys

        def compare(a: Row, b: Row) -> int:
            for name, asc in keys:
                av, bv = a[name], b[name]
                if av == bv:
                    continue
                if av < bv:
                    return -1 if asc else 1
                return 1 if asc else -1
            return 0

        rows.sort(key=functools.cmp_to_key(compare))
        if self.node.limit is not None:
            del rows[self.node.limit:]
        for row in rows:
            cb(row)


class Limit(Op):
    """Stops forwarding after ``n`` rows (upstream still runs to completion;
    push pipelines have no back-channel -- a known trade-off of the model)."""

    def __init__(self, child: Op, node: phys.Limit) -> None:
        self.child = child
        self.n = node.n

    def exec(self, cb: Callback) -> None:
        seen = 0
        limit = self.n

        def on_row(row: Row) -> None:
            nonlocal seen
            if seen < limit:
                seen += 1
                cb(row)

        self.child.exec(on_row)


class Distinct(Op):
    def __init__(self, child: Op, fields: list[str]) -> None:
        self.child = child
        self.fields = fields

    def exec(self, cb: Callback) -> None:
        seen: set[tuple] = set()
        fields = self.fields

        def on_row(row: Row) -> None:
            key = tuple(row[f] for f in fields)
            if key not in seen:
                seen.add(key)
                cb(row)

        self.child.exec(on_row)


# Observability seam: EXPLAIN ANALYZE wraps interpreter operators the same
# way the compiler wraps staged operators.  ``build_op`` applies the hook to
# every constructed operator post-order (children before parents, left
# before right -- the recursion order below), so counting wrappers line up
# with the compiled instrumentation's ``Op#n`` numbering exactly.

_WRAP_HOOK = None


def set_wrap_hook(hook):
    """Install ``hook(op, node) -> op`` around build_op; returns the previous."""
    global _WRAP_HOOK
    previous = _WRAP_HOOK
    _WRAP_HOOK = hook
    return previous


def build_op(node: phys.PhysicalPlan, db: Database, catalog: Catalog) -> Op:
    """Translate a physical plan into the callback operator tree."""
    op = _build_op_raw(node, db, catalog)
    if _WRAP_HOOK is not None:
        op = _WRAP_HOOK(op, node)
    return op


def _build_op_raw(node: phys.PhysicalPlan, db: Database, catalog: Catalog) -> Op:
    if isinstance(node, phys.Scan):
        return Scan(db, node)
    if isinstance(node, phys.DateIndexScan):
        return DateIndexScan(db, node)
    if isinstance(node, phys.Select):
        return Select(build_op(node.child, db, catalog), node)
    if isinstance(node, phys.Project):
        return Project(build_op(node.child, db, catalog), node)
    if isinstance(node, phys.HashJoin):
        return HashJoin(
            build_op(node.left, db, catalog), build_op(node.right, db, catalog), node
        )
    if isinstance(node, phys.LeftOuterJoin):
        return LeftOuterJoin(
            build_op(node.left, db, catalog),
            build_op(node.right, db, catalog),
            node,
            node.right.field_names(catalog),
        )
    if isinstance(node, phys.SemiJoin):
        return SemiJoin(
            build_op(node.left, db, catalog),
            build_op(node.right, db, catalog),
            node.left_keys,
            node.right_keys,
        )
    if isinstance(node, phys.AntiJoin):
        return AntiJoin(
            build_op(node.left, db, catalog),
            build_op(node.right, db, catalog),
            node.left_keys,
            node.right_keys,
        )
    if isinstance(node, phys.IndexJoin):
        return IndexJoin(build_op(node.child, db, catalog), db, node)
    if isinstance(node, phys.IndexSemiJoin):
        return IndexSemiJoin(build_op(node.child, db, catalog), db, node)
    if isinstance(node, phys.GroupJoin):
        return GroupJoin(
            build_op(node.left, db, catalog), build_op(node.right, db, catalog), node
        )
    if isinstance(node, phys.Agg):
        return Agg(build_op(node.child, db, catalog), node)
    if isinstance(node, phys.Sort):
        return Sort(build_op(node.child, db, catalog), node)
    if isinstance(node, phys.Limit):
        return Limit(build_op(node.child, db, catalog), node)
    if isinstance(node, phys.Distinct):
        return Distinct(build_op(node.child, db, catalog), node.field_names(catalog))
    raise PushError(f"no push implementation for {type(node).__name__}")


def execute_push(plan: phys.PhysicalPlan, db: Database, catalog: Catalog) -> list[tuple]:
    """Run a plan on the callback engine; rows come back as ordered tuples."""
    names = plan.field_names(catalog)
    out: list[tuple] = []

    def collect(row: Row) -> None:
        out.append(tuple(row[n] for n in names))

    build_op(plan, db, catalog).exec(collect)
    return out
