"""The Volcano (iterator) engine: ``open() / next() / close()`` pull model.

This is the Figure 3(b,d) baseline.  Every operator repeatedly pulls from
its child and must check for the null record on every call -- exactly the
dynamic-data-dependent control flow that, as Section 3 explains, cannot be
specialized away and makes the model a poor basis for a compiler.  Here it
serves as the representative of traditional interpreted engines
("Postgres" in Figure 8).
"""

from __future__ import annotations

import functools
from typing import Iterator, Optional

from repro.errors import ReproError
from repro.catalog.catalog import Catalog
from repro.engine.aggregates import (
    eval_null_safe,
    finalize_state,
    init_state,
    update_state,
)
from repro.plan import physical as phys
from repro.storage.database import Database

Row = dict  # runtime records are plain dicts: field name -> value


class VolcanoError(ReproError):
    """Raised when a plan node has no Volcano implementation."""

    code = "E_VOLCANO"
    phase = "execute"


class Operator:
    """The uniform Volcano interface."""

    def open(self) -> None:
        raise NotImplementedError

    def next(self) -> Optional[Row]:
        raise NotImplementedError

    def close(self) -> None:
        pass


class ScanOp(Operator):
    def __init__(self, db: Database, node: phys.Scan) -> None:
        self.table = db.table(node.table)
        self.rename = node.rename_map
        self.pos = 0

    def open(self) -> None:
        self.pos = 0

    def next(self) -> Optional[Row]:
        if self.pos >= len(self.table):
            return None
        row = self.table.row(self.pos)
        self.pos += 1
        if self.rename:
            row = {self.rename.get(k, k): v for k, v in row.items()}
        return row


class DateIndexScanOp(Operator):
    def __init__(self, db: Database, node: phys.DateIndexScan) -> None:
        self.node = node
        self.table = db.table(node.table)
        self.rename = node.rename_map
        index = db.date_index(node.table, node.column)
        self.rowids = index.candidate_list(node.lo, node.hi)
        self.dates = self.table.column(node.column)
        self.pos = 0

    def open(self) -> None:
        self.pos = 0

    def next(self) -> Optional[Row]:
        while self.pos < len(self.rowids):
            rowid = self.rowids[self.pos]
            self.pos += 1
            if self.node.enforce and not self.node.bound_check(self.dates[rowid]):
                continue
            row = self.table.row(rowid)
            if self.rename:
                row = {self.rename.get(k, k): v for k, v in row.items()}
            return row
        return None


class SelectOp(Operator):
    def __init__(self, child: Operator, node: phys.Select) -> None:
        self.child = child
        self.pred = node.pred

    def open(self) -> None:
        self.child.open()

    def next(self) -> Optional[Row]:
        # The tell-tale Volcano loop: re-check the null record each pull.
        while True:
            row = self.child.next()
            if row is None:
                return None
            if self.pred.eval(row):
                return row

    def close(self) -> None:
        self.child.close()


class ProjectOp(Operator):
    def __init__(self, child: Operator, node: phys.Project) -> None:
        self.child = child
        self.outputs = node.outputs
        self.null_guard = phys.needs_null_guard(node)

    def open(self) -> None:
        self.child.open()

    def next(self) -> Optional[Row]:
        row = self.child.next()
        if row is None:
            return None
        if self.null_guard:
            return {name: eval_null_safe(expr, row) for name, expr in self.outputs}
        return {name: expr.eval(row) for name, expr in self.outputs}

    def close(self) -> None:
        self.child.close()


class HashJoinOp(Operator):
    """Builds on the left child during ``open``; probes per ``next``."""

    def __init__(self, left: Operator, right: Operator, node: phys.HashJoin) -> None:
        self.left = left
        self.right = right
        self.lkeys = node.left_keys
        self.rkeys = node.right_keys
        self.table: dict[tuple, list[Row]] = {}
        self.pending: list[Row] = []
        self.pending_pos = 0
        self.current_right: Optional[Row] = None

    def open(self) -> None:
        self.left.open()
        self.right.open()
        self.table = {}
        while True:
            row = self.left.next()
            if row is None:
                break
            key = tuple(row[k] for k in self.lkeys)
            self.table.setdefault(key, []).append(row)
        self.pending = []
        self.pending_pos = 0

    def next(self) -> Optional[Row]:
        while True:
            if self.pending_pos < len(self.pending):
                left_row = self.pending[self.pending_pos]
                self.pending_pos += 1
                merged = dict(left_row)
                merged.update(self.current_right)  # type: ignore[arg-type]
                return merged
            right_row = self.right.next()
            if right_row is None:
                return None
            key = tuple(right_row[k] for k in self.rkeys)
            self.pending = self.table.get(key, [])
            self.pending_pos = 0
            self.current_right = right_row

    def close(self) -> None:
        self.left.close()
        self.right.close()


class LeftOuterJoinOp(Operator):
    """Streams the *left* child, probing a table built on the right."""

    def __init__(self, left: Operator, right: Operator, node: phys.LeftOuterJoin,
                 right_fields: list[str]) -> None:
        self.left = left
        self.right = right
        self.lkeys = node.left_keys
        self.rkeys = node.right_keys
        self.right_fields = right_fields
        self.table: dict[tuple, list[Row]] = {}
        self.pending: list[Row] = []
        self.pending_pos = 0
        self.current_left: Optional[Row] = None

    def open(self) -> None:
        self.left.open()
        self.right.open()
        self.table = {}
        while True:
            row = self.right.next()
            if row is None:
                break
            key = tuple(row[k] for k in self.rkeys)
            self.table.setdefault(key, []).append(row)
        self.pending = []
        self.pending_pos = 0

    def next(self) -> Optional[Row]:
        while True:
            if self.pending_pos < len(self.pending):
                right_row = self.pending[self.pending_pos]
                self.pending_pos += 1
                merged = dict(self.current_left)  # type: ignore[arg-type]
                merged.update(right_row)
                return merged
            left_row = self.left.next()
            if left_row is None:
                return None
            key = tuple(left_row[k] for k in self.lkeys)
            matches = self.table.get(key)
            self.current_left = left_row
            if matches:
                self.pending = matches
                self.pending_pos = 0
            else:
                merged = dict(left_row)
                for name in self.right_fields:
                    merged[name] = None
                return merged

    def close(self) -> None:
        self.left.close()
        self.right.close()


class _KeySetJoinOp(Operator):
    """Shared semi/anti join: build a right key set, stream the left."""

    keep_matches: bool

    def __init__(self, left: Operator, right: Operator, lkeys, rkeys) -> None:
        self.left = left
        self.right = right
        self.lkeys = lkeys
        self.rkeys = rkeys
        self.keys: set[tuple] = set()

    def open(self) -> None:
        self.left.open()
        self.right.open()
        self.keys = set()
        while True:
            row = self.right.next()
            if row is None:
                break
            self.keys.add(tuple(row[k] for k in self.rkeys))

    def next(self) -> Optional[Row]:
        while True:
            row = self.left.next()
            if row is None:
                return None
            matched = tuple(row[k] for k in self.lkeys) in self.keys
            if matched == self.keep_matches:
                return row

    def close(self) -> None:
        self.left.close()
        self.right.close()


class SemiJoinOp(_KeySetJoinOp):
    keep_matches = True


class AntiJoinOp(_KeySetJoinOp):
    keep_matches = False


class IndexJoinOp(Operator):
    def __init__(self, child: Operator, db: Database, node: phys.IndexJoin) -> None:
        self.child = child
        self.node = node
        self.table = db.table(node.table)
        self.rename = node.rename_map
        if node.unique:
            self.index = db.unique_index(node.table, node.table_key)
        else:
            self.index = db.index(node.table, node.table_key)
        self.pending: list[int] = []
        self.pending_pos = 0
        self.current: Optional[Row] = None

    def open(self) -> None:
        self.child.open()
        self.pending = []
        self.pending_pos = 0

    def _fetch(self, rowid: int) -> Row:
        row = self.table.row(rowid)
        if self.rename:
            row = {self.rename.get(k, k): v for k, v in row.items()}
        return row

    def next(self) -> Optional[Row]:
        while True:
            while self.pending_pos < len(self.pending):
                rowid = self.pending[self.pending_pos]
                self.pending_pos += 1
                merged = dict(self.current)  # type: ignore[arg-type]
                merged.update(self._fetch(rowid))
                if self.node.residual is None or self.node.residual.eval(merged):
                    return merged
            row = self.child.next()
            if row is None:
                return None
            self.current = row
            key = row[self.node.child_key]
            if self.node.unique:
                rowid = self.index.get(key, -1)
                self.pending = [] if rowid < 0 else [rowid]
            else:
                self.pending = list(self.index.get(key, ()))
            self.pending_pos = 0

    def close(self) -> None:
        self.child.close()


class IndexSemiJoinOp(Operator):
    """Semi/anti join through a base-table index (IndexEntryView.exists)."""

    def __init__(self, child: Operator, db: Database, node: phys.IndexSemiJoin) -> None:
        self.child = child
        self.node = node
        self.table = db.table(node.table)
        self.rename = node.rename_map
        if node.unique:
            self.index = db.unique_index(node.table, node.table_key)
        else:
            self.index = db.index(node.table, node.table_key)

    def open(self) -> None:
        self.child.open()

    def _exists(self, row: Row) -> bool:
        node = self.node
        key = row[node.child_key]
        if node.unique:
            rowid = self.index.get(key, -1)
            rowids = () if rowid < 0 else (rowid,)
        else:
            rowids = self.index.get(key, ())
        if node.residual is None:
            return bool(rowids)
        for rid in rowids:
            fetched = self.table.row(rid)
            if self.rename:
                fetched = {self.rename.get(k, k): v for k, v in fetched.items()}
            merged = dict(row)
            merged.update(fetched)
            if node.residual.eval(merged):
                return True
        return False

    def next(self) -> Optional[Row]:
        while True:
            row = self.child.next()
            if row is None:
                return None
            if self._exists(row) != self.node.anti:
                return row

    def close(self) -> None:
        self.child.close()


class AggOp(Operator):
    def __init__(self, child: Operator, node: phys.Agg) -> None:
        self.child = child
        self.node = node
        self.results: list[Row] = []
        self.pos = 0

    def open(self) -> None:
        self.child.open()
        groups: dict[tuple, list] = {}
        while True:
            row = self.child.next()
            if row is None:
                break
            key = tuple(expr.eval(row) for _, expr in self.node.keys)
            state = groups.get(key)
            if state is None:
                state = init_state(self.node.aggs)
                groups[key] = state
            update_state(state, self.node.aggs, row)
        if not groups and not self.node.keys:
            groups[()] = init_state(self.node.aggs)  # global agg of empty input
        self.results = []
        for key, state in groups.items():
            out: Row = {name: value for (name, _), value in zip(self.node.keys, key)}
            for (name, _), value in zip(
                self.node.aggs, finalize_state(state, self.node.aggs)
            ):
                out[name] = value
            self.results.append(out)
        self.pos = 0

    def next(self) -> Optional[Row]:
        if self.pos >= len(self.results):
            return None
        row = self.results[self.pos]
        self.pos += 1
        return row

    def close(self) -> None:
        self.child.close()


class GroupJoinOp(Operator):
    """HyPer-style combined join + aggregation: aggregate right rows per
    key during open, then stream left rows with the finalized values."""

    def __init__(self, left: Operator, right: Operator, node: phys.GroupJoin) -> None:
        self.left = left
        self.right = right
        self.node = node
        self.groups: dict[tuple, list] = {}

    def open(self) -> None:
        self.left.open()
        self.right.open()
        self.groups = {}
        node = self.node
        while True:
            row = self.right.next()
            if row is None:
                break
            key = tuple(row[k] for k in node.right_keys)
            state = self.groups.get(key)
            if state is None:
                state = init_state(node.aggs)
                self.groups[key] = state
            update_state(state, node.aggs, row)

    def next(self) -> Optional[Row]:
        node = self.node
        row = self.left.next()
        if row is None:
            return None
        key = tuple(row[k] for k in node.left_keys)
        state = self.groups.get(key)
        if state is None:
            state = init_state(node.aggs)  # empty group: count 0, rest None
        merged = dict(row)
        for (name, _), value in zip(node.aggs, finalize_state(state, node.aggs)):
            merged[name] = value
        return merged

    def close(self) -> None:
        self.left.close()
        self.right.close()


class SortOp(Operator):
    def __init__(self, child: Operator, node: phys.Sort) -> None:
        self.child = child
        self.node = node
        self.keys = node.keys
        self.rows: list[Row] = []
        self.pos = 0

    def open(self) -> None:
        self.child.open()
        self.rows = []
        while True:
            row = self.child.next()
            if row is None:
                break
            self.rows.append(row)

        def compare(a: Row, b: Row) -> int:
            for name, asc in self.keys:
                av, bv = a[name], b[name]
                if av == bv:
                    continue
                if av < bv:
                    return -1 if asc else 1
                return 1 if asc else -1
            return 0

        self.rows.sort(key=functools.cmp_to_key(compare))
        if self.node.limit is not None:
            del self.rows[self.node.limit:]
        self.pos = 0

    def next(self) -> Optional[Row]:
        if self.pos >= len(self.rows):
            return None
        row = self.rows[self.pos]
        self.pos += 1
        return row

    def close(self) -> None:
        self.child.close()


class LimitOp(Operator):
    def __init__(self, child: Operator, node: phys.Limit) -> None:
        self.child = child
        self.limit = node.n
        self.seen = 0

    def open(self) -> None:
        self.child.open()
        self.seen = 0

    def next(self) -> Optional[Row]:
        if self.seen >= self.limit:
            return None
        row = self.child.next()
        if row is None:
            return None
        self.seen += 1
        return row

    def close(self) -> None:
        self.child.close()


class DistinctOp(Operator):
    def __init__(self, child: Operator, fields: list[str]) -> None:
        self.child = child
        self.fields = fields
        self.seen: set[tuple] = set()

    def open(self) -> None:
        self.child.open()
        self.seen = set()

    def next(self) -> Optional[Row]:
        while True:
            row = self.child.next()
            if row is None:
                return None
            key = tuple(row[f] for f in self.fields)
            if key not in self.seen:
                self.seen.add(key)
                return row

    def close(self) -> None:
        self.child.close()


# Observability seam: mirrors ``repro.engine.push.set_wrap_hook``.  The
# recursion below constructs children before parents (left before right), so
# a counting hook sees operators in the compiled instrumentation's numbering
# order.

_WRAP_HOOK = None


def set_wrap_hook(hook):
    """Install ``hook(op, node) -> op`` around build_operator; returns the previous."""
    global _WRAP_HOOK
    previous = _WRAP_HOOK
    _WRAP_HOOK = hook
    return previous


def build_operator(node: phys.PhysicalPlan, db: Database, catalog: Catalog) -> Operator:
    """Recursively translate a physical plan into a Volcano operator tree."""
    op = _build_operator_raw(node, db, catalog)
    if _WRAP_HOOK is not None:
        op = _WRAP_HOOK(op, node)
    return op


def _build_operator_raw(
    node: phys.PhysicalPlan, db: Database, catalog: Catalog
) -> Operator:
    if isinstance(node, phys.Scan):
        return ScanOp(db, node)
    if isinstance(node, phys.DateIndexScan):
        return DateIndexScanOp(db, node)
    if isinstance(node, phys.Select):
        return SelectOp(build_operator(node.child, db, catalog), node)
    if isinstance(node, phys.Project):
        return ProjectOp(build_operator(node.child, db, catalog), node)
    if isinstance(node, phys.HashJoin):
        return HashJoinOp(
            build_operator(node.left, db, catalog),
            build_operator(node.right, db, catalog),
            node,
        )
    if isinstance(node, phys.LeftOuterJoin):
        right_fields = node.right.field_names(catalog)
        return LeftOuterJoinOp(
            build_operator(node.left, db, catalog),
            build_operator(node.right, db, catalog),
            node,
            right_fields,
        )
    if isinstance(node, phys.SemiJoin):
        return SemiJoinOp(
            build_operator(node.left, db, catalog),
            build_operator(node.right, db, catalog),
            node.left_keys,
            node.right_keys,
        )
    if isinstance(node, phys.AntiJoin):
        return AntiJoinOp(
            build_operator(node.left, db, catalog),
            build_operator(node.right, db, catalog),
            node.left_keys,
            node.right_keys,
        )
    if isinstance(node, phys.IndexJoin):
        return IndexJoinOp(build_operator(node.child, db, catalog), db, node)
    if isinstance(node, phys.IndexSemiJoin):
        return IndexSemiJoinOp(build_operator(node.child, db, catalog), db, node)
    if isinstance(node, phys.GroupJoin):
        return GroupJoinOp(
            build_operator(node.left, db, catalog),
            build_operator(node.right, db, catalog),
            node,
        )
    if isinstance(node, phys.Agg):
        return AggOp(build_operator(node.child, db, catalog), node)
    if isinstance(node, phys.Sort):
        return SortOp(build_operator(node.child, db, catalog), node)
    if isinstance(node, phys.Limit):
        return LimitOp(build_operator(node.child, db, catalog), node)
    if isinstance(node, phys.Distinct):
        return DistinctOp(
            build_operator(node.child, db, catalog), node.field_names(catalog)
        )
    raise VolcanoError(f"no Volcano implementation for {type(node).__name__}")


def iterate(plan: phys.PhysicalPlan, db: Database, catalog: Catalog) -> Iterator[Row]:
    """Yield result rows (dicts) for a plan."""
    root = build_operator(plan, db, catalog)
    root.open()
    try:
        while True:
            row = root.next()
            if row is None:
                break
            yield row
    finally:
        root.close()


def execute_volcano(
    plan: phys.PhysicalPlan, db: Database, catalog: Catalog
) -> list[tuple]:
    """Run a plan and return result rows as tuples in plan field order."""
    names = plan.field_names(catalog)
    return [tuple(row[n] for n in names) for row in iterate(plan, db, catalog)]
