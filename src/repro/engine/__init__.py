"""Interpreted query engines: Volcano (pull) and data-centric push.

These are the *interpreters* of the paper's story.  ``volcano`` is the
iterator model of Figure 3(d) (the Postgres-representative baseline);
``push`` is the data-centric evaluator with callbacks of Figure 6 -- the
very program that, run on staged inputs, *becomes* the LB2 compiler.
"""

from repro.engine.push import execute_push
from repro.engine.volcano import execute_volcano

__all__ = ["execute_push", "execute_volcano"]
