"""Shared machinery for the per-figure benchmarks.

A :class:`BenchContext` owns the generated TPC-H data (one generation per
process, shared across levels) and caches compiled queries so benchmark
iterations time *execution*, not compilation -- matching the paper, which
reports compile times separately (Figure 13 / our E5).

The scale factor comes from the ``REPRO_BENCH_SF`` environment variable
(default 0.01, i.e. 1% of SF1).  Absolute numbers are host-dependent; the
figures compare *systems* at a fixed scale, which is scale-invariant in
shape.
"""

from __future__ import annotations

import os
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.compiler.driver import CompiledQuery, LB2Compiler
from repro.compiler.lb2 import Config
from repro.compiler.template import TemplateCompiler
from repro.engine import execute_push, execute_volcano
from repro.plan import physical as phys
from repro.plan.rewrite import optimize_for_level
from repro.storage.database import Database, OptimizationLevel
from repro.tpch import query_plan
from repro.tpch.dbgen import generate_database, generate_tables

ENGINE_LABELS = {
    "volcano": "Volcano interpreter (Postgres-style)",
    "push": "Data-centric interpreter (callbacks)",
    "template": "Template-expansion compiler (DBLAB-contrast)",
    "lb2": "LB2 single-pass compiler (hand-written plans)",
    "lb2-sql": "LB2 on SQL-optimizer plans (15 expressible queries)",
}


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SF", "0.01"))


@dataclass
class BenchContext:
    """Generated data plus per-level databases and compiled-query caches."""

    scale: float
    tables: dict
    databases: dict[OptimizationLevel, Database] = field(default_factory=dict)
    _compiled: dict = field(default_factory=dict)
    _template: dict = field(default_factory=dict)

    def db(self, level: OptimizationLevel = OptimizationLevel.COMPLIANT) -> Database:
        if level not in self.databases:
            self.databases[level] = generate_database(
                tables={k: v for k, v in self.tables.items()}, level=level
            )
        return self.databases[level]

    def plan(
        self,
        query: int,
        level: OptimizationLevel = OptimizationLevel.COMPLIANT,
        rewrite: bool = False,
    ) -> phys.PhysicalPlan:
        db = self.db(level)
        plan = query_plan(query, scale=self.scale)
        if rewrite:
            plan = optimize_for_level(plan, db, db.catalog)
        return plan

    def compiled(
        self,
        query: int,
        level: OptimizationLevel = OptimizationLevel.COMPLIANT,
        rewrite: bool = False,
        config: Optional[Config] = None,
    ) -> CompiledQuery:
        key = (query, level, rewrite, config)
        if key not in self._compiled:
            db = self.db(level)
            plan = self.plan(query, level, rewrite)
            self._compiled[key] = LB2Compiler(db.catalog, db, config).compile(plan)
        return self._compiled[key]

    def template_compiled(self, query: int):
        if query not in self._template:
            db = self.db()
            self._template[query] = TemplateCompiler(db.catalog).compile(
                self.plan(query)
            )
        return self._template[query]

    def sql_compiled(self, query: int) -> Optional[CompiledQuery]:
        """LB2 compilation of the SQL-optimizer plan (None if plan-only)."""
        from repro.sql import sql_to_plan
        from repro.tpch.sql_queries import SQL_QUERIES

        key = ("sql", query)
        if key not in self._compiled:
            if query not in SQL_QUERIES:
                self._compiled[key] = None
            else:
                db = self.db()
                plan = sql_to_plan(SQL_QUERIES[query], db)
                self._compiled[key] = LB2Compiler(db.catalog, db).compile(plan)
        return self._compiled[key]


_context: Optional[BenchContext] = None


def make_context() -> BenchContext:
    """The process-wide benchmark context (data generated once)."""
    global _context
    if _context is None or _context.scale != bench_scale():
        scale = bench_scale()
        _context = BenchContext(scale=scale, tables=generate_tables(scale))
    return _context


def run_engine(engine: str, ctx: BenchContext, query: int) -> list[tuple]:
    """Execute one query on one engine (compiled engines pre-compiled)."""
    db = ctx.db()
    if engine == "volcano":
        return execute_volcano(ctx.plan(query), db, db.catalog)
    if engine == "push":
        return execute_push(ctx.plan(query), db, db.catalog)
    if engine == "template":
        return ctx.template_compiled(query).run(db)
    if engine == "lb2":
        return ctx.compiled(query).run(db)
    if engine == "lb2-sql":
        compiled = ctx.sql_compiled(query)
        if compiled is None:
            raise KeyError(f"Q{query} is not SQL-expressible (plan-only)")
        return compiled.run(db)
    raise KeyError(f"unknown engine {engine!r}")


def time_callable(fn: Callable[[], object], repeats: int = 3) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeats`` runs."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)
