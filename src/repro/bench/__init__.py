"""Benchmark harness: engine timing and paper-style figure reports."""

from repro.bench.harness import (
    ENGINE_LABELS,
    BenchContext,
    make_context,
    run_engine,
    time_callable,
)
from repro.bench.report import format_table, print_table

__all__ = [
    "ENGINE_LABELS",
    "BenchContext",
    "make_context",
    "run_engine",
    "time_callable",
    "format_table",
    "print_table",
]
