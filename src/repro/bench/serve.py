"""``repro-bench-serve``: sustained QPS and tail latency for the serve tier.

The workload is the mixed 22-query TPC-H suite (15 via SQL, 7 via
hand-written plans) fired at one :class:`~repro.serve.service.QueryService`
from concurrent client threads, every request carrying a deadline.  Two
measured runs land in the report (default ``BENCH_PR7.json``):

* **baseline** -- clean service, warm compiled-query cache;
* **faulted** -- the compiled-query cache cleared and a
  :class:`~repro.resilience.faults.FaultInjector` firing at the ``codegen``
  and ``host-compile`` sites, so a slice of requests degrades down the
  fallback chain (and some plan shapes trip the circuit breaker).

For each run: sustained QPS, latency percentiles (p50/p95/p99, ms),
outcome counts by error code, degraded counts, the breaker/metrics
counters, and the raw per-request samples (request id, shape digest,
tenant, latency, outcome, engine) that ``repro-doctor`` uses as a
regression baseline; a top-level ``shapes`` index maps each digest back
to its statement text.  The invariant checked before any number is
reported: every reply is rows or a *typed* error -- one raw exception
voids the run.

    repro-bench-serve                       # full run at REPRO_BENCH_SF
    repro-bench-serve --smoke               # CI mode: tiny scale, 1 round
    repro-bench-serve --clients 8 -r 5      # heavier sustained load
    repro-bench-serve --params              # literal-varying workload:
                                            # shape-keyed cache vs
                                            # per-literal compiles
                                            # (default BENCH_PR9.json)

In ``--params`` mode the workload is literal-varying: every round perturbs
the liftable literals of the 15 SQL queries, so statement *text* changes
each round while statement *shape* does not.  The same load runs twice --
once with session auto-parameterization off (every text variant compiles)
and once with the shape-keyed cache (each shape compiles exactly once) --
and the report carries both summaries plus the cache counters that prove
the compile counts.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import List, Optional, Sequence

from repro.bench.harness import bench_scale
from repro.obs.metrics import REGISTRY, percentile
from repro.obs.telemetry import shape_digest
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.serve.admission import TenantQuota
from repro.serve.service import QueryService, ServiceConfig, ServiceResponse
from repro.serve.workload import mixed_workload, parameterized_workload
from repro.session import Session
from repro.storage import OptimizationLevel
from repro.tpch.dbgen import generate_database, generate_tables


# ``percentile`` moved to repro.obs.metrics so the bench's exact math and
# the live bucketed histograms share one rank rule; re-exported above for
# existing importers.


def drive(
    service: QueryService,
    clients: int,
    rounds: int,
    deadline_seconds: float,
    varied: bool = False,
) -> tuple[List[ServiceResponse], float]:
    """``clients`` threads, each running ``rounds`` of the full workload;
    returns (responses, wall_seconds).  ``varied`` swaps in the
    literal-varying parameterized workload (same shapes, new text per
    round)."""
    lock = threading.Lock()
    responses: List[ServiceResponse] = []

    def one_client(idx: int) -> None:
        if varied:
            # Disjoint variation ranges per client: every client sends its
            # own literal values (as distinct tenants would), so a
            # text-keyed cache compiles per client per round while a
            # shape-keyed one still compiles each statement once.
            requests = parameterized_workload(
                rounds,
                tenant=f"bench-{idx}",
                deadline_seconds=deadline_seconds,
                first_round=idx * rounds,
            )
        else:
            requests = mixed_workload(
                rounds, tenant=f"bench-{idx}", deadline_seconds=deadline_seconds
            )
        for request in requests:
            response = service.submit(request)
            with lock:
                responses.append(response)

    threads = [
        threading.Thread(target=one_client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return responses, time.perf_counter() - started


def summarize(responses: Sequence[ServiceResponse], wall: float) -> dict:
    latencies = sorted(r.elapsed_seconds for r in responses)
    outcomes: dict = {}
    degraded = 0
    for r in responses:
        if r.ok:
            outcomes["ok"] = outcomes.get("ok", 0) + 1
            if r.degraded:
                degraded += 1
        else:
            code = r.code or "E_RUNTIME"
            if code == "E_RUNTIME":
                raise AssertionError(
                    f"raw exception crossed the service boundary: {r.error}"
                )
            outcomes[code] = outcomes.get(code, 0) + 1
    return {
        "requests": len(responses),
        "wall_seconds": wall,
        "qps": len(responses) / wall if wall else 0.0,
        "latency_ms": {
            "p50": percentile(latencies, 0.50) * 1e3,
            "p95": percentile(latencies, 0.95) * 1e3,
            "p99": percentile(latencies, 0.99) * 1e3,
            "max": (latencies[-1] if latencies else 0.0) * 1e3,
        },
        "outcomes": outcomes,
        "degraded": degraded,
        # Raw per-request samples: the regression baseline repro-doctor
        # compares a later run's tail against, per shape and tenant.
        "samples": [
            {
                "rid": r.request_id,
                "shape": shape_digest(r.shape) if r.shape else None,
                "tenant": r.tenant,
                "latency_ms": round(r.elapsed_seconds * 1e3, 3),
                "outcome": "ok" if r.ok else (r.code or "E_RUNTIME"),
                "engine": r.engine,
            }
            for r in responses
        ],
    }


def shape_index(responses: Sequence[ServiceResponse]) -> dict:
    """Digest -> truncated statement text, so sample rows stay joinable
    to human-readable shapes without repeating long SQL per request."""
    index: dict = {}
    for r in responses:
        if r.shape:
            index.setdefault(shape_digest(r.shape), r.shape[:120])
    return index


def bench_serve(
    scale: float,
    clients: int,
    rounds: int,
    workers: int,
    deadline_seconds: float,
    fault_every: int = 3,
) -> dict:
    db = generate_database(
        tables=dict(generate_tables(scale)), level=OptimizationLevel.COMPLIANT
    )
    session = Session(db, max_cache_size=256)
    config = ServiceConfig(
        workers=workers,
        max_queue_depth=clients * rounds * 22,  # bench measures latency, not shed
        default_deadline_seconds=deadline_seconds,
        default_quota=TenantQuota(),
        query_scale=scale,
    )
    report: dict = {
        "benchmark": "serve tier: mixed 22-query workload under concurrency",
        "scale": scale,
        "clients": clients,
        "rounds": rounds,
        "workers": workers,
        "deadline_seconds": deadline_seconds,
        "fault_every": fault_every,
    }
    with QueryService(session, config) as service:
        # Warmup: populate the compiled cache once so the baseline measures
        # the compile-once/execute-many steady state.
        warm, _ = drive(service, 1, 1, deadline_seconds)
        report["warmup_ok"] = sum(1 for r in warm if r.ok)

        REGISTRY.reset("serve.")
        responses, wall = drive(service, clients, rounds, deadline_seconds)
        report["baseline"] = summarize(responses, wall)
        report["baseline"]["counters"] = REGISTRY.counters_with_prefix("serve.")
        shapes = shape_index(responses)

        # Faulted run: cold cache + deterministic compile-site failures.
        session.clear_cache()
        REGISTRY.reset("serve.")
        with FaultInjector(
            FaultSpec(
                "codegen", at=frozenset(range(0, 1 << 20, fault_every)), times=None
            ),
            FaultSpec(
                "host-compile",
                at=frozenset(range(1, 1 << 20, fault_every)),
                times=None,
            ),
        ):
            responses, wall = drive(service, clients, rounds, deadline_seconds)
        report["faulted"] = summarize(responses, wall)
        report["faulted"]["counters"] = REGISTRY.counters_with_prefix("serve.")
        shapes.update(shape_index(responses))
        report["shapes"] = shapes
        report["cache"] = session.cache_info()
        del report["cache"]["statements"]  # keys are long; sizes suffice
    return report


def bench_params(
    scale: float,
    clients: int,
    rounds: int,
    workers: int,
    deadline_seconds: float,
) -> dict:
    """Literal-varying workload: per-literal compiles vs the shape cache.

    Two runs over identical request streams (every round changes literal
    values, never statement shape).  ``per_literal`` disables session
    auto-parameterization, so each text variant pays a full compile;
    ``shape_cached`` is the default path, where all variants of one
    statement share a single shape-keyed residual program.
    """
    db = generate_database(
        tables=dict(generate_tables(scale)), level=OptimizationLevel.COMPLIANT
    )
    report: dict = {
        "benchmark": (
            "serve tier: literal-varying 22-query workload -- "
            "per-literal compiles vs shape-keyed plan cache"
        ),
        "scale": scale,
        "clients": clients,
        "rounds": rounds,
        "workers": workers,
        "deadline_seconds": deadline_seconds,
    }
    config = ServiceConfig(
        workers=workers,
        max_queue_depth=clients * rounds * 22,
        default_deadline_seconds=deadline_seconds,
        default_quota=TenantQuota(),
        query_scale=scale,
    )
    for mode, auto in (("per_literal", False), ("shape_cached", True)):
        session = Session(db, max_cache_size=1024, auto_parameterize=auto)
        with QueryService(session, config) as service:
            # Warmup compiles round 0's texts (and, in shape mode, the
            # shapes); later rounds only hit the cache when shapes key it.
            warm, _ = drive(service, 1, 1, deadline_seconds, varied=True)
            warm_ok = sum(1 for r in warm if r.ok)
            warm_cache = session.cache_info()

            REGISTRY.reset("serve.")
            responses, wall = drive(
                service, clients, rounds, deadline_seconds, varied=True
            )
            entry = summarize(responses, wall)
            entry["warmup_ok"] = warm_ok
            entry["counters"] = REGISTRY.counters_with_prefix("serve.")
            cache = session.cache_info()
            del cache["statements"]
            # Compiles *paid during the measured phase* (warmup excluded):
            # the number the two modes are being compared on.
            cache["measured_misses"] = (
                cache["misses"]
                - warm_cache["misses"]
                + cache["shape_misses"]
                - warm_cache["shape_misses"]
            )
            entry["cache"] = cache
            report.setdefault("shapes", {}).update(shape_index(responses))
        report[mode] = entry
    base = report["per_literal"]["latency_ms"]
    shaped = report["shape_cached"]["latency_ms"]
    report["speedup"] = {
        "qps": report["shape_cached"]["qps"] / report["per_literal"]["qps"]
        if report["per_literal"]["qps"]
        else 0.0,
        "p50": base["p50"] / shaped["p50"] if shaped["p50"] else 0.0,
        "p95": base["p95"] / shaped["p95"] if shaped["p95"] else 0.0,
        "p99": base["p99"] / shaped["p99"] if shaped["p99"] else 0.0,
    }
    report["compiles"] = {
        "per_literal": report["per_literal"]["cache"]["measured_misses"],
        "shape_cached": report["shape_cached"]["cache"]["measured_misses"],
    }
    return report


def _print_params_report(report: dict) -> None:
    from repro.bench.report import print_table

    rows = []
    for run in ("per_literal", "shape_cached"):
        entry = report[run]
        rows.append(
            (
                run,
                [
                    entry["qps"],
                    entry["latency_ms"]["p50"],
                    entry["latency_ms"]["p95"],
                    entry["latency_ms"]["p99"],
                    entry["outcomes"].get("ok", 0),
                    entry["cache"]["measured_misses"],
                ],
            )
        )
    print_table(
        f"serve --params: {report['clients']} clients x {report['rounds']} "
        f"literal-varying rounds x 22 queries (sf={report['scale']}, "
        f"{report['workers']} workers)",
        ["qps", "p50 ms", "p95 ms", "p99 ms", "ok", "compiles"],
        rows,
    )


def _print_report(report: dict) -> None:
    from repro.bench.report import print_table

    rows = []
    for run in ("baseline", "faulted"):
        entry = report[run]
        rows.append(
            (
                run,
                [
                    entry["qps"],
                    entry["latency_ms"]["p50"],
                    entry["latency_ms"]["p95"],
                    entry["latency_ms"]["p99"],
                    entry["outcomes"].get("ok", 0),
                    entry["degraded"],
                    sum(v for k, v in entry["outcomes"].items() if k != "ok"),
                ],
            )
        )
    print_table(
        f"serve: {report['clients']} clients x {report['rounds']} rounds x 22 "
        f"queries (sf={report['scale']}, {report['workers']} workers)",
        ["qps", "p50 ms", "p95 ms", "p99 ms", "ok", "degraded", "rejected"],
        rows,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-bench-serve")
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("-r", "--rounds", type=int, default=3)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--deadline", type=float, default=30.0)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: tiny scale, small load, no report file")
    parser.add_argument("--params", action="store_true",
                        help="literal-varying workload: shape-keyed cache "
                             "vs per-literal compiles")
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)
    out = args.out or ("BENCH_PR9.json" if args.params else "BENCH_PR7.json")
    bench = bench_params if args.params else bench_serve
    if args.smoke:
        scale = args.scale if args.scale is not None else 0.002
        report = bench(scale, clients=3, rounds=2 if args.params else 1,
                       workers=args.workers, deadline_seconds=args.deadline)
    else:
        scale = args.scale if args.scale is not None else bench_scale()
        report = bench(scale, args.clients, args.rounds, args.workers,
                       args.deadline)
    if args.params:
        _print_params_report(report)
    else:
        _print_report(report)
    if not args.smoke:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
