"""Plain-text tables matching the layout of the paper's figures."""

from __future__ import annotations

from typing import Optional, Sequence


def format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[tuple[str, Sequence[object]]],
    note: Optional[str] = None,
) -> str:
    """Render a labelled table: one name column plus data columns."""
    header = [""] + [str(c) for c in columns]
    body = [[name] + [format_cell(v) for v in values] for name, values in rows]
    widths = [
        max(len(line[i]) for line in [header] + body) for i in range(len(header))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(c.rjust(w) for c, w in zip(line, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines) + "\n"


def print_table(*args, **kwargs) -> None:
    print(format_table(*args, **kwargs))
