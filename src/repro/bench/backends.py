"""``repro-bench``: scalar vs. batch-vectorized codegen over TPC-H.

Compiles every TPC-H query once per backend (compilation is *not* timed --
the paper reports it separately), executes both residual programs over the
same generated database, checks they answer identically, and reports
per-query wall-clock plus the geometric-mean speedup over the queries the
vector backend actually vectorized (``codegen_stats`` decides -- a query
the eligibility pass left fully scalar tells you nothing about kernels).

Results land in a JSON report (default ``BENCH_PR4.json`` in the working
directory)::

    repro-bench                    # full run at REPRO_BENCH_SF (default 0.01)
    repro-bench --smoke            # CI mode: tiny scale, one repeat
    repro-bench --scale 0.05 -r 5  # bigger data, more repeats
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import sys
import time
from typing import Optional, Sequence

from repro.compiler.driver import LB2Compiler
from repro.compiler.lb2 import Config
from repro.compiler.runtime import have_numpy
from repro.obs.metrics import REGISTRY
from repro.tpch.dbgen import generate_database, generate_tables
from repro.tpch.queries import QUERIES, query_plan

BACKENDS = ("scalar", "vector")


def _normalize(rows: list[tuple]) -> list[tuple]:
    rounded = [
        tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        for row in rows
    ]
    return sorted(rounded, key=repr)


def _interleaved_medians(fns: dict, repeats: int) -> dict[str, float]:
    """Median wall-clock per callable, repeats interleaved across them
    (back-to-back blocks would fold machine drift into the comparison)."""
    samples: dict[str, list[float]] = {name: [] for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            start = time.perf_counter()
            fn()
            samples[name].append(time.perf_counter() - start)
    return {name: statistics.median(s) for name, s in samples.items()}


def bench_backends(
    scale: float, repeats: int, queries: Sequence[int]
) -> dict:
    """Time every query under both backends; returns the report dict."""
    tables = generate_tables(scale)
    db = generate_database(tables=dict(tables))
    report: dict = {
        "benchmark": "scalar vs batch-vectorized codegen",
        "scale": scale,
        "repeats": repeats,
        "numpy": have_numpy(),
        "queries": {},
    }
    speedups_vectorized: list[float] = []
    speedups_all: list[float] = []
    for q in queries:
        plan = query_plan(q, scale=scale)
        compiled = {
            backend: LB2Compiler(
                db.catalog, db, Config(codegen=backend)
            ).compile(plan)
            for backend in BACKENDS
        }
        rows = {b: c.run(db) for b, c in compiled.items()}
        if _normalize(rows["scalar"]) != _normalize(rows["vector"]):
            raise AssertionError(f"Q{q}: backends disagree; benchmark void")
        REGISTRY.reset()
        seconds = _interleaved_medians(
            {b: (lambda c=c: c.run(db)) for b, c in compiled.items()},
            repeats,
        )
        metrics = REGISTRY.snapshot()
        stats = compiled["vector"].codegen_stats
        # Three tiers: "vectorized" means at least one whole pipeline runs
        # as kernels end-to-end (a vector aggregation); "batched-filter"
        # means mask kernels shrink a residual loop but the pipeline tail
        # is row-at-a-time; anything else compiled byte-identical scalar.
        if stats.get("vector_aggs", 0) > 0:
            lowering = "vectorized"
        elif stats.get("batch_scans", 0) > 0:
            lowering = "batched-filter"
        else:
            lowering = "scalar"
        speedup = seconds["scalar"] / seconds["vector"]
        entry = {
            "scalar_s": seconds["scalar"],
            "vector_s": seconds["vector"],
            "speedup": speedup,
            "lowering": lowering,
            "rows": len(rows["scalar"]),
            "codegen_stats": {
                k: v for k, v in stats.items() if k != "backend"
            },
            # Process-wide counters accumulated during this query's timed
            # runs (registry reset per query) -- lands in the CI artifact.
            "metrics": metrics,
        }
        report["queries"][str(q)] = entry
        speedups_all.append(speedup)
        if lowering == "vectorized":
            speedups_vectorized.append(speedup)
    report["vectorized_queries"] = [
        q for q, e in report["queries"].items()
        if e["lowering"] == "vectorized"
    ]
    report["geomean_speedup_vectorized"] = _geomean(speedups_vectorized)
    report["geomean_speedup_all"] = _geomean(speedups_all)
    return report


def _geomean(values: list[float]) -> Optional[float]:
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _print_report(report: dict) -> None:
    print(
        f"scale={report['scale']}  repeats={report['repeats']}  "
        f"numpy={report['numpy']}"
    )
    header = f"{'query':>5}  {'scalar':>10}  {'vector':>10}  {'speedup':>8}  lowering"
    print(header)
    print("-" * len(header))
    for q, e in report["queries"].items():
        print(
            f"Q{q:>4}  {e['scalar_s'] * 1e3:>8.2f}ms  "
            f"{e['vector_s'] * 1e3:>8.2f}ms  {e['speedup']:>7.2f}x  "
            f"{e['lowering']}"
        )
    gm = report["geomean_speedup_vectorized"]
    print(
        f"geomean speedup (vectorized queries "
        f"{', '.join('Q' + q for q in report['vectorized_queries'])}): "
        + (f"{gm:.2f}x" if gm else "n/a")
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench", description=__doc__
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="TPC-H scale factor (default: REPRO_BENCH_SF or 0.01)",
    )
    parser.add_argument(
        "-r", "--repeats", type=int, default=3,
        help="timing repeats per query/backend (median is reported)",
    )
    parser.add_argument(
        "--query", type=int, action="append", default=None,
        choices=sorted(QUERIES), help="benchmark a subset of queries",
    )
    parser.add_argument(
        "--out", default="BENCH_PR4.json",
        help="report path (default: BENCH_PR4.json in the working dir)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: tiny scale, one repeat, no report unless --out is set",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale = args.scale if args.scale is not None else 0.002
        repeats = 1
    else:
        from repro.bench.harness import bench_scale

        scale = args.scale if args.scale is not None else bench_scale()
        repeats = args.repeats
    queries = args.query if args.query else sorted(QUERIES)

    report = bench_backends(scale, repeats, queries)
    _print_report(report)
    write_report = not args.smoke or "--out" in (argv or sys.argv[1:])
    if write_report:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
