"""``repro-bench-opt``: what does classic dataflow optimization buy here?

The paper claims the single generation pass leaves (almost) nothing for a
multi-pass optimizer to find; LegoBase claims the opposite.  This harness
measures the disagreement on our own residual programs: every TPC-H query
is compiled at ``opt_level`` 0, 1 and 2 under both codegen backends, all
three programs are checked to answer identically, and the report records
the residual statement-count reduction plus the runtime delta per level.

Results land in a JSON report (default ``BENCH_PR6.json``)::

    repro-bench-opt                    # full run at REPRO_BENCH_SF
    repro-bench-opt --smoke            # CI mode: tiny scale, one repeat
    repro-bench-opt --scale 0.05 -r 5  # bigger data, more repeats
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.bench.backends import _geomean, _interleaved_medians, _normalize
from repro.compiler.driver import LB2Compiler
from repro.compiler.lb2 import Config
from repro.compiler.runtime import have_numpy
from repro.tpch.dbgen import generate_database, generate_tables
from repro.tpch.queries import QUERIES, query_plan

LEVELS = (0, 1, 2)


def bench_opt(
    scale: float,
    repeats: int,
    queries: Sequence[int],
    codegens: Sequence[str] = ("scalar", "vector"),
) -> dict:
    """Time every query at every opt level; returns the report dict."""
    db = generate_database(tables=dict(generate_tables(scale)))
    report: dict = {
        "benchmark": "IR optimizer levels over residual programs",
        "scale": scale,
        "repeats": repeats,
        "numpy": have_numpy(),
        "levels": list(LEVELS),
        "queries": {},
    }
    speedups = {(cg, lv): [] for cg in codegens for lv in LEVELS if lv}
    reductions = {(cg, lv): [] for cg in codegens for lv in LEVELS if lv}
    for q in queries:
        plan = query_plan(q, scale=scale)
        entry: dict = {}
        for codegen in codegens:
            compiled = {
                lv: LB2Compiler(
                    db.catalog, db, Config(codegen=codegen, opt_level=lv)
                ).compile(plan)
                for lv in LEVELS
            }
            rows = {lv: _normalize(c.run(db)) for lv, c in compiled.items()}
            if not (rows[0] == rows[1] == rows[2]):
                raise AssertionError(
                    f"Q{q} {codegen}: opt levels disagree; benchmark void"
                )
            seconds = _interleaved_medians(
                {str(lv): (lambda c=c: c.run(db)) for lv, c in compiled.items()},
                repeats,
            )
            from repro.analysis.opt import stmt_count

            baseline_stmts = stmt_count(compiled[0].functions)
            per_level: dict = {}
            for lv in LEVELS:
                stats = compiled[lv].codegen_stats.get("opt")
                stmts = (
                    stats["stmts_after"] if stats is not None else baseline_stmts
                )
                reduction = (
                    (baseline_stmts - stmts) / baseline_stmts
                    if baseline_stmts
                    else 0.0
                )
                speedup = seconds["0"] / seconds[str(lv)]
                per_level[str(lv)] = {
                    "seconds": seconds[str(lv)],
                    "stmts": stmts,
                    "stmt_reduction": reduction,
                    "speedup_vs_l0": speedup,
                    "opt_stats": stats,
                }
                if lv:
                    speedups[(codegen, lv)].append(speedup)
                    reductions[(codegen, lv)].append(reduction)
            entry[codegen] = {
                "rows": len(rows[0]),
                "levels": per_level,
            }
        report["queries"][str(q)] = entry
    report["summary"] = {
        codegen: {
            str(lv): {
                "geomean_speedup_vs_l0": _geomean(speedups[(codegen, lv)]),
                "mean_stmt_reduction": (
                    sum(reductions[(codegen, lv)])
                    / len(reductions[(codegen, lv)])
                    if reductions[(codegen, lv)]
                    else 0.0
                ),
            }
            for lv in LEVELS
            if lv
        }
        for codegen in codegens
    }
    return report


def _print_report(report: dict) -> None:
    print(
        f"scale={report['scale']}  repeats={report['repeats']}  "
        f"numpy={report['numpy']}"
    )
    header = (
        f"{'query':>5} {'codegen':>7} {'lvl':>3} {'stmts':>6} "
        f"{'reduction':>9} {'time':>10} {'vs l0':>7}"
    )
    print(header)
    print("-" * len(header))
    for q, entry in report["queries"].items():
        for codegen, data in entry.items():
            for lv, s in data["levels"].items():
                print(
                    f"Q{q:>4} {codegen:>7} {lv:>3} {s['stmts']:>6} "
                    f"{s['stmt_reduction'] * 100:>8.1f}% "
                    f"{s['seconds'] * 1e3:>8.2f}ms "
                    f"{s['speedup_vs_l0']:>6.2f}x"
                )
    for codegen, levels in report["summary"].items():
        for lv, s in levels.items():
            gm = s["geomean_speedup_vs_l0"]
            print(
                f"{codegen} level {lv}: mean stmt reduction "
                f"{s['mean_stmt_reduction'] * 100:.1f}%, geomean speedup "
                + (f"{gm:.2f}x" if gm else "n/a")
            )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-bench-opt", description=__doc__)
    parser.add_argument(
        "--scale", type=float, default=None,
        help="TPC-H scale factor (default: REPRO_BENCH_SF or 0.01)",
    )
    parser.add_argument(
        "-r", "--repeats", type=int, default=3,
        help="timing repeats per query/level (median is reported)",
    )
    parser.add_argument(
        "--query", type=int, action="append", default=None,
        choices=sorted(QUERIES), help="benchmark a subset of queries",
    )
    parser.add_argument(
        "--out", default="BENCH_PR6.json",
        help="report path (default: BENCH_PR6.json in the working dir)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: tiny scale, one repeat, no report unless --out is set",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale = args.scale if args.scale is not None else 0.002
        repeats = 1
    else:
        from repro.bench.harness import bench_scale

        scale = args.scale if args.scale is not None else bench_scale()
        repeats = args.repeats
    queries = args.query if args.query else sorted(QUERIES)

    report = bench_opt(scale, repeats, queries)
    _print_report(report)
    write_report = not args.smoke or "--out" in (argv or sys.argv[1:])
    if write_report:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
