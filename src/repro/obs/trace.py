"""Compile-pipeline tracing: nested spans over the query lifecycle.

A :class:`Trace` context manager installs an active trace; inside it,
``span("stage")`` context managers record wall-clock intervals into a
tree (parse -> compile -> codegen/verify/host-compile -> execute ...).
When no trace is active, ``span`` yields a falsy no-op object, so the
instrumented code paths cost one truthiness check and nothing else --
the same "observability off means off" contract the staged codegen
keeps via golden-source byte identity.

Like :mod:`repro.obs.metrics`, this module is a stdlib-only leaf so the
session, the compiler driver, and the resilience layer can all import
it without cycles.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass
class Span:
    """One timed stage; ``meta`` holds stage-specific annotations
    (residual-program bytes, IR statement counts, engine names ...)."""

    name: str
    start: float
    end: Optional[float] = None
    meta: dict = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    def __bool__(self) -> bool:
        return True

    @property
    def seconds(self) -> float:
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "seconds": self.seconds,
            "meta": dict(self.meta),
            "children": [c.to_dict() for c in self.children],
        }

    def render(self, indent: int = 0) -> str:
        meta = ""
        if self.meta:
            meta = "  " + " ".join(f"{k}={v}" for k, v in self.meta.items())
        lines = [
            f"{'  ' * indent}{self.name:<24} {self.seconds * 1e3:8.3f}ms{meta}"
        ]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class _NullSpan:
    """What ``span()`` yields when no trace is active: falsy, inert."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    @property
    def meta(self) -> dict:  # writes vanish; guard real work with `if sp:`
        return {}


_NULL_SPAN = _NullSpan()

# Module-level trace state: one active trace per process (queries are
# traced one at a time from the session; parallel workers are separate
# processes with their own module state).
_ACTIVE: Optional["Trace"] = None
_STACK: List[Span] = []


def active_trace() -> Optional["Trace"]:
    return _ACTIVE


@contextmanager
def span(name: str, **meta) -> Iterator[object]:
    """Record a child span under the innermost open span.

    Yields the :class:`Span` when a trace is active, else a falsy
    no-op -- guard any expensive annotation work with ``if sp:``.
    """
    if _ACTIVE is None:
        yield _NULL_SPAN
        return
    sp = Span(name=name, start=time.perf_counter(), meta=dict(meta))
    parent = _STACK[-1]
    parent.children.append(sp)
    _STACK.append(sp)
    try:
        yield sp
    finally:
        sp.end = time.perf_counter()
        _STACK.pop()


class Trace:
    """Installs itself as the active trace; the root span brackets the
    whole ``with`` block.

    ::

        with Trace("q6") as trace:
            session.run(sql)
        print(trace.render())
        json.dumps(trace.to_dict())
    """

    def __init__(self, name: str = "trace", **meta) -> None:
        self.root = Span(name=name, start=0.0, meta=dict(meta))
        self._previous: Optional[Trace] = None

    def __enter__(self) -> "Trace":
        global _ACTIVE
        self._previous = _ACTIVE
        self.root.start = time.perf_counter()
        _ACTIVE = self
        _STACK.append(self.root)
        return self

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        self.root.end = time.perf_counter()
        # Pop back to (and including) our root: a span leaked open by an
        # exception inside the block must not outlive the trace.
        while _STACK:
            top = _STACK.pop()
            if top is self.root:
                break
        _ACTIVE = self._previous
        self._previous = None

    def to_dict(self) -> dict:
        return self.root.to_dict()

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    def render(self) -> str:
        return self.root.render()
