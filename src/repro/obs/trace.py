"""Compile-pipeline tracing: nested spans over the query lifecycle.

A :class:`Trace` context manager installs an active trace; inside it,
``span("stage")`` context managers record wall-clock intervals into a
tree (parse -> compile -> codegen/verify/host-compile -> execute ...).
When no trace is active, ``span`` yields a falsy no-op object, so the
instrumented code paths cost one truthiness check and nothing else --
the same "observability off means off" contract the staged codegen
keeps via golden-source byte identity.

Like :mod:`repro.obs.metrics`, this module is a stdlib-only leaf so the
session, the compiler driver, and the resilience layer can all import
it without cycles.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass
class Span:
    """One timed stage; ``meta`` holds stage-specific annotations
    (residual-program bytes, IR statement counts, engine names ...)."""

    name: str
    start: float
    end: Optional[float] = None
    meta: dict = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    def __bool__(self) -> bool:
        return True

    @property
    def seconds(self) -> float:
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "seconds": self.seconds,
            "meta": dict(self.meta),
            "children": [c.to_dict() for c in self.children],
        }

    def render(self, indent: int = 0) -> str:
        meta = ""
        if self.meta:
            meta = "  " + " ".join(f"{k}={v}" for k, v in self.meta.items())
        lines = [
            f"{'  ' * indent}{self.name:<24} {self.seconds * 1e3:8.3f}ms{meta}"
        ]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class _NullSpan:
    """What ``span()`` yields when no trace is active: falsy, inert."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    @property
    def meta(self) -> dict:  # writes vanish; guard real work with `if sp:`
        return {}


_NULL_SPAN = _NullSpan()

# Trace state is *per thread*: the serve tier runs one request per worker
# thread, each under its own :class:`Trace`, and spans opened on one
# thread must never attach to another request's tree.  Thread-local data
# survives ``fork`` for the forking thread, so the parallel layer's
# forked workers still inherit the (usually absent) trace state exactly
# as they did when this was a plain module global.
_STATE = threading.local()


def _active() -> Optional["Trace"]:
    return getattr(_STATE, "active", None)


def _stack() -> List[Span]:
    stack = getattr(_STATE, "stack", None)
    if stack is None:
        stack = _STATE.stack = []
    return stack


def active_trace() -> Optional["Trace"]:
    return _active()


@contextmanager
def span(name: str, **meta) -> Iterator[object]:
    """Record a child span under the innermost open span.

    Yields the :class:`Span` when a trace is active, else a falsy
    no-op -- guard any expensive annotation work with ``if sp:``.
    """
    if _active() is None:
        yield _NULL_SPAN
        return
    sp = Span(name=name, start=time.perf_counter(), meta=dict(meta))
    stack = _stack()
    parent = stack[-1]
    parent.children.append(sp)
    stack.append(sp)
    try:
        yield sp
    finally:
        sp.end = time.perf_counter()
        stack.pop()


class Trace:
    """Installs itself as the active trace; the root span brackets the
    whole ``with`` block.

    ::

        with Trace("q6") as trace:
            session.run(sql)
        print(trace.render())
        json.dumps(trace.to_dict())
    """

    def __init__(self, name: str = "trace", **meta) -> None:
        self.root = Span(name=name, start=0.0, meta=dict(meta))
        self._previous: Optional[Trace] = None

    def __enter__(self) -> "Trace":
        self._previous = _active()
        self.root.start = time.perf_counter()
        _STATE.active = self
        _stack().append(self.root)
        return self

    def __exit__(self, *exc) -> None:
        self.root.end = time.perf_counter()
        # Pop back to (and including) our root: a span leaked open by an
        # exception inside the block must not outlive the trace.
        stack = _stack()
        while stack:
            top = stack.pop()
            if top is self.root:
                break
        _STATE.active = self._previous
        self._previous = None

    def to_dict(self) -> dict:
        return self.root.to_dict()

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    def render(self) -> str:
        return self.root.render()
